//! Cross-crate lock-step between the simulator's [`MetricsProbe`] and the
//! analysis crate's Eq. 1. The probe restates the bound internally (the
//! simulator cannot depend *up* on `cohort-analysis`), so this test is the
//! only thing holding the two formulas together: if either side drifts,
//! it fails loudly here.

use cohort_sim::{MetricsProbe, SimBuilder, SimConfig};
use cohort_trace::micro;
use cohort_types::TimerValue;

fn timer_sets() -> Vec<Vec<TimerValue>> {
    let t = |v: u64| TimerValue::timed(v).unwrap();
    vec![
        vec![TimerValue::MSI; 4],
        vec![t(24); 4],
        vec![t(40), t(90), TimerValue::MSI, TimerValue::MSI],
        vec![t(1), t(500), t(37), TimerValue::MSI],
        vec![t(64); 2],
        vec![t(10), TimerValue::MSI, t(200), t(33), t(7), TimerValue::MSI],
    ]
}

#[test]
fn probe_bound_matches_the_analysis_crate_exactly() {
    for timers in timer_sets() {
        let cores = timers.len();
        let config = SimConfig::builder(cores).timers(timers.clone()).build().unwrap();
        let latency = *config.latency();
        let workload = micro::ping_pong(cores, 1);
        let mut sim =
            SimBuilder::new(config, &workload).probe(MetricsProbe::new()).build().unwrap();
        sim.run().unwrap();
        let report = sim.into_probe().into_report();

        for (i, core) in report.cores.iter().enumerate() {
            let analytical = cohort_analysis::wcl_miss(i, &timers, &latency).get();
            assert_eq!(
                core.wcl_bound,
                Some(analytical),
                "core {i} of {timers:?}: probe bound drifted from Eq. 1"
            );
        }
    }
}

#[test]
fn probe_bound_is_absent_when_the_analysis_does_not_apply() {
    // TDM arbitration breaks the Eq. 1 assumptions; the probe must report
    // no bound rather than a wrong one.
    let config = SimConfig::builder(4)
        .timers(vec![TimerValue::timed(24).unwrap(); 4])
        .arbiter(cohort_sim::ArbiterKind::Tdm { critical: vec![true; 4] })
        .build()
        .unwrap();
    let workload = micro::ping_pong(4, 4);
    let mut sim = SimBuilder::new(config, &workload).probe(MetricsProbe::new()).build().unwrap();
    sim.run().unwrap();
    let report = sim.into_probe().into_report();
    assert!(report.cores.iter().all(|c| c.wcl_bound.is_none()));
    assert!(report.bound_ok(), "vacuously sound without a bound");
}

#[test]
fn measured_latencies_respect_the_shared_bound_under_contention() {
    // A contended workload on an analysable config: every per-core maximum
    // the probe measured must sit under the bound both crates agree on.
    let timers = vec![
        TimerValue::timed(40).unwrap(),
        TimerValue::timed(90).unwrap(),
        TimerValue::MSI,
        TimerValue::MSI,
    ];
    let config = SimConfig::builder(4).timers(timers.clone()).build().unwrap();
    let latency = *config.latency();
    let workload = micro::random_shared(4, 12, 500, 0.5, 23);
    let mut sim = SimBuilder::new(config, &workload).probe(MetricsProbe::new()).build().unwrap();
    sim.run().unwrap();
    let report = sim.into_probe().into_report();

    assert!(report.bound_ok());
    for (i, core) in report.cores.iter().enumerate() {
        let analytical = cohort_analysis::wcl_miss(i, &timers, &latency).get();
        assert!(
            core.latency.max().get() <= analytical,
            "core {i}: measured {} exceeds Eq. 1 bound {analytical}",
            core.latency.max()
        );
    }
}
