//! Regression: finite-LLC back-invalidation vs the guaranteed-hit analysis.
//!
//! With an inclusive finite LLC, an LLC eviction back-invalidates private
//! copies *before* their timer windows close — a third invalidation source
//! the timers do not gate. The guaranteed-hit analysis is therefore only
//! preserved under a perfect LLC; for finite-LLC systems the analysis must
//! fall back to the all-miss Eq. 3 bound. This adversarial workload (a
//! streaming co-runner thrashing a two-line LLC) breaks the would-be
//! hit-aware bound, so the fallback is what keeps `check_soundness` green.

use cohort::{run_experiment, Protocol, SystemSpec};
use cohort_sim::{CacheGeometry, LlcModel};
use cohort_trace::{Trace, TraceOp, Workload};
use cohort_types::{Criticality, TimerValue};

fn adversarial_workload() -> Workload {
    // Core 0 (timed): store line 0 then keep re-reading it.
    let mut ops0 = vec![TraceOp::store(0)];
    for _ in 0..200 {
        ops0.push(TraceOp::load(0).after(10));
    }
    // Core 1 (MSI): stream distinct even lines that all map to LLC set 0,
    // forcing back-invalidations of core 0's line.
    let ops1 = (1..400u64).map(|k| TraceOp::load(2 * k).after(1)).collect();
    Workload::new("llc-thrash", vec![Trace::from_ops(ops0), Trace::from_ops(ops1)]).unwrap()
}

#[test]
fn finite_llc_analysis_falls_back_to_all_miss_and_stays_sound() {
    let llc = CacheGeometry::new(128, 64, 1).unwrap(); // two-line LLC
    let spec = SystemSpec::builder()
        .core(Criticality::new(1).unwrap())
        .core(Criticality::new(1).unwrap())
        .llc(LlcModel::Finite(llc))
        .build()
        .unwrap();
    let timers = vec![TimerValue::timed(60_000).unwrap(), TimerValue::MSI];
    let outcome =
        run_experiment(&spec, &Protocol::Cohort { timers }, &adversarial_workload()).unwrap();

    // Back-invalidations actually happened (the hazard is real)...
    assert!(outcome.stats.back_invalidations > 0);
    // ...the analysis claimed no hits for the timed core (the fallback)...
    let bounds = outcome.bounds.as_ref().unwrap();
    assert_eq!(bounds[0].hits, 0, "finite LLC voids the hit guarantee");
    // ...and therefore the bound holds.
    outcome.check_soundness().unwrap();
}

#[test]
fn perfect_llc_keeps_the_hit_guarantee_on_the_same_workload() {
    let spec = SystemSpec::builder()
        .core(Criticality::new(1).unwrap())
        .core(Criticality::new(1).unwrap())
        .build()
        .unwrap();
    let timers = vec![TimerValue::timed(60_000).unwrap(), TimerValue::MSI];
    let outcome =
        run_experiment(&spec, &Protocol::Cohort { timers }, &adversarial_workload()).unwrap();
    let bounds = outcome.bounds.as_ref().unwrap();
    assert!(bounds[0].hits > 0, "nothing can steal line 0 before the timer");
    outcome.check_soundness().unwrap();
}
