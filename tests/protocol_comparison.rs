//! Cross-protocol behaviour through the public API: the qualitative
//! relationships the paper's evaluation rests on.

use cohort::{run_experiment, ExperimentJob, Protocol, Sweep, SystemSpec};
use cohort_trace::{micro, Kernel, KernelSpec};
use cohort_types::{Criticality, TimerValue};

fn spec4() -> SystemSpec {
    let mut b = SystemSpec::builder();
    for _ in 0..4 {
        b = b.core(Criticality::new(2).unwrap());
    }
    b.build().unwrap()
}

#[test]
fn fcfs_baseline_is_fastest_or_close_pendulum_slowest() {
    // The Figure-6 relationship: TDM's idle slots cost throughput; the COTS
    // FCFS arbiter and CoHoRT's RROF are close.
    let s = spec4();
    let w = KernelSpec::new(Kernel::Fft, 4).with_total_requests(3_000).generate();
    let timers = vec![TimerValue::timed(20).unwrap(); 4];
    let cohort = run_experiment(&s, &Protocol::Cohort { timers }, &w).unwrap();
    let fcfs = run_experiment(&s, &Protocol::MsiFcfs, &w).unwrap();
    let pendulum =
        run_experiment(&s, &Protocol::Pendulum { critical: vec![true; 4], theta: 300 }, &w)
            .unwrap();
    let (c, f, p) = (cohort.execution_time(), fcfs.execution_time(), pendulum.execution_time());
    assert!(p > f, "PENDULUM ({p}) must be slower than MSI+FCFS ({f})");
    assert!((c as f64) < (f as f64) * 1.25, "CoHoRT ({c}) must stay within ~25% of MSI+FCFS ({f})");
}

#[test]
fn heterogeneity_is_strictly_coherent() {
    // Mixed protocols must still deliver coherent data: a value written by
    // an MSI core is observed by timed cores and vice versa. We approximate
    // observation by checking ownership hand-overs complete: every core's
    // store to the shared line eventually fills in M (accesses all served).
    let s = spec4();
    let w = micro::ping_pong(4, 25);
    let timers = vec![
        TimerValue::timed(60).unwrap(),
        TimerValue::MSI,
        TimerValue::timed(7).unwrap(),
        TimerValue::MSI,
    ];
    let outcome = run_experiment(&s, &Protocol::Cohort { timers }, &w).unwrap();
    for (i, core) in outcome.stats.cores.iter().enumerate() {
        assert_eq!(core.accesses(), 25, "core {i} completed all stores");
    }
    outcome.check_soundness().unwrap();
}

#[test]
fn pendulum_starves_ncr_but_cohort_does_not() {
    // PENDULUM's documented unfairness vs CoHoRT's bounded service for
    // *every* core: under heavy critical-core load, the non-critical core's
    // worst observed latency under PENDULUM exceeds CoHoRT's — and CoHoRT
    // gives it an analytical bound while PENDULUM gives none.
    let s = spec4();
    let w = micro::ping_pong(4, 40);
    let critical = vec![true, true, true, false];
    let cohort_timers = vec![
        TimerValue::timed(30).unwrap(),
        TimerValue::timed(30).unwrap(),
        TimerValue::timed(30).unwrap(),
        TimerValue::MSI,
    ];
    let cohort = run_experiment(&s, &Protocol::Cohort { timers: cohort_timers }, &w).unwrap();
    let pendulum =
        run_experiment(&s, &Protocol::Pendulum { critical: critical.clone(), theta: 30 }, &w)
            .unwrap();
    assert!(cohort.bounds.as_ref().unwrap()[3].wcml.is_some(), "CoHoRT bounds the nCr core");
    assert!(
        pendulum.bounds.as_ref().unwrap()[3].wcml.is_none(),
        "PENDULUM gives the nCr core no guarantee"
    );
    assert!(
        pendulum.stats.cores[3].worst_request >= cohort.stats.cores[3].worst_request,
        "PENDULUM {} vs CoHoRT {}",
        pendulum.stats.cores[3].worst_request,
        cohort.stats.cores[3].worst_request
    );
}

#[test]
fn parallel_sweep_reproduces_sequential_results() {
    let s = spec4();
    let w = KernelSpec::new(Kernel::Radix, 4).with_total_requests(2_000).generate();
    let protocols = [Protocol::Msi, Protocol::Pcc, Protocol::MsiFcfs];
    let report = Sweep::builder()
        .jobs(protocols.iter().map(|p| ExperimentJob::new(s.clone(), p.clone(), w.clone())))
        .build()
        .run();
    assert_eq!(report.error_count(), 0);
    for (p, result) in protocols.iter().zip(&report.results) {
        assert_eq!(result.protocol, p.kind());
        let sequential = run_experiment(&s, p, &w).unwrap();
        assert_eq!(result.outcome().unwrap().stats, sequential.stats, "{}", p.label());
    }
}

#[test]
fn sweep_outcomes_match_the_sequential_driver() {
    let s = spec4();
    let w = micro::ping_pong(4, 10);
    let protocols = [Protocol::Msi, Protocol::MsiFcfs];
    let outcomes = Sweep::builder()
        .jobs(protocols.iter().map(|p| ExperimentJob::new(s.clone(), p.clone(), w.clone())))
        .build()
        .run()
        .into_outcomes()
        .unwrap();
    for (p, outcome) in protocols.iter().zip(&outcomes) {
        let sequential = run_experiment(&s, p, &w).unwrap();
        assert_eq!(outcome.stats, sequential.stats, "{}", p.label());
    }
}

#[test]
fn perfect_and_finite_llc_agree_qualitatively() {
    // The paper's footnote 1: the non-perfect LLC shows the same
    // observations. Check the Fig. 6 ordering survives a finite LLC.
    let w = KernelSpec::new(Kernel::Water, 4).with_total_requests(2_500).generate();
    let mut b = SystemSpec::builder();
    for _ in 0..4 {
        b = b.core(Criticality::new(2).unwrap());
    }
    let spec = b
        .llc(cohort_sim::LlcModel::Finite(cohort_sim::CacheGeometry::paper_llc()))
        .latency(cohort_types::LatencyConfig::paper().with_memory(100))
        .build()
        .unwrap();
    let timers = vec![TimerValue::timed(20).unwrap(); 4];
    let cohort = run_experiment(&spec, &Protocol::Cohort { timers }, &w).unwrap();
    let fcfs = run_experiment(&spec, &Protocol::MsiFcfs, &w).unwrap();
    let pendulum =
        run_experiment(&spec, &Protocol::Pendulum { critical: vec![true; 4], theta: 300 }, &w)
            .unwrap();
    cohort.check_soundness().unwrap();
    assert!(pendulum.execution_time() > fcfs.execution_time());
    assert!((cohort.execution_time() as f64) < (fcfs.execution_time() as f64) * 1.3);
}
