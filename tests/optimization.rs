//! The optimization engine end-to-end: GA-chosen timers satisfy constraint
//! C1 not just analytically but in actual simulation, and the engine
//! reports infeasibility rather than silently violating a requirement.

use cohort::{run_experiment, Protocol, SystemSpec};
use cohort_optim::{optimize_timers, GaConfig, GaRun, TimerProblem};
use cohort_trace::{micro, Kernel, KernelSpec};
use cohort_types::{Criticality, Cycles, Error};

fn ga() -> GaConfig {
    GaConfig { population: 16, generations: 10, ..Default::default() }
}

#[test]
fn optimized_timers_meet_requirements_in_simulation() {
    let workload = KernelSpec::new(Kernel::Ocean, 4).with_total_requests(4_000).generate();

    // Budgets from a reference configuration with 15% slack.
    let reference = {
        let timers = vec![cohort_types::TimerValue::timed(20).unwrap(); 4];
        cohort_analysis::analyze_cohort(
            &workload,
            &timers,
            &cohort_types::LatencyConfig::paper(),
            &cohort_sim::CacheGeometry::paper_l1(),
            &cohort_sim::LlcModel::Perfect,
        )
        .unwrap()
    };
    let mut builder = TimerProblem::builder(&workload);
    for (i, bound) in reference.iter().enumerate() {
        builder = builder.timed(i, Some(Cycles::new(bound.wcml.unwrap().get() * 23 / 20)));
    }
    let problem = builder.build().unwrap();
    let assignment = optimize_timers(&problem, &ga()).unwrap();
    assert!(assignment.feasible);

    // The real system honours the same budgets (measured ≤ bound ≤ Γ).
    let spec = SystemSpec::builder()
        .core(Criticality::new(2).unwrap())
        .core(Criticality::new(2).unwrap())
        .core(Criticality::new(2).unwrap())
        .core(Criticality::new(2).unwrap())
        .build()
        .unwrap();
    let outcome =
        run_experiment(&spec, &Protocol::Cohort { timers: assignment.timers.clone() }, &workload)
            .unwrap();
    outcome.check_soundness().unwrap();
    for (i, bound) in reference.iter().enumerate() {
        let gamma = bound.wcml.unwrap().get() * 23 / 20;
        assert!(
            outcome.stats.cores[i].total_latency.get() <= gamma,
            "core {i} exceeded its budget in simulation"
        );
    }
}

#[test]
fn optimizer_beats_naive_configurations() {
    // The requirement-awareness claim: the GA's objective value is no worse
    // than both naive corners (all-minimal and all-saturated timers).
    let workload = KernelSpec::new(Kernel::Fft, 4).with_total_requests(4_000).generate();
    let mut builder = TimerProblem::builder(&workload);
    for i in 0..4 {
        builder = builder.timed(i, None);
    }
    let problem = builder.build().unwrap();
    let outcome = GaRun::new(&problem).config(&ga()).run();
    let minimal = problem.fitness(&[1; 4]);
    let saturated = problem.fitness(problem.theta_saturations());
    assert!(outcome.best_fitness <= minimal + 1e-9);
    assert!(outcome.best_fitness <= saturated + 1e-9);
    // And strictly better than the worst corner (the trade-off is real).
    assert!(outcome.best_fitness < minimal.max(saturated));
}

#[test]
fn infeasible_requirements_are_detected_not_hidden() {
    let workload = micro::line_bursts(2, 4, 40);
    let problem = TimerProblem::builder(&workload)
        .timed(0, Some(Cycles::new(5))) // absurd: 5 cycles for 160 accesses
        .timed(1, None)
        .build()
        .unwrap();
    match optimize_timers(&problem, &ga()) {
        Err(Error::Infeasible(_)) => {}
        other => panic!("expected infeasibility, got {other:?}"),
    }
}

#[test]
fn hit_curves_feed_the_engine_as_a_black_box() {
    // The Fig. 2a loop: the GA's fitness must reflect the cache model — a
    // candidate with more guaranteed hits at equal WCL scores better.
    let workload = micro::line_bursts(2, 5, 80);
    let problem = TimerProblem::builder(&workload).timed(0, None).timed(1, None).build().unwrap();
    // θ = 1 yields no hits; θ = 30 yields burst hits at slightly larger
    // WCL: the fitness must prefer the latter.
    let tiny = problem.fitness(&[1, 1]);
    let burst = problem.fitness(&[30, 30]);
    assert!(burst < tiny, "hit-aware fitness must reward useful timers");
}
