//! End-to-end soundness across every kernel and criticality configuration:
//! the measured WCML and per-request latencies must never exceed the
//! analytical bounds, and guaranteed hits must materialise. This is the
//! obligation behind Figure 5's "experimental under analytical" claim.

use cohort::{run_experiment, Protocol, SystemSpec};
use cohort_optim::{GaConfig, GaRun, TimerProblem};
use cohort_trace::{Kernel, KernelSpec, Workload};
use cohort_types::{Criticality, TimerValue};

fn spec(critical: &[bool]) -> SystemSpec {
    let mut b = SystemSpec::builder();
    for &c in critical {
        b = b.core(Criticality::new(if c { 2 } else { 1 }).unwrap());
    }
    b.build().unwrap()
}

fn small_kernel(kernel: Kernel) -> Workload {
    KernelSpec::new(kernel, 4).with_total_requests(2_400).generate()
}

fn quick_ga() -> GaConfig {
    GaConfig { population: 10, generations: 4, ..Default::default() }
}

fn optimized_timers(workload: &Workload, critical: &[bool]) -> Vec<TimerValue> {
    let mut builder = TimerProblem::builder(workload);
    for (i, &c) in critical.iter().enumerate() {
        if c {
            builder = builder.timed(i, None);
        }
    }
    let problem = builder.build().unwrap();
    let outcome = GaRun::new(&problem).config(&quick_ga()).run();
    problem.timers_from_genes(&outcome.best)
}

#[test]
fn cohort_bounds_hold_on_every_kernel_and_config() {
    for critical in [
        vec![true, true, true, true],
        vec![true, true, false, false],
        vec![true, false, false, false],
    ] {
        let s = spec(&critical);
        for kernel in Kernel::ALL {
            let w = small_kernel(kernel);
            let timers = optimized_timers(&w, &critical);
            let outcome = run_experiment(&s, &Protocol::Cohort { timers }, &w).unwrap();
            outcome.check_soundness().unwrap_or_else(|e| panic!("{kernel} / {critical:?}: {e}"));
            // Guaranteed hits materialise in the real run.
            let bounds = outcome.bounds.as_ref().unwrap();
            for (i, (core, bound)) in outcome.stats.cores.iter().zip(bounds).enumerate() {
                assert!(
                    core.hits >= bound.hits,
                    "{kernel} core {i}: measured {} < guaranteed {}",
                    core.hits,
                    bound.hits
                );
            }
        }
    }
}

#[test]
fn pcc_bounds_hold_on_every_kernel() {
    let s = spec(&[true; 4]);
    for kernel in Kernel::ALL {
        let w = small_kernel(kernel);
        let outcome = run_experiment(&s, &Protocol::Pcc, &w).unwrap();
        outcome.check_soundness().unwrap_or_else(|e| panic!("{kernel}: {e}"));
    }
}

#[test]
fn pendulum_bounds_hold_on_every_kernel() {
    for critical in [vec![true; 4], vec![true, true, false, false]] {
        let s = spec(&critical);
        for kernel in Kernel::ALL {
            let w = small_kernel(kernel);
            let outcome = run_experiment(
                &s,
                &Protocol::Pendulum { critical: critical.clone(), theta: 300 },
                &w,
            )
            .unwrap();
            outcome.check_soundness().unwrap_or_else(|e| panic!("{kernel}: {e}"));
        }
    }
}

#[test]
fn msi_bound_holds_and_counts_no_hits() {
    let s = spec(&[true; 4]);
    let w = small_kernel(Kernel::Radix);
    let outcome = run_experiment(&s, &Protocol::Msi, &w).unwrap();
    outcome.check_soundness().unwrap();
    let bounds = outcome.bounds.as_ref().unwrap();
    assert!(bounds.iter().all(|b| b.hits == 0), "Eq. 3 assumes all misses");
}

#[test]
fn analytical_ordering_cohort_pcc_pendulum() {
    // The Figure-5 ordering on every kernel: CoHoRT's bound is tightest,
    // PENDULUM's loosest, for the critical cores.
    let critical = vec![true, true, false, false];
    let s = spec(&critical);
    for kernel in Kernel::ALL {
        let w = small_kernel(kernel);
        let timers = optimized_timers(&w, &critical);
        let cohort = run_experiment(&s, &Protocol::Cohort { timers }, &w).unwrap();
        let pcc = run_experiment(&s, &Protocol::Pcc, &w).unwrap();
        let pendulum =
            run_experiment(&s, &Protocol::Pendulum { critical: critical.clone(), theta: 300 }, &w)
                .unwrap();
        for core in 0..2 {
            let c = cohort.bounds.as_ref().unwrap()[core].wcml.unwrap();
            let p = pcc.bounds.as_ref().unwrap()[core].wcml.unwrap();
            let n = pendulum.bounds.as_ref().unwrap()[core].wcml.unwrap();
            assert!(c <= p, "{kernel} core {core}: CoHoRT {c} > PCC {p}");
            assert!(p < n, "{kernel} core {core}: PCC {p} ≥ PENDULUM {n}");
        }
    }
}
