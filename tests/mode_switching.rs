//! End-to-end mode switching (§VI, Figure 7): the offline LUT flow, the
//! run-time controller, and the hardware timer-register switch in the
//! simulator all compose.

use cohort::{ModeController, ModeDecision, ModeSetup, Protocol, SystemSpec};
use cohort_optim::GaConfig;
use cohort_sim::SimBuilder;
use cohort_trace::{Kernel, KernelSpec};
use cohort_types::{CoreId, Criticality, Cycles, Mode};

fn paper_spec() -> SystemSpec {
    SystemSpec::builder()
        .core(Criticality::new(4).unwrap())
        .core(Criticality::new(3).unwrap())
        .core(Criticality::new(2).unwrap())
        .core(Criticality::new(1).unwrap())
        .build()
        .unwrap()
}

fn quick_ga() -> GaConfig {
    GaConfig { population: 10, generations: 5, ..Default::default() }
}

#[test]
fn figure7_narrative_reproduces() {
    let spec = paper_spec();
    let workload = KernelSpec::new(Kernel::Fft, 4).with_total_requests(4_000).generate();
    let config = ModeSetup::new(&spec, &workload).ga(&quick_ga()).run().unwrap();

    let c0 = CoreId::new(0);
    let bound = |m: u32| config.wcml_bound(c0, Mode::new(m).unwrap()).unwrap().unwrap().get();
    // Bounds tighten as interferers degrade to MSI.
    let bounds: Vec<u64> = (1..=4).map(bound).collect();
    for w in bounds.windows(2) {
        assert!(w[1] <= w[0], "bounds must be non-increasing: {bounds:?}");
    }
    assert!(bounds[3] < bounds[0], "mode 4 must be strictly tighter than mode 1");

    // Stage 1: fits mode 1. Stage 2: between mode-3 and mode-2 bounds
    // (double escalation). Stage 3: between mode-4 and mode-3 bounds.
    let mut controller = ModeController::new(config);
    let d1 = controller.requirement_changed(c0, Cycles::new(bounds[0] + 1)).unwrap();
    assert_eq!(d1, ModeDecision::Stay(Mode::NORMAL));

    let gamma2 = u64::midpoint(bounds[1], bounds[2]);
    let d2 = controller.requirement_changed(c0, Cycles::new(gamma2)).unwrap();
    assert_eq!(d2, ModeDecision::Escalate(Mode::new(3).unwrap()), "mode 2 is skipped");

    let gamma3 = u64::midpoint(bounds[2], bounds[3]);
    let d3 = controller.requirement_changed(c0, Cycles::new(gamma3)).unwrap();
    assert_eq!(d3, ModeDecision::Escalate(Mode::new(4).unwrap()));

    // Without mode switching (mode 1's bound) stages 2 and 3 would be
    // unschedulable.
    assert!(bounds[0] > gamma2 && bounds[0] > gamma3);

    // Beyond mode 4 nothing helps.
    let d4 = controller.requirement_changed(c0, Cycles::new(bounds[3] / 100)).unwrap();
    assert_eq!(d4, ModeDecision::Unschedulable);
    assert_eq!(controller.current().index(), 4, "mode unchanged on failure");
}

#[test]
fn lut_timers_are_sound_in_simulation_per_mode() {
    let spec = paper_spec();
    let workload = KernelSpec::new(Kernel::Water, 4).with_total_requests(3_000).generate();
    let config = ModeSetup::new(&spec, &workload).ga(&quick_ga()).run().unwrap();
    for entry in &config.entries {
        let timers = config.lut.timers_for(entry.mode).unwrap().to_vec();
        let outcome =
            cohort::run_experiment(&spec, &Protocol::Cohort { timers }, &workload).unwrap();
        outcome.check_soundness().unwrap_or_else(|e| panic!("mode {}: {e}", entry.mode));
    }
}

#[test]
fn hardware_switch_mid_run_matches_lut_semantics() {
    // Re-program the θ registers mid-run (the §VI hardware mechanism) and
    // check that the system completes with sound coherence state and that
    // post-switch behaviour matches the degraded mode: the degraded cores'
    // L1 lines stop being timer-protected.
    let spec = paper_spec();
    let workload = KernelSpec::new(Kernel::Fft, 4).with_total_requests(3_000).generate();
    let config = ModeSetup::new(&spec, &workload).ga(&quick_ga()).run().unwrap();
    let m1 = config.lut.timers_for(Mode::new(1).unwrap()).unwrap().to_vec();
    let m4 = config.lut.timers_for(Mode::new(4).unwrap()).unwrap().to_vec();

    let sim_config = Protocol::Cohort { timers: m1 }.sim_config(&spec).unwrap();
    let mut sim = SimBuilder::new(sim_config, &workload).build().unwrap();
    sim.schedule_timer_switch(Cycles::new(20_000), m4.clone()).unwrap();
    let stats = sim.run().unwrap();
    sim.validate_coherence().unwrap();
    assert_eq!(sim.timers(), m4.as_slice(), "registers hold the mode-4 row");
    for (core, trace) in stats.cores.iter().zip(workload.traces()) {
        assert_eq!(core.accesses(), trace.len() as u64, "no task was suspended");
    }
}

#[test]
fn two_level_system_has_two_modes() {
    let spec = SystemSpec::builder()
        .core(Criticality::new(2).unwrap())
        .core(Criticality::new(1).unwrap())
        .build()
        .unwrap();
    let workload = KernelSpec::new(Kernel::Lu, 2).with_total_requests(1_500).generate();
    let config = ModeSetup::new(&spec, &workload).ga(&quick_ga()).run().unwrap();
    assert_eq!(config.lut.modes(), 2);
    assert_eq!(config.lut.bits_per_core(), 32);
    assert!(config.lut.timers_for(Mode::new(2).unwrap()).unwrap()[1].is_msi());
}
