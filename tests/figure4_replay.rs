//! Integration replay of the paper's §III-C example operation (Figure 4)
//! through the public `cohort` API: the RROF order, the timer hand-over
//! chain and the MSI core's immediate hand-over.

use cohort::{Protocol, SystemSpec};
use cohort_sim::{EventKind, EventLogProbe, SimBuilder};
use cohort_trace::micro;
use cohort_types::{Criticality, TimerValue};

#[test]
fn figure4_chain_orders_and_delays() {
    let spec = SystemSpec::builder()
        .core(Criticality::new(2).unwrap())
        .core(Criticality::new(2).unwrap())
        .core(Criticality::new(1).unwrap())
        .core(Criticality::new(2).unwrap())
        .build()
        .unwrap();
    let theta = 40u64;
    let timers = vec![
        TimerValue::timed(theta).unwrap(),
        TimerValue::timed(theta).unwrap(),
        TimerValue::MSI,
        TimerValue::timed(theta).unwrap(),
    ];
    let mut config = Protocol::Cohort { timers }.sim_config(&spec).unwrap();
    config = config.with_timers(config.timers()).unwrap(); // exercise the clone path
    let config =
        cohort_sim::SimConfig::builder(4).timers(config.timers().to_vec()).build().unwrap();

    let workload = micro::figure4();
    let mut sim = SimBuilder::new(config, &workload).probe(EventLogProbe::new()).build().unwrap();
    sim.run().unwrap();
    sim.validate_coherence().unwrap();

    let fills: Vec<(usize, u64)> = sim
        .probe()
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Fill { core, line, .. } if line.raw() == 0x40 => {
                Some((*core, e.cycle.get()))
            }
            _ => None,
        })
        .collect();
    let order: Vec<usize> = fills.iter().map(|(c, _)| *c).collect();
    assert_eq!(order, vec![0, 1, 2, 3], "RROF serves A in broadcast order");

    // Timed owners hold for θ; the MSI core hands over in one transfer.
    assert!(fills[1].1 - fills[0].1 >= theta, "c1 waited out θ0");
    assert!(fills[2].1 - fills[1].1 >= theta, "c2 waited out θ1");
    assert_eq!(fills[3].1 - fills[2].1, 50, "c2 → c3 is an immediate data transfer");

    // The paper's annotations ❺/❼: c0 and c1 keep issuing their own
    // requests (X0, X1) while holding A — activity overlaps the timers.
    let side_requests: Vec<u64> = sim
        .probe()
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Broadcast { line, .. } if line.raw() != 0x40 => Some(e.cycle.get()),
            _ => None,
        })
        .collect();
    assert_eq!(side_requests.len(), 2, "X0 and X1 hit the bus");
    assert!(side_requests[0] < fills[1].1, "c0's X0 request overlaps its ownership of A");
}
