//! Reproduction package re-exports.
pub use cohort;
