//! Targeted fuzz for the anchor-divergence scenario: the guaranteed-hit
//! analysis re-anchors its window at *analysis* misses, while the real run
//! may have hit there (no adversary showed up), leaving the real timer
//! anchored earlier. An adversary that phases its requests near the real
//! anchor's expiry boundaries maximizes the chance of stealing a line the
//! analysis still counts as a guaranteed hit. Soundness requires the total
//! measured WCML to stay under the Eq. 2 bound regardless.
use cohort_analysis::analyze_cohort;
use cohort_sim::{CacheGeometry, LlcModel, SimBuilder, SimConfig};
use cohort_trace::{AccessKind, Trace, TraceOp, Workload};
use cohort_types::{Cycles, LatencyConfig, LineAddr, TimerValue};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let lat = LatencyConfig::paper();
    let mut violations = 0u64;
    let mut worst_margin = f64::MAX;
    for seed in 0..40_000u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let theta = rng.gen_range(8..=300u64);
        let cores = rng.gen_range(2..=4usize);
        // Victim trace: revisit a handful of lines at spacings around θ in
        // virtual time (mixing sub-θ bursts with just-past-θ revisits that
        // make the analysis re-anchor while the real run may hit).
        let lines = rng.gen_range(1..=4u64);
        let mut ops = Vec::new();
        let len = rng.gen_range(10..80);
        while ops.len() < len {
            let line = rng.gen_range(0..lines);
            let style = rng.gen_range(0..3);
            let gap = match style {
                0 => rng.gen_range(1..=4),                       // burst
                1 => theta.saturating_sub(rng.gen_range(0..=6)), // near boundary
                _ => theta + rng.gen_range(0..=6),               // just past
            };
            let store = rng.gen_bool(0.4);
            ops.push(TraceOp::new(
                LineAddr::new(line),
                if store { AccessKind::Store } else { AccessKind::Load },
                Cycles::new(gap),
            ));
        }
        let victim = Trace::from_ops(ops);
        // Adversaries: request the victim's lines with boundary-phased gaps.
        let adversaries: Vec<Trace> = (1..cores)
            .map(|_| {
                let mut ops = Vec::new();
                for _ in 0..rng.gen_range(5..60) {
                    let line = rng.gen_range(0..lines);
                    let phase = rng.gen_range(0..4);
                    let gap = match phase {
                        0 => theta.saturating_sub(1),
                        1 => theta + 1,
                        2 => theta,
                        _ => rng.gen_range(1..=2 * theta + 8),
                    };
                    ops.push(TraceOp::new(
                        LineAddr::new(line),
                        AccessKind::Store,
                        Cycles::new(gap),
                    ));
                }
                Trace::from_ops(ops)
            })
            .collect();
        let mut traces = vec![victim];
        traces.extend(adversaries);
        let w = Workload::new("anchor", traces).unwrap();
        let mut timers = vec![TimerValue::MSI; cores];
        timers[0] = TimerValue::timed(theta).unwrap();
        // Sometimes make an adversary timed too (chained divergence).
        if cores > 2 && rng.gen_bool(0.5) {
            timers[1] = TimerValue::timed(rng.gen_range(1..=200)).unwrap();
        }
        // Sometimes a 2-way L1 (the finder's associative-divergence case).
        let l1 = if rng.gen_bool(0.3) {
            CacheGeometry::new(16 * 1024, 64, 2).unwrap()
        } else {
            CacheGeometry::paper_l1()
        };
        let config = SimConfig::builder(cores).timers(timers.clone()).l1(l1).build().unwrap();
        let stats = SimBuilder::new(config, &w).build().unwrap().run().unwrap();
        let bounds = analyze_cohort(&w, &timers, &lat, &l1, &LlcModel::Perfect).unwrap();
        let measured = stats.cores[0].total_latency.get();
        let bound = bounds[0].wcml.unwrap().get();
        if measured > bound {
            violations += 1;
            println!(
                "seed {seed}: measured {measured} > bound {bound} (θ={theta}, cores={cores}, \
                 hits_a={} hits_m={})",
                bounds[0].hits, stats.cores[0].hits
            );
            if violations > 5 {
                return;
            }
        } else if bound > 0 {
            worst_margin = worst_margin.min((bound - measured) as f64 / bound as f64);
        }
    }
    println!("violations: {violations}; tightest margin {worst_margin:.4}");
}
