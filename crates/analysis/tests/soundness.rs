//! Soundness of the analysis against the simulator: every analytical bound
//! must dominate the corresponding measurement, and every guaranteed hit
//! must actually hit. These are the properties Figure 5's "experimental
//! under analytical" T-bars rest on.

use proptest::prelude::*;

use cohort_trace::{AccessKind, Trace, TraceOp, Workload};
use cohort_types::{Cycles, LineAddr, TimerValue};

#[allow(dead_code)] // used only inside proptest! (the offline stub expands to nothing)
fn timed(theta: u64) -> TimerValue {
    TimerValue::timed(theta).unwrap()
}

/// Random small workloads with burst-shaped reuse so that guaranteed hits
/// actually occur (pure random traces rarely re-touch a line in time).
#[allow(dead_code)] // used only inside proptest! (the offline stub expands to nothing)
fn workload_strategy(cores: usize) -> impl Strategy<Value = Workload> {
    let burst =
        (0u64..16, any::<bool>(), 1usize..5, 0u64..6).prop_map(|(line, store, extra, gap)| {
            let mut ops = vec![TraceOp::new(
                LineAddr::new(line),
                if store { AccessKind::Store } else { AccessKind::Load },
                Cycles::new(gap),
            )];
            for _ in 0..extra {
                ops.push(TraceOp::new(LineAddr::new(line), AccessKind::Load, Cycles::new(1)));
            }
            ops
        });
    proptest::collection::vec(proptest::collection::vec(burst, 1..25), cores..=cores).prop_map(
        |traces| {
            Workload::new(
                "bursts",
                traces
                    .into_iter()
                    .map(|bursts| bursts.into_iter().flatten().collect::<Trace>())
                    .collect(),
            )
            .expect("non-empty")
        },
    )
}

#[allow(dead_code)] // used only inside proptest! (the offline stub expands to nothing)
fn timers_strategy(cores: usize) -> impl Strategy<Value = Vec<TimerValue>> {
    proptest::collection::vec(
        prop_oneof![Just(TimerValue::MSI), (1u64..=200).prop_map(timed)],
        cores..=cores,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CoHoRT: measured per-request latency ≤ Eq. 1; measured total memory
    /// latency ≤ WCML bound; measured hits ≥ guaranteed hits.
    #[test]
    fn cohort_bounds_dominate_measurements(
        workload in workload_strategy(4),
        timers in timers_strategy(4),
    ) {
        let lat = LatencyConfig::paper();
        let config = SimConfig::builder(4).timers(timers.clone()).build().expect("valid");
        let l1 = *config.l1();
        let stats = SimBuilder::new(config, &workload).build().expect("sim").run().expect("ok");
        let bounds = analyze_cohort(&workload, &timers, &lat, &l1, &cohort_sim::LlcModel::Perfect).expect("analysis");
        for (i, (core, bound)) in stats.cores.iter().zip(&bounds).enumerate() {
            prop_assert!(
                core.worst_request <= bound.wcl.expect("cohort bounds all cores"),
                "core {i}: request {} > WCL {}",
                core.worst_request, bound.wcl.unwrap()
            );
            prop_assert!(
                core.total_latency <= bound.wcml.unwrap(),
                "core {i}: measured WCML {} > bound {} (timers {:?})",
                core.total_latency, bound.wcml.unwrap(), timers
            );
            prop_assert!(
                core.hits >= bound.hits,
                "core {i}: measured hits {} < guaranteed {}",
                core.hits, bound.hits
            );
        }
    }

    /// PCC: all-miss WCML at the staged-hand-over WCL dominates.
    #[test]
    fn pcc_bounds_dominate_measurements(workload in workload_strategy(4)) {
        let lat = LatencyConfig::paper();
        let config = SimConfig::builder(4)
            .data_path(DataPath::ViaSharedMemory)
            .build()
            .expect("valid");
        let stats = SimBuilder::new(config, &workload).build().expect("sim").run().expect("ok");
        let bounds = analyze_pcc(&workload, &lat);
        for (i, (core, bound)) in stats.cores.iter().zip(&bounds).enumerate() {
            prop_assert!(
                core.worst_request <= bound.wcl.unwrap(),
                "core {i}: request {} > PCC WCL {}",
                core.worst_request, bound.wcl.unwrap()
            );
            prop_assert!(core.total_latency <= bound.wcml.unwrap());
        }
    }

    /// PENDULUM: critical cores stay under the TDM bound; non-critical
    /// cores are unbounded but still make progress.
    #[test]
    fn pendulum_bounds_dominate_critical_measurements(
        workload in workload_strategy(4),
        n_cr in 1usize..=4,
        theta in 1u64..=200,
    ) {
        let lat = LatencyConfig::paper();
        let critical: Vec<bool> = (0..4).map(|i| i < n_cr).collect();
        let timers = vec![timed(theta); 4];
        let config = SimConfig::builder(4)
            .timers(timers)
            .arbiter(ArbiterKind::Tdm { critical: critical.clone() })
            .waiter_priority(critical.clone())
            .build()
            .expect("valid");
        let stats = SimBuilder::new(config, &workload).build().expect("sim").run().expect("ok");
        let params = PendulumParams { critical: critical.clone(), theta };
        let bounds = analyze_pendulum(&workload, &params, &lat).expect("analysis");
        let wcl = wcl_pendulum(n_cr, 4 - n_cr, theta, &lat);
        for (i, (core, bound)) in stats.cores.iter().zip(&bounds).enumerate() {
            if critical[i] {
                prop_assert!(
                    core.worst_request <= wcl,
                    "Cr core {i}: request {} > PENDULUM WCL {} (n_cr={n_cr}, θ={theta})",
                    core.worst_request, wcl
                );
                prop_assert!(core.total_latency <= bound.wcml.unwrap());
            } else {
                prop_assert!(bound.wcml.is_none());
                prop_assert_eq!(
                    core.accesses(),
                    workload.traces()[i].len() as u64,
                    "nCr cores still complete"
                );
            }
        }
    }
}
