//! Property-based tests of the static analyses.

use proptest::prelude::*;

use cohort_trace::{AccessKind, Trace, TraceOp};
use cohort_types::{Cycles, LineAddr, TimerValue};

#[allow(dead_code)] // used only inside proptest! (the offline stub expands to nothing)
fn trace_strategy() -> impl Strategy<Value = Trace> {
    let op = (0u64..600, any::<bool>(), 0u64..30).prop_map(|(line, store, gap)| {
        TraceOp::new(
            LineAddr::new(line),
            if store { AccessKind::Store } else { AccessKind::Load },
            Cycles::new(gap),
        )
    });
    proptest::collection::vec(op, 0..150).prop_map(Trace::from_ops)
}

#[allow(dead_code)] // used only inside proptest! (the offline stub expands to nothing)
fn timers_strategy() -> impl Strategy<Value = Vec<TimerValue>> {
    proptest::collection::vec(
        prop_oneof![
            Just(TimerValue::MSI),
            (0u64..=400).prop_map(|t| TimerValue::timed(t).unwrap()),
        ],
        2..8,
    )
}

proptest! {
    /// Guaranteed hits are monotone non-decreasing in θ — the assumption
    /// the θ_sat binary search and the GA's search-space shape rely on.
    #[test]
    fn hits_monotone_in_theta(trace in trace_strategy(), penalty in 1u64..600) {
        let l1 = CacheGeometry::paper_l1();
        let mut previous = 0;
        for theta in [1u64, 2, 4, 8, 16, 32, 64, 128, 512, 2048, 65_535] {
            let counts = guaranteed_hits(
                &trace,
                TimerValue::timed(theta).unwrap(),
                &l1,
                Cycles::new(1),
                Cycles::new(penalty),
            );
            prop_assert!(counts.hits >= previous, "θ={theta}: {} < {previous}", counts.hits);
            prop_assert_eq!(counts.total(), trace.len() as u64);
            previous = counts.hits;
        }
    }

    /// A larger miss penalty never increases guaranteed hits (the timeline
    /// stretches, windows expire sooner relative to accesses).
    #[test]
    fn hits_antitone_in_penalty(trace in trace_strategy(), theta in 1u64..500) {
        let l1 = CacheGeometry::paper_l1();
        let t = TimerValue::timed(theta).unwrap();
        let mut previous = u64::MAX;
        for penalty in [54u64, 108, 216, 432, 1000] {
            let hits =
                guaranteed_hits(&trace, t, &l1, Cycles::new(1), Cycles::new(penalty)).hits;
            prop_assert!(hits <= previous);
            previous = hits;
        }
    }

    /// θ_sat is a true minimal fixed point: hits(θ_sat) equals the
    /// saturated count and hits(θ_sat − 1) is strictly below it (when
    /// θ_sat > 1).
    #[test]
    fn theta_saturation_is_minimal(trace in trace_strategy()) {
        let l1 = CacheGeometry::paper_l1();
        let penalty = Cycles::new(54);
        let sat = theta_saturation(&trace, &l1, Cycles::new(1), penalty);
        prop_assert!((1..=TimerValue::MAX_THETA).contains(&sat));
        let at = |t: u64| {
            guaranteed_hits(&trace, TimerValue::timed(t).unwrap(), &l1, Cycles::new(1), penalty)
                .hits
        };
        let saturated = at(TimerValue::MAX_THETA);
        prop_assert_eq!(at(sat), saturated);
        if sat > 1 {
            prop_assert!(at(sat - 1) < saturated, "θ_sat {sat} is not minimal");
        }
    }

    /// Eq. 1 structure: adding a timed interferer increases every other
    /// core's bound by exactly θ_j + SW; MSI interferers add nothing to
    /// the timer term.
    #[test]
    fn eq1_is_additive_in_interferer_timers(timers in timers_strategy(), core in 0usize..8) {
        prop_assume!(core < timers.len());
        let lat = LatencyConfig::paper();
        let sw = lat.slot_width().get();
        let n = timers.len() as u64;
        let expected: u64 = sw * n
            + timers
                .iter()
                .enumerate()
                .filter(|&(j, t)| j != core && t.is_timed())
                .map(|(_, t)| t.theta().unwrap() + sw)
                .sum::<u64>();
        prop_assert_eq!(wcl_miss(core, &timers, &lat).get(), expected);
    }

    /// Eq. 2 with zero hits equals Eq. 3; hits only ever tighten it.
    #[test]
    fn eq2_dominated_by_eq3(hits in 0u64..10_000, misses in 0u64..10_000, wcl in 1u64..5_000) {
        let wcl = Cycles::new(wcl);
        let timed = wcml_timed(hits, misses, Cycles::new(1), wcl);
        let snoop = wcml_snoop(hits + misses, wcl);
        prop_assert!(timed <= snoop);
        prop_assert_eq!(wcml_timed(0, misses, Cycles::new(1), wcl), wcml_snoop(misses, wcl));
    }
}
