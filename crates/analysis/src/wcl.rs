//! Per-request worst-case latency bounds (Eq. 1 and the baseline bounds).

use cohort_types::{Cycles, LatencyConfig, TimerValue};

/// The effective slot width used by all bounds: `SW = request + data`, plus
/// the fixed main-memory latency when the LLC is non-perfect (every
/// LLC-sourced transfer may miss and pay it). For the paper's perfect-LLC
/// configuration this is exactly `SW`.
fn effective_slot(latency: &LatencyConfig) -> Cycles {
    latency.slot_width() + latency.memory
}

/// **Eq. 1** — the per-request worst-case miss latency of core `i` under
/// CoHoRT (heterogeneous coherence, RROF arbitration):
///
/// ```text
/// WCL_i = SW + (N−1)·SW + Σ_{j≠i} { θ_j + SW   if θ_j ≥ 0
///                                  { 0          if θ_j = −1
/// ```
///
/// The first term covers the first core in the broadcast order fetching the
/// line from the shared memory; the second covers one data hand-over per
/// interfering core; the third adds, for every *timed* interferer, its
/// timer hold plus a slot of expiry/slot misalignment. A core's own timer
/// never appears in its own bound (`j ≠ i`) — the modelled cache controller
/// drops timer protection of a line the core itself is waiting on.
///
/// # Examples
///
/// ```
/// use cohort_analysis::wcl_miss;
/// use cohort_types::{LatencyConfig, TimerValue};
///
/// // All-MSI quad core: N·SW = 216.
/// let msi = [TimerValue::MSI; 4];
/// assert_eq!(wcl_miss(0, &msi, &LatencyConfig::paper()).get(), 216);
/// ```
///
/// # Panics
///
/// Panics if `core` is out of range of `timers`.
#[must_use]
pub fn wcl_miss(core: usize, timers: &[TimerValue], latency: &LatencyConfig) -> Cycles {
    assert!(core < timers.len(), "core {core} out of range");
    let sw = effective_slot(latency);
    let n = timers.len() as u64;
    let mut bound = sw + sw * (n - 1);
    for (j, timer) in timers.iter().enumerate() {
        if j == core {
            continue;
        }
        if let Some(theta) = timer.theta() {
            bound += Cycles::new(theta) + sw;
        }
    }
    bound
}

/// Per-request worst-case latency of the **PCC** baseline: predictable
/// snooping coherence in which every core-to-core hand-over is staged
/// through the shared memory (write-back + refetch), doubling the data
/// occupancy of each hand-over:
///
/// ```text
/// staged  = request + 2·data + memory
/// WCL_pcc = staged            (an in-flight staged transaction drains)
///         + (N−1)·(2·data + memory)   (one hand-over per interferer)
///         + staged            (own broadcast + staged fill)
/// ```
///
/// Under RROF each interfering core appears on the request's critical path
/// at most once (after being served it rotates behind the requester, which
/// always holds a candidate), so the bound charges one staged hand-over per
/// interferer plus the worst in-flight transaction at issue.
///
/// # Examples
///
/// ```
/// use cohort_analysis::wcl_pcc;
/// use cohort_types::LatencyConfig;
///
/// assert_eq!(wcl_pcc(4, &LatencyConfig::paper()).get(), 2 * 104 + 3 * 100);
/// ```
///
/// # Panics
///
/// Panics if `cores` is zero.
#[must_use]
pub fn wcl_pcc(cores: usize, latency: &LatencyConfig) -> Cycles {
    assert!(cores > 0, "a system needs at least one core");
    let staged = latency.request + latency.data * 2 + latency.memory;
    let hop = latency.data * 2 + latency.memory;
    staged + hop * (cores as u64 - 1) + staged
}

/// Per-request worst-case latency of a **critical** core under the
/// PENDULUM baseline (uniform time-based coherence, TDM arbitration over
/// the `n_cr` critical cores, non-critical cores served only in idle slots
/// and never ahead of critical waiters):
///
/// ```text
/// P        = n_cr · SW                       (TDM period)
/// WCL_pend = P + Σ_{j≠i, Cr} (θ + 2·P) + Σ_{j, nCr} (θ + P) + SW
/// ```
///
/// PENDULUM's protocol is *uniform*: every holder — critical or not —
/// keeps a line for the global θ, so each interferer contributes its hold
/// time. Critical interferers cost up to two TDM periods of slot
/// misalignment (their fill slot plus the requester's slot); non-critical
/// interferers cost one period (priority queues let critical requests jump
/// ahead of queued nCr waiters, but a current nCr holder still holds θ).
/// Non-critical cores themselves have **no bound** — PENDULUM's documented
/// limitation — so callers model them with `None`.
///
/// # Examples
///
/// ```
/// use cohort_analysis::wcl_pendulum;
/// use cohort_types::LatencyConfig;
///
/// // 2 critical + 2 non-critical cores, θ = 100.
/// let bound = wcl_pendulum(2, 2, 100, &LatencyConfig::paper());
/// let p = 2 * 54;
/// assert_eq!(bound.get(), p + (100 + 2 * p) + 2 * (100 + p) + 54);
/// ```
///
/// # Panics
///
/// Panics if `critical_cores` is zero.
#[must_use]
pub fn wcl_pendulum(
    critical_cores: usize,
    noncritical_cores: usize,
    theta: u64,
    latency: &LatencyConfig,
) -> Cycles {
    assert!(critical_cores > 0, "PENDULUM needs at least one critical core");
    let sw = effective_slot(latency);
    let period = sw * critical_cores as u64;
    let cr_interference = (Cycles::new(theta) + period * 2) * (critical_cores as u64 - 1);
    let ncr_interference = (Cycles::new(theta) + period) * noncritical_cores as u64;
    period + cr_interference + ncr_interference + sw
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timed(theta: u64) -> TimerValue {
        TimerValue::timed(theta).unwrap()
    }

    #[test]
    fn eq1_matches_paper_structure() {
        let lat = LatencyConfig::paper();
        // Heterogeneous: θ = [300, 20, −1, 20]; bound for c0 counts the
        // timers of c1 and c3 only.
        let timers = [timed(300), timed(20), TimerValue::MSI, timed(20)];
        let expected = 54 + 3 * 54 + (20 + 54) + (20 + 54);
        assert_eq!(wcl_miss(0, &timers, &lat).get(), expected);
        // For c2 (MSI), all three timed interferers count.
        let expected_c2 = 54 + 3 * 54 + (300 + 54) + (20 + 54) + (20 + 54);
        assert_eq!(wcl_miss(2, &timers, &lat).get(), expected_c2);
    }

    #[test]
    fn eq1_excludes_own_timer() {
        let lat = LatencyConfig::paper();
        let timers = [timed(500), TimerValue::MSI];
        assert_eq!(wcl_miss(0, &timers, &lat).get(), 108, "own θ ignored");
        assert_eq!(wcl_miss(1, &timers, &lat).get(), 108 + 500 + 54);
    }

    #[test]
    fn eq1_single_core_is_one_slot() {
        let lat = LatencyConfig::paper();
        assert_eq!(wcl_miss(0, &[TimerValue::MSI], &lat).get(), 54);
    }

    #[test]
    fn memory_latency_inflates_all_slots() {
        let lat = LatencyConfig::paper().with_memory(100);
        let timers = [TimerValue::MSI; 2];
        assert_eq!(wcl_miss(0, &timers, &lat).get(), 2 * 154);
    }

    #[test]
    fn pcc_grows_linearly_with_cores() {
        let lat = LatencyConfig::paper();
        let w2 = wcl_pcc(2, &lat).get();
        let w4 = wcl_pcc(4, &lat).get();
        assert_eq!(w4 - w2, 2 * 100);
        // PCC is never tighter than plain-MSI Eq. 1 (staged hand-overs).
        assert!(w4 > wcl_miss(0, &[TimerValue::MSI; 4], &lat).get());
    }

    #[test]
    fn pendulum_dwarfs_cohort_for_same_timers() {
        // The qualitative Figure-5 relationship: PENDULUM's TDM-period
        // terms dominate CoHoRT's slot terms for identical θ.
        let lat = LatencyConfig::paper();
        let theta = 300;
        let cohort = wcl_miss(0, &[timed(theta); 4], &lat);
        let pendulum = wcl_pendulum(4, 0, theta, &lat);
        assert!(pendulum > cohort, "{pendulum} vs {cohort}");
    }

    #[test]
    fn pendulum_single_critical_has_no_theta_terms() {
        let lat = LatencyConfig::paper();
        let bound = wcl_pendulum(1, 3, 500, &lat);
        // P = SW; no critical interferer; 3 nCr holders (θ + P) + own.
        assert_eq!(bound.get(), 54 + 3 * (500 + 54) + 54);
    }
}
