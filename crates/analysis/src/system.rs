//! Whole-system analyses: one WCML bound per core, for CoHoRT and the
//! evaluation baselines.

use cohort_sim::{CacheGeometry, LlcModel};
use cohort_trace::Workload;
use cohort_types::{Cycles, Error, LatencyConfig, Result, TimerValue};

use crate::{analysis_cache, wcl_miss, wcl_pcc, wcl_pendulum, wcml_snoop, wcml_timed};

/// Analysis result for one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreBound {
    /// Guaranteed hits (0 for cores analysed as all-miss).
    pub hits: u64,
    /// Accesses assumed to miss.
    pub misses: u64,
    /// Per-request worst-case latency, `None` if unbounded (PENDULUM nCr).
    pub wcl: Option<Cycles>,
    /// Whole-task WCML bound, `None` if unbounded.
    pub wcml: Option<Cycles>,
}

impl CoreBound {
    /// Mean analytical per-access latency, if bounded.
    #[must_use]
    pub fn mean_latency(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        match (self.wcml, total) {
            (Some(w), t) if t > 0 => Some(w.get() as f64 / t as f64),
            _ => None,
        }
    }
}

/// Analyses a CoHoRT system: every timed core gets Eq. 2 with its
/// guaranteed hits, every MSI core gets Eq. 3 (all accesses misses); both
/// use the Eq. 1 per-request bound.
///
/// The guaranteed-hit analysis is only preserved under a **perfect LLC**
/// (the paper's analysis configuration): with a finite inclusive LLC,
/// back-invalidation can steal a line before its timer window closes, so
/// `llc = Finite` makes every core fall back to the all-miss Eq. 3 bound
/// (with the memory latency folded into the Eq. 1 slot width).
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] if the timer vector length mismatches
/// the workload's core count.
///
/// # Examples
///
/// ```
/// use cohort_analysis::analyze_cohort;
/// use cohort_sim::{CacheGeometry, LlcModel};
/// use cohort_trace::micro;
/// use cohort_types::{LatencyConfig, TimerValue};
///
/// let w = micro::line_bursts(2, 4, 25);
/// let timers = [TimerValue::timed(500)?, TimerValue::MSI];
/// let bounds = analyze_cohort(
///     &w,
///     &timers,
///     &LatencyConfig::paper(),
///     &CacheGeometry::paper_l1(),
///     &cohort_sim::LlcModel::Perfect,
/// )?;
/// assert!(bounds[0].hits > 0, "the timed core's reuse is guaranteed");
/// assert_eq!(bounds[1].hits, 0, "the MSI core is analysed all-miss");
/// assert!(bounds[0].wcml.unwrap() < bounds[1].wcml.unwrap());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn analyze_cohort(
    workload: &Workload,
    timers: &[TimerValue],
    latency: &LatencyConfig,
    l1: &CacheGeometry,
    llc: &LlcModel,
) -> Result<Vec<CoreBound>> {
    if timers.len() != workload.cores() {
        return Err(Error::InvalidConfig(format!(
            "expected {} timers, got {}",
            workload.cores(),
            timers.len()
        )));
    }
    Ok(workload
        .traces()
        .iter()
        .enumerate()
        .map(|(i, trace)| {
            let wcl = wcl_miss(i, timers, latency);
            if timers[i].is_timed() && llc.is_perfect() {
                // Routed through the process-wide memo: repeated analyses
                // of the same (trace, θ, latency) — e.g. across the jobs
                // of a batch sweep — walk the trace only once.
                let counts =
                    analysis_cache().guaranteed_hits(trace, timers[i], l1, latency.hit, wcl);
                CoreBound {
                    hits: counts.hits,
                    misses: counts.misses,
                    wcl: Some(wcl),
                    wcml: Some(wcml_timed(counts.hits, counts.misses, latency.hit, wcl)),
                }
            } else {
                let accesses = trace.len() as u64;
                CoreBound {
                    hits: 0,
                    misses: accesses,
                    wcl: Some(wcl),
                    wcml: Some(wcml_snoop(accesses, wcl)),
                }
            }
        })
        .collect())
}

/// Analyses the PCC baseline: predictable snooping without timers, so every
/// core is analysed all-miss (Eq. 3) at the PCC per-request bound.
///
/// # Examples
///
/// ```
/// use cohort_analysis::analyze_pcc;
/// use cohort_trace::micro;
/// use cohort_types::LatencyConfig;
///
/// let w = micro::ping_pong(4, 100);
/// let bounds = analyze_pcc(&w, &LatencyConfig::paper());
/// assert!(bounds.iter().all(|b| b.hits == 0 && b.wcml.is_some()));
/// ```
#[must_use]
pub fn analyze_pcc(workload: &Workload, latency: &LatencyConfig) -> Vec<CoreBound> {
    let wcl = wcl_pcc(workload.cores(), latency);
    workload
        .traces()
        .iter()
        .map(|trace| {
            let accesses = trace.len() as u64;
            CoreBound {
                hits: 0,
                misses: accesses,
                wcl: Some(wcl),
                wcml: Some(wcml_snoop(accesses, wcl)),
            }
        })
        .collect()
}

/// Configuration of the PENDULUM baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendulumParams {
    /// Which cores are critical (own TDM slots, priority queues).
    pub critical: Vec<bool>,
    /// The uniform timer value of critical cores (PENDULUM is not
    /// requirement-aware: one θ for everyone).
    pub theta: u64,
}

impl PendulumParams {
    /// Number of critical cores.
    #[must_use]
    pub fn critical_cores(&self) -> usize {
        self.critical.iter().filter(|&&c| c).count()
    }

    /// Number of non-critical cores.
    #[must_use]
    pub fn noncritical_cores(&self) -> usize {
        self.critical.len() - self.critical_cores()
    }
}

/// Analyses the PENDULUM baseline: critical cores are bounded (all
/// accesses assumed misses at the PENDULUM per-request bound — its
/// published analysis predates guaranteed-hit accounting); non-critical
/// cores have **no guarantees** (`wcl`/`wcml` are `None`).
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] if the mask length mismatches the
/// workload or no core is critical.
///
/// # Examples
///
/// ```
/// use cohort_analysis::{analyze_pendulum, PendulumParams};
/// use cohort_trace::micro;
/// use cohort_types::LatencyConfig;
///
/// let w = micro::ping_pong(4, 100);
/// let params = PendulumParams { critical: vec![true, true, false, false], theta: 300 };
/// let bounds = analyze_pendulum(&w, &params, &LatencyConfig::paper())?;
/// assert!(bounds[0].wcml.is_some());
/// assert!(bounds[2].wcml.is_none(), "nCr cores are unbounded");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn analyze_pendulum(
    workload: &Workload,
    params: &PendulumParams,
    latency: &LatencyConfig,
) -> Result<Vec<CoreBound>> {
    if params.critical.len() != workload.cores() {
        return Err(Error::InvalidConfig(format!(
            "critical mask covers {} cores, workload has {}",
            params.critical.len(),
            workload.cores()
        )));
    }
    let n_cr = params.critical_cores();
    if n_cr == 0 {
        return Err(Error::InvalidConfig("PENDULUM needs at least one critical core".into()));
    }
    // Keep the analysis and the realizable hardware in lock-step: a θ that
    // does not fit the 16-bit timer register cannot be configured, so it
    // must not be analysable either.
    let _ = TimerValue::timed(params.theta)?;
    let wcl = wcl_pendulum(n_cr, params.noncritical_cores(), params.theta, latency);
    Ok(workload
        .traces()
        .iter()
        .zip(&params.critical)
        .map(|(trace, &critical)| {
            let accesses = trace.len() as u64;
            if critical {
                CoreBound {
                    hits: 0,
                    misses: accesses,
                    wcl: Some(wcl),
                    wcml: Some(wcml_snoop(accesses, wcl)),
                }
            } else {
                CoreBound { hits: 0, misses: accesses, wcl: None, wcml: None }
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohort_trace::{micro, Kernel, KernelSpec};

    #[test]
    fn cohort_beats_pcc_on_reuse_heavy_workloads() {
        // The Figure-5 relationship: guaranteed hits make CoHoRT's WCML
        // tighter than PCC's all-miss bound on a burst-reuse workload.
        let w = KernelSpec::new(Kernel::Ocean, 4).with_total_requests(8_000).generate();
        let timers = vec![TimerValue::timed(40).unwrap(); 4];
        let lat = LatencyConfig::paper();
        let cohort =
            analyze_cohort(&w, &timers, &lat, &CacheGeometry::paper_l1(), &LlcModel::Perfect)
                .unwrap();
        let pcc = analyze_pcc(&w, &lat);
        for (c, p) in cohort.iter().zip(&pcc) {
            assert!(c.hits > 0, "tight reuse must yield guaranteed hits");
            assert!(c.wcml.unwrap() < p.wcml.unwrap());
        }
    }

    #[test]
    fn cohort_wcml_never_exceeds_pcc_even_without_hits() {
        // Even when a kernel's reuse distance defeats the timers (zero
        // guaranteed hits), CoHoRT's direct hand-overs keep its per-request
        // bound — and hence its WCML — below PCC's staged hand-overs, as
        // long as the timer budget stays modest.
        let w = KernelSpec::new(Kernel::Water, 4).with_total_requests(8_000).generate();
        let timers = vec![TimerValue::timed(20).unwrap(); 4];
        let lat = LatencyConfig::paper();
        let cohort =
            analyze_cohort(&w, &timers, &lat, &CacheGeometry::paper_l1(), &LlcModel::Perfect)
                .unwrap();
        let pcc = analyze_pcc(&w, &lat);
        for (c, p) in cohort.iter().zip(&pcc) {
            assert!(c.wcml.unwrap() <= p.wcml.unwrap());
        }
    }

    #[test]
    fn pendulum_bounds_dwarf_cohort() {
        let w = KernelSpec::new(Kernel::Fft, 4).with_total_requests(8_000).generate();
        let timers = vec![TimerValue::timed(50).unwrap(); 4];
        let lat = LatencyConfig::paper();
        let cohort =
            analyze_cohort(&w, &timers, &lat, &CacheGeometry::paper_l1(), &LlcModel::Perfect)
                .unwrap();
        let pend =
            analyze_pendulum(&w, &PendulumParams { critical: vec![true; 4], theta: 300 }, &lat)
                .unwrap();
        for (c, p) in cohort.iter().zip(&pend) {
            assert!(p.wcml.unwrap() > c.wcml.unwrap() * 2);
        }
    }

    #[test]
    fn mask_validation() {
        let w = micro::ping_pong(2, 2);
        assert!(analyze_pendulum(
            &w,
            &PendulumParams { critical: vec![true], theta: 10 },
            &LatencyConfig::paper()
        )
        .is_err());
        assert!(analyze_pendulum(
            &w,
            &PendulumParams { critical: vec![false, false], theta: 10 },
            &LatencyConfig::paper()
        )
        .is_err());
        let timers = vec![TimerValue::MSI];
        assert!(analyze_cohort(
            &w,
            &timers,
            &LatencyConfig::paper(),
            &CacheGeometry::paper_l1(),
            &LlcModel::Perfect
        )
        .is_err());
    }

    #[test]
    fn mean_latency_reflects_bound() {
        let b = CoreBound {
            hits: 50,
            misses: 50,
            wcl: Some(Cycles::new(100)),
            wcml: Some(Cycles::new(5_050)),
        };
        assert!((b.mean_latency().unwrap() - 50.5).abs() < 1e-12);
        let unbounded = CoreBound { hits: 0, misses: 10, wcl: None, wcml: None };
        assert_eq!(unbounded.mean_latency(), None);
    }
}
