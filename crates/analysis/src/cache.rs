//! Memoized analysis results, shared across threads.
//!
//! The guaranteed-hit analysis walks the whole trace per (θ, latency)
//! query, and the workloads that drive the GA and the batch sweeps ask for
//! the same curves over and over: every GA generation re-evaluates
//! candidate timers against the same traces, every protocol sweep re-runs
//! the θ-saturation search for the same kernels, and parallel sweep
//! workers repeat each other's work. [`AnalysisCache`] memoizes both
//! queries behind `RwLock`ed maps — lookups take the read lock only, so
//! concurrent sweep workers share results without serialising on hits.
//!
//! Keys are *content* keys: the trace enters as its 128-bit
//! [`Trace::fingerprint`], alongside the timer, cache geometry and the two
//! latencies that shape the virtual timeline. Identical inputs therefore
//! hit the cache no matter which `Trace` allocation they arrive through,
//! and the memoized results are bit-identical to the uncached analysis by
//! construction (the cached value *is* the uncached function's output).
//!
//! A process-wide instance is available through [`analysis_cache`]; the
//! optimization engine and `analyze_cohort` route through it by default.

use std::collections::HashMap; // lint:allow(det-unordered) geometry-keyed memo of pure analysis results; lookup-only, never iterated
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

use cohort_sim::CacheGeometry;
use cohort_trace::Trace;
use cohort_types::{Cycles, TimerValue};

use crate::isolation::{guaranteed_hits, saturation_search, HitMissCounts};

/// Key of one guaranteed-hit query: everything the result depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct HitKey {
    trace: u128,
    timer: TimerValue,
    geometry: CacheGeometry,
    hit_latency: Cycles,
    miss_penalty: Cycles,
}

/// Key of one θ-saturation query (no timer: the search spans all of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SatKey {
    trace: u128,
    geometry: CacheGeometry,
    hit_latency: Cycles,
    miss_penalty: Cycles,
}

/// Hit/lookup counters of an [`AnalysisCache`], for observability.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered (hits + misses).
    pub lookups: u64,
    /// Queries answered from the memo without re-running the analysis.
    pub hits: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (0 before the first lookup).
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// A thread-safe memo of guaranteed-hit and θ-saturation results.
///
/// Reads take a shared lock; only a first-time computation takes the write
/// lock, briefly, to publish its result. Two threads racing on the same
/// cold key may both compute it — the function is deterministic, so the
/// duplicate insert is harmless and cheaper than holding a lock across the
/// trace walk.
///
/// The cache is **panic-tolerant**: batch-sweep jobs share it across
/// worker threads and a job that panics (isolated into a `JobError` by the
/// sweep engine) must not take the memo down for later clean runs. Every
/// lock acquisition therefore recovers from poisoning instead of
/// propagating it — sound because values are only ever inserted complete
/// (the analysis runs *outside* the lock and the `Copy` value is written
/// in a single `insert`), so a poisoned guard still protects a consistent
/// map and never exposes a partial result.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    hits: RwLock<HashMap<HitKey, HitMissCounts>>,
    saturation: RwLock<HashMap<SatKey, u64>>,
    lookups: AtomicU64,
    served: AtomicU64,
}

impl AnalysisCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Memoized [`guaranteed_hits`]: identical signature, identical result.
    ///
    /// Fingerprints the trace on every call; when the caller queries the
    /// same trace many times (GA fitness loops), precompute the
    /// fingerprint once and use [`Self::guaranteed_hits_fp`].
    #[must_use]
    pub fn guaranteed_hits(
        &self,
        trace: &Trace,
        timer: TimerValue,
        geometry: &CacheGeometry,
        hit_latency: Cycles,
        miss_penalty: Cycles,
    ) -> HitMissCounts {
        self.guaranteed_hits_fp(
            trace.fingerprint(),
            trace,
            timer,
            geometry,
            hit_latency,
            miss_penalty,
        )
    }

    /// Memoized [`guaranteed_hits`] with a precomputed trace fingerprint.
    ///
    /// The caller vouches that `fingerprint == trace.fingerprint()`; a
    /// stale fingerprint silently returns the *other* trace's counts.
    #[must_use]
    pub fn guaranteed_hits_fp(
        &self,
        fingerprint: u128,
        trace: &Trace,
        timer: TimerValue,
        geometry: &CacheGeometry,
        hit_latency: Cycles,
        miss_penalty: Cycles,
    ) -> HitMissCounts {
        let key =
            HitKey { trace: fingerprint, timer, geometry: *geometry, hit_latency, miss_penalty };
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(&counts) =
            self.hits.read().unwrap_or_else(std::sync::PoisonError::into_inner).get(&key)
        {
            self.served.fetch_add(1, Ordering::Relaxed);
            return counts;
        }
        let counts = guaranteed_hits(trace, timer, geometry, hit_latency, miss_penalty);
        self.hits.write().unwrap_or_else(std::sync::PoisonError::into_inner).insert(key, counts);
        counts
    }

    /// Memoized [`crate::theta_saturation`]: identical signature and result.
    ///
    /// The binary search's individual θ probes go through the guaranteed-
    /// hit memo, so a saturation search also pre-warms the hit curve that
    /// later per-θ queries (GA seeds, sweeps) will ask for.
    #[must_use]
    pub fn theta_saturation(
        &self,
        trace: &Trace,
        geometry: &CacheGeometry,
        hit_latency: Cycles,
        miss_penalty: Cycles,
    ) -> u64 {
        self.theta_saturation_fp(trace.fingerprint(), trace, geometry, hit_latency, miss_penalty)
    }

    /// Memoized θ-saturation with a precomputed trace fingerprint.
    #[must_use]
    pub fn theta_saturation_fp(
        &self,
        fingerprint: u128,
        trace: &Trace,
        geometry: &CacheGeometry,
        hit_latency: Cycles,
        miss_penalty: Cycles,
    ) -> u64 {
        let key = SatKey { trace: fingerprint, geometry: *geometry, hit_latency, miss_penalty };
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(&sat) =
            self.saturation.read().unwrap_or_else(std::sync::PoisonError::into_inner).get(&key)
        {
            self.served.fetch_add(1, Ordering::Relaxed);
            return sat;
        }
        let sat = saturation_search(|theta| {
            self.guaranteed_hits_fp(
                fingerprint,
                trace,
                TimerValue::timed(theta).expect("θ within register range"),
                geometry,
                hit_latency,
                miss_penalty,
            )
            .hits
        });
        self.saturation.write().unwrap_or_else(std::sync::PoisonError::into_inner).insert(key, sat);
        sat
    }

    /// Lookup/hit counters since creation (or the last [`Self::clear`]).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.served.load(Ordering::Relaxed),
        }
    }

    /// Number of memoized entries across both maps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.hits.read().unwrap_or_else(std::sync::PoisonError::into_inner).len()
            + self.saturation.read().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoized entry and resets the counters.
    pub fn clear(&self) {
        self.hits.write().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
        self.saturation.write().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
        self.lookups.store(0, Ordering::Relaxed);
        self.served.store(0, Ordering::Relaxed);
    }
}

/// The process-wide analysis cache.
///
/// Shared by the optimization engine's fitness evaluations, the whole-
/// system analyses and every batch-sweep worker; entries live for the
/// process lifetime (bounded in practice by the handful of traces ×
/// probed θ values a run touches). Call [`AnalysisCache::clear`] to drop
/// them, e.g. between unrelated benchmark phases.
#[must_use]
pub fn analysis_cache() -> &'static AnalysisCache {
    static CACHE: OnceLock<AnalysisCache> = OnceLock::new();
    CACHE.get_or_init(AnalysisCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theta_saturation;
    use cohort_trace::{Kernel, KernelSpec};

    const L1: CacheGeometry = CacheGeometry::paper_l1();
    const HIT: Cycles = Cycles::new(1);
    const PENALTY: Cycles = Cycles::new(216);

    fn kernel_trace() -> Trace {
        let w = KernelSpec::new(Kernel::Fft, 2).with_total_requests(2_000).generate();
        w.traces()[0].clone()
    }

    #[test]
    fn memoized_hits_match_cold_analysis_exactly() {
        let trace = kernel_trace();
        let cache = AnalysisCache::new();
        for theta in [1u64, 24, 300, 4_096, u64::from(u16::MAX)] {
            let timer = TimerValue::timed(theta).unwrap();
            let cold = guaranteed_hits(&trace, timer, &L1, HIT, PENALTY);
            let first = cache.guaranteed_hits(&trace, timer, &L1, HIT, PENALTY);
            let memoized = cache.guaranteed_hits(&trace, timer, &L1, HIT, PENALTY);
            assert_eq!(cold, first);
            assert_eq!(cold, memoized);
        }
        let s = cache.stats();
        assert_eq!(s.lookups, 10);
        assert_eq!(s.hits, 5);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn memoized_saturation_matches_cold_analysis_exactly() {
        let trace = kernel_trace();
        let cache = AnalysisCache::new();
        let cold = theta_saturation(&trace, &L1, HIT, PENALTY);
        assert_eq!(cache.theta_saturation(&trace, &L1, HIT, PENALTY), cold);
        // Second query is a pure memo hit (one lookup, no probes).
        let before = cache.stats().lookups;
        assert_eq!(cache.theta_saturation(&trace, &L1, HIT, PENALTY), cold);
        assert_eq!(cache.stats().lookups, before + 1);
    }

    #[test]
    fn distinct_parameters_get_distinct_entries() {
        let trace = kernel_trace();
        let cache = AnalysisCache::new();
        let t24 = TimerValue::timed(24).unwrap();
        let a = cache.guaranteed_hits(&trace, t24, &L1, HIT, PENALTY);
        let b = cache.guaranteed_hits(&trace, t24, &L1, HIT, Cycles::new(500));
        assert_eq!(a, guaranteed_hits(&trace, t24, &L1, HIT, PENALTY));
        assert_eq!(b, guaranteed_hits(&trace, t24, &L1, HIT, Cycles::new(500)));
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn poisoned_locks_recover_without_caching_partial_results() {
        // A sweep job that panics while touching the memo (isolated into a
        // `JobError` upstream) poisons the RwLocks; later clean runs must
        // still be served exact results — the regression this guards
        // against is the old `.expect("not poisoned")` panic cascade.
        let trace = kernel_trace();
        let cache = AnalysisCache::new();
        let t = TimerValue::timed(24).unwrap();
        let expected = guaranteed_hits(&trace, t, &L1, HIT, PENALTY);
        assert_eq!(cache.guaranteed_hits(&trace, t, &L1, HIT, PENALTY), expected);

        for _ in 0..2 {
            let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _hits = cache.hits.write().unwrap_or_else(std::sync::PoisonError::into_inner);
                let _sat =
                    cache.saturation.write().unwrap_or_else(std::sync::PoisonError::into_inner);
                panic!("job died mid-flight");
            }));
            assert!(unwound.is_err());
        }
        assert!(cache.hits.is_poisoned());
        assert!(cache.saturation.is_poisoned());

        // The memoized entry survives, new entries can still be published,
        // and nothing partial ever appears (the panicking "job" inserted
        // nothing).
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.guaranteed_hits(&trace, t, &L1, HIT, PENALTY), expected);
        let t2 = TimerValue::timed(300).unwrap();
        assert_eq!(
            cache.guaranteed_hits(&trace, t2, &L1, HIT, PENALTY),
            guaranteed_hits(&trace, t2, &L1, HIT, PENALTY)
        );
        assert_eq!(
            cache.theta_saturation(&trace, &L1, HIT, PENALTY),
            theta_saturation(&trace, &L1, HIT, PENALTY)
        );
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_readers_share_one_cache() {
        let trace = kernel_trace();
        let cache = AnalysisCache::new();
        let t = TimerValue::timed(64).unwrap();
        let expected = guaranteed_hits(&trace, t, &L1, HIT, PENALTY);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        assert_eq!(cache.guaranteed_hits(&trace, t, &L1, HIT, PENALTY), expected);
                    }
                });
            }
        });
        assert_eq!(cache.stats().lookups, 32);
        // Every lookup after the racy first computations is a memo hit.
        assert!(cache.stats().hits >= 32 - 4);
    }
}
