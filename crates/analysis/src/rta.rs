//! Fixed-priority response-time analysis (RTA) on top of WCML bounds.
//!
//! The paper takes each task's WCML requirement Γ as an input; in a real
//! integration those budgets come out of a schedulability analysis: a
//! task's worst-case execution time is its compute time plus its
//! worst-case memory latency, and the classic response-time recurrence
//!
//! ```text
//! R_i = C_i + Σ_{j ∈ hp(i)} ⌈R_i / T_j⌉ · C_j,    C_i = compute_i + WCML_i
//! ```
//!
//! decides whether every task meets its deadline. This module closes that
//! loop: plug the Eq. 2/3 WCML bound into `C_i`, run the fixed point, and
//! read off how much memory budget a task could still afford — the Γ that
//! the timer optimizer then enforces.

use cohort_types::{Cycles, Error, Result};

/// A periodic task under fixed-priority preemptive scheduling on one core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeriodicTask {
    /// Task name (reporting only).
    pub name: String,
    /// Period = implicit deadline, in cycles.
    pub period: Cycles,
    /// Pure compute WCET, excluding memory (cycles).
    pub compute: Cycles,
    /// Worst-case memory latency of one job (the Eq. 2/3 bound).
    pub wcml: Cycles,
}

impl PeriodicTask {
    /// Creates a task.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the period is zero.
    pub fn new(name: impl Into<String>, period: u64, compute: u64, wcml: u64) -> Result<Self> {
        if period == 0 {
            return Err(Error::InvalidConfig("a task period must be positive".into()));
        }
        Ok(PeriodicTask {
            name: name.into(),
            period: Cycles::new(period),
            compute: Cycles::new(compute),
            wcml: Cycles::new(wcml),
        })
    }

    /// Whole-job WCET: compute plus worst-case memory latency.
    #[must_use]
    pub fn wcet(&self) -> Cycles {
        self.compute + self.wcml
    }

    /// Utilisation of this task (WCET / period).
    #[must_use]
    pub fn utilisation(&self) -> f64 {
        self.wcet().get() as f64 / self.period.get() as f64
    }
}

/// Computes the worst-case response time of every task, highest priority
/// first (`tasks[0]` preempts everyone). `None` marks a task whose fixed
/// point exceeds its period — unschedulable.
///
/// # Examples
///
/// ```
/// use cohort_analysis::{response_times, PeriodicTask};
///
/// let tasks = vec![
///     PeriodicTask::new("airbag", 1_000, 150, 100)?,     // highest priority
///     PeriodicTask::new("lane-keep", 5_000, 800, 700)?,
///     PeriodicTask::new("logger", 20_000, 9_000, 6_000)?, // does not fit
/// ];
/// let r = response_times(&tasks)?;
/// assert_eq!(r[0], Some(cohort_types::Cycles::new(250)));
/// assert!(r[1].is_some());
/// assert_eq!(r[2], None, "the logger overruns its period");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] if `tasks` is empty.
pub fn response_times(tasks: &[PeriodicTask]) -> Result<Vec<Option<Cycles>>> {
    if tasks.is_empty() {
        return Err(Error::InvalidConfig("RTA needs at least one task".into()));
    }
    let mut results = Vec::with_capacity(tasks.len());
    for (i, task) in tasks.iter().enumerate() {
        let own = task.wcet().get();
        let mut r = own;
        let response = loop {
            if r > task.period.get() {
                break None; // deadline (= period) missed
            }
            let interference: u64 =
                tasks[..i].iter().map(|hp| r.div_ceil(hp.period.get()) * hp.wcet().get()).sum();
            let next = own + interference;
            if next == r {
                break Some(Cycles::new(r));
            }
            r = next;
        };
        results.push(response);
    }
    Ok(results)
}

/// Returns `true` if every task meets its deadline.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] if `tasks` is empty.
pub fn is_schedulable(tasks: &[PeriodicTask]) -> Result<bool> {
    Ok(response_times(tasks)?.iter().all(Option::is_some))
}

/// The largest WCML budget Γ the task at `index` can afford while the task
/// set stays schedulable (all other parameters fixed) — the quantity a
/// system integrator hands to the timer optimizer as the task's
/// requirement. `None` if the set is unschedulable even with zero memory
/// latency for that task.
///
/// # Examples
///
/// ```
/// use cohort_analysis::{max_affordable_wcml, PeriodicTask};
///
/// let mut tasks = vec![
///     PeriodicTask::new("control", 10_000, 2_000, 1_000)?,
///     PeriodicTask::new("vision", 40_000, 10_000, 4_000)?,
/// ];
/// let budget = max_affordable_wcml(&mut tasks, 1)?.expect("schedulable");
/// // The found budget is tight: one more cycle breaks schedulability.
/// assert!(budget.get() >= 4_000, "at least the current WCML fits");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Returns [`Error::UnknownCore`] for an out-of-range index and
/// [`Error::InvalidConfig`] for an empty set.
pub fn max_affordable_wcml(tasks: &mut [PeriodicTask], index: usize) -> Result<Option<Cycles>> {
    if index >= tasks.len() {
        return Err(Error::UnknownCore { index, cores: tasks.len() });
    }
    let original = tasks[index].wcml;
    let feasible = |tasks: &mut [PeriodicTask], wcml: u64| -> Result<bool> {
        tasks[index].wcml = Cycles::new(wcml);
        let ok = is_schedulable(tasks)?;
        Ok(ok)
    };
    let result = (|| -> Result<Option<Cycles>> {
        if !feasible(tasks, 0)? {
            return Ok(None);
        }
        // Budgets are bounded by the task's own period.
        let (mut lo, mut hi) = (0u64, tasks[index].period.get());
        if feasible(tasks, hi)? {
            return Ok(Some(Cycles::new(hi)));
        }
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if feasible(tasks, mid)? {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(Some(Cycles::new(lo)))
    })();
    tasks[index].wcml = original;
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(period: u64, compute: u64, wcml: u64) -> PeriodicTask {
        PeriodicTask::new("t", period, compute, wcml).unwrap()
    }

    #[test]
    fn classic_two_task_example() {
        // R0 = 3; R1 = 5 + ⌈R1/10⌉·3 → 8.
        let tasks = vec![task(10, 2, 1), task(20, 3, 2)];
        let r = response_times(&tasks).unwrap();
        assert_eq!(r[0], Some(Cycles::new(3)));
        assert_eq!(r[1], Some(Cycles::new(8)));
        assert!(is_schedulable(&tasks).unwrap());
    }

    #[test]
    fn interference_crossing_a_period_boundary() {
        // Low task's response crosses the high task's second release.
        let tasks = vec![task(10, 4, 0), task(30, 8, 0)];
        let r = response_times(&tasks).unwrap();
        // R1: 8 + ⌈8/10⌉·4 = 12 → 8 + ⌈12/10⌉·4 = 16 → 8 + 8 = 16 ✓.
        assert_eq!(r[1], Some(Cycles::new(16)));
    }

    #[test]
    fn overload_is_unschedulable() {
        let tasks = vec![task(10, 6, 0), task(10, 6, 0)];
        let r = response_times(&tasks).unwrap();
        assert_eq!(r[0], Some(Cycles::new(6)));
        assert_eq!(r[1], None);
        assert!(!is_schedulable(&tasks).unwrap());
    }

    #[test]
    fn wcml_counts_toward_wcet() {
        let light = vec![task(100, 30, 0), task(100, 30, 0)];
        assert!(is_schedulable(&light).unwrap());
        let heavy = vec![task(100, 30, 30), task(100, 30, 30)];
        assert!(!is_schedulable(&heavy).unwrap(), "memory latency tips the set over");
    }

    #[test]
    fn affordable_budget_is_tight() {
        let mut tasks = vec![task(100, 20, 10), task(400, 60, 50)];
        let budget = max_affordable_wcml(&mut tasks, 1).unwrap().unwrap();
        // Restored state.
        assert_eq!(tasks[1].wcml, Cycles::new(50));
        // The budget is feasible, budget+1 is not.
        tasks[1].wcml = budget;
        assert!(is_schedulable(&tasks).unwrap());
        tasks[1].wcml = budget + Cycles::new(1);
        assert!(!is_schedulable(&tasks).unwrap());
    }

    #[test]
    fn hopeless_task_reports_none() {
        let mut tasks = vec![task(10, 9, 0), task(100, 95, 0)];
        assert_eq!(max_affordable_wcml(&mut tasks, 1).unwrap(), None);
        assert!(max_affordable_wcml(&mut tasks, 5).is_err());
    }

    #[test]
    fn validation() {
        assert!(PeriodicTask::new("x", 0, 1, 1).is_err());
        assert!(response_times(&[]).is_err());
    }

    #[test]
    fn utilisation() {
        let t = task(100, 25, 25);
        assert!((t.utilisation() - 0.5).abs() < 1e-12);
        assert_eq!(t.wcet(), Cycles::new(50));
    }
}
