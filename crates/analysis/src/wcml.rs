//! Whole-task worst-case memory latency (Eq. 2 and Eq. 3).

use cohort_types::Cycles;

/// **Eq. 2** — WCML of a task on a core running time-based coherence:
///
/// ```text
/// WCML = M_hit · L_hit + M_miss · WCL_miss
/// ```
///
/// `hits` and `misses` come from the in-isolation guaranteed-hit analysis
/// ([`crate::guaranteed_hits`]), which is only valid *because* the timers
/// preserve it under contention.
///
/// # Examples
///
/// ```
/// use cohort_analysis::wcml_timed;
/// use cohort_types::Cycles;
///
/// let wcml = wcml_timed(900, 100, Cycles::new(1), Cycles::new(216));
/// assert_eq!(wcml.get(), 900 + 100 * 216);
/// ```
///
/// # Panics
///
/// Panics on arithmetic overflow (requires task sizes far beyond any
/// realistic trace).
#[must_use]
pub fn wcml_timed(hits: u64, misses: u64, hit_latency: Cycles, wcl_miss: Cycles) -> Cycles {
    let hit_part = hit_latency.checked_mul(hits).expect("hit product overflows u64");
    let miss_part = wcl_miss.checked_mul(misses).expect("miss product overflows u64");
    hit_part.checked_add(miss_part).expect("WCML overflows u64")
}

/// **Eq. 3** — WCML of a task on a core running standard MSI snooping:
/// without timers the in-isolation hit analysis is not preserved under
/// contention, so *every* access must be assumed a miss:
///
/// ```text
/// WCML = Λ · WCL_miss
/// ```
///
/// # Examples
///
/// ```
/// use cohort_analysis::wcml_snoop;
/// use cohort_types::Cycles;
///
/// assert_eq!(wcml_snoop(1_000, Cycles::new(216)).get(), 216_000);
/// ```
///
/// # Panics
///
/// Panics on arithmetic overflow.
#[must_use]
pub fn wcml_snoop(accesses: u64, wcl_miss: Cycles) -> Cycles {
    wcl_miss.checked_mul(accesses).expect("WCML overflows u64")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_degenerates_to_eq3_with_zero_hits() {
        let wcl = Cycles::new(300);
        assert_eq!(wcml_timed(0, 500, Cycles::new(1), wcl), wcml_snoop(500, wcl));
    }

    #[test]
    fn hits_tighten_the_bound() {
        let wcl = Cycles::new(300);
        let all_miss = wcml_timed(0, 1000, Cycles::new(1), wcl);
        let mostly_hit = wcml_timed(900, 100, Cycles::new(1), wcl);
        assert!(mostly_hit < all_miss);
        // 900·1 + 100·300 vs 1000·300: 33 900 vs 300 000 ≈ 8.8× tighter.
        assert!(all_miss.get() / mostly_hit.get() >= 8);
    }

    #[test]
    fn empty_task_has_zero_wcml() {
        assert_eq!(wcml_timed(0, 0, Cycles::new(1), Cycles::new(216)), Cycles::ZERO);
        assert_eq!(wcml_snoop(0, Cycles::new(216)), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflow_is_loud() {
        let _ = wcml_snoop(u64::MAX, Cycles::new(2));
    }
}
