//! Worst-case timing analysis for CoHoRT and its baselines.
//!
//! This crate implements the paper's §IV and the static cache analysis its
//! optimization engine (§V) uses as a black box:
//!
//! - [`wcl_miss`] — the per-request worst-case latency bound of **Eq. 1**
//!   for CoHoRT's heterogeneous protocol under RROF arbitration;
//! - [`wcml_timed`] / [`wcml_snoop`] — the whole-task worst-case memory
//!   latency of **Eq. 2** (timed cores, with guaranteed hits) and **Eq. 3**
//!   (MSI cores, all accesses assumed misses);
//! - [`guaranteed_hits`] — the in-isolation static cache analysis that
//!   lower-bounds a timed core's hits: a line is only trusted for θ cycles
//!   after each fill, because an adversarial co-runner can steal it at the
//!   first counter expiry;
//! - [`theta_saturation`] — the sweep that finds the timer value at which a
//!   task's guaranteed hits saturate (the upper bound of the optimization
//!   search box);
//! - [`wcl_pcc`] and [`wcl_pendulum`] — per-request bounds for the two
//!   baselines of the evaluation (Figure 5), derived with the same
//!   methodology against this repository's bus model;
//! - [`analyze_cohort`], [`analyze_pcc`], [`analyze_pendulum`] — whole-
//!   system analyses pairing each core with its WCML bound;
//! - [`AnalysisCache`] / [`analysis_cache`] — a process-wide memo of
//!   guaranteed-hit and θ-saturation results keyed on trace fingerprints,
//!   shared by the optimization engine and parallel sweep workers.
//!
//! # Examples
//!
//! ```
//! use cohort_analysis::wcl_miss;
//! use cohort_types::{LatencyConfig, TimerValue};
//!
//! // Quad-core, c0 timed (θ=300), the rest MSI: Eq. 1 for c1 counts c0's
//! // timer once: SW + 3·SW + (300 + SW) with SW = 54.
//! let timers = [
//!     TimerValue::timed(300)?,
//!     TimerValue::MSI,
//!     TimerValue::MSI,
//!     TimerValue::MSI,
//! ];
//! let bound = wcl_miss(1, &timers, &LatencyConfig::paper());
//! assert_eq!(bound.get(), 54 + 3 * 54 + 300 + 54);
//! # Ok::<(), cohort_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod isolation;
mod rta;
mod system;
mod wcl;
mod wcml;

pub use cache::{analysis_cache, AnalysisCache, CacheStats};
pub use isolation::{guaranteed_hits, theta_saturation, HitMissCounts};
pub use rta::{is_schedulable, max_affordable_wcml, response_times, PeriodicTask};
pub use system::{analyze_cohort, analyze_pcc, analyze_pendulum, CoreBound, PendulumParams};
pub use wcl::{wcl_miss, wcl_pcc, wcl_pendulum};
pub use wcml::{wcml_snoop, wcml_timed};
