//! In-isolation static cache analysis: guaranteed hits under a timer.
//!
//! The optimization engine (§V) needs the Θ → M_hit relationship, which
//! depends on the application's memory behaviour and is therefore computed
//! by walking the task's trace against a model of its private cache. The
//! key soundness argument (from PENDULUM\* [17]): with a timer θ, a line
//! fetched at time `t` cannot be stolen before `t + θ` no matter what the
//! co-runners do, because the countdown counter's first expiry is θ cycles
//! after Load. The analysis therefore trusts a line only inside the window
//! `[fill, fill + θ)` and assumes an adversary steals it at the first
//! expiry; every hit it counts is a hit in *any* concurrent execution.
//!
//! Virtual time advances by the hit latency for guaranteed hits and by a
//! caller-provided `miss_penalty` (the core's per-request WCL bound) for
//! misses — using the *maximal* miss penalty is conservative: real
//! executions run earlier accesses sooner, keeping them inside the window.
//!
//! ## The re-anchoring subtlety
//!
//! When the analysis declares a miss (window expired), it re-anchors the
//! model window at the worst-case refill instant. A *real* run may have hit
//! there instead (no adversary materialised), leaving the real counter
//! anchored at the older fill — so a later access the analysis counts as a
//! guaranteed hit can, in that real run, land just after one of the old
//! anchor's expiry boundaries and really miss. This does not break the
//! Eq. 2 bound: each such divergence starts at an analysis miss that was
//! charged a full `WCL` the real run did not spend, and the real miss it
//! displaces re-synchronises the real anchor, so real misses never
//! outnumber analysis misses. The claim is enforced empirically by the
//! `anchor_divergence_fuzz` example (tens of thousands of adversarial
//! schedules phased against the window boundaries) on top of the general
//! soundness property tests.

use cohort_sim::{CacheGeometry, SetAssocCache};
use cohort_trace::Trace;
use cohort_types::{Cycles, TimerValue};

/// Result of the guaranteed-hit analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct HitMissCounts {
    /// Accesses guaranteed to hit under any co-runner behaviour.
    pub hits: u64,
    /// Accesses that must be assumed misses.
    pub misses: u64,
}

impl HitMissCounts {
    /// Total accesses analysed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }
}

#[derive(Debug, Clone, Copy)]
struct ModelLine {
    /// Virtual fill instant (window anchor).
    fill: Cycles,
    /// Whether the fill granted write permission.
    modified: bool,
}

/// Computes the guaranteed hits and misses of `trace` on a core with timer
/// `timer`, private-cache `geometry`, and the given latencies.
///
/// For θ = −1 (MSI) the analysis returns zero hits — without timers the
/// in-isolation analysis is not preserved under contention (Eq. 3's
/// premise). For θ = 0 likewise: the window is empty.
///
/// # Examples
///
/// ```
/// use cohort_analysis::guaranteed_hits;
/// use cohort_sim::CacheGeometry;
/// use cohort_trace::{Trace, TraceOp};
/// use cohort_types::{Cycles, TimerValue};
///
/// let trace = Trace::from_ops(vec![
///     TraceOp::store(0),
///     TraceOp::store(0).after(5), // within a 100-cycle window: guaranteed
/// ]);
/// let counts = guaranteed_hits(
///     &trace,
///     TimerValue::timed(100)?,
///     &CacheGeometry::paper_l1(),
///     Cycles::new(1),
///     Cycles::new(216),
/// );
/// assert_eq!(counts.hits, 1);
/// assert_eq!(counts.misses, 1);
/// # Ok::<(), cohort_types::Error>(())
/// ```
#[must_use]
pub fn guaranteed_hits(
    trace: &Trace,
    timer: TimerValue,
    geometry: &CacheGeometry,
    hit_latency: Cycles,
    miss_penalty: Cycles,
) -> HitMissCounts {
    let Some(theta) = timer.theta().filter(|&t| t > 0) else {
        // MSI (or a zero window): no guaranteed hits.
        return HitMissCounts { hits: 0, misses: trace.len() as u64 };
    };
    let mut cache: SetAssocCache<ModelLine> = SetAssocCache::new(*geometry);
    let mut counts = HitMissCounts::default();
    let mut now = Cycles::ZERO;
    for op in trace {
        now += op.gap;
        let in_window = cache
            .peek(op.line)
            .map(|l| (now.get() - l.fill.get()) < theta && (!op.kind.is_store() || l.modified));
        if let Some(true) = in_window {
            counts.hits += 1;
            cache.touch(op.line);
            now += hit_latency;
        } else {
            counts.misses += 1;
            now += miss_penalty;
            // Refill: a fresh window anchored at the (worst-case)
            // completion instant, with the permission the request gains.
            cache.insert(op.line, ModelLine { fill: now, modified: op.kind.is_store() });
        }
    }
    counts
}

/// Finds the timer saturation value `θ_sat`: the smallest θ at which the
/// task's guaranteed hits stop growing (the upper bound of the GA search
/// box in §V). The sweep runs in isolation with the uncontended miss
/// penalty, mirroring the paper's "sweeping timer values for `c_i` in
/// isolation".
///
/// Exploits the monotonicity of hits in θ (a longer window can only keep
/// more lines alive) for a logarithmic search; the property-based tests
/// check that monotonicity on random traces.
///
/// # Examples
///
/// ```
/// use cohort_analysis::theta_saturation;
/// use cohort_sim::CacheGeometry;
/// use cohort_trace::{Trace, TraceOp};
/// use cohort_types::Cycles;
///
/// // Revisit after 10 virtual cycles: saturates as soon as θ covers it.
/// let trace = Trace::from_ops(vec![TraceOp::store(0), TraceOp::store(0).after(10)]);
/// let sat = theta_saturation(&trace, &CacheGeometry::paper_l1(), Cycles::new(1), Cycles::new(54));
/// assert!(sat >= 10 && sat <= 16, "saturation near the reuse distance, got {sat}");
/// ```
#[must_use]
pub fn theta_saturation(
    trace: &Trace,
    geometry: &CacheGeometry,
    hit_latency: Cycles,
    miss_penalty: Cycles,
) -> u64 {
    saturation_search(|theta| {
        guaranteed_hits(
            trace,
            TimerValue::timed(theta).expect("θ within register range"),
            geometry,
            hit_latency,
            miss_penalty,
        )
        .hits
    })
}

/// Binary search for the smallest θ whose guaranteed-hit count equals the
/// count at `MAX_THETA`, given a probe function. Shared between the plain
/// [`theta_saturation`] and the memoized variant in [`crate::cache`], so
/// both issue the identical probe sequence (and therefore agree exactly).
pub(crate) fn saturation_search(mut hits_at: impl FnMut(u64) -> u64) -> u64 {
    let max_theta = TimerValue::MAX_THETA;
    let saturated = hits_at(max_theta);
    if hits_at(1) == saturated {
        return 1;
    }
    let (mut lo, mut hi) = (1u64, max_theta);
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if hits_at(mid) == saturated {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohort_trace::TraceOp;

    const L1: CacheGeometry = CacheGeometry::paper_l1();
    const HIT: Cycles = Cycles::new(1);
    const PENALTY: Cycles = Cycles::new(216);

    fn timed(theta: u64) -> TimerValue {
        TimerValue::timed(theta).unwrap()
    }

    #[test]
    fn msi_core_has_no_guaranteed_hits() {
        let trace = Trace::from_ops(vec![TraceOp::store(0); 10]);
        let counts = guaranteed_hits(&trace, TimerValue::MSI, &L1, HIT, PENALTY);
        assert_eq!(counts.hits, 0);
        assert_eq!(counts.misses, 10);
    }

    #[test]
    fn window_expiry_forces_a_refill() {
        // Second access 10 cycles after fill, third 300 cycles later:
        // θ = 100 covers the first revisit only.
        let trace = Trace::from_ops(vec![
            TraceOp::store(0),
            TraceOp::store(0).after(10),
            TraceOp::store(0).after(300),
        ]);
        let counts = guaranteed_hits(&trace, timed(100), &L1, HIT, PENALTY);
        assert_eq!(counts.hits, 1);
        assert_eq!(counts.misses, 2);
    }

    #[test]
    fn store_after_load_is_not_guaranteed() {
        // A load fills with read permission; the store needs an upgrade.
        let trace = Trace::from_ops(vec![
            TraceOp::load(0),
            TraceOp::store(0).after(2),
            TraceOp::load(0).after(2), // hits: the upgrade granted M
        ]);
        let counts = guaranteed_hits(&trace, timed(100), &L1, HIT, PENALTY);
        assert_eq!(counts.hits, 1);
        assert_eq!(counts.misses, 2);
    }

    #[test]
    fn conflict_evictions_are_respected() {
        // Lines 0 and 256 conflict in the direct-mapped L1.
        let trace =
            Trace::from_ops(vec![TraceOp::load(0), TraceOp::load(256), TraceOp::load(0).after(1)]);
        let counts = guaranteed_hits(&trace, timed(60_000), &L1, HIT, PENALTY);
        assert_eq!(counts.hits, 0);
        assert_eq!(counts.misses, 3);
    }

    #[test]
    fn hits_monotone_in_theta_on_a_kernel() {
        let w = cohort_trace::KernelSpec::new(cohort_trace::Kernel::Fft, 2)
            .with_total_requests(4_000)
            .generate();
        let trace = &w.traces()[0];
        let mut previous = 0;
        for theta in [1u64, 4, 16, 64, 256, 1024, 4096, 65_535] {
            let h = guaranteed_hits(trace, timed(theta), &L1, HIT, PENALTY).hits;
            assert!(h >= previous, "θ={theta}: {h} < {previous}");
            previous = h;
        }
        assert!(previous > 0, "a reuse-heavy kernel must have guaranteed hits");
    }

    #[test]
    fn saturation_is_a_fixed_point() {
        let w = cohort_trace::KernelSpec::new(cohort_trace::Kernel::Water, 2)
            .with_total_requests(2_000)
            .generate();
        let trace = &w.traces()[0];
        let sat = theta_saturation(trace, &L1, HIT, Cycles::new(54));
        let at_sat = guaranteed_hits(trace, timed(sat), &L1, HIT, Cycles::new(54)).hits;
        let beyond =
            guaranteed_hits(trace, timed(TimerValue::MAX_THETA), &L1, HIT, Cycles::new(54)).hits;
        assert_eq!(at_sat, beyond);
        if sat > 1 {
            let below = guaranteed_hits(trace, timed(sat - 1), &L1, HIT, Cycles::new(54)).hits;
            assert!(below < at_sat, "θ_sat must be minimal");
        }
    }

    #[test]
    fn total_is_preserved() {
        let trace = Trace::from_ops(vec![TraceOp::load(0); 7]);
        let counts = guaranteed_hits(&trace, timed(3), &L1, HIT, PENALTY);
        assert_eq!(counts.total(), 7);
    }

    #[test]
    fn larger_penalty_never_increases_hits() {
        let w = cohort_trace::KernelSpec::new(cohort_trace::Kernel::Lu, 2)
            .with_total_requests(3_000)
            .generate();
        let trace = &w.traces()[0];
        let fast = guaranteed_hits(trace, timed(200), &L1, HIT, Cycles::new(54)).hits;
        let slow = guaranteed_hits(trace, timed(200), &L1, HIT, Cycles::new(500)).hits;
        assert!(slow <= fast, "a larger miss penalty stretches the timeline");
    }
}
