//! Worker shards: claim jobs, execute them deterministically, persist the
//! payload, complete the claim.
//!
//! Execution is wrapped in `catch_unwind`, so a job that panics — or a
//! chaos hook that simulates a worker killed mid-job — simply abandons
//! the claim: the lease expires, the queue re-queues the job at the next
//! epoch, and a sibling shard recomputes the bit-identical payload.
//! GA jobs additionally stream checkpoints into the store, so a re-claim
//! resumes mid-run instead of restarting from generation 0 (the resume is
//! bit-identical to the uninterrupted run, per `cohort-optim`'s
//! checkpoint contract).

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde_json::{json, Value};

use cohort_types::Fingerprint;

use cohort::{ExperimentJob, ExperimentOutcome, Sweep};
use cohort_optim::{
    GaCheckpoint, GaConfig, GaObserver, GaOutcome, GaRun, GenerationReport, GeneticAlgorithm,
    TimerProblem,
};
use cohort_types::{Cycles, Error, Result};

use crate::queue::{Claim, JobQueue};
use crate::spec::{timers_to_json, JobSpec};
use crate::store::ResultStore;

pub use cohort_types::WorkerId;

/// How often (in generations) GA jobs snapshot a resume point into the
/// store.
const CHECKPOINT_EVERY: usize = 4;

/// Per-shard execution counters.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Jobs this shard executed and completed.
    pub executed: AtomicU64,
    /// Claims answered from the store without executing (a previous epoch
    /// or fleet run had already computed the payload).
    pub served: AtomicU64,
    /// Completions rejected because the shard's lease had expired.
    pub stale: AtomicU64,
    /// GA claims that resumed from a store checkpoint.
    pub resumed: AtomicU64,
}

/// One worker shard of the fleet: a claim/execute/complete loop over the
/// shared queue and store.
#[derive(Debug)]
pub struct WorkerShard {
    id: WorkerId,
    queue: Arc<JobQueue>,
    store: Arc<ResultStore>,
    stats: Arc<ShardStats>,
    crash_after_generations: Option<usize>,
    crash_before_complete: u64,
    crashed: AtomicU64,
    poison: Arc<BTreeSet<Fingerprint>>,
}

impl WorkerShard {
    /// Creates a shard over the fleet's shared queue and store.
    #[must_use]
    pub fn new(id: WorkerId, queue: Arc<JobQueue>, store: Arc<ResultStore>) -> Self {
        WorkerShard {
            id,
            queue,
            store,
            stats: Arc::new(ShardStats::default()),
            crash_after_generations: None,
            crash_before_complete: 0,
            crashed: AtomicU64::new(0),
            poison: Arc::new(BTreeSet::new()),
        }
    }

    /// Chaos hook: jobs in this set panic on every execution attempt, on
    /// every shard — the poison-job model. No worker can ever complete
    /// them, so their leases keep expiring until the queue's attempt
    /// budget quarantines them.
    #[must_use]
    pub fn poison_jobs(mut self, poison: Arc<BTreeSet<Fingerprint>>) -> Self {
        self.poison = poison;
        self
    }

    /// Chaos hook: panic (simulating a kill) after a GA job's `n`-th
    /// generation — *after* the generation's checkpoint was written, so
    /// the re-claimer has a resume point. Used by the kill-recovery tests
    /// and bench.
    #[must_use]
    pub fn crash_after_generations(mut self, n: usize) -> Self {
        self.crash_after_generations = Some(n);
        self
    }

    /// Chaos hook: the first `n` jobs this shard executes are abandoned
    /// right before `complete` — the work is done and stored, but the
    /// claim is never released, exactly like a worker killed at the worst
    /// moment.
    #[must_use]
    pub fn crash_before_complete(mut self, n: u64) -> Self {
        self.crash_before_complete = n;
        self
    }

    /// This shard's counters (shared; survives [`WorkerShard::run`]).
    #[must_use]
    pub fn stats(&self) -> Arc<ShardStats> {
        Arc::clone(&self.stats)
    }

    /// The claim/execute/complete loop; returns when the queue is closed
    /// and drained.
    pub fn run(&self) {
        while let Some(claim) = self.queue.claim(self.id) {
            // A store hit means an earlier epoch (or a previous fleet run
            // sharing the persistent store) already computed this payload:
            // complete without re-executing. A *corrupt* hit is moved to
            // its forensic sidecar and the claim falls through to
            // execution — the self-healing repair path.
            match self.store.get(claim.fingerprint) {
                Ok(Some(_)) => {
                    self.finish(&claim, &self.stats.served);
                    continue;
                }
                Ok(None) => {}
                Err(_corrupt) => {
                    // The put below re-derives the payload; the store
                    // remembers the quarantine and verifies the repair's
                    // bit-identity itself.
                    self.store.quarantine_corrupt(claim.fingerprint);
                }
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| self.execute(&claim)));
            match outcome {
                Ok(payload) => {
                    if self.store.put(claim.fingerprint, payload).is_err() {
                        // Persistence failed; abandon so a sibling retries.
                        continue;
                    }
                    if self.crashed.load(Ordering::Relaxed) < self.crash_before_complete {
                        self.crashed.fetch_add(1, Ordering::Relaxed);
                        continue; // killed between store and complete
                    }
                    self.finish(&claim, &self.stats.executed);
                }
                Err(_panic) => {
                    // Killed (or genuinely panicked) mid-job: abandon the
                    // claim; the lease expires and the job is re-claimed.
                }
            }
        }
    }

    fn finish(&self, claim: &Claim, counter: &AtomicU64) {
        match self.queue.complete(claim.fingerprint, claim.epoch) {
            Ok(()) => {
                self.store.clear_checkpoint(claim.fingerprint);
                counter.fetch_add(1, Ordering::Relaxed);
            }
            Err(Error::LeaseExpired { .. }) => {
                // Our lease ran out while we computed; the re-claimer owns
                // the job now. Determinism makes the loss cosmetic: the
                // payload we stored is the payload they will store.
                self.stats.stale.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {}
        }
    }

    /// Executes one claim to its payload. Job failures are *results* (an
    /// `{"error": ...}` payload), not retries: a deterministic job that
    /// failed once will fail identically forever.
    fn execute(&self, claim: &Claim) -> Value {
        assert!(
            !self.poison.contains(&claim.fingerprint),
            "chaos: poison job {} crashed worker {:?}",
            claim.fingerprint,
            self.id
        );
        let result = match claim.spec.as_ref() {
            JobSpec::Experiment { spec, protocol, workload } => {
                execute_experiment(spec, protocol, workload)
            }
            JobSpec::Optimize { workload, timed, ga } => {
                self.execute_ga(claim, workload, timed, ga)
            }
            JobSpec::Certify { batch } => batch.run(),
        };
        result.unwrap_or_else(|e| json!({ "error": e.to_string() }))
    }

    fn execute_ga(
        &self,
        claim: &Claim,
        workload: &cohort_trace::Workload,
        timed: &[(usize, Option<u64>)],
        ga: &GaConfig,
    ) -> Result<Value> {
        let mut builder = TimerProblem::builder(workload);
        for &(core, requirement) in timed {
            builder = builder.timed(core, requirement.map(Cycles::new));
        }
        let problem = builder.build()?;
        let sink = CheckpointSink {
            store: self.store.as_ref(),
            key: claim,
            crash_after: self.crash_after_generations,
        };
        let outcome = match self.store.checkpoint(claim.fingerprint) {
            Some(doc) => {
                // A previous epoch died mid-run; resume from its snapshot
                // (bit-identical to the uninterrupted run).
                self.stats.resumed.fetch_add(1, Ordering::Relaxed);
                let checkpoint = GaCheckpoint::from_json_value(&doc)?;
                GeneticAlgorithm::new(problem.search_space(), ga.clone()).resume_observed(
                    &checkpoint,
                    &sink,
                    |genes| problem.fitness(genes),
                )?
            }
            None => GaRun::new(&problem).config(ga).observer(&sink).run(),
        };
        Ok(ga_payload(&problem, &outcome))
    }
}

/// Streams GA checkpoints into the store so lease re-claims resume
/// mid-run. Doubles as the kill-site of the chaos hook: the panic fires
/// *after* the checkpoint write, mimicking a worker killed between two
/// generations.
struct CheckpointSink<'a> {
    store: &'a ResultStore,
    key: &'a Claim,
    crash_after: Option<usize>,
}

impl GaObserver for CheckpointSink<'_> {
    fn generation_finished(&self, report: &GenerationReport<'_>) {
        if report.generation.is_multiple_of(CHECKPOINT_EVERY) {
            self.store.put_checkpoint(self.key.fingerprint, report.checkpoint().to_json_value());
        }
        assert!(
            self.crash_after != Some(report.generation),
            "chaos: worker killed after generation {}",
            report.generation
        );
    }
}

/// Runs one experiment job through the sweep engine's single entry point
/// (pool of 1 — the fleet's parallelism lives across shards, not inside a
/// job) and serializes its outcome.
///
/// # Errors
///
/// Propagates the simulation's own error (e.g. an invalid spec or a
/// detected deadlock) — deterministic, so the fleet stores it as an
/// error payload rather than retrying.
pub fn execute_experiment(
    spec: &cohort::SystemSpec,
    protocol: &cohort::Protocol,
    workload: &Arc<cohort_trace::Workload>,
) -> Result<Value> {
    let report = Sweep::builder()
        .job(ExperimentJob::new(spec.clone(), protocol.clone(), Arc::clone(workload)))
        .workers(1)
        .build()
        .run();
    let outcome = report.into_outcomes()?.pop().expect("one job yields one outcome");
    Ok(outcome_payload(&outcome))
}

/// Canonical JSON payload of an experiment outcome — the stored,
/// fingerprinted representation whose bit-identity the kill-recovery
/// guarantees are stated over.
#[must_use]
pub fn outcome_payload(outcome: &ExperimentOutcome) -> Value {
    let cores: Vec<Value> = outcome
        .stats
        .cores
        .iter()
        .map(|c| {
            json!({
                "hits": c.hits,
                "misses": c.misses,
                "upgrades": c.upgrades,
                "total_latency": c.total_latency.get(),
                "worst_request": c.worst_request.get(),
                "finish": c.finish.get(),
            })
        })
        .collect();
    let bounds: Value = match &outcome.bounds {
        None => Value::Null,
        Some(bounds) => Value::Array(
            bounds
                .iter()
                .map(|b| {
                    json!({
                        "hits": b.hits,
                        "misses": b.misses,
                        "wcl": b.wcl.map(Cycles::get),
                        "wcml": b.wcml.map(Cycles::get),
                    })
                })
                .collect(),
        ),
    };
    json!({
        "kind": "experiment",
        "protocol": outcome.protocol.slug(),
        "workload": outcome.workload.clone(),
        "execution_time": outcome.stats.execution_time().get(),
        "cycles": outcome.stats.cycles.get(),
        "bus_busy": outcome.stats.bus_busy.get(),
        "broadcasts": outcome.stats.broadcasts,
        "transfers": outcome.stats.transfers,
        "cores": cores,
        "bounds": bounds,
    })
}

/// Canonical JSON payload of a GA outcome.
#[must_use]
pub fn ga_payload(problem: &TimerProblem<'_>, outcome: &GaOutcome) -> Value {
    let best_fitness =
        if outcome.best_fitness.is_finite() { json!(outcome.best_fitness) } else { json!("inf") };
    json!({
        "kind": "optimize",
        "best": outcome.best.clone(),
        "best_fitness": best_fitness,
        "timers": timers_to_json(&problem.timers_from_genes(&outcome.best)),
        "generations": outcome.history.len(),
        "evaluations": outcome.evaluations,
        "cache_hits": outcome.cache_hits,
        "stop": format!("{:?}", outcome.stop),
    })
}
