//! The fleet job queue: dedup-on-submit, epoch/lease claim coordination
//! and completion tracking.
//!
//! Claims are *leases*, not locks: a worker that claims a job promises to
//! complete it before the lease runs out. A crashed or killed worker
//! simply stops renewing its promise — the next claimer sweeps the
//! expired lease, advances the job's [`Epoch`] and re-claims it. The late
//! completion (if the "dead" worker was merely slow) carries the old
//! epoch and is rejected with [`Error::LeaseExpired`]; determinism makes
//! the rejection lossless, because the re-claimer recomputes the
//! bit-identical result.
//!
//! Time is injected ([`Clock`]): deadlines are nanosecond ticks on
//! whatever monotonic axis the clock provides. Production uses
//! [`SystemClock`]; tests and the loom models drive a
//! [`crate::TestClock`] by hand, so every expiry path is exercised
//! deterministically. The sync primitives come from [`crate::sync`], so
//! `--cfg loom` swaps them for loom's modeled versions.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, PoisonError};
use std::time::Duration;

use cohort_types::{Epoch, Error, Fingerprint, Result, WorkerId};

use crate::clock::{Clock, SystemClock};
use crate::spec::JobSpec;
use crate::sync::{Condvar, Mutex, MutexGuard};

/// One claimed job, as handed to a worker shard.
#[derive(Debug, Clone)]
pub struct Claim {
    /// The job's content-address (also its result-store key).
    pub fingerprint: Fingerprint,
    /// What to execute.
    pub spec: Arc<JobSpec>,
    /// The claim generation; [`JobQueue::complete`] validates it.
    pub epoch: Epoch,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Pending,
    Claimed { worker: WorkerId, deadline_ns: u64 },
    Done,
}

struct JobState {
    spec: Arc<JobSpec>,
    epoch: Epoch,
    status: Status,
}

#[derive(Default)]
struct QueueState {
    jobs: BTreeMap<Fingerprint, JobState>,
    pending: VecDeque<Fingerprint>,
    closed: bool,
    submitted: u64,
    deduplicated: u64,
    reclaims: u64,
    stale_completions: u64,
}

/// Counters describing what the queue has seen so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Submissions accepted (including duplicates).
    pub submitted: u64,
    /// Submissions answered by an already-known job (dedup-on-submit).
    pub deduplicated: u64,
    /// Expired leases swept and re-queued at a new epoch.
    pub reclaims: u64,
    /// Completions rejected because their lease had expired.
    pub stale_completions: u64,
}

/// The shared job queue of one fleet.
pub struct JobQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    lease_ns: u64,
    clock: Arc<dyn Clock>,
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.lock();
        f.debug_struct("JobQueue")
            .field("jobs", &st.jobs.len())
            .field("pending", &st.pending.len())
            .field("lease_ns", &self.lease_ns)
            .finish_non_exhaustive()
    }
}

impl JobQueue {
    /// Creates a queue whose claims lease for `lease` (clamped to at
    /// least one millisecond), timed by the host's monotonic clock.
    #[must_use]
    pub fn new(lease: Duration) -> Self {
        Self::with_clock(lease, Arc::new(SystemClock::new()))
    }

    /// Creates a queue timed by an injected [`Clock`] — the deterministic
    /// entry point for tests and loom models.
    #[must_use]
    pub fn with_clock(lease: Duration, clock: Arc<dyn Clock>) -> Self {
        let lease = lease.max(Duration::from_millis(1));
        JobQueue {
            state: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
            lease_ns: u64::try_from(lease.as_nanos()).unwrap_or(u64::MAX),
            clock,
        }
    }

    // Chaos survival: a simulated worker kill is a panic; the queue must
    // keep serving its siblings even if one died near a lock.
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configured lease duration.
    #[must_use]
    pub fn lease(&self) -> Duration {
        Duration::from_nanos(self.lease_ns)
    }

    /// Submits `spec`, deduplicating on its fingerprint: a job already
    /// queued, running or done absorbs the submission without a second
    /// execution. Returns the fingerprint and whether this submission was
    /// the first of its kind.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the queue is closed.
    pub fn submit(&self, spec: JobSpec) -> Result<(Fingerprint, bool)> {
        let fingerprint = spec.fingerprint();
        let mut st = self.lock();
        if st.closed {
            return Err(Error::InvalidConfig("the fleet is shut down".into()));
        }
        st.submitted += 1;
        if st.jobs.contains_key(&fingerprint) {
            st.deduplicated += 1;
            return Ok((fingerprint, false));
        }
        st.jobs.insert(
            fingerprint,
            JobState { spec: Arc::new(spec), epoch: Epoch::FIRST, status: Status::Pending },
        );
        st.pending.push_back(fingerprint);
        self.cv.notify_all();
        Ok((fingerprint, true))
    }

    /// Submits a spec whose payload the result store already holds: the
    /// job is registered as done immediately and never enqueued, so no
    /// worker can claim it (a duplicate of an existing job is plain
    /// dedup, whatever that job's state).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the queue is closed.
    pub fn submit_resolved(&self, spec: JobSpec) -> Result<(Fingerprint, bool)> {
        let fingerprint = spec.fingerprint();
        let mut st = self.lock();
        if st.closed {
            return Err(Error::InvalidConfig("the fleet is shut down".into()));
        }
        st.submitted += 1;
        if st.jobs.contains_key(&fingerprint) {
            st.deduplicated += 1;
            return Ok((fingerprint, false));
        }
        st.jobs.insert(
            fingerprint,
            JobState { spec: Arc::new(spec), epoch: Epoch::FIRST, status: Status::Done },
        );
        self.cv.notify_all();
        Ok((fingerprint, true))
    }

    /// Moves every expired lease back to pending at the next epoch.
    /// `jobs` is a `BTreeMap`, so the sweep (and therefore the re-queue
    /// order of simultaneously expired leases) is deterministic.
    fn sweep_expired(st: &mut QueueState, now_ns: u64) {
        let mut expired: Vec<Fingerprint> = Vec::new();
        for (fp, job) in &st.jobs {
            if let Status::Claimed { deadline_ns, .. } = job.status {
                if deadline_ns <= now_ns {
                    expired.push(*fp);
                }
            }
        }
        for fp in expired {
            let job = st.jobs.get_mut(&fp).expect("swept job exists");
            job.epoch = job.epoch.next();
            job.status = Status::Pending;
            st.pending.push_back(fp);
            st.reclaims += 1;
        }
    }

    /// Claims the front pending job for `worker` under an already-held
    /// lock, sweeping expired leases first.
    fn claim_locked(&self, st: &mut QueueState, worker: WorkerId) -> Option<Claim> {
        let now_ns = self.clock.now_ns();
        Self::sweep_expired(st, now_ns);
        let fingerprint = st.pending.pop_front()?;
        let job = st.jobs.get_mut(&fingerprint).expect("pending job exists");
        job.status = Status::Claimed { worker, deadline_ns: now_ns.saturating_add(self.lease_ns) };
        Some(Claim { fingerprint, spec: Arc::clone(&job.spec), epoch: job.epoch })
    }

    /// Claims a job for `worker` if one is claimable *right now* (after
    /// sweeping expired leases), without blocking. The non-blocking core
    /// of [`JobQueue::claim`], and the surface the loom models drive.
    #[must_use]
    pub fn try_claim(&self, worker: WorkerId) -> Option<Claim> {
        let mut st = self.lock();
        self.claim_locked(&mut st, worker)
    }

    /// Blocks until a job is claimable (or the queue is closed and
    /// drained), then claims it for `worker`. Expired leases of crashed
    /// workers are swept and re-claimed here, at the advanced epoch.
    ///
    /// Returns `None` when the queue is closed and no work remains — the
    /// worker shard's signal to exit.
    #[must_use]
    pub fn claim(&self, worker: WorkerId) -> Option<Claim> {
        let mut st = self.lock();
        loop {
            if let Some(claim) = self.claim_locked(&mut st, worker) {
                return Some(claim);
            }
            let in_flight = st.jobs.values().any(|j| matches!(j.status, Status::Claimed { .. }));
            if st.closed && !in_flight {
                // Closed, nothing pending, nothing that could still expire
                // back into pending: drained.
                self.cv.notify_all();
                return None;
            }
            st = self.wait_for_change(st);
        }
    }

    /// Parks until the queue is notified — or, outside loom, until it is
    /// time to sweep the earliest lease (the host clock keeps moving on
    /// its own, so the wait must poll).
    #[cfg(not(loom))]
    fn wait_for_change<'q>(&'q self, st: MutexGuard<'q, QueueState>) -> MutexGuard<'q, QueueState> {
        let now_ns = self.clock.now_ns();
        let timeout = st
            .jobs
            .values()
            .filter_map(|j| match j.status {
                Status::Claimed { deadline_ns, .. } => {
                    Some(Duration::from_nanos(deadline_ns.saturating_sub(now_ns)))
                }
                _ => None,
            })
            .min()
            .unwrap_or(Duration::from_nanos(self.lease_ns))
            .max(Duration::from_millis(1));
        let (guard, _) = self.cv.wait_timeout(st, timeout).unwrap_or_else(PoisonError::into_inner);
        guard
    }

    /// Under loom there is no timed wait (and no self-moving clock):
    /// block until another modeled thread notifies.
    #[cfg(loom)]
    fn wait_for_change<'q>(&'q self, st: MutexGuard<'q, QueueState>) -> MutexGuard<'q, QueueState> {
        self.cv.wait(st).unwrap_or_else(PoisonError::into_inner)
    }

    /// Records `fingerprint` as completed by the claim taken at `epoch`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LeaseExpired`] if the job has since been swept to
    /// a newer epoch — the caller's lease ran out and its (already
    /// computed) result is discarded as stale. Returns
    /// [`Error::InvalidConfig`] for a fingerprint the queue never issued.
    pub fn complete(&self, fingerprint: Fingerprint, epoch: Epoch) -> Result<()> {
        let mut st = self.lock();
        let job = st.jobs.get_mut(&fingerprint).ok_or_else(|| {
            Error::InvalidConfig(format!("completion for unknown job {fingerprint}"))
        })?;
        if job.epoch != epoch {
            let current = job.epoch.get();
            st.stale_completions += 1;
            return Err(Error::LeaseExpired { held: epoch.get(), current });
        }
        job.status = Status::Done;
        st.pending.retain(|fp| *fp != fingerprint);
        self.cv.notify_all();
        Ok(())
    }

    /// Blocks until `fingerprint` completes. Returns `false` if the queue
    /// closed (and drained) without the job ever completing — only
    /// possible for fingerprints that were never submitted.
    #[must_use]
    pub fn wait_done(&self, fingerprint: Fingerprint) -> bool {
        let mut st = self.lock();
        loop {
            match st.jobs.get(&fingerprint) {
                Some(job) if job.status == Status::Done => return true,
                None if st.closed => return false,
                Some(_) | None => {}
            }
            #[cfg(not(loom))]
            {
                let (guard, _) = self
                    .cv
                    .wait_timeout(st, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
            #[cfg(loom)]
            {
                st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Closes the queue: no new submissions; workers drain the remaining
    /// jobs (including leases that still have to expire) and then exit.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }

    /// Current counter snapshot.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        let st = self.lock();
        QueueStats {
            submitted: st.submitted,
            deduplicated: st.deduplicated,
            reclaims: st.reclaims,
            stale_completions: st.stale_completions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;
    use cohort::Protocol;
    use cohort_trace::micro;
    use cohort_types::Criticality;

    fn job(n: usize) -> JobSpec {
        let mut b = cohort::SystemSpec::builder();
        for _ in 0..2 {
            b = b.core(Criticality::new(1).unwrap());
        }
        JobSpec::Experiment {
            spec: b.build().unwrap(),
            protocol: Protocol::Msi,
            workload: Arc::new(micro::ping_pong(2, n)),
        }
    }

    fn clocked(lease: Duration) -> (JobQueue, Arc<TestClock>) {
        let clock = Arc::new(TestClock::new());
        (JobQueue::with_clock(lease, Arc::clone(&clock) as Arc<dyn Clock>), clock)
    }

    #[test]
    fn duplicate_submissions_collapse_to_one_job() {
        let q = JobQueue::new(Duration::from_secs(10));
        let (fp1, fresh1) = q.submit(job(4)).unwrap();
        let (fp2, fresh2) = q.submit(job(4)).unwrap();
        assert_eq!(fp1, fp2);
        assert!(fresh1 && !fresh2);
        let stats = q.stats();
        assert_eq!((stats.submitted, stats.deduplicated), (2, 1));
        // Only one claim comes out.
        let claim = q.claim(WorkerId::new(0)).expect("one job pending");
        assert_eq!(claim.epoch, Epoch::FIRST);
        q.complete(claim.fingerprint, claim.epoch).unwrap();
        assert!(q.wait_done(fp1));
        q.close();
        assert!(q.claim(WorkerId::new(0)).is_none(), "drained queue yields no claims");
    }

    #[test]
    fn expired_leases_are_reclaimed_at_the_next_epoch() {
        let (q, clock) = clocked(Duration::from_millis(20));
        let (fp, _) = q.submit(job(6)).unwrap();
        let dead = q.claim(WorkerId::new(0)).unwrap();
        assert_eq!(dead.epoch, Epoch::FIRST);
        clock.advance(Duration::from_millis(40));
        // The next claimer sweeps the expired lease and re-claims.
        let alive = q.claim(WorkerId::new(1)).unwrap();
        assert_eq!(alive.fingerprint, fp);
        assert_eq!(alive.epoch, Epoch::FIRST.next());
        assert_eq!(q.stats().reclaims, 1);
        // The re-claimer's completion lands; the dead worker's is stale.
        q.complete(fp, alive.epoch).unwrap();
        let err = q.complete(fp, dead.epoch).unwrap_err();
        assert_eq!(err, Error::LeaseExpired { held: 1, current: 2 });
        assert_eq!(q.stats().stale_completions, 1);
    }

    #[test]
    fn stale_completion_before_reclaim_is_also_rejected() {
        let (q, clock) = clocked(Duration::from_millis(10));
        let (fp, _) = q.submit(job(8)).unwrap();
        let dead = q.claim(WorkerId::new(0)).unwrap();
        clock.advance(Duration::from_millis(25));
        // Another claim sweeps the lease (epoch 2) even though it claims
        // the same job; the original epoch-1 completion must be refused.
        let second = q.claim(WorkerId::new(1)).unwrap();
        assert!(matches!(q.complete(fp, dead.epoch), Err(Error::LeaseExpired { .. })));
        q.complete(fp, second.epoch).unwrap();
    }

    #[test]
    fn unexpired_lease_is_not_swept() {
        let (q, clock) = clocked(Duration::from_millis(20));
        let (fp, _) = q.submit(job(7)).unwrap();
        let first = q.claim(WorkerId::new(0)).unwrap();
        clock.advance(Duration::from_millis(19));
        // One tick short of the deadline: nothing to claim, no reclaim.
        assert!(q.try_claim(WorkerId::new(1)).is_none());
        assert_eq!(q.stats().reclaims, 0);
        clock.advance(Duration::from_millis(1));
        let swept = q.try_claim(WorkerId::new(1)).expect("lease expired on the tick");
        assert_eq!(swept.fingerprint, fp);
        assert_eq!(q.stats().reclaims, 1);
        drop(first);
    }

    #[test]
    fn try_claim_is_nonblocking() {
        let q = JobQueue::new(Duration::from_secs(10));
        assert!(q.try_claim(WorkerId::new(0)).is_none(), "empty queue returns immediately");
        let (fp, _) = q.submit(job(9)).unwrap();
        let claim = q.try_claim(WorkerId::new(0)).expect("pending job claimable");
        assert_eq!(claim.fingerprint, fp);
        assert!(q.try_claim(WorkerId::new(1)).is_none(), "claimed job is not re-claimable");
    }

    #[test]
    fn closed_queue_rejects_submissions_and_drains() {
        let q = JobQueue::new(Duration::from_secs(10));
        let (fp, _) = q.submit(job(3)).unwrap();
        q.close();
        assert!(q.submit(job(5)).is_err());
        // Pending work is still handed out after close.
        let claim = q.claim(WorkerId::new(0)).expect("pending job survives close");
        q.complete(fp, claim.epoch).unwrap();
        assert!(q.claim(WorkerId::new(0)).is_none());
        assert!(q.wait_done(fp));
        assert!(!q.wait_done(Fingerprint::from_raw(0x1234)), "unknown job after close");
    }
}
