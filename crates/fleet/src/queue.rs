//! The fleet job queue: dedup-on-submit, epoch/lease claim coordination
//! and completion tracking.
//!
//! Claims are *leases*, not locks: a worker that claims a job promises to
//! complete it before the lease runs out. A crashed or killed worker
//! simply stops renewing its promise — the next claimer sweeps the
//! expired lease, advances the job's [`Epoch`] and re-claims it. The late
//! completion (if the "dead" worker was merely slow) carries the old
//! epoch and is rejected with [`Error::LeaseExpired`]; determinism makes
//! the rejection lossless, because the re-claimer recomputes the
//! bit-identical result.
//!
//! Time is injected ([`Clock`]): deadlines are nanosecond ticks on
//! whatever monotonic axis the clock provides. Production uses
//! [`SystemClock`]; tests and the loom models drive a
//! [`crate::TestClock`] by hand, so every expiry path is exercised
//! deterministically. The sync primitives come from [`crate::sync`], so
//! `--cfg loom` swaps them for loom's modeled versions.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, PoisonError};
use std::time::Duration;

use cohort_types::{Epoch, Error, Fingerprint, Result, WorkerId};

use crate::clock::{Clock, SystemClock};
use crate::spec::JobSpec;
use crate::sync::{Condvar, Mutex, MutexGuard};

/// Default attempt budget: five expired leases convict a job as poison.
const DEFAULT_MAX_ATTEMPTS: u64 = 5;

/// One claimed job, as handed to a worker shard.
#[derive(Debug, Clone)]
pub struct Claim {
    /// The job's content-address (also its result-store key).
    pub fingerprint: Fingerprint,
    /// What to execute.
    pub spec: Arc<JobSpec>,
    /// The claim generation; [`JobQueue::complete`] validates it.
    pub epoch: Epoch,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Pending,
    Claimed { worker: WorkerId, deadline_ns: u64 },
    Done,
    Quarantined,
}

struct JobState {
    spec: Arc<JobSpec>,
    epoch: Epoch,
    status: Status,
    /// Leases issued so far (across epoch advances) — the attempt budget.
    attempts: u64,
}

/// Why a job was quarantined: the last claim that expired, preserved so
/// the poison can be reproduced (re-run the spec under that worker's
/// conditions) and audited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineDiag {
    /// The quarantined job's content-address.
    pub fingerprint: Fingerprint,
    /// Leases issued before the budget ran out.
    pub attempts: u64,
    /// The worker holding the final, fatal claim.
    pub worker: WorkerId,
    /// The epoch of that final claim.
    pub epoch: Epoch,
    /// The final lease's deadline (clock ticks, ns).
    pub deadline_ns: u64,
}

#[derive(Default)]
struct QueueState {
    jobs: BTreeMap<Fingerprint, JobState>,
    pending: VecDeque<Fingerprint>,
    quarantines: BTreeMap<Fingerprint, QuarantineDiag>,
    closed: bool,
    submitted: u64,
    deduplicated: u64,
    reclaims: u64,
    stale_completions: u64,
}

/// Counters describing what the queue has seen so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Submissions accepted (including duplicates).
    pub submitted: u64,
    /// Submissions answered by an already-known job (dedup-on-submit).
    pub deduplicated: u64,
    /// Expired leases swept and re-queued at a new epoch.
    pub reclaims: u64,
    /// Completions rejected because their lease had expired.
    pub stale_completions: u64,
    /// Jobs moved to the terminal quarantine after exhausting their
    /// attempt budget.
    pub quarantined: u64,
}

/// How a [`JobQueue::wait_outcome`] wait ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The job completed; its payload is in the result store.
    Done,
    /// The job exhausted its attempt budget and will never complete.
    Quarantined(QuarantineDiag),
    /// The queue closed and drained without ever seeing the job.
    Shutdown,
    /// The caller's bound elapsed first.
    TimedOut,
}

/// The shared job queue of one fleet.
pub struct JobQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    lease_ns: u64,
    max_attempts: u64,
    clock: Arc<dyn Clock>,
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.lock();
        f.debug_struct("JobQueue")
            .field("jobs", &st.jobs.len())
            .field("pending", &st.pending.len())
            .field("lease_ns", &self.lease_ns)
            .finish_non_exhaustive()
    }
}

impl JobQueue {
    /// Creates a queue whose claims lease for `lease` (clamped to at
    /// least one millisecond), timed by the host's monotonic clock.
    #[must_use]
    pub fn new(lease: Duration) -> Self {
        Self::with_clock(lease, Arc::new(SystemClock::new()))
    }

    /// Creates a queue timed by an injected [`Clock`] — the deterministic
    /// entry point for tests and loom models.
    #[must_use]
    pub fn with_clock(lease: Duration, clock: Arc<dyn Clock>) -> Self {
        let lease = lease.max(Duration::from_millis(1));
        JobQueue {
            state: Mutex::new(QueueState::default()),
            cv: Condvar::new(),
            lease_ns: u64::try_from(lease.as_nanos()).unwrap_or(u64::MAX),
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            clock,
        }
    }

    /// Sets the attempt budget: a job whose lease expires this many times
    /// is quarantined instead of re-claimed forever (clamped to at least
    /// one attempt). Call before sharing the queue.
    pub fn set_max_attempts(&mut self, max_attempts: u64) {
        self.max_attempts = max_attempts.max(1);
    }

    /// The configured attempt budget.
    #[must_use]
    pub fn max_attempts(&self) -> u64 {
        self.max_attempts
    }

    // Chaos survival: a simulated worker kill is a panic; the queue must
    // keep serving its siblings even if one died near a lock.
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configured lease duration.
    #[must_use]
    pub fn lease(&self) -> Duration {
        Duration::from_nanos(self.lease_ns)
    }

    /// Submits `spec`, deduplicating on its fingerprint: a job already
    /// queued, running or done absorbs the submission without a second
    /// execution. Returns the fingerprint and whether this submission was
    /// the first of its kind.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the queue is closed.
    pub fn submit(&self, spec: JobSpec) -> Result<(Fingerprint, bool)> {
        let fingerprint = spec.fingerprint();
        let mut st = self.lock();
        if st.closed {
            return Err(Error::InvalidConfig("the fleet is shut down".into()));
        }
        st.submitted += 1;
        if st.jobs.contains_key(&fingerprint) {
            st.deduplicated += 1;
            return Ok((fingerprint, false));
        }
        st.jobs.insert(
            fingerprint,
            JobState {
                spec: Arc::new(spec),
                epoch: Epoch::FIRST,
                status: Status::Pending,
                attempts: 0,
            },
        );
        st.pending.push_back(fingerprint);
        self.cv.notify_all();
        Ok((fingerprint, true))
    }

    /// Submits a spec whose payload the result store already holds: the
    /// job is registered as done immediately and never enqueued, so no
    /// worker can claim it (a duplicate of an existing job is plain
    /// dedup, whatever that job's state).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the queue is closed.
    pub fn submit_resolved(&self, spec: JobSpec) -> Result<(Fingerprint, bool)> {
        let fingerprint = spec.fingerprint();
        let mut st = self.lock();
        if st.closed {
            return Err(Error::InvalidConfig("the fleet is shut down".into()));
        }
        st.submitted += 1;
        if st.jobs.contains_key(&fingerprint) {
            st.deduplicated += 1;
            return Ok((fingerprint, false));
        }
        st.jobs.insert(
            fingerprint,
            JobState {
                spec: Arc::new(spec),
                epoch: Epoch::FIRST,
                status: Status::Done,
                attempts: 0,
            },
        );
        self.cv.notify_all();
        Ok((fingerprint, true))
    }

    /// Moves every expired lease back to pending at the next epoch — or,
    /// once the attempt budget is spent, to the terminal quarantine with
    /// the fatal claim preserved as diagnostics. `jobs` is a `BTreeMap`,
    /// so the sweep (and therefore the re-queue order of simultaneously
    /// expired leases) is deterministic. The epoch advances on quarantine
    /// too, so a slow worker's late completion is rejected as stale —
    /// exactly one of {late completion lands, quarantine} ever wins.
    fn sweep_expired(&self, st: &mut QueueState, now_ns: u64) {
        let mut expired: Vec<Fingerprint> = Vec::new();
        for (fp, job) in &st.jobs {
            if let Status::Claimed { deadline_ns, .. } = job.status {
                if deadline_ns <= now_ns {
                    expired.push(*fp);
                }
            }
        }
        let mut quarantined_any = false;
        for fp in expired {
            let job = st.jobs.get_mut(&fp).expect("swept job exists");
            let Status::Claimed { worker, deadline_ns } = job.status else { unreachable!() };
            if job.attempts >= self.max_attempts {
                let diag = QuarantineDiag {
                    fingerprint: fp,
                    attempts: job.attempts,
                    worker,
                    epoch: job.epoch,
                    deadline_ns,
                };
                job.epoch = job.epoch.next();
                job.status = Status::Quarantined;
                st.quarantines.insert(fp, diag);
                quarantined_any = true;
            } else {
                job.epoch = job.epoch.next();
                job.status = Status::Pending;
                st.pending.push_back(fp);
                st.reclaims += 1;
            }
        }
        if quarantined_any {
            // Wake waiters parked on the now-hopeless jobs.
            self.cv.notify_all();
        }
    }

    /// Claims the front pending job for `worker` under an already-held
    /// lock, sweeping expired leases first. Each claim burns one unit of
    /// the job's attempt budget.
    fn claim_locked(&self, st: &mut QueueState, worker: WorkerId) -> Option<Claim> {
        let now_ns = self.clock.now_ns();
        self.sweep_expired(st, now_ns);
        let fingerprint = st.pending.pop_front()?;
        let job = st.jobs.get_mut(&fingerprint).expect("pending job exists");
        job.attempts += 1;
        job.status = Status::Claimed { worker, deadline_ns: now_ns.saturating_add(self.lease_ns) };
        Some(Claim { fingerprint, spec: Arc::clone(&job.spec), epoch: job.epoch })
    }

    /// Claims a job for `worker` if one is claimable *right now* (after
    /// sweeping expired leases), without blocking. The non-blocking core
    /// of [`JobQueue::claim`], and the surface the loom models drive.
    #[must_use]
    pub fn try_claim(&self, worker: WorkerId) -> Option<Claim> {
        let mut st = self.lock();
        self.claim_locked(&mut st, worker)
    }

    /// Blocks until a job is claimable (or the queue is closed and
    /// drained), then claims it for `worker`. Expired leases of crashed
    /// workers are swept and re-claimed here, at the advanced epoch.
    ///
    /// Returns `None` when the queue is closed and no work remains — the
    /// worker shard's signal to exit.
    #[must_use]
    pub fn claim(&self, worker: WorkerId) -> Option<Claim> {
        let mut st = self.lock();
        loop {
            if let Some(claim) = self.claim_locked(&mut st, worker) {
                return Some(claim);
            }
            let in_flight = st.jobs.values().any(|j| matches!(j.status, Status::Claimed { .. }));
            if st.closed && !in_flight {
                // Closed, nothing pending, nothing that could still expire
                // back into pending: drained.
                self.cv.notify_all();
                return None;
            }
            st = self.wait_for_change(st);
        }
    }

    /// Parks until the queue is notified — or, outside loom, until it is
    /// time to sweep the earliest lease (the host clock keeps moving on
    /// its own, so the wait must poll).
    #[cfg(not(loom))]
    fn wait_for_change<'q>(&'q self, st: MutexGuard<'q, QueueState>) -> MutexGuard<'q, QueueState> {
        let now_ns = self.clock.now_ns();
        let timeout = st
            .jobs
            .values()
            .filter_map(|j| match j.status {
                Status::Claimed { deadline_ns, .. } => {
                    Some(Duration::from_nanos(deadline_ns.saturating_sub(now_ns)))
                }
                _ => None,
            })
            .min()
            .unwrap_or(Duration::from_nanos(self.lease_ns))
            .max(Duration::from_millis(1));
        let (guard, _) = self.cv.wait_timeout(st, timeout).unwrap_or_else(PoisonError::into_inner);
        guard
    }

    /// Under loom there is no timed wait (and no self-moving clock):
    /// block until another modeled thread notifies.
    #[cfg(loom)]
    fn wait_for_change<'q>(&'q self, st: MutexGuard<'q, QueueState>) -> MutexGuard<'q, QueueState> {
        self.cv.wait(st).unwrap_or_else(PoisonError::into_inner)
    }

    /// Records `fingerprint` as completed by the claim taken at `epoch`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LeaseExpired`] if the job has since been swept to
    /// a newer epoch — the caller's lease ran out and its (already
    /// computed) result is discarded as stale. Returns
    /// [`Error::InvalidConfig`] for a fingerprint the queue never issued.
    pub fn complete(&self, fingerprint: Fingerprint, epoch: Epoch) -> Result<()> {
        let mut st = self.lock();
        let job = st.jobs.get_mut(&fingerprint).ok_or_else(|| {
            Error::InvalidConfig(format!("completion for unknown job {fingerprint}"))
        })?;
        if job.epoch != epoch {
            let current = job.epoch.get();
            st.stale_completions += 1;
            return Err(Error::LeaseExpired { held: epoch.get(), current });
        }
        job.status = Status::Done;
        st.pending.retain(|fp| *fp != fingerprint);
        self.cv.notify_all();
        Ok(())
    }

    /// Blocks until `fingerprint` completes. Returns `false` if the job
    /// was quarantined, or if the queue closed (and drained) without the
    /// job ever completing — the only `false` for fingerprints that were
    /// actually submitted is quarantine. Compatibility wrapper over
    /// [`JobQueue::wait_outcome`].
    #[must_use]
    pub fn wait_done(&self, fingerprint: Fingerprint) -> bool {
        self.wait_outcome(fingerprint, None) == WaitOutcome::Done
    }

    /// Blocks until `fingerprint` reaches a terminal state — done,
    /// quarantined, or unreachable because the queue closed — or until
    /// `timeout` (measured on the queue's injected clock) elapses.
    /// `None` waits without bound.
    #[must_use]
    pub fn wait_outcome(&self, fingerprint: Fingerprint, timeout: Option<Duration>) -> WaitOutcome {
        let deadline_ns = timeout.map(|t| {
            self.clock.now_ns().saturating_add(u64::try_from(t.as_nanos()).unwrap_or(u64::MAX))
        });
        let mut st = self.lock();
        loop {
            match st.jobs.get(&fingerprint) {
                Some(job) if job.status == Status::Done => return WaitOutcome::Done,
                Some(job) if job.status == Status::Quarantined => {
                    let diag =
                        *st.quarantines.get(&fingerprint).expect("quarantined job has diagnostics");
                    return WaitOutcome::Quarantined(diag);
                }
                None if st.closed => return WaitOutcome::Shutdown,
                Some(_) | None => {}
            }
            if let Some(deadline_ns) = deadline_ns {
                if self.clock.now_ns() >= deadline_ns {
                    return WaitOutcome::TimedOut;
                }
            }
            #[cfg(not(loom))]
            {
                let (guard, _) = self
                    .cv
                    .wait_timeout(st, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
            #[cfg(loom)]
            {
                st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Re-queues a *done* job at the next epoch with a fresh attempt
    /// budget — the store-repair path: the payload on disk was found
    /// corrupt, so the job must execute again (determinism re-derives it
    /// bit-identically). A job that is already pending or claimed (a
    /// concurrent waiter repaired it first) is left untouched.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a fingerprint the queue never
    /// issued.
    pub fn requeue(&self, fingerprint: Fingerprint) -> Result<()> {
        let mut st = self.lock();
        let job = st.jobs.get_mut(&fingerprint).ok_or_else(|| {
            Error::InvalidConfig(format!("requeue for unknown job {fingerprint}"))
        })?;
        if job.status == Status::Done {
            job.epoch = job.epoch.next();
            job.status = Status::Pending;
            job.attempts = 0;
            st.pending.push_back(fingerprint);
            self.cv.notify_all();
        }
        Ok(())
    }

    /// The quarantine diagnostics for `fingerprint`, if it was convicted.
    #[must_use]
    pub fn quarantine_diag(&self, fingerprint: Fingerprint) -> Option<QuarantineDiag> {
        self.lock().quarantines.get(&fingerprint).copied()
    }

    /// Every quarantine so far, in fingerprint order (deterministic).
    #[must_use]
    pub fn quarantines(&self) -> Vec<QuarantineDiag> {
        self.lock().quarantines.values().copied().collect()
    }

    /// Closes the queue: no new submissions; workers drain the remaining
    /// jobs (including leases that still have to expire) and then exit.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }

    /// Current counter snapshot.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        let st = self.lock();
        QueueStats {
            submitted: st.submitted,
            deduplicated: st.deduplicated,
            reclaims: st.reclaims,
            stale_completions: st.stale_completions,
            quarantined: st.quarantines.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;
    use cohort::Protocol;
    use cohort_trace::micro;
    use cohort_types::Criticality;

    fn job(n: usize) -> JobSpec {
        let mut b = cohort::SystemSpec::builder();
        for _ in 0..2 {
            b = b.core(Criticality::new(1).unwrap());
        }
        JobSpec::Experiment {
            spec: b.build().unwrap(),
            protocol: Protocol::Msi,
            workload: Arc::new(micro::ping_pong(2, n)),
        }
    }

    fn clocked(lease: Duration) -> (JobQueue, Arc<TestClock>) {
        let clock = Arc::new(TestClock::new());
        (JobQueue::with_clock(lease, Arc::clone(&clock) as Arc<dyn Clock>), clock)
    }

    #[test]
    fn duplicate_submissions_collapse_to_one_job() {
        let q = JobQueue::new(Duration::from_secs(10));
        let (fp1, fresh1) = q.submit(job(4)).unwrap();
        let (fp2, fresh2) = q.submit(job(4)).unwrap();
        assert_eq!(fp1, fp2);
        assert!(fresh1 && !fresh2);
        let stats = q.stats();
        assert_eq!((stats.submitted, stats.deduplicated), (2, 1));
        // Only one claim comes out.
        let claim = q.claim(WorkerId::new(0)).expect("one job pending");
        assert_eq!(claim.epoch, Epoch::FIRST);
        q.complete(claim.fingerprint, claim.epoch).unwrap();
        assert!(q.wait_done(fp1));
        q.close();
        assert!(q.claim(WorkerId::new(0)).is_none(), "drained queue yields no claims");
    }

    #[test]
    fn expired_leases_are_reclaimed_at_the_next_epoch() {
        let (q, clock) = clocked(Duration::from_millis(20));
        let (fp, _) = q.submit(job(6)).unwrap();
        let dead = q.claim(WorkerId::new(0)).unwrap();
        assert_eq!(dead.epoch, Epoch::FIRST);
        clock.advance(Duration::from_millis(40));
        // The next claimer sweeps the expired lease and re-claims.
        let alive = q.claim(WorkerId::new(1)).unwrap();
        assert_eq!(alive.fingerprint, fp);
        assert_eq!(alive.epoch, Epoch::FIRST.next());
        assert_eq!(q.stats().reclaims, 1);
        // The re-claimer's completion lands; the dead worker's is stale.
        q.complete(fp, alive.epoch).unwrap();
        let err = q.complete(fp, dead.epoch).unwrap_err();
        assert_eq!(err, Error::LeaseExpired { held: 1, current: 2 });
        assert_eq!(q.stats().stale_completions, 1);
    }

    #[test]
    fn stale_completion_before_reclaim_is_also_rejected() {
        let (q, clock) = clocked(Duration::from_millis(10));
        let (fp, _) = q.submit(job(8)).unwrap();
        let dead = q.claim(WorkerId::new(0)).unwrap();
        clock.advance(Duration::from_millis(25));
        // Another claim sweeps the lease (epoch 2) even though it claims
        // the same job; the original epoch-1 completion must be refused.
        let second = q.claim(WorkerId::new(1)).unwrap();
        assert!(matches!(q.complete(fp, dead.epoch), Err(Error::LeaseExpired { .. })));
        q.complete(fp, second.epoch).unwrap();
    }

    #[test]
    fn unexpired_lease_is_not_swept() {
        let (q, clock) = clocked(Duration::from_millis(20));
        let (fp, _) = q.submit(job(7)).unwrap();
        let first = q.claim(WorkerId::new(0)).unwrap();
        clock.advance(Duration::from_millis(19));
        // One tick short of the deadline: nothing to claim, no reclaim.
        assert!(q.try_claim(WorkerId::new(1)).is_none());
        assert_eq!(q.stats().reclaims, 0);
        clock.advance(Duration::from_millis(1));
        let swept = q.try_claim(WorkerId::new(1)).expect("lease expired on the tick");
        assert_eq!(swept.fingerprint, fp);
        assert_eq!(q.stats().reclaims, 1);
        drop(first);
    }

    #[test]
    fn try_claim_is_nonblocking() {
        let q = JobQueue::new(Duration::from_secs(10));
        assert!(q.try_claim(WorkerId::new(0)).is_none(), "empty queue returns immediately");
        let (fp, _) = q.submit(job(9)).unwrap();
        let claim = q.try_claim(WorkerId::new(0)).expect("pending job claimable");
        assert_eq!(claim.fingerprint, fp);
        assert!(q.try_claim(WorkerId::new(1)).is_none(), "claimed job is not re-claimable");
    }

    #[test]
    fn a_poison_job_is_quarantined_after_its_attempt_budget() {
        let (mut q, clock) = clocked(Duration::from_millis(10));
        q.set_max_attempts(3);
        let (fp, _) = q.submit(job(11)).unwrap();
        // Three claims, three expiries: the first two sweep back to
        // pending (reclaims), the third convicts.
        let mut last = None;
        for _ in 0..3 {
            last = q.try_claim(WorkerId::new(7));
            assert!(last.is_some(), "job is claimable until convicted");
            clock.advance(Duration::from_millis(15));
        }
        assert!(q.try_claim(WorkerId::new(8)).is_none(), "quarantined job is never re-claimed");
        let stats = q.stats();
        assert_eq!((stats.reclaims, stats.quarantined), (2, 1));
        let diag = q.quarantine_diag(fp).expect("diagnostics recorded");
        assert_eq!(diag.fingerprint, fp);
        assert_eq!(diag.attempts, 3);
        assert_eq!(diag.worker, WorkerId::new(7));
        assert_eq!(diag.epoch, last.unwrap().epoch, "diag names the fatal claim");
        // A waiter sees the quarantine instead of hanging.
        assert_eq!(q.wait_outcome(fp, None), WaitOutcome::Quarantined(diag));
        assert!(!q.wait_done(fp));
        // The slow worker's late completion is rejected as stale.
        let err = q.complete(fp, diag.epoch).unwrap_err();
        assert!(matches!(err, Error::LeaseExpired { .. }), "{err}");
    }

    #[test]
    fn wait_outcome_times_out_on_the_injected_clock() {
        let (q, clock) = clocked(Duration::from_secs(10));
        let (fp, _) = q.submit(job(12)).unwrap();
        // Nothing will ever complete the job: a zero bound trips on the
        // first deadline check instead of hanging the caller.
        assert_eq!(q.wait_outcome(fp, Some(Duration::ZERO)), WaitOutcome::TimedOut);
        clock.advance(Duration::from_millis(5));
        assert_eq!(q.wait_outcome(fp, Some(Duration::ZERO)), WaitOutcome::TimedOut);
        // A terminal state beats any bound.
        let claim = q.claim(WorkerId::new(0)).unwrap();
        q.complete(fp, claim.epoch).unwrap();
        assert_eq!(q.wait_outcome(fp, Some(Duration::ZERO)), WaitOutcome::Done);
    }

    #[test]
    fn requeue_reopens_a_done_job_at_a_fresh_epoch_and_budget() {
        let (q, _clock) = clocked(Duration::from_secs(10));
        let (fp, _) = q.submit(job(13)).unwrap();
        let claim = q.claim(WorkerId::new(0)).unwrap();
        q.complete(fp, claim.epoch).unwrap();
        assert!(q.wait_done(fp));
        // Store repair path: the payload was found corrupt, re-derive it.
        q.requeue(fp).unwrap();
        let repair = q.try_claim(WorkerId::new(1)).expect("requeued job claimable");
        assert_eq!(repair.fingerprint, fp);
        assert_eq!(repair.epoch, claim.epoch.next(), "epoch advanced past the stale completion");
        // Double-requeue while pending/claimed is a no-op.
        q.requeue(fp).unwrap();
        assert!(q.try_claim(WorkerId::new(2)).is_none());
        q.complete(fp, repair.epoch).unwrap();
        assert!(q.wait_done(fp));
        assert!(q.requeue(Fingerprint::from_raw(0x999)).is_err(), "unknown job rejected");
    }

    #[test]
    fn closed_queue_rejects_submissions_and_drains() {
        let q = JobQueue::new(Duration::from_secs(10));
        let (fp, _) = q.submit(job(3)).unwrap();
        q.close();
        assert!(q.submit(job(5)).is_err());
        // Pending work is still handed out after close.
        let claim = q.claim(WorkerId::new(0)).expect("pending job survives close");
        q.complete(fp, claim.epoch).unwrap();
        assert!(q.claim(WorkerId::new(0)).is_none());
        assert!(q.wait_done(fp));
        assert!(!q.wait_done(Fingerprint::from_raw(0x1234)), "unknown job after close");
    }
}
