//! Injected I/O for the persistent store mirror.
//!
//! The mirror's durability logic — atomic tmp-write-then-rename, corrupt
//! sidecar quarantine, eviction — is pure path arithmetic over a handful
//! of filesystem verbs. *Whether those verbs succeed* is the only
//! nondeterministic part, so it is injected, mirroring the queue's
//! [`Clock`](crate::clock::Clock) pattern: production stores run on
//! [`SystemDisk`] (a thin `std::fs` passthrough), tests inject a
//! [`FaultyDisk`] whose transient failures are drawn from a seeded
//! splitmix64 stream — the store's bounded backoff absorbs them
//! deterministically, and a give-up is a typed error, never a spin.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use cohort_types::Error;

/// The filesystem verbs the persistent mirror needs.
///
/// Every method maps 1:1 onto a `std::fs` call; errors are stringly
/// (`Err(detail)`) because the store folds them into typed
/// [`Error::StoreUnavailable`] / [`Error::StoreCorrupt`] values itself —
/// which is also why the per-method `# Errors` sections would all say
/// the same sentence and are elided.
#[allow(clippy::missing_errors_doc)]
pub trait Disk: Send + Sync + std::fmt::Debug {
    /// `std::fs::create_dir_all`.
    fn create_dir_all(&self, path: &Path) -> std::result::Result<(), String>;
    /// `std::fs::read_to_string`.
    fn read_to_string(&self, path: &Path) -> std::result::Result<String, String>;
    /// `std::fs::write`.
    fn write(&self, path: &Path, contents: &str) -> std::result::Result<(), String>;
    /// `std::fs::rename`.
    fn rename(&self, from: &Path, to: &Path) -> std::result::Result<(), String>;
    /// `std::fs::remove_file`.
    fn remove_file(&self, path: &Path) -> std::result::Result<(), String>;
    /// Whether the path exists.
    fn exists(&self, path: &Path) -> bool;
    /// The plain files directly under `dir`, **sorted by file name** so
    /// every directory scan is deterministic regardless of readdir order.
    fn list(&self, dir: &Path) -> std::result::Result<Vec<PathBuf>, String>;
}

/// The production disk: a `std::fs` passthrough.
#[derive(Debug, Default)]
pub struct SystemDisk;

impl SystemDisk {
    /// A fresh passthrough handle.
    #[must_use]
    pub fn new() -> Self {
        SystemDisk
    }
}

fn detail(e: &std::io::Error) -> String {
    e.to_string()
}

impl Disk for SystemDisk {
    fn create_dir_all(&self, path: &Path) -> std::result::Result<(), String> {
        std::fs::create_dir_all(path).map_err(|e| detail(&e))
    }

    fn read_to_string(&self, path: &Path) -> std::result::Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| detail(&e))
    }

    fn write(&self, path: &Path, contents: &str) -> std::result::Result<(), String> {
        std::fs::write(path, contents).map_err(|e| detail(&e))
    }

    fn rename(&self, from: &Path, to: &Path) -> std::result::Result<(), String> {
        std::fs::rename(from, to).map_err(|e| detail(&e))
    }

    fn remove_file(&self, path: &Path) -> std::result::Result<(), String> {
        std::fs::remove_file(path).map_err(|e| detail(&e))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn list(&self, dir: &Path) -> std::result::Result<Vec<PathBuf>, String> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(|e| detail(&e))? {
            let entry = entry.map_err(|e| detail(&e))?;
            if entry.file_type().map_err(|e| detail(&e))?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }
}

/// splitmix64's mix function — restated here because `cohort-fleet` sits
/// below `cohort-sim` in the dependency DAG and must not depend on it for
/// nine lines of bit mixing.
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a path's UTF-8 bytes — the per-path fault stream selector.
fn path_stream(path: &Path) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.to_string_lossy().as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A chaos disk: wraps an inner [`Disk`] and fails each mutating verb a
/// deterministic, seed-chosen number of times per path before letting it
/// through.
///
/// The failure budget of a path is
/// `mix(seed, fnv(path)) % (max_transient + 1)` — a pure function of the
/// seed and the path, so two runs of the
/// same fault schedule inject bit-identical fault sequences. Each failed
/// attempt decrements the budget, which is how the store's bounded retry
/// backoff is guaranteed to win: pick `max_transient` below the store's
/// attempt budget and every fault is absorbed; push it past the budget and
/// the give-up path fires deterministically instead.
///
/// Only `write` and `rename` fault — read-side corruption is a *content*
/// fault and is exercised by tampering with entries directly.
#[derive(Debug)]
pub struct FaultyDisk {
    inner: SystemDisk,
    seed: u64,
    max_transient: u64,
    /// Remaining failure budget per path, lazily seeded on first touch.
    remaining: Mutex<BTreeMap<PathBuf, u64>>,
    injected: AtomicU64,
}

impl FaultyDisk {
    /// A chaos disk over the real filesystem. Each path fails its first
    /// `mix(seed, path) % (max_transient + 1)` mutating operations.
    #[must_use]
    pub fn new(seed: u64, max_transient: u64) -> Self {
        FaultyDisk {
            inner: SystemDisk::new(),
            seed,
            max_transient,
            remaining: Mutex::new(BTreeMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// Total transient faults injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Returns `true` (and burns one unit of budget) if this touch of
    /// `path` should fail.
    fn should_fail(&self, path: &Path) -> bool {
        let mut remaining =
            self.remaining.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let budget = remaining
            .entry(path.to_path_buf())
            .or_insert_with(|| mix(self.seed, path_stream(path)) % (self.max_transient + 1));
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        self.injected.fetch_add(1, Ordering::SeqCst);
        true
    }
}

impl Disk for FaultyDisk {
    fn create_dir_all(&self, path: &Path) -> std::result::Result<(), String> {
        self.inner.create_dir_all(path)
    }

    fn read_to_string(&self, path: &Path) -> std::result::Result<String, String> {
        self.inner.read_to_string(path)
    }

    fn write(&self, path: &Path, contents: &str) -> std::result::Result<(), String> {
        if self.should_fail(path) {
            return Err(format!("injected transient write failure at {}", path.display()));
        }
        self.inner.write(path, contents)
    }

    fn rename(&self, from: &Path, to: &Path) -> std::result::Result<(), String> {
        if self.should_fail(to) {
            return Err(format!("injected transient rename failure at {}", to.display()));
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> std::result::Result<(), String> {
        self.inner.remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn list(&self, dir: &Path) -> std::result::Result<Vec<PathBuf>, String> {
        self.inner.list(dir)
    }
}

/// Folds a final disk failure into the typed give-up error.
pub(crate) fn give_up(path: &Path, attempts: u64, last: String) -> Error {
    Error::StoreUnavailable { path: path.display().to_string(), attempts, detail: last }
}

/// The deterministic backoff schedule: attempt `i` (0-based) sleeps a
/// seeded pseudo-random 0–3 ms before retrying. The jitter is a pure
/// function of `(seed, path, i)` so fault-absorption traces replay
/// bit-identically; the total worst-case stall is bounded by
/// `attempts * 3 ms`, far below any lease.
pub(crate) fn backoff_ns(seed: u64, path: &Path, attempt: u64) -> u64 {
    let jitter = mix(seed ^ attempt.wrapping_mul(0x9e37_79b9), path_stream(path)) % 4;
    jitter * 1_000_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulty_disk_budget_is_a_pure_function_of_seed_and_path() {
        let dir = std::env::temp_dir().join(format!("cohort-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("probe.json");
        let run = |seed: u64| {
            let disk = FaultyDisk::new(seed, 3);
            let mut failures = 0;
            for _ in 0..8 {
                if disk.write(&path, "x").is_err() {
                    failures += 1;
                }
            }
            failures
        };
        assert_eq!(run(7), run(7), "same seed, same fault count");
        // Across many seeds the budget must actually vary (0..=3).
        let counts: Vec<u64> = (0..16).map(run).collect();
        assert!(counts.iter().any(|&c| c > 0), "some seed injects faults");
        assert!(counts.contains(&0), "some seed stays clean");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faults_are_transient_then_the_write_lands() {
        let dir = std::env::temp_dir().join(format!("cohort-disk-t-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("entry.json");
        // Find a seed that injects at least one fault for this path.
        let seed = (0..64)
            .find(|&s| !mix(s, path_stream(&path)).is_multiple_of(4))
            .expect("some seed faults");
        let disk = FaultyDisk::new(seed, 3);
        let mut attempts = 0;
        loop {
            attempts += 1;
            if disk.write(&path, "payload").is_ok() {
                break;
            }
            assert!(attempts < 8, "budget is bounded");
        }
        assert!(attempts > 1, "at least one injected fault preceded success");
        assert_eq!(disk.injected(), attempts - 1);
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "payload");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn system_disk_lists_files_sorted() {
        let dir = std::env::temp_dir().join(format!("cohort-disk-l-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        for name in ["b.json", "a.json", "c.json"] {
            std::fs::write(dir.join(name), "x").expect("write");
        }
        let disk = SystemDisk::new();
        let listed = disk.list(&dir).expect("list");
        let names: Vec<String> = listed
            .iter()
            .map(|p| p.file_name().expect("name").to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["a.json", "b.json", "c.json"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let path = Path::new("/memo/00ab.json");
        for attempt in 0..8 {
            let a = backoff_ns(42, path, attempt);
            assert_eq!(a, backoff_ns(42, path, attempt));
            assert!(a < 4_000_000, "jitter stays under 4 ms");
        }
    }
}
