//! Injected time for the lease state machine.
//!
//! The queue's epoch/lease logic is pure tick arithmetic: a lease is a
//! deadline in nanoseconds on some monotonic axis, and "expired" is a
//! comparison. *Where the ticks come from* is the only nondeterministic
//! part, so it is injected: production fleets read a monotonic
//! [`SystemClock`] (the workspace's single sanctioned wall-clock read),
//! tests and loom models drive a [`TestClock`] by hand — lease-expiry
//! paths become deterministic instead of `sleep`-raced.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic nanosecond source.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since an arbitrary fixed origin. Must never decrease.
    fn now_ns(&self) -> u64;
}

/// The production clock: monotonic host time, measured from construction.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is "now".
    #[must_use]
    pub fn new() -> Self {
        // lint:allow(det-wallclock) the fleet boundary is the one place wall time may enter: leases protect against real crashed workers, and job outcomes never read this clock
        SystemClock { origin: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-driven clock for tests and loom models: time moves only when
/// the test says so.
#[derive(Debug, Default)]
pub struct TestClock {
    ns: AtomicU64,
}

impl TestClock {
    /// A clock at tick zero.
    #[must_use]
    pub fn new() -> Self {
        TestClock::default()
    }

    /// Advances the clock by `by`.
    pub fn advance(&self, by: Duration) {
        self.ns.fetch_add(u64::try_from(by.as_nanos()).unwrap_or(u64::MAX), Ordering::SeqCst);
    }

    /// Moves the clock to an absolute tick (saturating: the clock never
    /// runs backwards).
    pub fn set_ns(&self, ns: u64) {
        self.ns.fetch_max(ns, Ordering::SeqCst);
    }
}

impl Clock for TestClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn test_clock_moves_only_by_hand() {
        let clock = TestClock::new();
        assert_eq!(clock.now_ns(), 0);
        clock.advance(Duration::from_millis(3));
        assert_eq!(clock.now_ns(), 3_000_000);
        clock.set_ns(1_000_000);
        assert_eq!(clock.now_ns(), 3_000_000, "set never rewinds");
        clock.set_ns(5_000_000);
        assert_eq!(clock.now_ns(), 5_000_000);
    }
}
