//! Sync primitives behind a loom-switchable facade.
//!
//! Compiled normally, these are `std::sync` re-exports. Compiled with
//! `RUSTFLAGS="--cfg loom"`, loom's modeled primitives take their place
//! and the fleet's queue state machine becomes model-checkable: the loom
//! suite (`crates/fleet/tests/loom.rs`) explores thread interleavings of
//! claim/complete/sweep instead of hoping a stress run hits the bad one.
//!
//! Only the primitives the queue actually uses are exported — keep this
//! list short, it is the model-checking surface.

#[cfg(loom)]
pub use loom::sync::{Condvar, Mutex, MutexGuard};

#[cfg(not(loom))]
pub use std::sync::{Condvar, Mutex, MutexGuard};
