//! Fleet job specifications and their content-address fingerprints.

use std::sync::Arc;

use serde_json::{json, Value};

use cohort::{Protocol, SystemSpec};
use cohort_optim::GaConfig;
use cohort_trace::Workload;
use cohort_types::{Fingerprint, FingerprintBuilder, Result, TimerValue};

/// One Monte Carlo certification batch the fleet can execute without
/// depending on the certification crate: `cohort-cert` sits *above*
/// `cohort-fleet` in the dependency graph (it submits through the normal
/// client path), so its batches arrive behind this object-safe trait.
///
/// Implementations must be pure functions of their configuration — the
/// fleet's dedup-on-submit, killed-worker recovery and cross-run
/// memoization all assume [`CertifyBatch::run`] is deterministic and that
/// [`CertifyBatch::digest`] covers everything outcome-determining.
pub trait CertifyBatch: std::fmt::Debug + Send + Sync {
    /// A short human-readable label for progress lines and bench output.
    fn label(&self) -> String;

    /// Folds everything that determines the batch outcome into the
    /// fingerprint (the `cohort-fleet/certify/1` kind tag is already
    /// applied by [`JobSpec::fingerprint`]).
    fn digest(&self, b: FingerprintBuilder) -> FingerprintBuilder;

    /// The scalar configuration (campaign slug, seed range, trial count)
    /// for manifests and queue inspection.
    fn manifest(&self) -> Value;

    /// Executes the batch to its streaming-aggregate payload.
    ///
    /// # Errors
    ///
    /// Implementation-defined; a failure becomes the job's deterministic
    /// `{"error": ...}` payload like every other job kind.
    fn run(&self) -> Result<Value>;
}

/// One unit of fleet work: either a simulate-and-analyse experiment (one
/// job of a PR-1-style sweep) or a GA timer optimization (a PR-4-style
/// run).
///
/// The spec owns everything that determines its outcome, and its
/// [`JobSpec::fingerprint`] digests exactly that — two submissions with
/// the same fingerprint are the same computation, share one execution and
/// one stored result. Workloads ride behind an [`Arc`] so a burst of
/// protocol jobs over one workload stays cheap to submit.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// Simulate `protocol` on `spec` over `workload`, then analyse.
    Experiment {
        /// The platform to simulate and analyse against.
        spec: SystemSpec,
        /// The protocol configuration under test.
        protocol: Protocol,
        /// The workload, shared rather than cloned across jobs.
        workload: Arc<Workload>,
    },
    /// Run the GA timer optimization of the paper's Fig. 2a flow.
    Optimize {
        /// The workload whose traces drive the fitness analysis.
        workload: Arc<Workload>,
        /// Which cores are timed, each with an optional WCML requirement
        /// (in cycles) — the `TimerProblem::builder` inputs.
        timed: Vec<(usize, Option<u64>)>,
        /// The GA engine configuration (the run is a pure function of it
        /// plus the problem).
        ga: GaConfig,
    },
    /// Run one Monte Carlo certification batch (a `cohort-cert` block of
    /// seeded fault-injection or schedulability trials).
    Certify {
        /// The batch, shared so a campaign of thousands of submissions
        /// stays cheap.
        batch: Arc<dyn CertifyBatch>,
    },
}

impl JobSpec {
    /// A short human-readable label for progress lines and bench output.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            JobSpec::Experiment { protocol, workload, .. } => {
                format!("{}/{}", protocol.slug(), workload.name())
            }
            JobSpec::Optimize { workload, timed, .. } => {
                format!("ga/{} ({} timed)", workload.name(), timed.len())
            }
            JobSpec::Certify { batch } => batch.label(),
        }
    }

    /// The 128-bit content-address of this job: a digest of everything
    /// that determines its outcome. Workload content enters through the
    /// existing per-trace `Trace::fingerprint` values, so the fleet's
    /// store lives in the same fingerprint space as the analysis memo.
    ///
    /// Deliberately excluded: worker-thread counts ([`GaConfig::workers`]
    /// — any value produces bit-identical outcomes) and presentation-only
    /// state such as sweep labels.
    #[must_use]
    pub fn fingerprint(&self) -> Fingerprint {
        match self {
            JobSpec::Experiment { spec, protocol, workload } => {
                let mut b = Fingerprint::builder().text("cohort-fleet/experiment/1");
                b = digest_workload(b, workload);
                b = digest_spec(b, spec);
                digest_protocol(b, protocol).finish()
            }
            JobSpec::Optimize { workload, timed, ga } => {
                let mut b = Fingerprint::builder().text("cohort-fleet/optimize/1");
                b = digest_workload(b, workload);
                b = b.u64(timed.len() as u64);
                for &(core, requirement) in timed {
                    b = b.u64(core as u64).u64(encode_option(requirement));
                }
                digest_ga(b, ga).finish()
            }
            JobSpec::Certify { batch } => {
                batch.digest(Fingerprint::builder().text("cohort-fleet/certify/1")).finish()
            }
        }
    }

    /// A JSON manifest of the job — kind, label, fingerprint and the
    /// scalar configuration — for bench reports and queue inspection.
    /// (Workload *content* is identified by the fingerprint, not
    /// re-serialized: traces are exchanged through the trace codec.)
    #[must_use]
    pub fn to_json_value(&self) -> Value {
        match self {
            JobSpec::Experiment { spec, protocol, workload } => json!({
                "kind": "experiment",
                "label": self.label(),
                "fingerprint": self.fingerprint().to_hex(),
                "protocol": protocol.slug(),
                "workload": workload.name(),
                "cores": spec.cores(),
            }),
            JobSpec::Optimize { workload, timed, ga } => json!({
                "kind": "optimize",
                "label": self.label(),
                "fingerprint": self.fingerprint().to_hex(),
                "workload": workload.name(),
                "timed_cores": timed.len(),
                "population": ga.population,
                "generations": ga.generations,
                "seed": ga.seed,
            }),
            JobSpec::Certify { batch } => json!({
                "kind": "certify",
                "label": self.label(),
                "fingerprint": self.fingerprint().to_hex(),
                "config": batch.manifest(),
            }),
        }
    }
}

/// `Option<u64>` → one u64 slot: `None` digests as `u64::MAX` and the
/// presence bit keeps `Some(u64::MAX)` distinct.
fn encode_option(v: Option<u64>) -> u64 {
    v.map_or(u64::MAX, |x| x)
}

fn digest_workload(b: FingerprintBuilder, workload: &Workload) -> FingerprintBuilder {
    let mut b = b.text(workload.name()).u64(workload.traces().len() as u64);
    for trace in workload.traces() {
        b = b.fingerprint(trace.fingerprint());
    }
    b
}

fn digest_spec(b: FingerprintBuilder, spec: &SystemSpec) -> FingerprintBuilder {
    let mut b = b.u64(spec.cores() as u64);
    for core in spec.core_specs() {
        b = b.u64(u64::from(core.criticality().level()));
        let mut reqs: Vec<(u32, u64)> =
            core.requirements().iter().map(|(m, c)| (m.index(), c.get())).collect();
        reqs.sort_unstable();
        b = b.u64(reqs.len() as u64);
        for (mode, budget) in reqs {
            b = b.u64(u64::from(mode)).u64(budget);
        }
    }
    let lat = spec.latency();
    b = b.u64(lat.hit.get()).u64(lat.request.get()).u64(lat.data.get());
    b = digest_geometry(b, spec.l1());
    match spec.llc() {
        cohort::sim::LlcModel::Perfect => b.text("llc/perfect"),
        cohort::sim::LlcModel::Finite(geom) => digest_geometry(b.text("llc/finite"), geom),
    }
}

fn digest_geometry(b: FingerprintBuilder, g: &cohort::sim::CacheGeometry) -> FingerprintBuilder {
    b.u64(g.size_bytes).u64(g.line_bytes).u64(g.ways)
}

fn digest_protocol(b: FingerprintBuilder, protocol: &Protocol) -> FingerprintBuilder {
    let b = b.text(protocol.slug());
    match protocol {
        Protocol::Cohort { timers } => {
            let mut b = b.u64(timers.len() as u64);
            for t in timers {
                b = b.u64(t.encode() as u64);
            }
            b
        }
        Protocol::Msi | Protocol::MsiFcfs | Protocol::Pcc => b,
        Protocol::Pendulum { critical, theta } => {
            let mut b = b.u64(critical.len() as u64);
            for &c in critical {
                b = b.u64(u64::from(c));
            }
            b.u64(*theta)
        }
    }
}

fn digest_ga(b: FingerprintBuilder, ga: &GaConfig) -> FingerprintBuilder {
    // lint:allow(fpr-missed-field) workers is deliberately absent from the digest: parallelism never touches the RNG, so any worker count is the same computation and must share a fingerprint
    b.u64(ga.population as u64)
        .u64(ga.generations as u64)
        .u64(ga.tournament as u64)
        .u64(ga.crossover_rate.to_bits())
        .u64(ga.mutation_rate.to_bits())
        .u64(ga.elitism as u64)
        .u64(ga.seed)
        .u64(encode_option(ga.stall_generations.map(|s| s as u64)))
        .u64(encode_option(ga.target_fitness.map(f64::to_bits)))
        .u64(encode_option(ga.max_evaluations))
}

/// Re-exported so workers can rebuild the timers a GA winner programs.
pub(crate) fn timers_to_json(timers: &[TimerValue]) -> Value {
    Value::Array(timers.iter().map(|t| json!(t.encode())).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohort_trace::micro;
    use cohort_types::Criticality;

    fn spec(n: usize) -> SystemSpec {
        let mut b = SystemSpec::builder();
        for _ in 0..n {
            b = b.core(Criticality::new(1).unwrap());
        }
        b.build().unwrap()
    }

    fn experiment(theta: u64) -> JobSpec {
        JobSpec::Experiment {
            spec: spec(2),
            protocol: Protocol::Cohort {
                timers: vec![TimerValue::timed(theta).unwrap(), TimerValue::MSI],
            },
            workload: Arc::new(micro::ping_pong(2, 8)),
        }
    }

    #[test]
    fn equal_specs_share_a_fingerprint() {
        assert_eq!(experiment(30).fingerprint(), experiment(30).fingerprint());
        assert_ne!(experiment(30).fingerprint(), experiment(31).fingerprint());
    }

    #[test]
    fn every_outcome_determinant_moves_the_fingerprint() {
        let base = experiment(30).fingerprint();
        // Different workload content.
        let other_workload = JobSpec::Experiment {
            spec: spec(2),
            protocol: Protocol::Cohort {
                timers: vec![TimerValue::timed(30).unwrap(), TimerValue::MSI],
            },
            workload: Arc::new(micro::ping_pong(2, 9)),
        };
        assert_ne!(other_workload.fingerprint(), base);
        // Different protocol family, identical everything else.
        let msi = JobSpec::Experiment {
            spec: spec(2),
            protocol: Protocol::Msi,
            workload: Arc::new(micro::ping_pong(2, 8)),
        };
        assert_ne!(msi.fingerprint(), base);
        // Experiment and optimize jobs can never collide by kind tag.
        let ga = JobSpec::Optimize {
            workload: Arc::new(micro::ping_pong(2, 8)),
            timed: vec![(0, None), (1, None)],
            ga: GaConfig::default(),
        };
        assert_ne!(ga.fingerprint(), base);
    }

    #[test]
    fn ga_seed_and_budget_are_part_of_the_identity() {
        let job = |seed: u64, max_evaluations: Option<u64>| JobSpec::Optimize {
            workload: Arc::new(micro::line_bursts(2, 4, 40)),
            timed: vec![(0, None), (1, Some(5_000))],
            ga: GaConfig { seed, max_evaluations, ..GaConfig::default() },
        };
        assert_eq!(job(7, None).fingerprint(), job(7, None).fingerprint());
        assert_ne!(job(7, None).fingerprint(), job(8, None).fingerprint());
        assert_ne!(job(7, None).fingerprint(), job(7, Some(100)).fingerprint());
        // Worker count is NOT identity: any value is the same computation.
        let mut a = job(7, None);
        if let JobSpec::Optimize { ga, .. } = &mut a {
            ga.workers = 6;
        }
        assert_eq!(a.fingerprint(), job(7, None).fingerprint());
    }

    #[derive(Debug)]
    struct FixedBatch {
        slug: String,
        seed_start: u64,
        trials: u64,
    }

    impl CertifyBatch for FixedBatch {
        fn label(&self) -> String {
            format!("cert/{}", self.slug)
        }
        fn digest(&self, b: FingerprintBuilder) -> FingerprintBuilder {
            b.text(&self.slug).u64(self.seed_start).u64(self.trials)
        }
        fn manifest(&self) -> Value {
            json!({
                "campaign": self.slug.clone(),
                "seed_start": self.seed_start,
                "trials": self.trials,
            })
        }
        fn run(&self) -> Result<Value> {
            Ok(json!({ "trials": self.trials }))
        }
    }

    fn certify(seed_start: u64) -> JobSpec {
        JobSpec::Certify {
            batch: Arc::new(FixedBatch { slug: "fault".into(), seed_start, trials: 64 }),
        }
    }

    #[test]
    fn certify_batches_are_content_addressed() {
        assert_eq!(certify(0).fingerprint(), certify(0).fingerprint());
        assert_ne!(certify(0).fingerprint(), certify(64).fingerprint());
        // The kind tag keeps certify jobs out of the other kinds' space.
        assert_ne!(certify(0).fingerprint(), experiment(30).fingerprint());
        let v = certify(0).to_json_value();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("certify"));
        assert_eq!(v.get("fingerprint").and_then(Value::as_str).unwrap().len(), 32);
    }

    #[test]
    fn manifests_name_kind_and_fingerprint() {
        let v = experiment(30).to_json_value();
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("experiment"));
        assert_eq!(v.get("fingerprint").and_then(Value::as_str).unwrap().len(), 32);
        assert_eq!(v.get("protocol").and_then(Value::as_str), Some("cohort"));
    }
}
