//! The content-addressed result store: fingerprint-keyed payloads with
//! integrity checking, optionally persisted across runs.
//!
//! Every entry is an envelope `{format, key, payload_fingerprint, payload}`.
//! The payload fingerprint is recomputed on every read and compared to the
//! recorded one — disk corruption or a tampered file surfaces as
//! [`Error::StoreCorrupt`] instead of a silently wrong result. Because
//! fleet jobs are deterministic, a corrupt entry is never fatal: dropping
//! it and re-running the job reproduces the identical payload.
//!
//! GA checkpoints live in a separate keyspace (same fingerprint keys,
//! `checkpoint-` file prefix): they are scratch state for lease re-claims,
//! deleted once the job's final payload lands.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use serde_json::{json, Value};

use cohort_types::{Error, Fingerprint, Result};

/// Format marker written to (and required from) persisted entries.
const FORMAT: &str = "cohort-fleet-entry/1";

/// Digests a payload's canonical JSON spelling. `serde_json` serializes
/// object keys in sorted order, so equal `Value`s digest identically
/// regardless of construction order.
#[must_use]
pub fn payload_fingerprint(payload: &Value) -> Fingerprint {
    let text = serde_json::to_string(payload).expect("a Value serializes infallibly");
    Fingerprint::builder().bytes(text.as_bytes()).finish()
}

struct Entry {
    payload: Value,
    payload_fp: Fingerprint,
}

/// Fingerprint-keyed result store shared by all clients and worker shards.
///
/// In-memory always; give it a directory ([`ResultStore::persistent`]) to
/// also mirror every entry to disk, making the memo survive the process —
/// a later fleet run answers repeated submissions from the store without
/// executing anything.
pub struct ResultStore {
    entries: Mutex<BTreeMap<Fingerprint, Entry>>,
    checkpoints: Mutex<BTreeMap<Fingerprint, Value>>,
    dir: Option<PathBuf>,
    hits: AtomicU64,
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStore")
            .field("entries", &self.lock_entries().len())
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl ResultStore {
    /// A store living only as long as the process.
    #[must_use]
    pub fn in_memory() -> Self {
        ResultStore {
            entries: Mutex::new(BTreeMap::new()),
            checkpoints: Mutex::new(BTreeMap::new()),
            dir: None,
            hits: AtomicU64::new(0),
        }
    }

    /// A store mirroring every entry into `dir` (created if missing), so
    /// results persist across fleet runs and are shared by every client
    /// pointing at the same directory.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] if the directory cannot be created.
    pub fn persistent(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::Codec(format!("cannot create store dir {}: {e}", dir.display())))?;
        Ok(ResultStore {
            entries: Mutex::new(BTreeMap::new()),
            checkpoints: Mutex::new(BTreeMap::new()),
            dir: Some(dir),
            hits: AtomicU64::new(0),
        })
    }

    // Chaos survival: a worker may panic (simulated kill) moments after a
    // store call returns; never let that poison the maps for its siblings.
    fn lock_entries(&self) -> std::sync::MutexGuard<'_, BTreeMap<Fingerprint, Entry>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_checkpoints(&self) -> std::sync::MutexGuard<'_, BTreeMap<Fingerprint, Value>> {
        self.checkpoints.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn entry_path(dir: &Path, key: Fingerprint) -> PathBuf {
        dir.join(format!("{}.json", key.to_hex()))
    }

    /// Stores `payload` under `key`, replacing any previous entry (jobs
    /// are deterministic, so a replay writes the identical payload).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] if the persistent mirror cannot be
    /// written; the in-memory entry is installed regardless.
    pub fn put(&self, key: Fingerprint, payload: Value) -> Result<()> {
        let payload_fp = payload_fingerprint(&payload);
        let envelope = json!({
            "format": FORMAT,
            "key": key.to_hex(),
            "payload_fingerprint": payload_fp.to_hex(),
            "payload": payload.clone(),
        });
        self.lock_entries().insert(key, Entry { payload, payload_fp });
        if let Some(dir) = &self.dir {
            let path = Self::entry_path(dir, key);
            let mut text =
                serde_json::to_string_pretty(&envelope).expect("a Value serializes infallibly");
            text.push('\n');
            // Atomic tmp + rename: a torn write never shadows a good entry.
            let tmp = path.with_extension("json.tmp");
            std::fs::write(&tmp, text)
                .map_err(|e| Error::Codec(format!("store write {}: {e}", tmp.display())))?;
            std::fs::rename(&tmp, &path)
                .map_err(|e| Error::Codec(format!("store rename {}: {e}", path.display())))?;
        }
        Ok(())
    }

    /// Fetches the payload stored under `key` — memory first, then the
    /// persistent directory. Every read re-verifies the payload
    /// fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`Error::StoreCorrupt`] if the entry fails its integrity
    /// check (recomputed payload fingerprint differs from the recorded
    /// one, or a persisted envelope is filed under the wrong key).
    pub fn get(&self, key: Fingerprint) -> Result<Option<Value>> {
        if let Some(entry) = self.lock_entries().get(&key) {
            if payload_fingerprint(&entry.payload) != entry.payload_fp {
                return Err(Error::StoreCorrupt {
                    key: key.to_hex(),
                    detail: "in-memory payload no longer matches its recorded fingerprint".into(),
                });
            }
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(entry.payload.clone()));
        }
        let Some(dir) = &self.dir else { return Ok(None) };
        let path = Self::entry_path(dir, key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(Error::Codec(format!("store read {}: {e}", path.display())));
            }
        };
        let entry = Self::decode_envelope(key, &text)?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        let payload = entry.payload.clone();
        self.lock_entries().insert(key, entry);
        Ok(Some(payload))
    }

    fn decode_envelope(key: Fingerprint, text: &str) -> Result<Entry> {
        let corrupt = |detail: String| Error::StoreCorrupt { key: key.to_hex(), detail };
        let doc: Value = serde_json::from_str(text)
            .map_err(|e| corrupt(format!("entry is not well-formed JSON: {e}")))?;
        let format = doc.get("format").and_then(Value::as_str).unwrap_or("<missing>");
        if format != FORMAT {
            return Err(corrupt(format!("entry format `{format}` is not `{FORMAT}`")));
        }
        let filed_key = doc.get("key").and_then(Value::as_str).unwrap_or("<missing>");
        if filed_key != key.to_hex() {
            return Err(corrupt(format!("entry is filed under foreign key {filed_key}")));
        }
        let recorded = doc
            .get("payload_fingerprint")
            .and_then(Value::as_str)
            .ok_or_else(|| corrupt("entry has no payload fingerprint".into()))?;
        let recorded = Fingerprint::from_hex(recorded)
            .map_err(|e| corrupt(format!("unreadable payload fingerprint: {e}")))?;
        let payload =
            doc.get("payload").cloned().ok_or_else(|| corrupt("entry has no payload".into()))?;
        let actual = payload_fingerprint(&payload);
        if actual != recorded {
            return Err(corrupt(format!(
                "payload fingerprint mismatch: recorded {}, recomputed {}",
                recorded.to_hex(),
                actual.to_hex()
            )));
        }
        Ok(Entry { payload, payload_fp: recorded })
    }

    /// Whether `key` has a (memory or disk) entry, without verifying it.
    #[must_use]
    pub fn contains(&self, key: Fingerprint) -> bool {
        if self.lock_entries().contains_key(&key) {
            return true;
        }
        self.dir.as_deref().is_some_and(|dir| Self::entry_path(dir, key).exists())
    }

    /// Number of in-memory entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock_entries().len()
    }

    /// Whether the in-memory store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock_entries().is_empty()
    }

    /// Number of successful reads answered so far (memory or disk).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Saves a GA checkpoint document for an in-flight job — the re-claim
    /// of an expired lease resumes from here instead of generation 0.
    pub fn put_checkpoint(&self, key: Fingerprint, doc: Value) {
        self.lock_checkpoints().insert(key, doc);
    }

    /// The latest checkpoint for `key`, if any.
    #[must_use]
    pub fn checkpoint(&self, key: Fingerprint) -> Option<Value> {
        self.lock_checkpoints().get(&key).cloned()
    }

    /// Drops `key`'s checkpoint (called once the final payload landed).
    pub fn clear_checkpoint(&self, key: Fingerprint) {
        self.lock_checkpoints().remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u128) -> Fingerprint {
        Fingerprint::from_raw(n)
    }

    #[test]
    fn put_get_round_trip_in_memory() {
        let store = ResultStore::in_memory();
        assert_eq!(store.get(key(1)).unwrap(), None);
        store.put(key(1), json!({"x": 7})).unwrap();
        assert_eq!(store.get(key(1)).unwrap(), Some(json!({"x": 7})));
        assert!(store.contains(key(1)));
        assert_eq!(store.hits(), 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn persistent_entries_survive_a_new_store() {
        let dir = std::env::temp_dir().join("cohort-fleet-store-persist-test");
        std::fs::remove_dir_all(&dir).ok();
        {
            let store = ResultStore::persistent(&dir).unwrap();
            store.put(key(0xabc), json!({"outcome": [1, 2, 3]})).unwrap();
        }
        let fresh = ResultStore::persistent(&dir).unwrap();
        assert!(fresh.contains(key(0xabc)));
        assert_eq!(fresh.get(key(0xabc)).unwrap(), Some(json!({"outcome": [1, 2, 3]})));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_entries_are_detected() {
        let dir = std::env::temp_dir().join("cohort-fleet-store-tamper-test");
        std::fs::remove_dir_all(&dir).ok();
        let store = ResultStore::persistent(&dir).unwrap();
        store.put(key(0xdead), json!({"wcml": 212})).unwrap();

        // Flip a payload byte on disk behind the store's back.
        let path = dir.join(format!("{}.json", key(0xdead).to_hex()));
        let tampered = std::fs::read_to_string(&path).unwrap().replace("212", "211");
        std::fs::write(&path, tampered).unwrap();

        let fresh = ResultStore::persistent(&dir).unwrap();
        let err = fresh.get(key(0xdead)).unwrap_err();
        assert!(matches!(err, Error::StoreCorrupt { .. }), "{err}");
        assert!(err.to_string().contains("mismatch"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_and_garbage_envelopes_are_corrupt() {
        let dir = std::env::temp_dir().join("cohort-fleet-store-foreign-test");
        std::fs::remove_dir_all(&dir).ok();
        let store = ResultStore::persistent(&dir).unwrap();
        store.put(key(1), json!(1)).unwrap();
        // File key 1's envelope under key 2.
        std::fs::copy(
            dir.join(format!("{}.json", key(1).to_hex())),
            dir.join(format!("{}.json", key(2).to_hex())),
        )
        .unwrap();
        let fresh = ResultStore::persistent(&dir).unwrap();
        let err = fresh.get(key(2)).unwrap_err();
        assert!(err.to_string().contains("foreign key"), "{err}");
        // Garbage bytes are corrupt, not a crash.
        std::fs::write(dir.join(format!("{}.json", key(3).to_hex())), "}{").unwrap();
        assert!(matches!(fresh.get(key(3)), Err(Error::StoreCorrupt { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoints_are_a_separate_keyspace() {
        let store = ResultStore::in_memory();
        store.put_checkpoint(key(9), json!({"generation": 4}));
        assert_eq!(store.get(key(9)).unwrap(), None, "checkpoints never alias results");
        assert_eq!(store.checkpoint(key(9)), Some(json!({"generation": 4})));
        store.clear_checkpoint(key(9));
        assert_eq!(store.checkpoint(key(9)), None);
    }
}
