//! The content-addressed result store: fingerprint-keyed payloads with
//! integrity checking, optionally persisted across runs.
//!
//! Every entry is an envelope `{format, key, payload_fingerprint, seq,
//! payload}`. The payload fingerprint is recomputed on every read and
//! compared to the recorded one — disk corruption or a tampered file
//! surfaces as [`Error::StoreCorrupt`] instead of a silently wrong result.
//! Because fleet jobs are deterministic, a corrupt entry is never fatal:
//! [`ResultStore::quarantine_corrupt`] moves it aside to a `.corrupt`
//! sidecar (preserved for forensics) and the client re-derives the payload
//! by resubmitting the job — bit-identically, which the repair asserts
//! whenever the sidecar still carries a parseable recorded fingerprint.
//!
//! All mirror I/O goes through an injected [`Disk`] (the queue's `Clock`
//! pattern): transient write failures are absorbed by a bounded,
//! deterministically-seeded backoff; exhausting the retry budget is a
//! typed [`Error::StoreUnavailable`], never a spin. A [`StoreBudget`]
//! bounds the mirror; overflow evicts recomputable entries
//! oldest-sequence-first, skipping pinned keys (live GA checkpoints).
//!
//! GA checkpoints live in a separate keyspace (same fingerprint keys,
//! `checkpoint-` file prefix): they are scratch state for lease re-claims,
//! deleted once the job's final payload lands.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use serde_json::{json, Value};

use cohort_types::{Error, Fingerprint, Result};

use crate::disk::{backoff_ns, give_up, Disk, SystemDisk};

/// Format marker written to (and required from) persisted entries. The
/// `seq` field added for eviction ordering is optional-on-read (missing
/// reads as 0), so `/1` envelopes from earlier releases stay readable.
const FORMAT: &str = "cohort-fleet-entry/1";

/// Mirror writes retry at most this many times before the typed give-up.
const WRITE_ATTEMPTS: u64 = 4;

/// Seed of the retry-backoff jitter stream — fixed, so fault-absorption
/// schedules replay bit-identically across runs.
const BACKOFF_SEED: u64 = 0xc047_5eed;

/// Digests a payload's canonical JSON spelling. `serde_json` serializes
/// object keys in sorted order, so equal `Value`s digest identically
/// regardless of construction order.
#[must_use]
pub fn payload_fingerprint(payload: &Value) -> Fingerprint {
    let text = serde_json::to_string(payload).expect("a Value serializes infallibly");
    Fingerprint::builder().bytes(text.as_bytes()).finish()
}

struct Entry {
    payload: Value,
    payload_fp: Fingerprint,
    seq: u64,
}

/// Size/entry budget for the persistent mirror. `None` axes are
/// unbounded; the default is fully unbounded (no eviction ever).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreBudget {
    /// At most this many entries on disk.
    pub max_entries: Option<usize>,
    /// At most this many envelope bytes on disk.
    pub max_bytes: Option<u64>,
}

impl StoreBudget {
    /// Whether any axis is bounded (bounded stores index the directory
    /// eagerly on open so eviction age-ordering survives the process).
    #[must_use]
    pub fn is_bounded(&self) -> bool {
        self.max_entries.is_some() || self.max_bytes.is_some()
    }

    fn exceeded(&self, entries: usize, bytes: u64) -> bool {
        self.max_entries.is_some_and(|m| entries > m) || self.max_bytes.is_some_and(|m| bytes > m)
    }
}

/// What [`ResultStore::quarantine_corrupt`] preserved for forensics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptSidecar {
    /// The `.corrupt` sidecar path holding the quarantined bytes (`None`
    /// when only the in-memory copy was corrupt — nothing on disk).
    pub path: Option<PathBuf>,
    /// The payload fingerprint the corrupt envelope claimed, when the
    /// sidecar is still parseable enough to recover it — the repair
    /// asserts the re-derived payload matches it bit-identically.
    pub recorded_fp: Option<Fingerprint>,
}

/// Counter snapshot of the store's self-healing machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreHealth {
    /// Transient mirror-write failures absorbed by backoff.
    pub disk_retries: u64,
    /// Mirror writes abandoned after the full retry budget.
    pub disk_give_ups: u64,
    /// Entries evicted to hold the [`StoreBudget`].
    pub evictions: u64,
    /// Corrupt entries quarantined to `.corrupt` sidecars.
    pub corrupt_quarantined: u64,
    /// Corrupt entries repaired by re-deriving the payload.
    pub repairs: u64,
    /// Repairs whose re-derived payload matched the sidecar's recorded
    /// fingerprint bit-identically (always equals `repairs` when every
    /// sidecar was parseable — determinism at work).
    pub repairs_bit_identical: u64,
}

/// Fingerprint-keyed result store shared by all clients and worker shards.
///
/// In-memory always; give it a directory ([`ResultStore::persistent`]) to
/// also mirror every entry to disk, making the memo survive the process —
/// a later fleet run answers repeated submissions from the store without
/// executing anything.
pub struct ResultStore {
    entries: Mutex<BTreeMap<Fingerprint, Entry>>,
    checkpoints: Mutex<BTreeMap<Fingerprint, Value>>,
    /// Disk usage index of the mirror: key → (seq, envelope bytes).
    /// Maintained for budget-bounded stores (seeded by the open scan).
    index: Mutex<BTreeMap<Fingerprint, (u64, u64)>>,
    pins: Mutex<BTreeSet<Fingerprint>>,
    /// Keys quarantined and awaiting re-derivation, mapped to the payload
    /// fingerprint the corrupt entry *claimed* (when recoverable). The
    /// next [`ResultStore::put`] of such a key is the repair, and the
    /// store verifies its bit-identity against this record itself —
    /// whichever side performed the quarantine (open scan, worker claim,
    /// client wait).
    pending_repairs: Mutex<BTreeMap<Fingerprint, Option<Fingerprint>>>,
    dir: Option<PathBuf>,
    disk: Arc<dyn Disk>,
    budget: StoreBudget,
    next_seq: AtomicU64,
    hits: AtomicU64,
    disk_retries: AtomicU64,
    disk_give_ups: AtomicU64,
    evictions: AtomicU64,
    corrupt_quarantined: AtomicU64,
    repairs: AtomicU64,
    repairs_bit_identical: AtomicU64,
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStore")
            .field("entries", &self.lock_entries().len())
            .field("dir", &self.dir)
            .field("budget", &self.budget)
            .finish_non_exhaustive()
    }
}

impl ResultStore {
    fn with_parts(dir: Option<PathBuf>, disk: Arc<dyn Disk>, budget: StoreBudget) -> Self {
        ResultStore {
            entries: Mutex::new(BTreeMap::new()),
            checkpoints: Mutex::new(BTreeMap::new()),
            index: Mutex::new(BTreeMap::new()),
            pins: Mutex::new(BTreeSet::new()),
            pending_repairs: Mutex::new(BTreeMap::new()),
            dir,
            disk,
            budget,
            next_seq: AtomicU64::new(1),
            hits: AtomicU64::new(0),
            disk_retries: AtomicU64::new(0),
            disk_give_ups: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt_quarantined: AtomicU64::new(0),
            repairs: AtomicU64::new(0),
            repairs_bit_identical: AtomicU64::new(0),
        }
    }

    /// A store living only as long as the process.
    #[must_use]
    pub fn in_memory() -> Self {
        Self::with_parts(None, Arc::new(SystemDisk::new()), StoreBudget::default())
    }

    /// A store mirroring every entry into `dir` (created if missing), so
    /// results persist across fleet runs and are shared by every client
    /// pointing at the same directory. Unbounded, on the real filesystem.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] if the directory cannot be created.
    pub fn persistent(dir: impl Into<PathBuf>) -> Result<Self> {
        Self::persistent_with(dir, Arc::new(SystemDisk::new()), StoreBudget::default())
    }

    /// A persistent store with an injected [`Disk`] and a [`StoreBudget`].
    ///
    /// Opening sweeps crash debris (orphaned `*.json.tmp` files from a
    /// process killed mid-write) and, when the budget is bounded, indexes
    /// the directory eagerly — corrupt entries found by the scan are
    /// quarantined to `.corrupt` sidecars, never loaded and never fatal.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] if the directory cannot be created or
    /// listed.
    pub fn persistent_with(
        dir: impl Into<PathBuf>,
        disk: Arc<dyn Disk>,
        budget: StoreBudget,
    ) -> Result<Self> {
        let dir = dir.into();
        disk.create_dir_all(&dir)
            .map_err(|e| Error::Codec(format!("cannot create store dir {}: {e}", dir.display())))?;
        let store = Self::with_parts(Some(dir.clone()), disk, budget);
        store.open_scan(&dir)?;
        Ok(store)
    }

    /// Sweeps tmp debris; indexes entries when the budget is bounded.
    fn open_scan(&self, dir: &Path) -> Result<()> {
        let files = self
            .disk
            .list(dir)
            .map_err(|e| Error::Codec(format!("cannot list store dir {}: {e}", dir.display())))?;
        let mut max_seq = 0;
        for path in files {
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            let Some(name) = name else { continue };
            if name.ends_with(".json.tmp") {
                // A torn write from a killed process: the rename never
                // happened, so the debris shadows nothing — drop it.
                self.disk.remove_file(&path).ok();
                continue;
            }
            if !self.budget.is_bounded() {
                continue;
            }
            let Some(stem) = name.strip_suffix(".json") else { continue };
            let Ok(key) = Fingerprint::from_hex(stem) else { continue };
            let Ok(text) = self.disk.read_to_string(&path) else { continue };
            match Self::decode_envelope(key, &text) {
                Ok(entry) => {
                    max_seq = max_seq.max(entry.seq);
                    self.lock_index().insert(key, (entry.seq, text.len() as u64));
                }
                Err(_) => {
                    // Truncated or tampered — quarantine now so the scan's
                    // index (and every later read) only sees good entries.
                    self.quarantine_corrupt(key);
                }
            }
        }
        self.next_seq.fetch_max(max_seq + 1, Ordering::SeqCst);
        Ok(())
    }

    // Chaos survival: a worker may panic (simulated kill) moments after a
    // store call returns; never let that poison the maps for its siblings.
    fn lock_entries(&self) -> std::sync::MutexGuard<'_, BTreeMap<Fingerprint, Entry>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_checkpoints(&self) -> std::sync::MutexGuard<'_, BTreeMap<Fingerprint, Value>> {
        self.checkpoints.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_index(&self) -> std::sync::MutexGuard<'_, BTreeMap<Fingerprint, (u64, u64)>> {
        self.index.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_pins(&self) -> std::sync::MutexGuard<'_, BTreeSet<Fingerprint>> {
        self.pins.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_pending_repairs(
        &self,
    ) -> std::sync::MutexGuard<'_, BTreeMap<Fingerprint, Option<Fingerprint>>> {
        self.pending_repairs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn entry_path(dir: &Path, key: Fingerprint) -> PathBuf {
        dir.join(format!("{}.json", key.to_hex()))
    }

    fn sidecar_path(dir: &Path, key: Fingerprint) -> PathBuf {
        dir.join(format!("{}.json.corrupt", key.to_hex()))
    }

    /// One mirror I/O verb with the bounded, seeded retry backoff.
    fn with_retry(
        &self,
        path: &Path,
        mut op: impl FnMut() -> std::result::Result<(), String>,
    ) -> Result<()> {
        let mut last = String::new();
        for attempt in 0..WRITE_ATTEMPTS {
            match op() {
                Ok(()) => return Ok(()),
                Err(e) => last = e,
            }
            if attempt + 1 < WRITE_ATTEMPTS {
                self.disk_retries.fetch_add(1, Ordering::SeqCst);
                let ns = backoff_ns(BACKOFF_SEED, path, attempt);
                if ns > 0 {
                    std::thread::sleep(std::time::Duration::from_nanos(ns));
                }
            }
        }
        self.disk_give_ups.fetch_add(1, Ordering::SeqCst);
        Err(give_up(path, WRITE_ATTEMPTS, last))
    }

    /// Stores `payload` under `key`, replacing any previous entry (jobs
    /// are deterministic, so a replay writes the identical payload).
    ///
    /// # Errors
    ///
    /// Returns [`Error::StoreUnavailable`] if the persistent mirror still
    /// cannot be written after the bounded retry backoff; the in-memory
    /// entry is installed regardless.
    pub fn put(&self, key: Fingerprint, payload: Value) -> Result<()> {
        let payload_fp = payload_fingerprint(&payload);
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        let envelope = json!({
            "format": FORMAT,
            "key": key.to_hex(),
            "payload_fingerprint": payload_fp.to_hex(),
            "seq": seq,
            "payload": payload.clone(),
        });
        self.lock_entries().insert(key, Entry { payload, payload_fp, seq });
        // If this key was quarantined, this put is its repair — verify
        // bit-identity against the fingerprint the corrupt entry claimed.
        // The in-memory entry is the repair even if the mirror write
        // below fails, so the note lands before the disk I/O.
        if let Some(recorded) = self.lock_pending_repairs().remove(&key) {
            self.note_repair(recorded.map(|fp| fp == payload_fp));
        }
        if let Some(dir) = &self.dir {
            let path = Self::entry_path(dir, key);
            let mut text =
                serde_json::to_string_pretty(&envelope).expect("a Value serializes infallibly");
            text.push('\n');
            // Atomic tmp + rename: a torn write never shadows a good entry.
            let tmp = path.with_extension("json.tmp");
            self.with_retry(&tmp, || self.disk.write(&tmp, &text))?;
            self.with_retry(&path, || self.disk.rename(&tmp, &path))?;
            self.lock_index().insert(key, (seq, text.len() as u64));
            self.enforce_budget(key);
        }
        Ok(())
    }

    /// Evicts oldest-sequence-first until the mirror fits the budget.
    /// Pinned keys and the just-written `protect` key are never victims;
    /// eviction reclaims disk only — the in-memory copy stays servable for
    /// the rest of this run, and the entry is recomputable forever.
    fn enforce_budget(&self, protect: Fingerprint) {
        if !self.budget.is_bounded() {
            return;
        }
        let Some(dir) = &self.dir else { return };
        loop {
            let victim = {
                let index = self.lock_index();
                let entries = index.len();
                let bytes: u64 = index.values().map(|&(_, b)| b).sum();
                if !self.budget.exceeded(entries, bytes) {
                    break;
                }
                let pins = self.lock_pins();
                index
                    .iter()
                    .filter(|(k, _)| **k != protect && !pins.contains(*k))
                    .min_by_key(|(k, &(seq, _))| (seq, **k))
                    .map(|(k, _)| *k)
            };
            let Some(victim) = victim else { break };
            self.disk.remove_file(&Self::entry_path(dir, victim)).ok();
            self.lock_index().remove(&victim);
            self.evictions.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Fetches the payload stored under `key` — memory first, then the
    /// persistent directory. Every read re-verifies the payload
    /// fingerprint.
    ///
    /// # Errors
    ///
    /// Returns [`Error::StoreCorrupt`] if the entry fails its integrity
    /// check (recomputed payload fingerprint differs from the recorded
    /// one, or a persisted envelope is filed under the wrong key). The
    /// caller can recover by [`ResultStore::quarantine_corrupt`] and a
    /// resubmission — see `FleetClient::wait`.
    pub fn get(&self, key: Fingerprint) -> Result<Option<Value>> {
        if let Some(entry) = self.lock_entries().get(&key) {
            if payload_fingerprint(&entry.payload) != entry.payload_fp {
                return Err(Error::StoreCorrupt {
                    key: key.to_hex(),
                    detail: "in-memory payload no longer matches its recorded fingerprint".into(),
                });
            }
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(entry.payload.clone()));
        }
        let Some(dir) = &self.dir else { return Ok(None) };
        let path = Self::entry_path(dir, key);
        if !self.disk.exists(&path) {
            return Ok(None);
        }
        let text = self
            .disk
            .read_to_string(&path)
            .map_err(|e| Error::Codec(format!("store read {}: {e}", path.display())))?;
        let entry = Self::decode_envelope(key, &text)?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.lock_index().insert(key, (entry.seq, text.len() as u64));
        let payload = entry.payload.clone();
        self.lock_entries().insert(key, entry);
        Ok(Some(payload))
    }

    fn decode_envelope(key: Fingerprint, text: &str) -> Result<Entry> {
        let corrupt = |detail: String| Error::StoreCorrupt { key: key.to_hex(), detail };
        let doc: Value = serde_json::from_str(text)
            .map_err(|e| corrupt(format!("entry is not well-formed JSON: {e}")))?;
        let format = doc.get("format").and_then(Value::as_str).unwrap_or("<missing>");
        if format != FORMAT {
            return Err(corrupt(format!("entry format `{format}` is not `{FORMAT}`")));
        }
        let filed_key = doc.get("key").and_then(Value::as_str).unwrap_or("<missing>");
        if filed_key != key.to_hex() {
            return Err(corrupt(format!("entry is filed under foreign key {filed_key}")));
        }
        let recorded = doc
            .get("payload_fingerprint")
            .and_then(Value::as_str)
            .ok_or_else(|| corrupt("entry has no payload fingerprint".into()))?;
        let recorded = Fingerprint::from_hex(recorded)
            .map_err(|e| corrupt(format!("unreadable payload fingerprint: {e}")))?;
        let seq = doc.get("seq").and_then(Value::as_u64).unwrap_or(0);
        let payload =
            doc.get("payload").cloned().ok_or_else(|| corrupt("entry has no payload".into()))?;
        let actual = payload_fingerprint(&payload);
        if actual != recorded {
            return Err(corrupt(format!(
                "payload fingerprint mismatch: recorded {}, recomputed {}",
                recorded.to_hex(),
                actual.to_hex()
            )));
        }
        Ok(Entry { payload, payload_fp: recorded, seq })
    }

    /// Quarantines `key`'s corrupt entry: the in-memory copy is dropped
    /// and the on-disk envelope (if any) is renamed to a `.corrupt`
    /// sidecar, preserved for forensics. Returns what was preserved; the
    /// `recorded_fp` (recovered when the sidecar still parses as JSON)
    /// lets the repair assert the re-derived payload is bit-identical.
    pub fn quarantine_corrupt(&self, key: Fingerprint) -> CorruptSidecar {
        // The corrupt in-memory entry's *recorded* fingerprint is intact
        // even when its payload is not — keep it as a fallback witness.
        let memory_fp = self.lock_entries().remove(&key).map(|e| e.payload_fp);
        let Some(dir) = &self.dir else {
            self.corrupt_quarantined.fetch_add(1, Ordering::SeqCst);
            self.lock_pending_repairs().insert(key, memory_fp);
            return CorruptSidecar { path: None, recorded_fp: memory_fp };
        };
        let path = Self::entry_path(dir, key);
        if !self.disk.exists(&path) {
            self.corrupt_quarantined.fetch_add(1, Ordering::SeqCst);
            self.lock_pending_repairs().insert(key, memory_fp);
            return CorruptSidecar { path: None, recorded_fp: memory_fp };
        }
        let recorded_fp = self
            .disk
            .read_to_string(&path)
            .ok()
            .and_then(|text| {
                let doc: Value = serde_json::from_str(&text).ok()?;
                let fp = doc.get("payload_fingerprint").and_then(Value::as_str)?;
                Fingerprint::from_hex(fp).ok()
            })
            .or(memory_fp);
        let sidecar = Self::sidecar_path(dir, key);
        if self.with_retry(&sidecar, || self.disk.rename(&path, &sidecar)).is_err() {
            // Forensics are best-effort; clearing the bad entry is not.
            self.disk.remove_file(&path).ok();
        }
        self.lock_index().remove(&key);
        self.corrupt_quarantined.fetch_add(1, Ordering::SeqCst);
        self.lock_pending_repairs().insert(key, recorded_fp);
        let path = if self.disk.exists(&sidecar) { Some(sidecar) } else { None };
        CorruptSidecar { path, recorded_fp }
    }

    /// Records one completed repair (a quarantined entry re-derived by
    /// resubmission); `bit_identical` says whether the repaired payload's
    /// fingerprint matched the one the corrupt entry claimed (`None` when
    /// the entry was too damaged to recover a fingerprint to compare).
    fn note_repair(&self, bit_identical: Option<bool>) {
        self.repairs.fetch_add(1, Ordering::SeqCst);
        if bit_identical == Some(true) {
            self.repairs_bit_identical.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Pins `key`: a pinned entry is never chosen for eviction. Live GA
    /// checkpoints pin their job's key automatically.
    pub fn pin(&self, key: Fingerprint) {
        self.lock_pins().insert(key);
    }

    /// Releases `key` back to the evictable pool.
    pub fn unpin(&self, key: Fingerprint) {
        self.lock_pins().remove(&key);
    }

    /// Counter snapshot of the self-healing machinery.
    #[must_use]
    pub fn health(&self) -> StoreHealth {
        StoreHealth {
            disk_retries: self.disk_retries.load(Ordering::SeqCst),
            disk_give_ups: self.disk_give_ups.load(Ordering::SeqCst),
            evictions: self.evictions.load(Ordering::SeqCst),
            corrupt_quarantined: self.corrupt_quarantined.load(Ordering::SeqCst),
            repairs: self.repairs.load(Ordering::SeqCst),
            repairs_bit_identical: self.repairs_bit_identical.load(Ordering::SeqCst),
        }
    }

    /// Whether `key` has a (memory or disk) entry, without verifying it.
    #[must_use]
    pub fn contains(&self, key: Fingerprint) -> bool {
        if self.lock_entries().contains_key(&key) {
            return true;
        }
        self.dir.as_deref().is_some_and(|dir| self.disk.exists(&Self::entry_path(dir, key)))
    }

    /// Number of in-memory entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock_entries().len()
    }

    /// Whether the in-memory store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock_entries().is_empty()
    }

    /// Number of successful reads answered so far (memory or disk).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Saves a GA checkpoint document for an in-flight job — the re-claim
    /// of an expired lease resumes from here instead of generation 0. The
    /// job's key is pinned against eviction while its checkpoint lives.
    pub fn put_checkpoint(&self, key: Fingerprint, doc: Value) {
        self.pin(key);
        self.lock_checkpoints().insert(key, doc);
    }

    /// The latest checkpoint for `key`, if any.
    #[must_use]
    pub fn checkpoint(&self, key: Fingerprint) -> Option<Value> {
        self.lock_checkpoints().get(&key).cloned()
    }

    /// Drops `key`'s checkpoint (called once the final payload landed)
    /// and releases its eviction pin.
    pub fn clear_checkpoint(&self, key: Fingerprint) {
        self.lock_checkpoints().remove(&key);
        self.unpin(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::FaultyDisk;

    fn key(n: u128) -> Fingerprint {
        Fingerprint::from_raw(n)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cohort-fleet-store-{tag}-test"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn put_get_round_trip_in_memory() {
        let store = ResultStore::in_memory();
        assert_eq!(store.get(key(1)).unwrap(), None);
        store.put(key(1), json!({"x": 7})).unwrap();
        assert_eq!(store.get(key(1)).unwrap(), Some(json!({"x": 7})));
        assert!(store.contains(key(1)));
        assert_eq!(store.hits(), 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn persistent_entries_survive_a_new_store() {
        let dir = temp_dir("persist");
        {
            let store = ResultStore::persistent(&dir).unwrap();
            store.put(key(0xabc), json!({"outcome": [1, 2, 3]})).unwrap();
        }
        let fresh = ResultStore::persistent(&dir).unwrap();
        assert!(fresh.contains(key(0xabc)));
        assert_eq!(fresh.get(key(0xabc)).unwrap(), Some(json!({"outcome": [1, 2, 3]})));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_entries_are_detected() {
        let dir = temp_dir("tamper");
        let store = ResultStore::persistent(&dir).unwrap();
        store.put(key(0xdead), json!({"wcml": 212})).unwrap();

        // Flip a payload byte on disk behind the store's back.
        let path = dir.join(format!("{}.json", key(0xdead).to_hex()));
        let tampered = std::fs::read_to_string(&path).unwrap().replace("212", "211");
        std::fs::write(&path, tampered).unwrap();

        let fresh = ResultStore::persistent(&dir).unwrap();
        let err = fresh.get(key(0xdead)).unwrap_err();
        assert!(matches!(err, Error::StoreCorrupt { .. }), "{err}");
        assert!(err.to_string().contains("mismatch"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_and_garbage_envelopes_are_corrupt() {
        let dir = temp_dir("foreign");
        let store = ResultStore::persistent(&dir).unwrap();
        store.put(key(1), json!(1)).unwrap();
        // File key 1's envelope under key 2.
        std::fs::copy(
            dir.join(format!("{}.json", key(1).to_hex())),
            dir.join(format!("{}.json", key(2).to_hex())),
        )
        .unwrap();
        let fresh = ResultStore::persistent(&dir).unwrap();
        let err = fresh.get(key(2)).unwrap_err();
        assert!(err.to_string().contains("foreign key"), "{err}");
        // Garbage bytes are corrupt, not a crash.
        std::fs::write(dir.join(format!("{}.json", key(3).to_hex())), "}{").unwrap();
        assert!(matches!(fresh.get(key(3)), Err(Error::StoreCorrupt { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoints_are_a_separate_keyspace() {
        let store = ResultStore::in_memory();
        store.put_checkpoint(key(9), json!({"generation": 4}));
        assert_eq!(store.get(key(9)).unwrap(), None, "checkpoints never alias results");
        assert_eq!(store.checkpoint(key(9)), Some(json!({"generation": 4})));
        store.clear_checkpoint(key(9));
        assert_eq!(store.checkpoint(key(9)), None);
    }

    #[test]
    fn quarantine_preserves_a_forensic_sidecar_with_the_recorded_fingerprint() {
        let dir = temp_dir("sidecar");
        let store = ResultStore::persistent(&dir).unwrap();
        store.put(key(0xbad), json!({"wcml": 99})).unwrap();
        let recorded = payload_fingerprint(&json!({"wcml": 99}));

        // Tamper the payload: the envelope still parses, so forensics can
        // recover the fingerprint the entry *claimed*.
        let path = dir.join(format!("{}.json", key(0xbad).to_hex()));
        let tampered = std::fs::read_to_string(&path).unwrap().replace("99", "98");
        std::fs::write(&path, tampered).unwrap();

        let fresh = ResultStore::persistent(&dir).unwrap();
        assert!(fresh.get(key(0xbad)).is_err());
        let sidecar = fresh.quarantine_corrupt(key(0xbad));
        assert_eq!(sidecar.recorded_fp, Some(recorded));
        let sidecar_path = sidecar.path.expect("sidecar written");
        assert!(sidecar_path.to_string_lossy().ends_with(".json.corrupt"));
        assert!(sidecar_path.exists(), "forensic bytes preserved");
        assert!(!path.exists(), "bad entry moved aside");
        assert_eq!(fresh.get(key(0xbad)).unwrap(), None, "key reads as absent after quarantine");
        assert_eq!(fresh.health().corrupt_quarantined, 1);

        // The repair is a plain re-put; the store remembers the pending
        // quarantine and verifies bit-identity against the recorded
        // fingerprint itself.
        fresh.put(key(0xbad), json!({"wcml": 99})).unwrap();
        let health = fresh.health();
        assert_eq!((health.repairs, health.repairs_bit_identical), (1, 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_entries_are_quarantined_on_open_not_fatal() {
        let dir = temp_dir("truncated");
        {
            let store = ResultStore::persistent(&dir).unwrap();
            store.put(key(0x11), json!({"a": 1})).unwrap();
            store.put(key(0x22), json!({"b": 2})).unwrap();
        }
        // Simulate a crash mid-write on an fs without atomic rename
        // semantics: chop the envelope in half, and leave tmp debris too.
        let victim = dir.join(format!("{}.json", key(0x11).to_hex()));
        let text = std::fs::read_to_string(&victim).unwrap();
        std::fs::write(&victim, &text[..text.len() / 2]).unwrap();
        std::fs::write(dir.join("dead.json.tmp"), "{\"torn").unwrap();

        // A budget-bounded open scans the directory: the truncated entry
        // is quarantined, the good one indexed, tmp debris swept — and
        // opening never errors.
        let budget = StoreBudget { max_entries: Some(16), max_bytes: None };
        let fresh =
            ResultStore::persistent_with(&dir, Arc::new(SystemDisk::new()), budget).unwrap();
        assert_eq!(fresh.health().corrupt_quarantined, 1);
        assert_eq!(fresh.get(key(0x11)).unwrap(), None, "truncated entry never loads");
        assert_eq!(fresh.get(key(0x22)).unwrap(), Some(json!({"b": 2})));
        assert!(!dir.join("dead.json.tmp").exists(), "tmp debris swept");
        assert!(
            dir.join(format!("{}.json.corrupt", key(0x11).to_hex())).exists(),
            "forensic sidecar kept"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_is_oldest_first_and_respects_pins() {
        let dir = temp_dir("evict");
        let budget = StoreBudget { max_entries: Some(2), max_bytes: None };
        let store =
            ResultStore::persistent_with(&dir, Arc::new(SystemDisk::new()), budget).unwrap();
        store.put(key(1), json!({"n": 1})).unwrap(); // seq 1 — oldest
        store.put(key(2), json!({"n": 2})).unwrap(); // seq 2
        store.put(key(3), json!({"n": 3})).unwrap(); // seq 3 → evicts key 1
        let on_disk = |k: Fingerprint| dir.join(format!("{}.json", k.to_hex())).exists();
        assert!(!on_disk(key(1)), "oldest entry evicted from disk");
        assert!(on_disk(key(2)) && on_disk(key(3)));
        assert_eq!(store.health().evictions, 1);
        // The in-memory copy still serves for the rest of this run.
        assert_eq!(store.get(key(1)).unwrap(), Some(json!({"n": 1})));

        // Pin key 2: the next overflow must skip it and take key 3.
        store.pin(key(2));
        store.put(key(4), json!({"n": 4})).unwrap();
        assert!(on_disk(key(2)), "pinned entry survives");
        assert!(!on_disk(key(3)), "next-oldest unpinned entry evicted instead");
        assert_eq!(store.health().evictions, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_age_order_survives_reopening_the_store() {
        let dir = temp_dir("evict-reopen");
        let budget = StoreBudget { max_entries: Some(2), max_bytes: None };
        {
            let store =
                ResultStore::persistent_with(&dir, Arc::new(SystemDisk::new()), budget).unwrap();
            store.put(key(0xa), json!({"n": 10})).unwrap();
            store.put(key(0xb), json!({"n": 11})).unwrap();
        }
        // The reopened store resumes the sequence counter from disk: the
        // new entry is youngest, key 0xa (lowest persisted seq) goes.
        let store =
            ResultStore::persistent_with(&dir, Arc::new(SystemDisk::new()), budget).unwrap();
        store.put(key(0xc), json!({"n": 12})).unwrap();
        assert!(!dir.join(format!("{}.json", key(0xa).to_hex())).exists());
        assert!(dir.join(format!("{}.json", key(0xb).to_hex())).exists());
        assert!(dir.join(format!("{}.json", key(0xc).to_hex())).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_disk_faults_are_absorbed_by_backoff() {
        let dir = temp_dir("faulty");
        // Budget 2 transient faults per path: strictly under the 4-attempt
        // retry budget, so every put must eventually land.
        let disk = Arc::new(FaultyDisk::new(3, 2));
        let store =
            ResultStore::persistent_with(&dir, disk.clone(), StoreBudget::default()).unwrap();
        for n in 0..6u128 {
            store.put(key(n), json!({"n": n.to_string()})).unwrap();
        }
        let health = store.health();
        assert!(health.disk_retries > 0, "some seed in 6 paths injects a fault");
        assert_eq!(health.disk_give_ups, 0, "bounded faults never exhaust the budget");
        assert_eq!(disk.injected(), health.disk_retries);
        // Everything is durable and intact.
        let fresh = ResultStore::persistent(&dir).unwrap();
        for n in 0..6u128 {
            assert_eq!(fresh.get(key(n)).unwrap(), Some(json!({"n": n.to_string()})));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_persistent_fault_is_a_typed_give_up_not_a_spin() {
        let dir = temp_dir("giveup");
        // 64 transient faults per path dwarfs the 4-attempt budget: paths
        // with a non-zero budget must fail with the typed error.
        let disk = Arc::new(FaultyDisk::new(1, 64));
        let store = ResultStore::persistent_with(&dir, disk, StoreBudget::default()).unwrap();
        let mut gave_up = 0;
        for n in 0..8u128 {
            match store.put(key(n), json!({"n": n.to_string()})) {
                Ok(()) => {}
                Err(Error::StoreUnavailable { attempts, .. }) => {
                    assert_eq!(attempts, WRITE_ATTEMPTS);
                    gave_up += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(gave_up > 0, "some path draws a fault budget past the retries");
        assert_eq!(store.health().disk_give_ups, gave_up);
        std::fs::remove_dir_all(&dir).ok();
    }
}
