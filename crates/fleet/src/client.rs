//! The fleet front-end: spin up shards, absorb bursts of submissions,
//! hand out dedup-aware tickets.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use serde_json::Value;

use cohort_types::{Error, Fingerprint, Result, WorkerId};

use crate::queue::{JobQueue, QueueStats};
use crate::spec::JobSpec;
use crate::store::ResultStore;
use crate::worker::{ShardStats, WorkerShard};

/// Builder for a [`Fleet`].
#[derive(Debug, Clone)]
pub struct FleetBuilder {
    shards: usize,
    lease: Duration,
    store_dir: Option<PathBuf>,
}

impl Default for FleetBuilder {
    fn default() -> Self {
        FleetBuilder { shards: 2, lease: Duration::from_secs(30), store_dir: None }
    }
}

impl FleetBuilder {
    /// Number of worker shards (clamped to at least 1; default 2).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// The claim lease duration (default 30 s). Short leases recover
    /// faster from killed workers but must comfortably exceed the longest
    /// job, or healthy slow jobs get spuriously re-claimed (harmless —
    /// determinism — but wasteful).
    #[must_use]
    pub fn lease(mut self, lease: Duration) -> Self {
        self.lease = lease;
        self
    }

    /// Mirrors the result store into `dir`, sharing the memo across fleet
    /// runs (and across fleets pointing at the same directory).
    #[must_use]
    pub fn store_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    /// Starts the shards and returns the running fleet.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] if the persistent store directory cannot
    /// be created.
    pub fn build(self) -> Result<Fleet> {
        let store = Arc::new(match &self.store_dir {
            Some(dir) => ResultStore::persistent(dir)?,
            None => ResultStore::in_memory(),
        });
        let queue = Arc::new(JobQueue::new(self.lease));
        let mut handles = Vec::with_capacity(self.shards);
        let mut shard_stats = Vec::with_capacity(self.shards);
        for i in 0..self.shards {
            let shard =
                WorkerShard::new(WorkerId::new(i as u64), Arc::clone(&queue), Arc::clone(&store));
            shard_stats.push(shard.stats());
            handles.push(std::thread::spawn(move || shard.run()));
        }
        Ok(Fleet { queue, store, handles, shard_stats })
    }
}

/// A running fleet: worker shards over a shared queue and store.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cohort::{Protocol, SystemSpec};
/// use cohort_fleet::{Fleet, JobSpec};
/// use cohort_trace::micro;
/// use cohort_types::Criticality;
///
/// let fleet = Fleet::builder().shards(2).build()?;
/// let client = fleet.client();
/// let spec = SystemSpec::builder().core(Criticality::new(1)?).core(Criticality::new(1)?).build()?;
/// let job = JobSpec::Experiment {
///     spec,
///     protocol: Protocol::Msi,
///     workload: Arc::new(micro::ping_pong(2, 8)),
/// };
/// // A burst of duplicate submissions shares one execution.
/// let tickets: Vec<_> = (0..4).map(|_| client.submit(job.clone())).collect::<Result<_, _>>()?;
/// for t in &tickets {
///     assert!(client.wait(t)?.get("cycles").is_some());
/// }
/// let stats = fleet.shutdown();
/// assert_eq!(stats.queue.deduplicated, 3);
/// assert_eq!(stats.executed, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Fleet {
    queue: Arc<JobQueue>,
    store: Arc<ResultStore>,
    handles: Vec<JoinHandle<()>>,
    shard_stats: Vec<Arc<ShardStats>>,
}

/// Aggregate counters of a fleet's lifetime, returned by
/// [`Fleet::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetStats {
    /// Queue-side counters (submissions, dedup, lease reclaims).
    pub queue: QueueStats,
    /// Jobs executed and completed across all shards.
    pub executed: u64,
    /// Claims answered from the store without executing, across all
    /// shards.
    pub served: u64,
    /// Completions discarded as stale across all shards.
    pub stale: u64,
    /// GA claims resumed from a checkpoint across all shards.
    pub resumed: u64,
    /// Store reads answered (memory or persistent mirror).
    pub store_hits: u64,
}

impl Fleet {
    /// Starts configuring a fleet.
    #[must_use]
    pub fn builder() -> FleetBuilder {
        FleetBuilder::default()
    }

    /// A cheap handle for submitting jobs — clone one per submitting
    /// thread.
    #[must_use]
    pub fn client(&self) -> FleetClient {
        FleetClient { queue: Arc::clone(&self.queue), store: Arc::clone(&self.store) }
    }

    /// The shared result store (e.g. to pre-warm or inspect it).
    #[must_use]
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// Live counter snapshot without shutting down.
    #[must_use]
    pub fn stats(&self) -> FleetStats {
        let mut stats = FleetStats {
            queue: self.queue.stats(),
            store_hits: self.store.hits(),
            ..FleetStats::default()
        };
        for shard in &self.shard_stats {
            stats.executed += shard.executed.load(Ordering::Relaxed);
            stats.served += shard.served.load(Ordering::Relaxed);
            stats.stale += shard.stale.load(Ordering::Relaxed);
            stats.resumed += shard.resumed.load(Ordering::Relaxed);
        }
        stats
    }

    /// Closes the queue, drains the remaining jobs, joins the shards and
    /// returns the lifetime counters.
    #[must_use]
    pub fn shutdown(self) -> FleetStats {
        self.queue.close();
        for handle in self.handles {
            // A shard that panicked outside its job sandbox is already
            // accounted for by lease reclaim; ignore the join error.
            let _ = handle.join();
        }
        let mut stats = FleetStats {
            queue: self.queue.stats(),
            store_hits: self.store.hits(),
            ..FleetStats::default()
        };
        for shard in &self.shard_stats {
            stats.executed += shard.executed.load(Ordering::Relaxed);
            stats.served += shard.served.load(Ordering::Relaxed);
            stats.stale += shard.stale.load(Ordering::Relaxed);
            stats.resumed += shard.resumed.load(Ordering::Relaxed);
        }
        stats
    }
}

/// A submission ticket: the job's content-address plus whether the
/// submission was answered without queueing (a store hit from a previous
/// run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    /// The job's fingerprint — also its result-store key.
    pub fingerprint: Fingerprint,
    /// Whether the persistent store already held the payload at submit
    /// time (no execution at all, not even a deduplicated one).
    pub cached: bool,
}

/// A submitting handle onto a [`Fleet`].
#[derive(Debug, Clone)]
pub struct FleetClient {
    queue: Arc<JobQueue>,
    store: Arc<ResultStore>,
}

impl FleetClient {
    /// Submits a job. Bursts of duplicate specs collapse: the first
    /// submission queues the job, the rest ride the same execution, and a
    /// spec whose payload already sits in the (persistent) store skips
    /// the queue entirely.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the fleet is shut down.
    pub fn submit(&self, spec: JobSpec) -> Result<Ticket> {
        let fingerprint = spec.fingerprint();
        if self.store.contains(fingerprint) {
            // Answered from the memo of a previous run; register the job as
            // already done so `wait` resolves uniformly and no worker ever
            // claims it.
            let (fingerprint, _fresh) = self.queue.submit_resolved(spec)?;
            return Ok(Ticket { fingerprint, cached: true });
        }
        let (fingerprint, _fresh) = self.queue.submit(spec)?;
        Ok(Ticket { fingerprint, cached: false })
    }

    /// Blocks until the ticket's job completes and returns its payload.
    ///
    /// # Errors
    ///
    /// Returns [`Error::StoreCorrupt`] if the stored payload fails its
    /// integrity check, [`Error::InvalidConfig`] if the fleet shut down
    /// without the job ever being submitted.
    pub fn wait(&self, ticket: &Ticket) -> Result<Value> {
        if !self.queue.wait_done(ticket.fingerprint) {
            return Err(Error::InvalidConfig(format!(
                "fleet shut down before job {} completed",
                ticket.fingerprint
            )));
        }
        self.store.get(ticket.fingerprint)?.ok_or_else(|| {
            Error::InvalidConfig(format!(
                "job {} completed but its payload is missing from the store",
                ticket.fingerprint
            ))
        })
    }

    /// Submit-and-wait in one call.
    ///
    /// # Errors
    ///
    /// As [`FleetClient::submit`] and [`FleetClient::wait`].
    pub fn run(&self, spec: JobSpec) -> Result<Value> {
        let ticket = self.submit(spec)?;
        self.wait(&ticket)
    }
}
