//! The fleet front-end: spin up shards, absorb bursts of submissions,
//! hand out dedup-aware tickets — and keep callers safe from the fleet's
//! own failures: a quarantined job is a typed error (never a hang), a
//! corrupt store entry is transparently repaired by resubmission, and
//! every wait can be bounded.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use serde_json::Value;

use cohort_types::{Error, Fingerprint, Result, WorkerId};

use crate::disk::Disk;
use crate::queue::{JobQueue, QuarantineDiag, QueueStats, WaitOutcome};
use crate::spec::JobSpec;
use crate::store::{ResultStore, StoreBudget, StoreHealth};
use crate::worker::{ShardStats, WorkerShard};

/// A corrupt entry is repaired by resubmission at most this many times
/// per wait before the corruption is surfaced to the caller.
const MAX_REPAIRS_PER_WAIT: u64 = 2;

/// Builder for a [`Fleet`].
#[derive(Debug, Clone)]
pub struct FleetBuilder {
    shards: usize,
    lease: Duration,
    store_dir: Option<PathBuf>,
    max_attempts: Option<u64>,
    disk: Option<Arc<dyn Disk>>,
    budget: StoreBudget,
    poison: BTreeSet<Fingerprint>,
    crash_before_complete: u64,
    crash_after_generations: Option<usize>,
}

impl Default for FleetBuilder {
    fn default() -> Self {
        FleetBuilder {
            shards: 2,
            lease: Duration::from_secs(30),
            store_dir: None,
            max_attempts: None,
            disk: None,
            budget: StoreBudget::default(),
            poison: BTreeSet::new(),
            crash_before_complete: 0,
            crash_after_generations: None,
        }
    }
}

impl FleetBuilder {
    /// Number of worker shards (clamped to at least 1; default 2).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// The claim lease duration (default 30 s). Short leases recover
    /// faster from killed workers but must comfortably exceed the longest
    /// job, or healthy slow jobs get spuriously re-claimed (harmless —
    /// determinism — but wasteful).
    #[must_use]
    pub fn lease(mut self, lease: Duration) -> Self {
        self.lease = lease;
        self
    }

    /// Mirrors the result store into `dir`, sharing the memo across fleet
    /// runs (and across fleets pointing at the same directory).
    #[must_use]
    pub fn store_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store_dir = Some(dir.into());
        self
    }

    /// The attempt budget: a job whose lease expires this many times is
    /// quarantined with diagnostics instead of re-claimed forever
    /// (default 5, clamped to at least 1).
    #[must_use]
    pub fn max_attempts(mut self, max_attempts: u64) -> Self {
        self.max_attempts = Some(max_attempts);
        self
    }

    /// Injects the [`Disk`] behind the persistent mirror (default: the
    /// real filesystem). Chaos campaigns inject a
    /// [`crate::disk::FaultyDisk`] here.
    #[must_use]
    pub fn disk(mut self, disk: Arc<dyn Disk>) -> Self {
        self.disk = Some(disk);
        self
    }

    /// Bounds the persistent mirror; overflow evicts unpinned entries
    /// oldest-first (default: unbounded).
    #[must_use]
    pub fn store_budget(mut self, budget: StoreBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Chaos hook: marks a job fingerprint as poison — every execution
    /// attempt panics its worker, on every shard, until the queue's
    /// attempt budget quarantines the job.
    #[must_use]
    pub fn poison(mut self, fingerprint: Fingerprint) -> Self {
        self.poison.insert(fingerprint);
        self
    }

    /// Chaos hook (shard 0 only): the first `n` executed jobs are
    /// abandoned right before `complete` — a worker killed at the worst
    /// moment. See [`WorkerShard::crash_before_complete`].
    #[must_use]
    pub fn crash_before_complete(mut self, n: u64) -> Self {
        self.crash_before_complete = n;
        self
    }

    /// Chaos hook (shard 0 only): panic after a GA job's `n`-th
    /// generation. See [`WorkerShard::crash_after_generations`].
    #[must_use]
    pub fn crash_after_generations(mut self, n: usize) -> Self {
        self.crash_after_generations = Some(n);
        self
    }

    /// Starts the shards and returns the running fleet.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] if the persistent store directory cannot
    /// be created.
    pub fn build(self) -> Result<Fleet> {
        let store = Arc::new(match &self.store_dir {
            Some(dir) => {
                let disk =
                    self.disk.clone().unwrap_or_else(|| Arc::new(crate::disk::SystemDisk::new()));
                ResultStore::persistent_with(dir, disk, self.budget)?
            }
            None => ResultStore::in_memory(),
        });
        let mut queue = JobQueue::new(self.lease);
        if let Some(max_attempts) = self.max_attempts {
            queue.set_max_attempts(max_attempts);
        }
        let queue = Arc::new(queue);
        let poison = Arc::new(self.poison);
        let mut handles = Vec::with_capacity(self.shards);
        let mut shard_stats = Vec::with_capacity(self.shards);
        for i in 0..self.shards {
            let mut shard =
                WorkerShard::new(WorkerId::new(i as u64), Arc::clone(&queue), Arc::clone(&store))
                    .poison_jobs(Arc::clone(&poison));
            if i == 0 {
                shard = shard.crash_before_complete(self.crash_before_complete);
                if let Some(generation) = self.crash_after_generations {
                    shard = shard.crash_after_generations(generation);
                }
            }
            shard_stats.push(shard.stats());
            handles.push(std::thread::spawn(move || shard.run()));
        }
        Ok(Fleet { queue, store, handles, shard_stats })
    }
}

/// A running fleet: worker shards over a shared queue and store.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use cohort::{Protocol, SystemSpec};
/// use cohort_fleet::{Fleet, JobSpec};
/// use cohort_trace::micro;
/// use cohort_types::Criticality;
///
/// let fleet = Fleet::builder().shards(2).build()?;
/// let client = fleet.client();
/// let spec = SystemSpec::builder().core(Criticality::new(1)?).core(Criticality::new(1)?).build()?;
/// let job = JobSpec::Experiment {
///     spec,
///     protocol: Protocol::Msi,
///     workload: Arc::new(micro::ping_pong(2, 8)),
/// };
/// // A burst of duplicate submissions shares one execution.
/// let tickets: Vec<_> = (0..4).map(|_| client.submit(job.clone())).collect::<Result<_, _>>()?;
/// for t in &tickets {
///     assert!(client.wait(t)?.get("cycles").is_some());
/// }
/// let stats = fleet.shutdown();
/// assert_eq!(stats.queue.deduplicated, 3);
/// assert_eq!(stats.executed, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Fleet {
    queue: Arc<JobQueue>,
    store: Arc<ResultStore>,
    handles: Vec<JoinHandle<()>>,
    shard_stats: Vec<Arc<ShardStats>>,
}

/// The fleet's self-healing scoreboard: every fault the supervision layer
/// tolerated, and what it did about it. Embedded in [`FleetStats`] and in
/// the fleet/cert bench reports (validated by `schema_check`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetHealth {
    /// Expired leases swept back to pending (killed/slow workers).
    pub reclaims: u64,
    /// Jobs convicted as poison after exhausting the attempt budget.
    pub quarantined: u64,
    /// Late completions rejected at a stale epoch.
    pub stale_completions: u64,
    /// Corrupt store entries moved to `.corrupt` forensic sidecars.
    pub corrupt_quarantined: u64,
    /// Corrupt entries repaired by re-deriving their payload.
    pub repairs: u64,
    /// Repairs verified bit-identical against the sidecar's recorded
    /// fingerprint.
    pub repairs_bit_identical: u64,
    /// Mirror entries evicted to hold the [`StoreBudget`].
    pub evictions: u64,
    /// Transient mirror-write failures absorbed by backoff.
    pub disk_retries: u64,
    /// Mirror writes abandoned after the full retry budget.
    pub disk_give_ups: u64,
}

impl FleetHealth {
    fn collect(queue: &QueueStats, store: StoreHealth) -> Self {
        FleetHealth {
            reclaims: queue.reclaims,
            quarantined: queue.quarantined,
            stale_completions: queue.stale_completions,
            corrupt_quarantined: store.corrupt_quarantined,
            repairs: store.repairs,
            repairs_bit_identical: store.repairs_bit_identical,
            evictions: store.evictions,
            disk_retries: store.disk_retries,
            disk_give_ups: store.disk_give_ups,
        }
    }

    /// The scoreboard as a JSON object — the shape embedded in the
    /// fleet/cert bench reports and validated by `schema_check`.
    #[must_use]
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "reclaims": self.reclaims,
            "quarantined": self.quarantined,
            "stale_completions": self.stale_completions,
            "corrupt_quarantined": self.corrupt_quarantined,
            "repairs": self.repairs,
            "repairs_bit_identical": self.repairs_bit_identical,
            "evictions": self.evictions,
            "disk_retries": self.disk_retries,
            "disk_give_ups": self.disk_give_ups,
        })
    }
}

/// Aggregate counters of a fleet's lifetime, returned by
/// [`Fleet::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetStats {
    /// Queue-side counters (submissions, dedup, lease reclaims).
    pub queue: QueueStats,
    /// Jobs executed and completed across all shards.
    pub executed: u64,
    /// Claims answered from the store without executing, across all
    /// shards.
    pub served: u64,
    /// Completions discarded as stale across all shards.
    pub stale: u64,
    /// GA claims resumed from a checkpoint across all shards.
    pub resumed: u64,
    /// Store reads answered (memory or persistent mirror).
    pub store_hits: u64,
    /// The self-healing scoreboard.
    pub health: FleetHealth,
}

impl Fleet {
    /// Starts configuring a fleet.
    #[must_use]
    pub fn builder() -> FleetBuilder {
        FleetBuilder::default()
    }

    /// A cheap handle for submitting jobs — clone one per submitting
    /// thread.
    #[must_use]
    pub fn client(&self) -> FleetClient {
        FleetClient { queue: Arc::clone(&self.queue), store: Arc::clone(&self.store) }
    }

    /// The shared result store (e.g. to pre-warm or inspect it).
    #[must_use]
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// Live counter snapshot without shutting down.
    #[must_use]
    pub fn stats(&self) -> FleetStats {
        let queue = self.queue.stats();
        let mut stats = FleetStats {
            queue,
            store_hits: self.store.hits(),
            health: FleetHealth::collect(&queue, self.store.health()),
            ..FleetStats::default()
        };
        for shard in &self.shard_stats {
            stats.executed += shard.executed.load(Ordering::Relaxed);
            stats.served += shard.served.load(Ordering::Relaxed);
            stats.stale += shard.stale.load(Ordering::Relaxed);
            stats.resumed += shard.resumed.load(Ordering::Relaxed);
        }
        stats
    }

    /// The self-healing scoreboard right now.
    #[must_use]
    pub fn health(&self) -> FleetHealth {
        FleetHealth::collect(&self.queue.stats(), self.store.health())
    }

    /// Every quarantine so far, with its fatal-claim diagnostics, in
    /// fingerprint order (deterministic).
    #[must_use]
    pub fn quarantines(&self) -> Vec<QuarantineDiag> {
        self.queue.quarantines()
    }

    /// Closes the queue, drains the remaining jobs, joins the shards and
    /// returns the lifetime counters.
    #[must_use]
    pub fn shutdown(self) -> FleetStats {
        self.queue.close();
        for handle in self.handles {
            // A shard that panicked outside its job sandbox is already
            // accounted for by lease reclaim; ignore the join error.
            let _ = handle.join();
        }
        let queue = self.queue.stats();
        let mut stats = FleetStats {
            queue,
            store_hits: self.store.hits(),
            health: FleetHealth::collect(&queue, self.store.health()),
            ..FleetStats::default()
        };
        for shard in &self.shard_stats {
            stats.executed += shard.executed.load(Ordering::Relaxed);
            stats.served += shard.served.load(Ordering::Relaxed);
            stats.stale += shard.stale.load(Ordering::Relaxed);
            stats.resumed += shard.resumed.load(Ordering::Relaxed);
        }
        stats
    }
}

/// A submission ticket: the job's content-address plus whether the
/// submission was answered without queueing (a store hit from a previous
/// run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    /// The job's fingerprint — also its result-store key.
    pub fingerprint: Fingerprint,
    /// Whether the persistent store already held the payload at submit
    /// time (no execution at all, not even a deduplicated one).
    pub cached: bool,
}

/// A submitting handle onto a [`Fleet`].
#[derive(Debug, Clone)]
pub struct FleetClient {
    queue: Arc<JobQueue>,
    store: Arc<ResultStore>,
}

impl FleetClient {
    /// Submits a job. Bursts of duplicate specs collapse: the first
    /// submission queues the job, the rest ride the same execution, and a
    /// spec whose payload already sits in the (persistent) store skips
    /// the queue entirely.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the fleet is shut down.
    pub fn submit(&self, spec: JobSpec) -> Result<Ticket> {
        let fingerprint = spec.fingerprint();
        // Resolve against the memo by *reading* it, not just probing for
        // the file: the read pulls the payload into memory and through
        // its integrity check, so neither a later eviction of the disk
        // entry nor bit rot can take an already-resolved job away from
        // this run's waiters.
        match self.store.get(fingerprint) {
            Ok(Some(_)) => {
                // Answered from the memo of a previous run; register the
                // job as already done so `wait` resolves uniformly and no
                // worker ever claims it.
                let (fingerprint, _fresh) = self.queue.submit_resolved(spec)?;
                return Ok(Ticket { fingerprint, cached: true });
            }
            Ok(None) => {}
            Err(_corrupt) => {
                // Bit rot caught at submission: quarantine the forensics
                // and queue the job — the fresh execution's put is the
                // repair, and the store certifies its bit-identity.
                self.store.quarantine_corrupt(fingerprint);
            }
        }
        let (fingerprint, _fresh) = self.queue.submit(spec)?;
        Ok(Ticket { fingerprint, cached: false })
    }

    /// Blocks until the ticket's job completes and returns its payload.
    ///
    /// Self-healing: a corrupt stored payload is quarantined to its
    /// forensic sidecar and transparently re-derived by resubmitting the
    /// job (determinism makes the repair bit-identical, which is asserted
    /// against the sidecar whenever it is still parseable). A payload
    /// missing from a budget-bounded store (evicted between runs) is
    /// likewise recomputed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::JobQuarantined`] if the job exhausted its attempt
    /// budget, [`Error::StoreCorrupt`] if repeated repairs keep producing
    /// corruption, [`Error::InvalidConfig`] if the fleet shut down
    /// without the job ever being submitted.
    pub fn wait(&self, ticket: &Ticket) -> Result<Value> {
        self.wait_deadline(ticket, None)
    }

    /// [`FleetClient::wait`], but bounded: a quarantined, stuck or
    /// never-scheduled job can delay the caller at most `timeout`
    /// (measured on the queue's injected clock) per wait round.
    ///
    /// # Errors
    ///
    /// As [`FleetClient::wait`], plus [`Error::WaitTimedOut`] when the
    /// bound elapses first.
    pub fn wait_timeout(&self, ticket: &Ticket, timeout: Duration) -> Result<Value> {
        self.wait_deadline(ticket, Some(timeout))
    }

    fn wait_deadline(&self, ticket: &Ticket, timeout: Option<Duration>) -> Result<Value> {
        let mut repairs = 0u64;
        loop {
            match self.queue.wait_outcome(ticket.fingerprint, timeout) {
                WaitOutcome::Done => {}
                WaitOutcome::Quarantined(diag) => {
                    return Err(Error::JobQuarantined {
                        key: diag.fingerprint.to_hex(),
                        attempts: diag.attempts,
                        worker: diag.worker.get(),
                        epoch: diag.epoch.get(),
                        deadline_ns: diag.deadline_ns,
                    });
                }
                WaitOutcome::Shutdown => {
                    return Err(Error::InvalidConfig(format!(
                        "fleet shut down before job {} completed",
                        ticket.fingerprint
                    )));
                }
                WaitOutcome::TimedOut => {
                    return Err(Error::WaitTimedOut {
                        key: ticket.fingerprint.to_hex(),
                        waited_ms: timeout
                            .map_or(0, |t| u64::try_from(t.as_millis()).unwrap_or(u64::MAX)),
                    });
                }
            }
            match self.store.get(ticket.fingerprint) {
                Ok(Some(payload)) => return Ok(payload),
                Ok(None) => {
                    // Done, but the payload is gone — evicted from a
                    // bounded mirror between runs. Recompute it.
                    if repairs >= MAX_REPAIRS_PER_WAIT {
                        return Err(Error::InvalidConfig(format!(
                            "job {} completed but its payload is missing from the store",
                            ticket.fingerprint
                        )));
                    }
                    repairs += 1;
                    self.queue.requeue(ticket.fingerprint)?;
                }
                Err(corrupt @ Error::StoreCorrupt { .. }) => {
                    // Quarantine the forensics, then re-derive the payload
                    // through the queue — the self-healing repair. The
                    // store verifies the repair's bit-identity when the
                    // re-derived payload lands.
                    if repairs >= MAX_REPAIRS_PER_WAIT {
                        return Err(corrupt);
                    }
                    repairs += 1;
                    self.store.quarantine_corrupt(ticket.fingerprint);
                    self.queue.requeue(ticket.fingerprint)?;
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Submit-and-wait in one call.
    ///
    /// # Errors
    ///
    /// As [`FleetClient::submit`] and [`FleetClient::wait`].
    pub fn run(&self, spec: JobSpec) -> Result<Value> {
        let ticket = self.submit(spec)?;
        self.wait(&ticket)
    }
}
