//! `cohort-fleet` — a sharded, persistent sweep service for CoHoRT
//! experiment and GA-optimization campaigns.
//!
//! The fleet turns the workspace's one-shot drivers ([`cohort::Sweep`],
//! [`cohort_optim::GaRun`]) into a service:
//!
//! - **[`JobSpec`]** — a serializable unit of work (an experiment or a GA
//!   run) whose [`JobSpec::fingerprint`] content-addresses everything that
//!   determines its outcome.
//! - **[`ResultStore`]** — a content-addressed result store keyed on those
//!   fingerprints. Optionally mirrored to disk, so the memo persists
//!   across runs and is shared by every client of the same directory.
//!   Every read re-verifies a payload fingerprint; tampering surfaces as
//!   [`cohort_types::Error::StoreCorrupt`].
//! - **[`JobQueue`]** — epoch/lease claim coordination. A crashed or
//!   killed worker's lease expires, the job returns to the queue at the
//!   next [`cohort_types::Epoch`], and a sibling shard re-claims it;
//!   stale completions from the dead epoch are rejected with
//!   [`cohort_types::Error::LeaseExpired`]. Because every job is a pure
//!   function of its spec, the re-run is bit-identical — recovery loses
//!   time, never changes answers.
//! - **[`WorkerShard`]** — the claim/execute/complete loop. GA jobs
//!   stream checkpoints into the store so a re-claim resumes mid-run.
//! - **[`Fleet`] / [`FleetClient`]** — the front end: a builder spawns
//!   the shards, clients absorb bursts of concurrent submissions with
//!   dedup-on-submit (duplicate specs collapse onto one execution, and
//!   specs already in the persistent store skip the queue entirely).
//!
//! See `DESIGN.md` §9 for the architecture and the determinism-on-reclaim
//! argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod clock;
pub mod disk;
mod queue;
mod spec;
mod store;
pub mod sync;
mod worker;

pub use client::{Fleet, FleetBuilder, FleetClient, FleetHealth, FleetStats, Ticket};
pub use clock::{Clock, SystemClock, TestClock};
pub use disk::{Disk, FaultyDisk, SystemDisk};
pub use queue::{Claim, JobQueue, QuarantineDiag, QueueStats, WaitOutcome};
pub use spec::{CertifyBatch, JobSpec};
pub use store::{payload_fingerprint, CorruptSidecar, ResultStore, StoreBudget, StoreHealth};
pub use worker::{
    execute_experiment, ga_payload, outcome_payload, ShardStats, WorkerId, WorkerShard,
};
