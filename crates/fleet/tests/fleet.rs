//! Fleet integration tests: concurrent dedup, kill-recovery with
//! bit-identical re-execution, checkpointed GA resume, persistent memo
//! reuse and corruption detection.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use cohort::{Protocol, SystemSpec};
use cohort_fleet::{
    execute_experiment, ga_payload, Clock, Fleet, JobQueue, JobSpec, ResultStore, TestClock,
    WaitOutcome, WorkerId, WorkerShard,
};
use cohort_optim::{GaConfig, GaRun, TimerProblem};
use cohort_trace::{micro, Workload};
use cohort_types::{Criticality, Cycles, Error};

fn platform(cores: usize) -> SystemSpec {
    let mut b = SystemSpec::builder();
    for _ in 0..cores {
        b = b.core(Criticality::new(1).unwrap());
    }
    b.build().unwrap()
}

fn experiment(workload: &Arc<Workload>) -> JobSpec {
    JobSpec::Experiment {
        spec: platform(2),
        protocol: Protocol::Msi,
        workload: Arc::clone(workload),
    }
}

fn canonical(v: &serde_json::Value) -> String {
    serde_json::to_string(v).unwrap()
}

#[test]
fn a_burst_of_duplicate_submissions_shares_one_execution() {
    let fleet = Fleet::builder().shards(2).build().unwrap();
    let workload = Arc::new(micro::ping_pong(2, 16));

    let payloads: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let client = fleet.client();
                let job = experiment(&workload);
                s.spawn(move || canonical(&client.run(job).unwrap()))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every racer got the same payload from the single execution.
    assert!(payloads.windows(2).all(|w| w[0] == w[1]));
    let stats = fleet.shutdown();
    assert_eq!(stats.queue.submitted, 8);
    assert_eq!(stats.queue.deduplicated, 7, "seven of eight submissions deduplicated");
    assert_eq!(stats.executed, 1, "exactly one execution across all shards");
}

#[test]
fn a_killed_worker_is_reclaimed_and_the_rerun_is_bit_identical() {
    let queue = Arc::new(JobQueue::new(Duration::from_millis(50)));
    let store = Arc::new(ResultStore::in_memory());
    let workload = Arc::new(micro::random_shared(2, 8, 120, 0.5, 7));
    let (fp, _) = queue.submit(experiment(&workload)).unwrap();

    // The doomed worker claims the job and computes its payload, but is
    // killed before it can store or complete anything.
    let doomed = queue.claim(WorkerId::new(0)).unwrap();
    let doomed_payload = match doomed.spec.as_ref() {
        JobSpec::Experiment { spec, protocol, workload } => {
            execute_experiment(spec, protocol, workload).unwrap()
        }
        JobSpec::Optimize { .. } | JobSpec::Certify { .. } => {
            unreachable!("submitted an experiment")
        }
    };
    std::thread::sleep(Duration::from_millis(60)); // the lease runs out

    // A healthy shard sweeps the expired lease, re-claims at the next
    // epoch and recomputes from scratch (the store is empty).
    let shard = WorkerShard::new(WorkerId::new(1), Arc::clone(&queue), Arc::clone(&store));
    let stats = shard.stats();
    let handle = std::thread::spawn(move || shard.run());
    assert!(queue.wait_done(fp));
    queue.close();
    handle.join().unwrap();

    let recomputed = store.get(fp).unwrap().expect("re-claimer stored the payload");
    assert_eq!(
        canonical(&recomputed),
        canonical(&doomed_payload),
        "the re-claimed execution is bit-identical to the killed one"
    );
    assert_eq!(queue.stats().reclaims, 1);
    assert_eq!(stats.executed.load(Ordering::Relaxed), 1);

    // If the "dead" worker turns out to be merely slow, its late
    // completion is refused — the epoch moved on.
    assert!(matches!(
        queue.complete(fp, doomed.epoch),
        Err(Error::LeaseExpired { held: 1, current: 2 })
    ));
}

#[test]
fn a_ga_run_killed_mid_flight_resumes_from_its_checkpoint_bit_identically() {
    let workload = micro::line_bursts(2, 4, 60);
    let ga =
        GaConfig { population: 10, generations: 12, seed: 99, workers: 1, ..GaConfig::default() };
    let job = JobSpec::Optimize {
        workload: Arc::new(workload.clone()),
        timed: vec![(0, None), (1, Some(20_000))],
        ga: ga.clone(),
    };

    let queue = Arc::new(JobQueue::new(Duration::from_millis(200)));
    let store = Arc::new(ResultStore::in_memory());
    let (fp, _) = queue.submit(job).unwrap();

    // One shard, killed by the chaos hook right after generation 4's
    // checkpoint lands. Its own claim loop then sweeps the expired lease,
    // re-claims the job at epoch 2 and resumes from the checkpoint.
    let shard = WorkerShard::new(WorkerId::new(0), Arc::clone(&queue), Arc::clone(&store))
        .crash_after_generations(4);
    let stats = shard.stats();
    let handle = std::thread::spawn(move || shard.run());
    assert!(queue.wait_done(fp));
    queue.close();
    handle.join().unwrap();

    assert!(queue.stats().reclaims >= 1, "the kill forced at least one reclaim");
    assert_eq!(stats.resumed.load(Ordering::Relaxed), 1, "the re-claim resumed mid-run");
    assert_eq!(stats.executed.load(Ordering::Relaxed), 1);

    // The interrupted-and-resumed payload matches an uninterrupted
    // reference run bit for bit.
    let problem = TimerProblem::builder(&workload)
        .timed(0, None)
        .timed(1, Some(Cycles::new(20_000)))
        .build()
        .unwrap();
    let reference = ga_payload(&problem, &GaRun::new(&problem).config(&ga).run());
    let stored = store.get(fp).unwrap().expect("resumed run stored its payload");
    assert_eq!(canonical(&stored), canonical(&reference));
}

#[test]
fn the_persistent_memo_answers_a_later_fleet_run_without_executing() {
    let dir = std::env::temp_dir().join("cohort-fleet-memo-reuse-test");
    std::fs::remove_dir_all(&dir).ok();
    let workload = Arc::new(micro::ping_pong(2, 12));

    let first = Fleet::builder().shards(1).store_dir(&dir).build().unwrap();
    let ticket = first.client().submit(experiment(&workload)).unwrap();
    assert!(!ticket.cached);
    let computed = first.client().wait(&ticket).unwrap();
    assert_eq!(first.shutdown().executed, 1);

    // A brand-new fleet over the same directory answers the duplicate
    // submission from the store — nothing executes at all.
    let second = Fleet::builder().shards(1).store_dir(&dir).build().unwrap();
    let ticket = second.client().submit(experiment(&workload)).unwrap();
    assert!(ticket.cached, "the persistent store already held the payload");
    let replayed = second.client().wait(&ticket).unwrap();
    assert_eq!(canonical(&replayed), canonical(&computed));
    let stats = second.shutdown();
    assert_eq!(stats.executed, 0);
    assert!(stats.store_hits >= 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// 64-iteration stress twin of the loom model
/// `quarantine_races_slow_completion_exactly_one_wins` (tests/loom.rs),
/// runnable without `--cfg loom`: real threads race a late completion
/// against the sweep that convicts a budget-exhausted job. Exactly one of
/// {late completion lands, quarantine} may win — never both, never
/// neither.
#[test]
fn quarantine_vs_slow_completion_stress_exactly_one_wins() {
    let workload = Arc::new(micro::ping_pong(2, 20));
    for round in 0..64 {
        let clock = Arc::new(TestClock::new());
        let mut queue =
            JobQueue::with_clock(Duration::from_millis(10), Arc::clone(&clock) as Arc<dyn Clock>);
        queue.set_max_attempts(1);
        let queue = Arc::new(queue);
        let (fp, _) = queue.submit(experiment(&workload)).unwrap();
        let slow = queue.try_claim(WorkerId::new(0)).expect("first claim");
        clock.advance(Duration::from_millis(20));

        let (slow_landed, swept_claim) = std::thread::scope(|s| {
            let qa = Arc::clone(&queue);
            let slow_epoch = slow.epoch;
            let t_slow = s.spawn(move || qa.complete(fp, slow_epoch).is_ok());
            let qb = Arc::clone(&queue);
            let t_sweep = s.spawn(move || qb.try_claim(WorkerId::new(1)).is_some());
            (t_slow.join().unwrap(), t_sweep.join().unwrap())
        });
        assert!(!swept_claim, "attempt budget 1: the job is never re-claimed (round {round})");
        let stats = queue.stats();
        let quarantined = stats.quarantined == 1;
        assert!(
            slow_landed ^ quarantined,
            "round {round}: exactly one outcome (slow={slow_landed}, quarantined={quarantined})"
        );
        if quarantined {
            assert_eq!(stats.stale_completions, 1, "round {round}");
            assert!(matches!(
                queue.wait_outcome(fp, None),
                WaitOutcome::Quarantined(diag) if diag.fingerprint == fp && diag.attempts == 1
            ));
        } else {
            assert!(queue.wait_done(fp));
        }
    }
}

#[test]
fn a_tampered_store_entry_is_quarantined_and_repaired_bit_identically() {
    let dir = std::env::temp_dir().join("cohort-fleet-corruption-test");
    std::fs::remove_dir_all(&dir).ok();
    let workload = Arc::new(micro::ping_pong(2, 10));

    let first = Fleet::builder().shards(1).store_dir(&dir).build().unwrap();
    let original = first.client().run(experiment(&workload)).unwrap();
    let _ = first.shutdown();

    // Corrupt the payload on disk behind the fleet's back.
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|ext| ext == "json"))
        .expect("one persisted entry");
    let tampered = std::fs::read_to_string(&entry).unwrap().replace("experiment", "tampered");
    std::fs::write(&entry, tampered).unwrap();

    // The next run's submission reads (not just probes) the memo, finds
    // the corruption, quarantines the entry to a forensic sidecar and
    // queues the job for fresh execution — the caller sees a healthy,
    // bit-identical answer.
    let second = Fleet::builder().shards(1).store_dir(&dir).build().unwrap();
    let client = second.client();
    let ticket = client.submit(experiment(&workload)).unwrap();
    assert!(!ticket.cached, "corruption is caught at submit; the job queues for execution");
    let repaired = client.wait(&ticket).unwrap();
    assert_eq!(canonical(&repaired), canonical(&original), "repair is bit-identical");

    let stats = second.shutdown();
    assert_eq!(stats.executed, 1, "the repair re-executed the job");
    assert_eq!(stats.health.corrupt_quarantined, 1);
    assert_eq!(stats.health.repairs, 1);
    assert_eq!(
        stats.health.repairs_bit_identical, 1,
        "the sidecar's recorded fingerprint matched the re-derived payload"
    );
    assert_eq!(stats.queue.quarantined, 0, "store repair is not a job quarantine");
    let sidecar = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.to_string_lossy().ends_with(".json.corrupt"))
        .expect("forensic sidecar preserved");
    assert!(std::fs::read_to_string(&sidecar).unwrap().contains("tampered"));
    // And the mirror now holds the healthy envelope again.
    let healed = std::fs::read_to_string(&entry).unwrap();
    assert!(healed.contains("experiment") && !healed.contains("tampered"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_poison_job_quarantines_with_diagnostics_instead_of_hanging_the_caller() {
    let workload = Arc::new(micro::ping_pong(2, 14));
    let poison_fp = experiment(&workload).fingerprint();
    let fleet = Fleet::builder()
        .shards(2)
        .lease(Duration::from_millis(40))
        .max_attempts(3)
        .poison(poison_fp)
        .build()
        .unwrap();
    let client = fleet.client();

    // A healthy job shares the fleet with the poison one and must be
    // unaffected.
    let healthy = Arc::new(micro::random_shared(2, 8, 100, 0.5, 3));
    let healthy_ticket = client.submit(experiment(&healthy)).unwrap();
    let poison_ticket = client.submit(experiment(&workload)).unwrap();

    let err = client.wait(&poison_ticket).unwrap_err();
    let Error::JobQuarantined { key, attempts, epoch, .. } = &err else {
        panic!("expected JobQuarantined, got {err}");
    };
    assert_eq!(*key, poison_fp.to_hex());
    assert_eq!(*attempts, 3, "the full attempt budget was spent");
    assert!(*epoch >= 3, "each attempt advanced the epoch");
    assert!(client.wait(&healthy_ticket).is_ok(), "poison never starves healthy work");

    let diags = fleet.quarantines();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].fingerprint, poison_fp);
    let stats = fleet.shutdown();
    assert_eq!(stats.queue.quarantined, 1);
    assert_eq!(stats.health.quarantined, 1);
    assert_eq!(stats.health.reclaims, 2, "two reclaims preceded the conviction");
}

#[test]
fn wait_timeout_bounds_a_wait_with_a_typed_error() {
    let workload = Arc::new(micro::ping_pong(2, 18));
    let poison_fp = experiment(&workload).fingerprint();
    // Poison with a *long* lease: the job will sit claimed far past any
    // reasonable wait, which used to mean a hung caller.
    let fleet = Fleet::builder()
        .shards(1)
        .lease(Duration::from_secs(30))
        .poison(poison_fp)
        .build()
        .unwrap();
    let client = fleet.client();
    let ticket = client.submit(experiment(&workload)).unwrap();
    let err = client.wait_timeout(&ticket, Duration::from_millis(120)).unwrap_err();
    assert!(matches!(err, Error::WaitTimedOut { .. }), "{err}");
    assert!(err.to_string().contains("timed out"), "{err}");
    // Shutdown still drains: the poison job's lease must expire first,
    // but the queue sweeps it and (budget left) re-claims until the
    // default budget convicts it. Use a fresh short-lease check instead
    // of waiting 30 s: just verify stats are reachable without hanging.
    let stats = fleet.stats();
    assert!(stats.queue.submitted >= 1);
    drop(fleet); // leak the worker threads rather than wait out the lease
}
