//! Model-checking suite for the JobQueue epoch/lease/claim state machine.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`, where the queue's sync
//! primitives (see `cohort_fleet::sync`) are loom's modeled versions and
//! `loom::model` explores thread interleavings of each body. The models
//! drive the non-blocking [`JobQueue::try_claim`] surface — loom has no
//! timed waits, and the lease clock is a hand-driven [`TestClock`], so
//! every interleaving is deterministic.
//!
//! Each model asserts an *outcome set*: whichever interleaving runs,
//! exactly one worker wins a claim, exactly one completion lands, and
//! the stats stay consistent with which branch happened.
#![cfg(loom)]

use std::sync::Arc;
use std::time::Duration;

use cohort::Protocol;
use cohort_fleet::{Claim, Clock, JobQueue, JobSpec, TestClock, WorkerId};
use cohort_trace::micro;
use cohort_types::{Criticality, Epoch, Error};

fn job(n: usize) -> JobSpec {
    let mut b = cohort::SystemSpec::builder();
    for _ in 0..2 {
        b = b.core(Criticality::new(1).unwrap());
    }
    JobSpec::Experiment {
        spec: b.build().unwrap(),
        protocol: Protocol::Msi,
        workload: Arc::new(micro::ping_pong(2, n)),
    }
}

fn clocked(lease: Duration) -> (Arc<JobQueue>, Arc<TestClock>) {
    let clock = Arc::new(TestClock::new());
    let queue = Arc::new(JobQueue::with_clock(lease, Arc::clone(&clock) as Arc<dyn Clock>));
    (queue, clock)
}

#[test]
fn claim_is_exclusive_across_workers() {
    loom::model(|| {
        let (q, _clock) = clocked(Duration::from_secs(1));
        q.submit(job(4)).unwrap();
        let qa = Arc::clone(&q);
        let qb = Arc::clone(&q);
        let ta = loom::thread::spawn(move || qa.try_claim(WorkerId::new(0)).is_some());
        let tb = loom::thread::spawn(move || qb.try_claim(WorkerId::new(1)).is_some());
        let a = ta.join().unwrap();
        let b = tb.join().unwrap();
        assert!(a ^ b, "exactly one worker may hold the claim (got a={a}, b={b})");
    });
}

#[test]
fn concurrent_duplicate_submissions_dedup_to_one_job() {
    loom::model(|| {
        let (q, _clock) = clocked(Duration::from_secs(1));
        let qa = Arc::clone(&q);
        let qb = Arc::clone(&q);
        let ta = loom::thread::spawn(move || qa.submit(job(6)).unwrap().1);
        let tb = loom::thread::spawn(move || qb.submit(job(6)).unwrap().1);
        let fresh_a = ta.join().unwrap();
        let fresh_b = tb.join().unwrap();
        assert!(fresh_a ^ fresh_b, "exactly one submission is the first of its kind");
        let stats = q.stats();
        assert_eq!((stats.submitted, stats.deduplicated), (2, 1));
        assert!(q.try_claim(WorkerId::new(0)).is_some());
        assert!(q.try_claim(WorkerId::new(1)).is_none(), "the duplicate spawned no second job");
    });
}

#[test]
fn slow_completion_races_reclaim_exactly_one_lands() {
    loom::model(|| {
        let (q, clock) = clocked(Duration::from_millis(10));
        let (fp, _) = q.submit(job(8)).unwrap();
        let slow: Claim = q.try_claim(WorkerId::new(0)).expect("first claim");
        // The lease expires while worker 0 is still computing.
        clock.advance(Duration::from_millis(20));
        let qa = Arc::clone(&q);
        let slow_epoch = slow.epoch;
        let t_slow = loom::thread::spawn(move || qa.complete(fp, slow_epoch).is_ok());
        let qb = Arc::clone(&q);
        let t_sweep = loom::thread::spawn(move || match qb.try_claim(WorkerId::new(1)) {
            Some(claim) => {
                assert_eq!(claim.fingerprint, fp);
                assert_eq!(claim.epoch, Epoch::FIRST.next(), "reclaim advances the epoch");
                qb.complete(claim.fingerprint, claim.epoch)
                    .expect("a completion at the job's current epoch always lands");
                true
            }
            None => false,
        });
        let slow_landed = t_slow.join().unwrap();
        let reclaimed = t_sweep.join().unwrap();
        // Whichever thread won the lock first, exactly one execution's
        // result landed and the job is done.
        assert!(
            slow_landed ^ reclaimed,
            "exactly one completion lands (slow={slow_landed}, reclaim={reclaimed})"
        );
        assert!(q.wait_done(fp));
        let stats = q.stats();
        if reclaimed {
            assert_eq!((stats.reclaims, stats.stale_completions), (1, 1));
        } else {
            assert_eq!((stats.reclaims, stats.stale_completions), (0, 0));
        }
    });
}

#[test]
fn quarantine_races_slow_completion_exactly_one_wins() {
    loom::model(|| {
        let clock = Arc::new(TestClock::new());
        let mut queue =
            JobQueue::with_clock(Duration::from_millis(10), Arc::clone(&clock) as Arc<dyn Clock>);
        queue.set_max_attempts(1);
        let q = Arc::new(queue);
        let (fp, _) = q.submit(job(12)).unwrap();
        let slow = q.try_claim(WorkerId::new(0)).expect("first claim");
        // The lease expires while worker 0 is still computing — and the
        // attempt budget is already spent, so the next sweep convicts.
        clock.advance(Duration::from_millis(20));
        let qa = Arc::clone(&q);
        let slow_epoch = slow.epoch;
        let t_slow = loom::thread::spawn(move || qa.complete(fp, slow_epoch).is_ok());
        let qb = Arc::clone(&q);
        let t_sweep = loom::thread::spawn(move || {
            assert!(
                qb.try_claim(WorkerId::new(1)).is_none(),
                "attempt budget 1: the job is never re-claimed"
            );
        });
        let slow_landed = t_slow.join().unwrap();
        t_sweep.join().unwrap();
        let stats = q.stats();
        let quarantined = stats.quarantined == 1;
        // The heart of the model: whichever thread won the lock, exactly
        // one of {late completion lands, quarantine} happened — never
        // both, never neither.
        assert!(
            slow_landed ^ quarantined,
            "exactly one outcome (slow={slow_landed}, quarantined={quarantined})"
        );
        if quarantined {
            assert_eq!(stats.stale_completions, 1, "the late completion was rejected as stale");
            let diag = q.quarantine_diag(fp).expect("conviction carries diagnostics");
            assert_eq!(diag.attempts, 1);
            assert_eq!(diag.worker, WorkerId::new(0));
            assert!(matches!(q.wait_outcome(fp, None), cohort_fleet::WaitOutcome::Quarantined(_)));
        } else {
            assert_eq!(stats.stale_completions, 0);
            assert!(q.wait_done(fp));
        }
    });
}

#[test]
fn stale_epoch_is_rejected_after_reclaim() {
    loom::model(|| {
        let (q, clock) = clocked(Duration::from_millis(10));
        let (fp, _) = q.submit(job(10)).unwrap();
        let dead = q.try_claim(WorkerId::new(0)).expect("first claim");
        clock.advance(Duration::from_millis(15));
        let alive = q.try_claim(WorkerId::new(1)).expect("expired lease is sweepable");
        assert_eq!(alive.epoch, dead.epoch.next());
        let err = q.complete(fp, dead.epoch).unwrap_err();
        assert!(matches!(err, Error::LeaseExpired { held: 1, current: 2 }));
        q.complete(fp, alive.epoch).unwrap();
        assert_eq!(q.stats().stale_completions, 1);
    });
}
