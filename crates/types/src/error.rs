use core::fmt;

/// Error type shared by the CoHoRT workspace crates.
///
/// Every fallible public constructor or operation in the stack reports
/// failures through this enum, so downstream crates can bubble errors with
/// `?` without defining conversion boilerplate for each layer.
///
/// # Examples
///
/// ```
/// use cohort_types::{Error, TimerValue};
///
/// let err = TimerValue::timed(u64::from(u16::MAX) + 1).unwrap_err();
/// assert!(matches!(err, Error::TimerOutOfRange { .. }));
/// assert!(err.to_string().contains("timer"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A timer threshold exceeded the 16-bit register range mandated by the
    /// CoHoRT cache-controller architecture (§III-B of the paper).
    TimerOutOfRange {
        /// The rejected θ value.
        value: u64,
        /// The maximum representable θ (2¹⁶ − 1).
        max: u64,
    },
    /// A criticality level or mode index was zero or exceeded the number of
    /// levels supported by the system.
    LevelOutOfRange {
        /// The rejected level.
        value: u32,
        /// The highest level the system supports.
        max: u32,
    },
    /// A core index referenced a core that does not exist in the system.
    UnknownCore {
        /// The rejected core index.
        index: usize,
        /// The number of cores in the system.
        cores: usize,
    },
    /// A configuration value was structurally invalid (empty system, zero
    /// cache size, non-power-of-two line size, …).
    InvalidConfig(String),
    /// A trace or workload could not be decoded.
    Codec(String),
    /// The optimization engine could not find a feasible timer assignment
    /// (constraint C1 cannot be met for at least one task).
    Infeasible(String),
    /// A batch job panicked; the payload is the panic message. Produced by
    /// the sweep engine when a caller collapses isolated per-job failures
    /// back into a single `Result`.
    JobPanicked(String),
    /// The simulation engine made no observable progress for its defensive
    /// watchdog window — an engine bug or a pathological configuration,
    /// never a legal run. Watchdog and chaos harnesses match on this
    /// variant to distinguish a wedged engine from a rejected input.
    Deadlock {
        /// The cycle at which the watchdog gave up.
        cycle: u64,
    },
    /// A fleet worker tried to complete a job whose lease had already
    /// expired and been re-claimed at a newer epoch. The late result is
    /// discarded — determinism guarantees the re-claimer recomputes the
    /// identical outcome, so nothing is lost.
    LeaseExpired {
        /// The epoch the stale completion was claimed at.
        held: u64,
        /// The epoch the job has since advanced to.
        current: u64,
    },
    /// A content-addressed store entry failed its integrity check: the
    /// payload's recomputed fingerprint does not match the one recorded
    /// when the entry was written (disk corruption or a tampered file).
    StoreCorrupt {
        /// The entry's content-address key (hex fingerprint).
        key: String,
        /// What the corruption check found wrong.
        detail: String,
    },
    /// A fleet job exhausted its attempt budget: every issued lease
    /// expired without a completion, so the queue moved the job to the
    /// `Quarantined` terminal state instead of re-claiming it forever (a
    /// poison job crashes whichever worker touches it). The diagnostics
    /// name the last claim so the poison can be reproduced.
    JobQuarantined {
        /// The job's content-address key (hex fingerprint).
        key: String,
        /// How many leases were issued before the budget ran out.
        attempts: u64,
        /// The worker holding the final, fatal claim.
        worker: u64,
        /// The epoch of the final claim.
        epoch: u64,
        /// The final lease's deadline (clock ticks, ns).
        deadline_ns: u64,
    },
    /// A bounded wait on a fleet job elapsed before the job reached a
    /// terminal state — the caller chose not to block forever on a stuck
    /// queue.
    WaitTimedOut {
        /// The awaited job's content-address key (hex fingerprint).
        key: String,
        /// How long the caller waited (milliseconds).
        waited_ms: u64,
    },
    /// The persistent store mirror kept failing past its bounded,
    /// deterministically-seeded retry backoff — the disk fault was not
    /// transient, and the store gives up rather than spin forever.
    StoreUnavailable {
        /// The path the mirror was writing.
        path: String,
        /// Write attempts made before giving up.
        attempts: u64,
        /// The final I/O error.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TimerOutOfRange { value, max } => {
                write!(f, "timer value {value} exceeds the 16-bit register range (max {max})")
            }
            Error::LevelOutOfRange { value, max } => {
                write!(f, "criticality level or mode {value} outside the valid range 1..={max}")
            }
            Error::UnknownCore { index, cores } => {
                write!(f, "core index {index} out of range for a {cores}-core system")
            }
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Codec(msg) => write!(f, "trace codec error: {msg}"),
            Error::Infeasible(msg) => write!(f, "no feasible timer configuration: {msg}"),
            Error::JobPanicked(msg) => write!(f, "job panicked: {msg}"),
            Error::Deadlock { cycle } => {
                write!(f, "simulator made no observable progress (deadlock at cycle {cycle})")
            }
            Error::LeaseExpired { held, current } => {
                write!(
                    f,
                    "stale completion at epoch {held}: the job's lease expired and it was \
                     re-claimed at epoch {current}"
                )
            }
            Error::StoreCorrupt { key, detail } => {
                write!(f, "store entry {key} is corrupt: {detail}")
            }
            Error::JobQuarantined { key, attempts, worker, epoch, deadline_ns } => {
                write!(
                    f,
                    "job {key} quarantined after {attempts} expired leases (last claim: worker \
                     {worker}, epoch {epoch}, deadline {deadline_ns} ns)"
                )
            }
            Error::WaitTimedOut { key, waited_ms } => {
                write!(f, "wait for job {key} timed out after {waited_ms} ms")
            }
            Error::StoreUnavailable { path, attempts, detail } => {
                write!(f, "store mirror at {path} unavailable after {attempts} attempts: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let cases = [
            Error::TimerOutOfRange { value: 70000, max: 65535 },
            Error::LevelOutOfRange { value: 9, max: 5 },
            Error::UnknownCore { index: 7, cores: 4 },
            Error::InvalidConfig("zero cores".into()),
            Error::Codec("truncated input".into()),
            Error::Infeasible("core 0 requirement too tight".into()),
            Error::JobPanicked("index out of bounds".into()),
            Error::Deadlock { cycle: 2_000_001 },
            Error::LeaseExpired { held: 1, current: 2 },
            Error::StoreCorrupt {
                key: "00ab".into(),
                detail: "payload fingerprint mismatch".into(),
            },
            Error::JobQuarantined {
                key: "00ab".into(),
                attempts: 3,
                worker: 1,
                epoch: 3,
                deadline_ns: 90_000,
            },
            Error::WaitTimedOut { key: "00ab".into(), waited_ms: 250 },
            Error::StoreUnavailable {
                path: "/tmp/memo/00ab.json".into(),
                attempts: 4,
                detail: "injected transient failure".into(),
            },
        ];
        for err in cases {
            let s = err.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "no trailing punctuation: {s}");
            assert!(s.chars().next().unwrap().is_lowercase(), "lowercase start: {s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Error>();
    }
}
