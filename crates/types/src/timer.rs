use core::fmt;

use serde::{Deserialize, Serialize};

use crate::{Cycles, Error, Result};

/// The value of a core's coherence **timer threshold register** θ.
///
/// CoHoRT's central architectural idea (§III-B of the paper) is that one
/// 16-bit register per core selects the coherence protocol the core runs:
///
/// - `θ ≥ 0` — **time-based coherence**: once a cache line is fetched, the
///   per-line countdown counter is loaded with θ and the core keeps the line
///   (entertaining hits) until the counter expires, regardless of other
///   cores' requests. `θ = 1` means "serve pending requests and invalidate
///   immediately" (the minimum value for which a hit can be guaranteed).
/// - `θ = −1` — the special value that disables the counter and reduces the
///   protocol to **standard MSI snooping**: the core gives up the line as
///   soon as another core requests it.
///
/// The register is 16 bits wide, so timed values are limited to
/// `0..=65535`; the paper finds this sufficient and we enforce it.
///
/// # Examples
///
/// ```
/// use cohort_types::TimerValue;
///
/// let timed = TimerValue::timed(300)?;
/// assert_eq!(timed.theta(), Some(300));
/// assert!(timed.is_timed());
///
/// let msi = TimerValue::MSI;
/// assert!(msi.is_msi());
/// assert_eq!(msi.theta(), None);
/// assert_eq!(msi.to_string(), "-1");
/// # Ok::<(), cohort_types::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimerValue {
    /// Time-based coherence with the given threshold θ (in cycles).
    Timed(u16),
    /// The special θ = −1 value: counter disabled, standard MSI behaviour.
    Msi,
}

impl TimerValue {
    /// The special MSI value (θ = −1).
    pub const MSI: TimerValue = TimerValue::Msi;

    /// The largest timer threshold representable in the 16-bit register.
    pub const MAX_THETA: u64 = u16::MAX as u64;

    /// Creates a time-based timer value.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TimerOutOfRange`] if `theta` does not fit the 16-bit
    /// timer threshold register.
    pub fn timed(theta: u64) -> Result<Self> {
        u16::try_from(theta)
            .map(TimerValue::Timed)
            .map_err(|_| Error::TimerOutOfRange { value: theta, max: Self::MAX_THETA })
    }

    /// Returns the timer threshold, or `None` for the MSI value.
    #[must_use]
    pub const fn theta(self) -> Option<u64> {
        match self {
            TimerValue::Timed(t) => Some(t as u64),
            TimerValue::Msi => None,
        }
    }

    /// Returns the timer threshold as [`Cycles`], or `None` for MSI.
    #[must_use]
    pub const fn theta_cycles(self) -> Option<Cycles> {
        match self {
            TimerValue::Timed(t) => Some(Cycles::new(t as u64)),
            TimerValue::Msi => None,
        }
    }

    /// Returns `true` if this core runs time-based coherence.
    #[must_use]
    pub const fn is_timed(self) -> bool {
        matches!(self, TimerValue::Timed(_))
    }

    /// Returns `true` if this core runs standard MSI snooping (θ = −1).
    #[must_use]
    pub const fn is_msi(self) -> bool {
        matches!(self, TimerValue::Msi)
    }

    /// Returns the signed encoding used by the paper: θ for timed cores,
    /// −1 for MSI cores.
    #[must_use]
    pub const fn encode(self) -> i32 {
        match self {
            TimerValue::Timed(t) => t as i32,
            TimerValue::Msi => -1,
        }
    }

    /// Decodes the paper's signed encoding (θ ≥ 0 or exactly −1).
    ///
    /// # Errors
    ///
    /// Returns [`Error::TimerOutOfRange`] for values below −1 or above the
    /// 16-bit range.
    pub fn decode(encoded: i32) -> Result<Self> {
        match encoded {
            -1 => Ok(TimerValue::Msi),
            t if t >= 0 => TimerValue::timed(t as u64),
            t => {
                Err(Error::TimerOutOfRange { value: t.unsigned_abs() as u64, max: Self::MAX_THETA })
            }
        }
    }
}

impl fmt::Display for TimerValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimerValue::Timed(t) => write!(f, "{t}"),
            TimerValue::Msi => write!(f, "-1"),
        }
    }
}

impl Default for TimerValue {
    /// Defaults to MSI: a freshly reset core behaves like a conventional
    /// snooping core until its timer register is programmed.
    fn default() -> Self {
        TimerValue::Msi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_within_16_bits() {
        assert_eq!(TimerValue::timed(0).unwrap().theta(), Some(0));
        assert_eq!(TimerValue::timed(65535).unwrap().theta(), Some(65535));
        assert!(TimerValue::timed(65536).is_err());
    }

    #[test]
    fn encode_decode_round_trip() {
        for v in [TimerValue::MSI, TimerValue::timed(0).unwrap(), TimerValue::timed(300).unwrap()] {
            assert_eq!(TimerValue::decode(v.encode()).unwrap(), v);
        }
        assert!(TimerValue::decode(-2).is_err());
    }

    #[test]
    fn predicates() {
        assert!(TimerValue::MSI.is_msi());
        assert!(!TimerValue::MSI.is_timed());
        let t = TimerValue::timed(20).unwrap();
        assert!(t.is_timed());
        assert!(!t.is_msi());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(TimerValue::timed(300).unwrap().to_string(), "300");
        assert_eq!(TimerValue::MSI.to_string(), "-1");
    }

    #[test]
    fn default_is_msi() {
        assert_eq!(TimerValue::default(), TimerValue::MSI);
    }
}
