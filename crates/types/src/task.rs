use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{Criticality, Cycles, Error, Mode, Result};

/// Per-mode worst-case memory-latency requirements `Γ^m` of a task.
///
/// A task may have a different WCML budget in each operational mode; modes
/// without an explicit entry fall back to the highest mode at or below them
/// (requirements persist until restated). A task with no entry at all for a
/// mode is unconstrained in that mode.
///
/// # Examples
///
/// ```
/// use cohort_types::{Cycles, Mode, Requirements};
///
/// let mut reqs = Requirements::new();
/// reqs.set(Mode::NORMAL, Cycles::new(2_000_000));
/// reqs.set(Mode::new(3)?, Cycles::new(1_200_000));
///
/// assert_eq!(reqs.at(Mode::NORMAL), Some(Cycles::new(2_000_000)));
/// // Mode 2 inherits the mode-1 requirement.
/// assert_eq!(reqs.at(Mode::new(2)?), Some(Cycles::new(2_000_000)));
/// assert_eq!(reqs.at(Mode::new(4)?), Some(Cycles::new(1_200_000)));
/// # Ok::<(), cohort_types::Error>(())
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Requirements {
    by_mode: BTreeMap<u32, Cycles>,
}

impl Requirements {
    /// Creates an empty (unconstrained) requirement set.
    #[must_use]
    pub fn new() -> Self {
        Requirements { by_mode: BTreeMap::new() }
    }

    /// Creates a requirement set constraining every mode with one budget.
    #[must_use]
    pub fn uniform(budget: Cycles) -> Self {
        let mut reqs = Requirements::new();
        reqs.set(Mode::NORMAL, budget);
        reqs
    }

    /// Sets the WCML budget `Γ^m` for `mode` (and, by inheritance, for all
    /// higher modes without their own entry).
    pub fn set(&mut self, mode: Mode, budget: Cycles) {
        self.by_mode.insert(mode.index(), budget);
    }

    /// Returns the effective budget at `mode`, inheriting from the closest
    /// lower mode; `None` if the task is unconstrained at this mode.
    #[must_use]
    pub fn at(&self, mode: Mode) -> Option<Cycles> {
        self.by_mode.range(..=mode.index()).next_back().map(|(_, &c)| c)
    }

    /// Returns `true` if no mode carries a requirement.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_mode.is_empty()
    }

    /// Iterates over the explicitly set `(mode, budget)` pairs in mode order.
    pub fn iter(&self) -> impl Iterator<Item = (Mode, Cycles)> + '_ {
        self.by_mode.iter().map(|(&m, &c)| (Mode::new(m).expect("stored modes are valid"), c))
    }
}

/// A mixed-criticality task `τ_j = ⟨l_j, Λ_j, Γ_j^{m_l}⟩` (§II).
///
/// - `criticality` — the task's criticality level `l_j`,
/// - `accesses` — the total number of memory accesses `Λ_j`,
/// - `requirements` — the per-mode WCML budgets `Γ_j^{m_l}`.
///
/// # Examples
///
/// ```
/// use cohort_types::{Criticality, Cycles, Mode, Requirements, Task};
///
/// let task = Task::new("lidar-fusion", Criticality::new(4)?, 47_000)
///     .with_requirement(Mode::NORMAL, Cycles::new(5_000_000));
/// assert_eq!(task.accesses(), 47_000);
/// assert!(task.requirement_at(Mode::NORMAL).is_some());
/// # Ok::<(), cohort_types::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    name: String,
    criticality: Criticality,
    accesses: u64,
    requirements: Requirements,
}

impl Task {
    /// Creates a task with no WCML requirements.
    #[must_use]
    pub fn new(name: impl Into<String>, criticality: Criticality, accesses: u64) -> Self {
        Task { name: name.into(), criticality, accesses, requirements: Requirements::new() }
    }

    /// Builder-style: adds a WCML budget for `mode`.
    #[must_use]
    pub fn with_requirement(mut self, mode: Mode, budget: Cycles) -> Self {
        self.requirements.set(mode, budget);
        self
    }

    /// Returns the task's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the task's criticality level `l_j`.
    #[must_use]
    pub fn criticality(&self) -> Criticality {
        self.criticality
    }

    /// Returns the total number of memory accesses `Λ_j`.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Returns the per-mode requirement table.
    #[must_use]
    pub fn requirements(&self) -> &Requirements {
        &self.requirements
    }

    /// Returns a mutable view of the requirement table (used by run-time
    /// requirement changes in the mode-switch experiment).
    pub fn requirements_mut(&mut self) -> &mut Requirements {
        &mut self.requirements
    }

    /// Returns the effective WCML budget `Γ_j^{m}` at `mode`.
    #[must_use]
    pub fn requirement_at(&self, mode: Mode) -> Option<Cycles> {
        self.requirements.at(mode)
    }

    /// Validates the task against a system with `levels` criticality levels.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LevelOutOfRange`] if the task's criticality exceeds
    /// the number of levels the system supports.
    pub fn validate(&self, levels: u32) -> Result<()> {
        if self.criticality.level() > levels {
            return Err(Error::LevelOutOfRange { value: self.criticality.level(), max: levels });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mode(i: u32) -> Mode {
        Mode::new(i).unwrap()
    }

    #[test]
    fn requirements_inherit_downward_from_lower_modes() {
        let mut reqs = Requirements::new();
        reqs.set(mode(2), Cycles::new(100));
        assert_eq!(reqs.at(mode(1)), None, "mode below first entry is unconstrained");
        assert_eq!(reqs.at(mode(2)), Some(Cycles::new(100)));
        assert_eq!(reqs.at(mode(5)), Some(Cycles::new(100)));
    }

    #[test]
    fn uniform_constrains_all_modes() {
        let reqs = Requirements::uniform(Cycles::new(42));
        for m in 1..=5 {
            assert_eq!(reqs.at(mode(m)), Some(Cycles::new(42)));
        }
    }

    #[test]
    fn later_entries_override() {
        let mut reqs = Requirements::new();
        reqs.set(mode(1), Cycles::new(200));
        reqs.set(mode(3), Cycles::new(120));
        assert_eq!(reqs.at(mode(2)), Some(Cycles::new(200)));
        assert_eq!(reqs.at(mode(3)), Some(Cycles::new(120)));
        assert_eq!(reqs.at(mode(4)), Some(Cycles::new(120)));
    }

    #[test]
    fn task_builder_and_accessors() {
        let t = Task::new("fft", Criticality::new(3).unwrap(), 47_000)
            .with_requirement(Mode::NORMAL, Cycles::new(1_000));
        assert_eq!(t.name(), "fft");
        assert_eq!(t.criticality().level(), 3);
        assert_eq!(t.accesses(), 47_000);
        assert_eq!(t.requirement_at(mode(2)), Some(Cycles::new(1_000)));
    }

    #[test]
    fn validate_rejects_out_of_range_criticality() {
        let t = Task::new("x", Criticality::new(6).unwrap(), 1);
        assert!(t.validate(5).is_err());
        assert!(t.validate(6).is_ok());
    }

    #[test]
    fn iter_returns_sorted_modes() {
        let mut reqs = Requirements::new();
        reqs.set(mode(3), Cycles::new(3));
        reqs.set(mode(1), Cycles::new(1));
        let collected: Vec<_> = reqs.iter().collect();
        assert_eq!(collected, vec![(mode(1), Cycles::new(1)), (mode(3), Cycles::new(3))]);
    }
}
