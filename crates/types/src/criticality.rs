use core::fmt;

use serde::{Deserialize, Serialize};

use crate::{Error, Result};

/// A task's (or, transitively, a core's) criticality level `l`.
///
/// Levels are numbered `1..=L` with **higher numbers more critical**, as in
/// the paper's system model (§II): a core inherits the criticality of the
/// task currently running on it. CoHoRT supports any number of levels `L`
/// (e.g. `L = 5` for DO-178C avionics, `L = 4` for ISO-26262 automotive),
/// unlike two-level baselines such as PENDULUM.
///
/// # Examples
///
/// ```
/// use cohort_types::Criticality;
///
/// let asil_d = Criticality::new(4)?;
/// let qm = Criticality::new(1)?;
/// assert!(asil_d > qm);
/// assert_eq!(asil_d.level(), 4);
/// # Ok::<(), cohort_types::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Criticality(u32);

impl Criticality {
    /// The lowest criticality level (1).
    pub const LOWEST: Criticality = Criticality(1);

    /// Creates a criticality level.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LevelOutOfRange`] if `level` is zero (levels are
    /// 1-based).
    pub fn new(level: u32) -> Result<Self> {
        if level == 0 {
            return Err(Error::LevelOutOfRange { value: level, max: u32::MAX });
        }
        Ok(Criticality(level))
    }

    /// Returns the numeric level (1-based, higher is more critical).
    #[must_use]
    pub const fn level(self) -> u32 {
        self.0
    }

    /// Returns `true` if a core at this criticality keeps time-based
    /// coherence when the system operates at `mode`.
    ///
    /// Per §VI: at mode `m_l`, cores with `l_i ≥ l` run time-based
    /// coherence, cores with `l_i < l` are degraded to MSI.
    #[must_use]
    pub const fn keeps_timed_coherence_at(self, mode: Mode) -> bool {
        self.0 >= mode.0
    }
}

impl fmt::Display for Criticality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// An operational mode `m_l` of the mixed-criticality system.
///
/// The system starts in the normal mode `m_1` and escalates to higher modes
/// under internal failures or external environment changes (§II, §VI). There
/// are as many modes as criticality levels; at mode `m_l` every core whose
/// criticality is below `l` operates in the degraded state (standard MSI
/// coherence) instead of being suspended.
///
/// # Examples
///
/// ```
/// use cohort_types::{Criticality, Mode};
///
/// let m2 = Mode::new(2)?;
/// assert!(Criticality::new(3)?.keeps_timed_coherence_at(m2));
/// assert!(!Criticality::new(1)?.keeps_timed_coherence_at(m2));
/// assert_eq!(m2.next().index(), 3);
/// # Ok::<(), cohort_types::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Mode(u32);

impl Mode {
    /// The normal mode `m_1` in which all requirements are considered.
    pub const NORMAL: Mode = Mode(1);

    /// Creates a mode.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LevelOutOfRange`] if `index` is zero (modes are
    /// 1-based).
    pub fn new(index: u32) -> Result<Self> {
        if index == 0 {
            return Err(Error::LevelOutOfRange { value: index, max: u32::MAX });
        }
        Ok(Mode(index))
    }

    /// Returns the 1-based mode index `l` of `m_l`.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the next (more degraded) mode `m_{l+1}`.
    #[must_use]
    pub const fn next(self) -> Mode {
        Mode(self.0 + 1)
    }

    /// Returns the corresponding criticality threshold: cores at or above
    /// this level keep time-based coherence in this mode.
    #[must_use]
    pub const fn threshold(self) -> Criticality {
        Criticality(self.0)
    }
}

impl Default for Mode {
    fn default() -> Self {
        Mode::NORMAL
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_one_based() {
        assert!(Criticality::new(0).is_err());
        assert!(Mode::new(0).is_err());
        assert_eq!(Criticality::new(1).unwrap(), Criticality::LOWEST);
        assert_eq!(Mode::new(1).unwrap(), Mode::NORMAL);
    }

    #[test]
    fn degradation_rule_matches_section_vi() {
        // At mode m_3, levels 3,4,5 keep timers; 1,2 degrade to MSI.
        let m3 = Mode::new(3).unwrap();
        for l in 1..=5 {
            let c = Criticality::new(l).unwrap();
            assert_eq!(c.keeps_timed_coherence_at(m3), l >= 3);
        }
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Criticality::new(5).unwrap() > Criticality::new(4).unwrap());
        assert!(Mode::new(2).unwrap() > Mode::NORMAL);
    }

    #[test]
    fn mode_escalation() {
        assert_eq!(Mode::NORMAL.next(), Mode::new(2).unwrap());
        assert_eq!(Mode::new(2).unwrap().threshold(), Criticality::new(2).unwrap());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Criticality::new(4).unwrap().to_string(), "L4");
        assert_eq!(Mode::new(2).unwrap().to_string(), "m2");
    }
}
