use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A duration or instant measured in processor clock cycles.
///
/// The simulator, the timing analysis and the optimization engine all agree
/// on this single time unit. `Cycles` is a saturating-free, panic-on-overflow
/// newtype over `u64`: worst-case bounds in this domain can legitimately
/// reach billions of cycles, but silent wrap-around would invalidate a
/// soundness claim, so arithmetic uses the standard checked-by-debug
/// semantics of `u64` plus explicit `checked_*` helpers where the analysis
/// composes large products.
///
/// # Examples
///
/// ```
/// use cohort_types::Cycles;
///
/// let slot = Cycles::new(54);
/// let four_slots = slot * 4;
/// assert_eq!(four_slots.get(), 216);
/// assert!(four_slots > slot);
/// let total: Cycles = [slot, four_slots].into_iter().sum();
/// assert_eq!(total.get(), 270);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    #[must_use]
    pub const fn new(cycles: u64) -> Self {
        Cycles(cycles)
    }

    /// Returns the raw cycle count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub const fn checked_add(self, rhs: Cycles) -> Option<Cycles> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Cycles(v)),
            None => None,
        }
    }

    /// Checked multiplication by a scalar; `None` on overflow.
    #[must_use]
    pub const fn checked_mul(self, rhs: u64) -> Option<Cycles> {
        match self.0.checked_mul(rhs) {
            Some(v) => Some(Cycles(v)),
            None => None,
        }
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Returns `self` rounded up to the next multiple of `quantum`.
    ///
    /// Used by slot-aligned arbiters (TDM) and by the analysis when a timer
    /// expires mid-slot and the transfer must wait for the slot boundary.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    #[must_use]
    pub fn round_up_to(self, quantum: Cycles) -> Cycles {
        assert!(quantum.0 > 0, "quantum must be positive");
        let rem = self.0 % quantum.0;
        if rem == 0 {
            self
        } else {
            Cycles(self.0 + (quantum.0 - rem))
        }
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(v: u64) -> Self {
        Cycles(v)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Cycles::new(50);
        let b = Cycles::new(4);
        assert_eq!((a + b).get(), 54);
        assert_eq!((a - b).get(), 46);
        assert_eq!((b * 3).get(), 12);
        let mut c = a;
        c += b;
        assert_eq!(c.get(), 54);
    }

    #[test]
    fn round_up_to_quantum() {
        let q = Cycles::new(54);
        assert_eq!(Cycles::new(0).round_up_to(q).get(), 0);
        assert_eq!(Cycles::new(1).round_up_to(q).get(), 54);
        assert_eq!(Cycles::new(54).round_up_to(q).get(), 54);
        assert_eq!(Cycles::new(55).round_up_to(q).get(), 108);
    }

    #[test]
    fn checked_ops_detect_overflow() {
        assert_eq!(Cycles::new(u64::MAX).checked_add(Cycles::new(1)), None);
        assert_eq!(Cycles::new(u64::MAX).checked_mul(2), None);
        assert_eq!(Cycles::new(2).checked_mul(3), Some(Cycles::new(6)));
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        assert_eq!(Cycles::new(3).saturating_sub(Cycles::new(5)), Cycles::ZERO);
        assert_eq!(Cycles::new(5).saturating_sub(Cycles::new(3)).get(), 2);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Cycles = (1..=4).map(Cycles::new).sum();
        assert_eq!(total.get(), 10);
    }
}
