//! Shared vocabulary types for the CoHoRT mixed-criticality coherence stack.
//!
//! This crate defines the newtypes and small value types used throughout the
//! reproduction of *CoHoRT: Criticality and Requirement Aware Heterogeneous
//! Coherence for Mixed Criticality Systems* (DATE 2025):
//!
//! - hardware identifiers ([`CoreId`], [`Address`], [`LineAddr`]),
//! - time ([`Cycles`]),
//! - the coherence timer register value ([`TimerValue`]: a non-negative θ or
//!   the special MSI value θ = −1),
//! - the mixed-criticality task model ([`Criticality`], [`Mode`], [`Task`]),
//! - the latency parameters of the modelled memory hierarchy
//!   ([`LatencyConfig`]),
//! - the fleet coordination vocabulary ([`Fingerprint`] content-addresses,
//!   claim [`Epoch`]s and [`WorkerId`]s),
//! - and a common error type ([`Error`]).
//!
//! # Examples
//!
//! ```
//! use cohort_types::{Criticality, LatencyConfig, Mode, TimerValue};
//!
//! // The paper's evaluation latencies: hit 1, request 4, data 50.
//! let lat = LatencyConfig::paper();
//! assert_eq!(lat.slot_width().get(), 54);
//!
//! // A core running time-based coherence with a 300-cycle timer...
//! let theta = TimerValue::timed(300)?;
//! assert!(theta.is_timed());
//! // ...and one reduced to plain MSI snooping (θ = −1).
//! assert!(TimerValue::MSI.is_msi());
//!
//! // Five criticality levels as mandated by DO-178C.
//! let level_a = Criticality::new(5)?;
//! assert!(level_a >= Criticality::new(1)?);
//! let _mode = Mode::new(2)?;
//! # Ok::<(), cohort_types::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod criticality;
mod error;
mod fleet;
mod ids;
mod latency;
mod task;
mod time;
mod timer;

pub use criticality::{Criticality, Mode};
pub use error::Error;
pub use fleet::{Epoch, Fingerprint, FingerprintBuilder, WorkerId};
pub use ids::{Address, CoreId, LineAddr};
pub use latency::LatencyConfig;
pub use task::{Requirements, Task};
pub use time::Cycles;
pub use timer::TimerValue;

/// Convenience result alias used across the workspace.
pub type Result<T, E = Error> = core::result::Result<T, E>;
