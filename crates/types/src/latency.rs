use serde::{Deserialize, Serialize};

use crate::{Cycles, Error, Result};

/// Latency parameters of the modelled memory hierarchy.
///
/// These are the knobs of the cycle-accurate model (§VIII of the paper):
///
/// - `hit` — latency of a hit in the private L1 cache (`L^hit`),
/// - `request` — cycles a request broadcast occupies the shared bus,
/// - `data` — cycles a data transfer occupies the shared bus,
/// - `memory` — additional cycles for an LLC miss to reach main memory
///   (only used by the non-perfect LLC model; zero for a perfect LLC).
///
/// The **slot width** `SW` used throughout the worst-case analysis (Eq. 1)
/// is the time one complete bus transaction takes: `request + data`.
///
/// # Examples
///
/// ```
/// use cohort_types::LatencyConfig;
///
/// // Paper values: hit 1, request 4, data 50 → SW = 54.
/// let lat = LatencyConfig::paper();
/// assert_eq!(lat.hit.get(), 1);
/// assert_eq!(lat.slot_width().get(), 54);
///
/// let custom = LatencyConfig::new(2, 8, 40)?;
/// assert_eq!(custom.slot_width().get(), 48);
/// # Ok::<(), cohort_types::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LatencyConfig {
    /// Latency of a private-cache hit (`L^hit`).
    pub hit: Cycles,
    /// Bus occupancy of a request broadcast.
    pub request: Cycles,
    /// Bus occupancy of a data transfer.
    pub data: Cycles,
    /// Extra latency of an LLC miss to main memory (non-perfect LLC only).
    pub memory: Cycles,
}

impl LatencyConfig {
    /// The latencies used in the paper's evaluation: hit 1, request 4,
    /// data 50, perfect LLC (memory 0).
    #[must_use]
    pub const fn paper() -> Self {
        LatencyConfig {
            hit: Cycles::new(1),
            request: Cycles::new(4),
            data: Cycles::new(50),
            memory: Cycles::ZERO,
        }
    }

    /// Creates a latency configuration with a perfect LLC.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any latency is zero: a zero-cost
    /// hit or bus phase collapses the cycle-level model.
    pub fn new(hit: u64, request: u64, data: u64) -> Result<Self> {
        if hit == 0 || request == 0 || data == 0 {
            return Err(Error::InvalidConfig(
                "hit, request and data latencies must be positive".into(),
            ));
        }
        Ok(LatencyConfig {
            hit: Cycles::new(hit),
            request: Cycles::new(request),
            data: Cycles::new(data),
            memory: Cycles::ZERO,
        })
    }

    /// Returns a copy with a fixed main-memory latency behind a non-perfect
    /// LLC (the paper's footnote-1 configuration).
    #[must_use]
    pub const fn with_memory(mut self, memory: u64) -> Self {
        self.memory = Cycles::new(memory);
        self
    }

    /// The slot width `SW = request + data`: the worst-case bus occupancy of
    /// one complete transaction, used by Eq. 1 and by the TDM arbiter.
    #[must_use]
    pub fn slot_width(&self) -> Cycles {
        self.request + self.data
    }
}

impl Default for LatencyConfig {
    /// Defaults to the paper's evaluation latencies.
    fn default() -> Self {
        LatencyConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let lat = LatencyConfig::paper();
        assert_eq!(lat.hit.get(), 1);
        assert_eq!(lat.request.get(), 4);
        assert_eq!(lat.data.get(), 50);
        assert_eq!(lat.memory.get(), 0);
        assert_eq!(lat.slot_width().get(), 54);
    }

    #[test]
    fn zero_latency_rejected() {
        assert!(LatencyConfig::new(0, 4, 50).is_err());
        assert!(LatencyConfig::new(1, 0, 50).is_err());
        assert!(LatencyConfig::new(1, 4, 0).is_err());
    }

    #[test]
    fn with_memory_sets_dram_latency() {
        let lat = LatencyConfig::paper().with_memory(100);
        assert_eq!(lat.memory.get(), 100);
        // Slot width is unaffected: DRAM sits behind the LLC, not the bus.
        assert_eq!(lat.slot_width().get(), 54);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(LatencyConfig::default(), LatencyConfig::paper());
    }
}
