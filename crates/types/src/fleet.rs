//! Coordination vocabulary for the sweep-fleet service: content-address
//! fingerprints, claim epochs and worker identities.
//!
//! The fleet's result store is **content-addressed**: a job's identity is a
//! 128-bit [`Fingerprint`] derived from everything that determines its
//! outcome (the workload traces' own fingerprints plus the canonical
//! encoding of the configuration). Two submissions with the same
//! fingerprint are the same computation, so they share one execution and
//! one stored result.
//!
//! Claim coordination uses epochs rather than locks held across a crash: a
//! worker claims a job at some [`Epoch`]; if its lease expires the job is
//! re-claimed at the next epoch, and the late completion from the previous
//! epoch is rejected as stale. Because every job is a pure function of its
//! spec, the re-run is bit-identical — stale rejections lose no data.

use core::fmt;

use crate::{Error, Result};

/// The two FNV-1a stream offsets and the prime, shared with
/// `cohort_trace::Trace::fingerprint` so trace and spec fingerprints live
/// in the same 128-bit space.
const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 128-bit content-address: two independent FNV-1a streams over the
/// hashed content, matching the trace fingerprints the analysis memo is
/// keyed on.
///
/// # Examples
///
/// ```
/// use cohort_types::Fingerprint;
///
/// let fp = Fingerprint::builder().bytes(b"job spec").finish();
/// let hex = fp.to_hex();
/// assert_eq!(hex.len(), 32);
/// assert_eq!(Fingerprint::from_hex(&hex)?, fp);
/// # Ok::<(), cohort_types::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// Wraps a raw 128-bit fingerprint (e.g. one produced by
    /// `Trace::fingerprint`).
    #[must_use]
    pub const fn from_raw(raw: u128) -> Self {
        Fingerprint(raw)
    }

    /// The raw 128-bit value.
    #[must_use]
    pub const fn get(self) -> u128 {
        self.0
    }

    /// Starts a streaming fingerprint computation.
    #[must_use]
    pub fn builder() -> FingerprintBuilder {
        FingerprintBuilder::new()
    }

    /// The 32-character lower-case hex spelling — filesystem-safe, used as
    /// the store's file name for the entry.
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses a [`Self::to_hex`] spelling.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] for anything but exactly 32 hex digits.
    pub fn from_hex(hex: &str) -> Result<Self> {
        if hex.len() != 32 {
            return Err(Error::Codec(format!(
                "fingerprint hex must be 32 digits, got {}",
                hex.len()
            )));
        }
        u128::from_str_radix(hex, 16)
            .map(Fingerprint)
            .map_err(|e| Error::Codec(format!("invalid fingerprint hex `{hex}`: {e}")))
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Streaming builder for a [`Fingerprint`]: feed it bytes, integers and
/// already-computed fingerprints (e.g. per-trace fingerprints), then
/// [`FingerprintBuilder::finish`].
///
/// The digest runs the same dual-stream FNV-1a construction as the trace
/// fingerprints, so combining is cheap and deterministic across hosts.
#[derive(Debug, Clone)]
pub struct FingerprintBuilder {
    a: u64,
    b: u64,
}

impl Default for FingerprintBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl FingerprintBuilder {
    /// Starts an empty digest.
    #[must_use]
    pub fn new() -> Self {
        FingerprintBuilder { a: OFFSET_A, b: OFFSET_B }
    }

    fn push(&mut self, byte: u8) {
        self.a = (self.a ^ u64::from(byte)).wrapping_mul(PRIME);
        self.b = (self.b ^ u64::from(byte)).wrapping_mul(PRIME.rotate_left(1) | 1);
    }

    /// Feeds raw bytes.
    #[must_use]
    pub fn bytes(mut self, bytes: &[u8]) -> Self {
        for &byte in bytes {
            self.push(byte);
        }
        self
    }

    /// Feeds a string (UTF-8 bytes plus a terminator, so `("ab", "c")` and
    /// `("a", "bc")` digest differently).
    #[must_use]
    pub fn text(mut self, text: &str) -> Self {
        for &byte in text.as_bytes() {
            self.push(byte);
        }
        self.push(0xff);
        self
    }

    /// Feeds a `u64` in little-endian byte order.
    #[must_use]
    pub fn u64(mut self, value: u64) -> Self {
        for byte in value.to_le_bytes() {
            self.push(byte);
        }
        self
    }

    /// Folds an existing 128-bit fingerprint (e.g. a trace's) into the
    /// digest.
    #[must_use]
    pub fn fingerprint(mut self, fp: u128) -> Self {
        for byte in fp.to_le_bytes() {
            self.push(byte);
        }
        self
    }

    /// Finalises the digest.
    #[must_use]
    pub fn finish(self) -> Fingerprint {
        Fingerprint((u128::from(self.a) << 64) | u128::from(self.b))
    }
}

/// A claim generation for one fleet job.
///
/// Each time a job is (re-)claimed its epoch advances; completions carry
/// the epoch they were claimed at, and the queue rejects completions whose
/// epoch is no longer current (the claimer's lease expired and the job was
/// handed to another shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Epoch(u64);

impl Epoch {
    /// The first claim's epoch.
    pub const FIRST: Epoch = Epoch(1);

    /// Wraps a raw epoch counter.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Epoch(raw)
    }

    /// The raw counter.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The epoch a re-claim advances to.
    #[must_use]
    pub const fn next(self) -> Self {
        Epoch(self.0 + 1)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identity of one worker shard of the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(u64);

impl WorkerId {
    /// Wraps a raw shard index.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        WorkerId(raw)
    }

    /// The raw shard index.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let fp = Fingerprint::builder().text("hello").u64(42).finish();
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::from_hex(&hex).unwrap(), fp);
        assert_eq!(fp.to_string(), hex);
    }

    #[test]
    fn hex_rejects_malformed_input() {
        assert!(Fingerprint::from_hex("abc").is_err());
        assert!(Fingerprint::from_hex(&"g".repeat(32)).is_err());
        // Leading zeros survive the round trip.
        let small = Fingerprint::from_raw(0xbeef);
        assert_eq!(Fingerprint::from_hex(&small.to_hex()).unwrap(), small);
    }

    #[test]
    fn digest_is_order_and_boundary_sensitive() {
        let ab = Fingerprint::builder().text("ab").text("c").finish();
        let a_bc = Fingerprint::builder().text("a").text("bc").finish();
        assert_ne!(ab, a_bc, "field boundaries must be part of the digest");
        let fwd = Fingerprint::builder().u64(1).u64(2).finish();
        let rev = Fingerprint::builder().u64(2).u64(1).finish();
        assert_ne!(fwd, rev);
        assert_eq!(
            Fingerprint::builder().fingerprint(77).finish(),
            Fingerprint::builder().fingerprint(77).finish(),
        );
    }

    #[test]
    fn epochs_advance() {
        assert_eq!(Epoch::FIRST.next(), Epoch::new(2));
        assert!(Epoch::FIRST < Epoch::FIRST.next());
        assert_eq!(Epoch::new(9).to_string(), "9");
        assert_eq!(WorkerId::new(3).to_string(), "w3");
    }
}
