use core::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a processing element (core) on the modelled MPSoC.
///
/// Cores are numbered `0..N` in the cyclic broadcast order used by the
/// round-robin oldest-first (RROF) bus arbiter.
///
/// # Examples
///
/// ```
/// use cohort_types::CoreId;
///
/// let c2 = CoreId::new(2);
/// assert_eq!(c2.index(), 2);
/// assert_eq!(c2.to_string(), "c2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CoreId(usize);

impl CoreId {
    /// Creates a core identifier from its index in the broadcast order.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        CoreId(index)
    }

    /// Returns the zero-based index of this core.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<usize> for CoreId {
    fn from(index: usize) -> Self {
        CoreId(index)
    }
}

/// A byte address in the shared physical address space.
///
/// Convert to a [`LineAddr`] with [`Address::line`] given the cache-line
/// size used by the hierarchy (64 B in the paper's evaluation).
///
/// # Examples
///
/// ```
/// use cohort_types::Address;
///
/// let a = Address::new(0x1040);
/// assert_eq!(a.line(64).raw(), 0x41);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw byte offset.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw byte offset.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache line containing this address.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    #[must_use]
    pub fn line(self, line_size: u64) -> LineAddr {
        assert!(line_size.is_power_of_two(), "line size must be a power of two");
        LineAddr(self.0 >> line_size.trailing_zeros())
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

/// A cache-line address: a byte address with the line offset stripped.
///
/// All coherence bookkeeping (ownership, waiter queues, timers) is keyed by
/// line address, never by byte address.
///
/// # Examples
///
/// ```
/// use cohort_types::LineAddr;
///
/// let l = LineAddr::new(0x41);
/// assert_eq!(l.byte_address(64).raw(), 0x1040);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw line number.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the first byte address covered by this line.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    #[must_use]
    pub fn byte_address(self, line_size: u64) -> Address {
        assert!(line_size.is_power_of_two(), "line size must be a power of two");
        Address(self.0 << line_size.trailing_zeros())
    }

    /// Returns the set index of this line in a cache with `sets` sets.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero.
    #[must_use]
    pub fn set_index(self, sets: u64) -> u64 {
        assert!(sets > 0, "a cache needs at least one set");
        self.0 % sets
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(raw: u64) -> Self {
        LineAddr(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_line_round_trip() {
        let a = Address::new(0x1278);
        let line = a.line(64);
        assert_eq!(line.raw(), 0x49);
        assert_eq!(line.byte_address(64).raw(), 0x1240);
    }

    #[test]
    fn set_index_wraps_modulo() {
        assert_eq!(LineAddr::new(0).set_index(256), 0);
        assert_eq!(LineAddr::new(255).set_index(256), 255);
        assert_eq!(LineAddr::new(256).set_index(256), 0);
        assert_eq!(LineAddr::new(511).set_index(256), 255);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_size_panics() {
        let _ = Address::new(0).line(48);
    }

    #[test]
    fn display_forms() {
        assert_eq!(CoreId::new(3).to_string(), "c3");
        assert_eq!(Address::new(255).to_string(), "0xff");
        assert_eq!(LineAddr::new(255).to_string(), "L0xff");
    }

    /// Probes whether the ambient `serde_json` supports typed serde of
    /// `#[serde(transparent)]` newtypes. The offline stub harness ships a
    /// minimal `serde_json` that routes everything through `Value` and
    /// cannot flatten a transparent newtype to its inner scalar; under it
    /// the round-trip either errors or yields a non-transparent encoding.
    fn serde_json_handles_transparent_newtypes() -> bool {
        matches!(serde_json::to_string(&CoreId::new(0)).as_deref(), Ok("0"))
    }

    #[test]
    fn serde_is_transparent() {
        if !serde_json_handles_transparent_newtypes() {
            eprintln!(
                "skipping serde_is_transparent: stub serde_json cannot do typed \
                 transparent serde (passes in CI with the real crates-io dependency)"
            );
            return;
        }
        let json = serde_json::to_string(&CoreId::new(2)).unwrap();
        assert_eq!(json, "2");
        let back: CoreId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, CoreId::new(2));
    }
}
