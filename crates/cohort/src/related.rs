//! The qualitative comparison of predictable-coherence work against the
//! four MCS challenges (the paper's Table I).

use core::fmt;

/// How a body of work addresses one challenge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Support {
    /// Not addressed.
    No,
    /// Partially addressed (e.g. only two criticality levels).
    Limited,
    /// Fully addressed.
    Yes,
    /// Addressed and optimized against explicit requirements.
    Optimized,
}

impl fmt::Display for Support {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Support::No => "No",
            Support::Limited => "Limited",
            Support::Yes => "Yes",
            Support::Optimized => "Optimized",
        })
    }
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableOneRow {
    /// The work category (citation keys as printed in the paper).
    pub works: &'static str,
    /// Challenge 1: heterogeneity (multiple protocols on one platform).
    pub heterogeneity: Support,
    /// Challenge 2: criticality-awareness (arbitrary level counts).
    pub criticality: Support,
    /// Challenge 3: requirement-awareness.
    pub requirements: Support,
    /// Challenge 4: mode switching.
    pub mode_switching: Support,
}

/// The rows of Table I, in the paper's order.
#[must_use]
pub fn table_one() -> Vec<TableOneRow> {
    use Support::{Limited, No, Optimized, Yes};
    vec![
        TableOneRow {
            works: "[10]-[12], [15], [21], [22], [24]",
            heterogeneity: No,
            criticality: No,
            requirements: No,
            mode_switching: No,
        },
        TableOneRow {
            works: "[13], [16] (CARP, PENDULUM)",
            heterogeneity: No,
            criticality: Limited,
            requirements: No,
            mode_switching: No,
        },
        TableOneRow {
            works: "[17] (PENDULUM*)",
            heterogeneity: No,
            criticality: No,
            requirements: Yes,
            mode_switching: No,
        },
        TableOneRow {
            works: "CoHoRT",
            heterogeneity: Yes,
            criticality: Yes,
            requirements: Optimized,
            mode_switching: Yes,
        },
    ]
}

/// Renders Table I as an aligned text table (the `table1` bench target).
#[must_use]
pub fn render_table_one() -> String {
    use std::fmt::Write;

    let rows = table_one();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<36} {:>14} {:>12} {:>13} {:>15}",
        "Work Categories", "Heterogeneity", "Criticality", "Requirements", "Mode Switching"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<36} {:>14} {:>12} {:>13} {:>15}",
            row.works,
            row.heterogeneity.to_string(),
            row.criticality.to_string(),
            row.requirements.to_string(),
            row.mode_switching.to_string()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_is_the_only_full_row() {
        let rows = table_one();
        assert_eq!(rows.len(), 4);
        let cohort = rows.last().unwrap();
        assert_eq!(cohort.works, "CoHoRT");
        assert_eq!(cohort.heterogeneity, Support::Yes);
        assert_eq!(cohort.requirements, Support::Optimized);
        for row in &rows[..3] {
            assert_eq!(row.heterogeneity, Support::No);
            assert_eq!(row.mode_switching, Support::No);
        }
    }

    #[test]
    fn rendering_contains_all_rows() {
        let table = render_table_one();
        assert!(table.contains("CoHoRT"));
        assert!(table.contains("PENDULUM"));
        assert!(table.contains("Optimized"));
        assert_eq!(table.lines().count(), 5);
    }
}
