//! Hardware-cost accounting for the CoHoRT architecture (§III-B).
//!
//! The paper argues the architecture is low-cost: one 16-bit countdown
//! counter per private cache line (≈3 % overhead for 64 B lines), one
//! 16-bit timer threshold register per core, and one Mode-Switch LUT with
//! a 16-bit field per mode (80 bits for the five avionics levels). This
//! module turns those claims into checkable numbers for any configuration.

use serde::{Deserialize, Serialize};

use cohort_sim::CacheGeometry;

/// Width of the timer threshold register, the per-line counters and each
/// Mode-Switch LUT field (the paper finds 16 bits sufficient).
pub const TIMER_BITS: u64 = 16;

/// Hardware overhead of CoHoRT on one core's cache controller.
///
/// # Examples
///
/// ```
/// use cohort::hardware::HardwareCost;
/// use cohort_sim::CacheGeometry;
///
/// // The paper's configuration: 16 KiB L1, 64 B lines, 5 modes.
/// let cost = HardwareCost::per_core(&CacheGeometry::paper_l1(), 5);
/// assert_eq!(cost.lut_bits, 80, "the paper's 80-bit LUT");
/// // ≈3% per line: 16 counter bits over 512 data bits.
/// assert!((cost.line_overhead_fraction() - 0.031).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardwareCost {
    /// One countdown counter per cache line.
    pub counter_bits: u64,
    /// The θ threshold register.
    pub register_bits: u64,
    /// The Mode-Switch LUT (16 bits per mode).
    pub lut_bits: u64,
    /// Number of private-cache lines the counters cover.
    pub lines: u64,
    /// Data bits per line (for the overhead ratio).
    pub line_data_bits: u64,
}

impl HardwareCost {
    /// Computes the per-core cost for a private-cache geometry and a number
    /// of operational modes.
    #[must_use]
    pub fn per_core(l1: &CacheGeometry, modes: u32) -> Self {
        HardwareCost {
            counter_bits: TIMER_BITS * l1.lines(),
            register_bits: TIMER_BITS,
            lut_bits: TIMER_BITS * u64::from(modes),
            lines: l1.lines(),
            line_data_bits: l1.line_bytes * 8,
        }
    }

    /// Total added bits on this core.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.counter_bits + self.register_bits + self.lut_bits
    }

    /// The per-line storage overhead of the countdown counter relative to
    /// the line's data bits — the paper's "around 3 % for a 64 B line".
    #[must_use]
    pub fn line_overhead_fraction(&self) -> f64 {
        TIMER_BITS as f64 / self.line_data_bits as f64
    }

    /// Overhead of everything except the counters (register + LUT) —
    /// "a negligible 80 bits" for five levels.
    #[must_use]
    pub fn control_bits(&self) -> u64 {
        self.register_bits + self.lut_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        let cost = HardwareCost::per_core(&CacheGeometry::paper_l1(), 5);
        assert_eq!(cost.lines, 256);
        assert_eq!(cost.counter_bits, 16 * 256);
        assert_eq!(cost.register_bits, 16);
        assert_eq!(cost.lut_bits, 80);
        assert_eq!(cost.control_bits(), 96);
        assert_eq!(cost.total_bits(), 16 * 256 + 96);
        // 16 bits per 512-bit line = 3.125 %.
        assert!((cost.line_overhead_fraction() - 0.03125).abs() < 1e-12);
    }

    #[test]
    fn lut_scales_with_modes() {
        let two = HardwareCost::per_core(&CacheGeometry::paper_l1(), 2);
        let five = HardwareCost::per_core(&CacheGeometry::paper_l1(), 5);
        assert_eq!(five.lut_bits - two.lut_bits, 3 * 16);
        assert_eq!(two.counter_bits, five.counter_bits, "counters are mode-independent");
    }
}
