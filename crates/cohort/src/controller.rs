//! The run-time mode controller (§VI, Figure 7).
//!
//! When a higher-criticality core's requirement tightens (an external
//! environment change or an internal failure), the traditional MCS response
//! suspends all lower-criticality tasks. CoHoRT instead **escalates the
//! operational mode**: the Mode-Switch LUT re-programs the θ registers so
//! lower-criticality cores drop to MSI — they keep running (merely losing
//! their hit guarantees) while the critical core's Eq. 1 bound sheds their
//! timer terms.

use cohort_types::{CoreId, Cycles, Error, Mode, Result};

use crate::ModeConfiguration;

/// The controller's verdict on a requirement change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeDecision {
    /// The current mode already satisfies the requirement.
    Stay(Mode),
    /// Escalate to the given (higher) mode.
    Escalate(Mode),
    /// No mode satisfies the requirement — the system is unschedulable for
    /// this task (the Figure-7 "without mode-switch" outcome).
    Unschedulable,
}

impl ModeDecision {
    /// The mode the system operates in after the decision, if schedulable.
    #[must_use]
    pub fn mode(&self) -> Option<Mode> {
        match self {
            ModeDecision::Stay(m) | ModeDecision::Escalate(m) => Some(*m),
            ModeDecision::Unschedulable => None,
        }
    }
}

/// Run-time mode-switch controller over an offline [`ModeConfiguration`].
///
/// # Examples
///
/// ```
/// use cohort::{ModeController, ModeSetup, SystemSpec};
/// use cohort_optim::GaConfig;
/// use cohort_trace::micro;
/// use cohort_types::{CoreId, Criticality, Cycles, Mode};
///
/// let spec = SystemSpec::builder()
///     .core(Criticality::new(2)?)
///     .core(Criticality::new(1)?)
///     .build()?;
/// let workload = micro::line_bursts(2, 4, 40);
/// let ga = GaConfig { population: 12, generations: 6, ..Default::default() };
/// let config = ModeSetup::new(&spec, &workload).ga(&ga).run()?;
/// let mut controller = ModeController::new(config);
/// assert_eq!(controller.current(), Mode::NORMAL);
///
/// // A hopeless requirement is reported, not papered over.
/// let decision = controller.requirement_changed(CoreId::new(0), Cycles::new(1))?;
/// assert_eq!(decision.mode(), None);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ModeController {
    config: ModeConfiguration,
    current: Mode,
}

impl ModeController {
    /// Creates a controller starting in the normal mode `m_1`.
    #[must_use]
    pub fn new(config: ModeConfiguration) -> Self {
        ModeController { config, current: Mode::NORMAL }
    }

    /// The current operational mode.
    #[must_use]
    pub fn current(&self) -> Mode {
        self.current
    }

    /// The offline configuration the controller consults.
    #[must_use]
    pub fn configuration(&self) -> &ModeConfiguration {
        &self.config
    }

    /// Finds the lowest mode at or above `from` whose (feasible) entry
    /// bounds `core`'s WCML within `requirement`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownCore`] for an out-of-range core.
    pub fn first_satisfying_mode(
        &self,
        core: CoreId,
        requirement: Cycles,
        from: Mode,
    ) -> Result<Option<Mode>> {
        // Validate the core against the configuration up front, so an
        // unknown core errors instead of masquerading as "unschedulable".
        let cores = self.config.entries.first().map_or(0, |e| e.bounds.len());
        if core.index() >= cores {
            return Err(Error::UnknownCore { index: core.index(), cores });
        }
        for entry in &self.config.entries {
            if entry.mode < from || !entry.feasible {
                continue;
            }
            let bound = entry
                .bounds
                .get(core.index())
                .ok_or(Error::UnknownCore { index: core.index(), cores: entry.bounds.len() })?;
            if bound.wcml.is_some_and(|w| w <= requirement) {
                return Ok(Some(entry.mode));
            }
        }
        Ok(None)
    }

    /// Handles a requirement change for `core` (Figure 7): stays in the
    /// current mode if its bound still fits, otherwise escalates to the
    /// first mode that fits, otherwise reports unschedulability (leaving
    /// the mode unchanged).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownCore`] for an out-of-range core.
    pub fn requirement_changed(
        &mut self,
        core: CoreId,
        requirement: Cycles,
    ) -> Result<ModeDecision> {
        match self.first_satisfying_mode(core, requirement, self.current)? {
            Some(mode) if mode == self.current => Ok(ModeDecision::Stay(mode)),
            Some(mode) => {
                self.current = mode;
                Ok(ModeDecision::Escalate(mode))
            }
            None => Ok(ModeDecision::Unschedulable),
        }
    }

    /// Resets the controller to the normal mode (e.g. when the environment
    /// relaxes and the system re-admits all requirements).
    pub fn reset(&mut self) {
        self.current = Mode::NORMAL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModeEntry, ModeSwitchLut};
    use cohort_analysis::CoreBound;
    use cohort_types::TimerValue;

    /// Hand-built configuration: two cores, three modes with c0 bounds
    /// 1000 / 600 / 300.
    fn config() -> ModeConfiguration {
        let bounds = |b0: u64| {
            vec![
                CoreBound {
                    hits: 0,
                    misses: 10,
                    wcl: Some(Cycles::new(b0 / 10)),
                    wcml: Some(Cycles::new(b0)),
                },
                CoreBound { hits: 0, misses: 10, wcl: None, wcml: None },
            ]
        };
        let timers = vec![TimerValue::timed(10).unwrap(), TimerValue::MSI];
        let entries = vec![
            ModeEntry {
                mode: Mode::new(1).unwrap(),
                timers: timers.clone(),
                bounds: bounds(1000),
                feasible: true,
            },
            ModeEntry {
                mode: Mode::new(2).unwrap(),
                timers: timers.clone(),
                bounds: bounds(600),
                feasible: true,
            },
            ModeEntry {
                mode: Mode::new(3).unwrap(),
                timers: timers.clone(),
                bounds: bounds(300),
                feasible: true,
            },
        ];
        let lut = ModeSwitchLut::new(vec![timers.clone(), timers.clone(), timers]).unwrap();
        ModeConfiguration { entries, lut }
    }

    #[test]
    fn stays_when_current_mode_fits() {
        let mut c = ModeController::new(config());
        let d = c.requirement_changed(CoreId::new(0), Cycles::new(1_500)).unwrap();
        assert_eq!(d, ModeDecision::Stay(Mode::NORMAL));
        assert_eq!(c.current(), Mode::NORMAL);
    }

    #[test]
    fn escalates_to_first_fitting_mode() {
        let mut c = ModeController::new(config());
        // 500 < 600? No: mode 2's bound is 600 > 500, so mode 3 it is.
        let d = c.requirement_changed(CoreId::new(0), Cycles::new(500)).unwrap();
        assert_eq!(d, ModeDecision::Escalate(Mode::new(3).unwrap()));
        assert_eq!(c.current().index(), 3);
    }

    #[test]
    fn escalation_is_monotone() {
        let mut c = ModeController::new(config());
        c.requirement_changed(CoreId::new(0), Cycles::new(700)).unwrap();
        assert_eq!(c.current().index(), 2);
        // A later relaxed requirement does not de-escalate automatically.
        let d = c.requirement_changed(CoreId::new(0), Cycles::new(10_000)).unwrap();
        assert_eq!(d, ModeDecision::Stay(Mode::new(2).unwrap()));
        c.reset();
        assert_eq!(c.current(), Mode::NORMAL);
    }

    #[test]
    fn unschedulable_keeps_mode() {
        let mut c = ModeController::new(config());
        let d = c.requirement_changed(CoreId::new(0), Cycles::new(100)).unwrap();
        assert_eq!(d, ModeDecision::Unschedulable);
        assert_eq!(d.mode(), None);
        assert_eq!(c.current(), Mode::NORMAL, "mode unchanged on failure");
    }

    #[test]
    fn infeasible_modes_are_skipped() {
        let mut cfg = config();
        cfg.entries[1].feasible = false;
        let mut c = ModeController::new(cfg);
        // Bound 700 would fit mode 2 (600), but it is infeasible → mode 3.
        let d = c.requirement_changed(CoreId::new(0), Cycles::new(700)).unwrap();
        assert_eq!(d, ModeDecision::Escalate(Mode::new(3).unwrap()));
    }

    #[test]
    fn unbounded_cores_never_satisfy() {
        let c = ModeController::new(config());
        let m = c
            .first_satisfying_mode(CoreId::new(1), Cycles::new(u64::MAX / 2), Mode::NORMAL)
            .unwrap();
        assert_eq!(m, None, "core 1 has no bounds in any mode");
        assert!(c.first_satisfying_mode(CoreId::new(7), Cycles::ZERO, Mode::NORMAL).is_err());
    }
}
