//! The offline mode-configuration flow (Fig. 2a + §VI).
//!
//! For every operational mode `m_l` the optimization engine is run over the
//! tasks with `l_j ≥ l` (the cores that keep time-based coherence in that
//! mode) with their mode-`l` requirements; cores below the level are pinned
//! to MSI. The resulting per-mode timer vectors are burned into each
//! core's **Mode-Switch LUT** — the 16-bit-per-mode table of Fig. 2b that
//! the hardware indexes on a mode switch.

use serde::{Deserialize, Serialize};

use cohort_analysis::CoreBound;
use cohort_optim::{GaConfig, GaObserver, GaRun, TimerProblem};
use cohort_trace::Workload;
use cohort_types::{CoreId, Cycles, Error, Mode, Result, TimerValue};

use crate::SystemSpec;

/// The per-core Mode-Switch LUT contents: `rows[l−1][i]` is θ_i^{m_l}.
///
/// # Examples
///
/// ```
/// use cohort::ModeSwitchLut;
/// use cohort_types::{Mode, TimerValue};
///
/// let lut = ModeSwitchLut::new(vec![
///     vec![TimerValue::timed(300)?, TimerValue::timed(20)?],
///     vec![TimerValue::timed(500)?, TimerValue::MSI],
/// ])?;
/// assert_eq!(lut.modes(), 2);
/// assert!(lut.timers_for(Mode::new(2)?)?[1].is_msi());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModeSwitchLut {
    rows: Vec<Vec<TimerValue>>,
}

impl ModeSwitchLut {
    /// Creates a LUT from per-mode timer vectors (mode 1 first).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the table is empty or ragged.
    pub fn new(rows: Vec<Vec<TimerValue>>) -> Result<Self> {
        let Some(first) = rows.first() else {
            return Err(Error::InvalidConfig("a LUT needs at least one mode".into()));
        };
        let cores = first.len();
        if cores == 0 || rows.iter().any(|r| r.len() != cores) {
            return Err(Error::InvalidConfig("LUT rows must cover the same cores".into()));
        }
        Ok(ModeSwitchLut { rows })
    }

    /// Number of modes stored.
    #[must_use]
    pub fn modes(&self) -> u32 {
        self.rows.len() as u32
    }

    /// Number of cores covered (`0` for a table that bypassed [`Self::new`]
    /// with no modes, e.g. one arriving through deserialization).
    #[must_use]
    pub fn cores(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// The timer vector programmed for `mode`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LevelOutOfRange`] for a mode beyond the table.
    pub fn timers_for(&self, mode: Mode) -> Result<&[TimerValue]> {
        self.rows
            .get(mode.index() as usize - 1)
            .map(Vec::as_slice)
            .ok_or(Error::LevelOutOfRange { value: mode.index(), max: self.modes() })
    }

    /// Hardware cost of one core's LUT in bits (16-bit field per mode —
    /// the paper's "80 bits for five criticality levels").
    #[must_use]
    pub fn bits_per_core(&self) -> u32 {
        16 * self.modes()
    }
}

/// The outcome of configuring one mode.
#[derive(Debug, Clone)]
pub struct ModeEntry {
    /// The mode this entry configures.
    pub mode: Mode,
    /// The optimized timer vector (lower-criticality cores at θ = −1).
    pub timers: Vec<TimerValue>,
    /// Per-core analytical bounds under these timers.
    pub bounds: Vec<CoreBound>,
    /// Whether every constrained timed core meets its requirement.
    pub feasible: bool,
}

/// The full offline configuration: one entry per mode plus the LUT.
#[derive(Debug, Clone)]
pub struct ModeConfiguration {
    /// Per-mode outcomes, mode 1 first.
    pub entries: Vec<ModeEntry>,
    /// The LUT to burn into the cache controllers.
    pub lut: ModeSwitchLut,
}

impl ModeConfiguration {
    /// The entry for `mode`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LevelOutOfRange`] for a mode beyond the table.
    pub fn entry(&self, mode: Mode) -> Result<&ModeEntry> {
        self.entries
            .get(mode.index() as usize - 1)
            .ok_or(Error::LevelOutOfRange { value: mode.index(), max: self.entries.len() as u32 })
    }

    /// The analytical WCML bound of `core` at `mode`, if bounded.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LevelOutOfRange`] / [`Error::UnknownCore`] on bad
    /// indices.
    pub fn wcml_bound(&self, core: CoreId, mode: Mode) -> Result<Option<Cycles>> {
        let entry = self.entry(mode)?;
        let bound = entry
            .bounds
            .get(core.index())
            .ok_or(Error::UnknownCore { index: core.index(), cores: entry.bounds.len() })?;
        Ok(bound.wcml)
    }
}

/// The offline flow of Fig. 2a, configured builder-style: for each mode,
/// optimize the timers of the cores that stay timed, pin the rest to MSI,
/// and collect the LUT.
///
/// Modes whose optimization cannot meet every requirement are recorded with
/// `feasible = false` (the run-time controller will skip over them), using
/// the best assignment the GA found.
///
/// # Examples
///
/// ```
/// use cohort::{ModeSetup, SystemSpec};
/// use cohort_optim::GaConfig;
/// use cohort_trace::micro;
/// use cohort_types::{Criticality, Mode};
///
/// let spec = SystemSpec::builder()
///     .core(Criticality::new(2)?)
///     .core(Criticality::new(1)?)
///     .build()?;
/// let workload = micro::line_bursts(2, 4, 40);
/// let ga = GaConfig { population: 12, generations: 6, ..Default::default() };
/// let config = ModeSetup::new(&spec, &workload).ga(&ga).run()?;
/// assert_eq!(config.lut.modes(), 2);
/// // At mode 2 the low-criticality core is degraded to MSI.
/// assert!(config.lut.timers_for(Mode::new(2)?)?[1].is_msi());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ModeSetup<'a> {
    spec: &'a SystemSpec,
    workload: &'a Workload,
    ga: GaConfig,
    observer: Option<&'a dyn GaObserver>,
}

impl<'a> ModeSetup<'a> {
    /// Starts a mode-configuration run with a default [`GaConfig`] and no
    /// observer.
    #[must_use]
    pub fn new(spec: &'a SystemSpec, workload: &'a Workload) -> Self {
        ModeSetup { spec, workload, ga: GaConfig::default(), observer: None }
    }

    /// Replaces the GA engine configuration used for every mode (the seed
    /// is staggered per mode internally).
    #[must_use]
    pub fn ga(mut self, ga: &GaConfig) -> Self {
        self.ga = ga.clone();
        self
    }

    /// Attaches a [`GaObserver`] progress hook.
    ///
    /// The observer sees every generation of every mode's GA run (modes
    /// are configured in ascending order, so generation reports arrive
    /// grouped by mode); a [`cohort_optim::CheckpointFile`] sink here
    /// makes the whole offline flow resumable at per-generation
    /// granularity.
    #[must_use]
    pub fn observer(mut self, observer: &'a dyn GaObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Runs the flow: one GA run per mode, ascending, each warm-started
    /// from the previous mode's solution.
    ///
    /// # Errors
    ///
    /// Returns an error if the spec and workload disagree on the core
    /// count.
    pub fn run(self) -> Result<ModeConfiguration> {
        if self.workload.cores() != self.spec.cores() {
            return Err(Error::InvalidConfig(format!(
                "workload has {} cores, spec has {}",
                self.workload.cores(),
                self.spec.cores()
            )));
        }
        let observer = self.observer.unwrap_or(&SilentObserver);
        // Modes are configured sequentially in ascending order so each mode
        // can seed its GA with the previous mode's solution: cores that
        // stay timed in mode l+1 were timed in mode l, so the projection of
        // mode l's θ vector is a strong warm start (escalated modes refine
        // rather than rediscover the normal mode's timers). Parallelism
        // comes from inside the GA, which scores each offspring batch
        // across worker threads.
        let mut entries: Vec<ModeEntry> = Vec::new();
        for mode in self.spec.modes() {
            let entry = configure_one_mode(
                self.spec,
                self.workload,
                &self.ga,
                mode,
                entries.last(),
                observer,
            )?;
            entries.push(entry);
        }
        let rows = entries.iter().map(|e| e.timers.clone()).collect();
        Ok(ModeConfiguration { entries, lut: ModeSwitchLut::new(rows)? })
    }
}

fn configure_one_mode(
    spec: &SystemSpec,
    workload: &Workload,
    ga: &GaConfig,
    mode: Mode,
    previous: Option<&ModeEntry>,
    observer: &dyn GaObserver,
) -> Result<ModeEntry> {
    let mask = spec.timed_mask(mode);
    let mut builder =
        TimerProblem::builder(workload).latency(*spec.latency()).l1(*spec.l1()).llc(*spec.llc());
    for (i, &timed) in mask.iter().enumerate() {
        if timed {
            let gamma = spec.core_specs()[i].requirements().at(mode);
            builder = builder.timed(i, gamma);
        }
    }
    let problem = builder.build()?;
    // Project the previous mode's solution onto the cores that stay timed
    // in this mode; [`GaRun`] clamps each gene into this mode's saturation
    // bounds.
    let warm_start: Vec<Vec<u64>> = previous
        .map(|prev| {
            problem
                .timed_cores()
                .iter()
                .map(|&core| prev.timers[core].theta().unwrap_or(1))
                .collect::<Vec<u64>>()
        })
        .into_iter()
        .collect();
    // Stagger the seed per mode so modes explore independently but
    // deterministically.
    let mode_ga = GaConfig { seed: ga.seed ^ u64::from(mode.index()), ..ga.clone() };
    let outcome = GaRun::new(&problem).config(&mode_ga).seeds(warm_start).observer(observer).run();
    let assignment = problem.evaluate(&outcome.best);
    Ok(ModeEntry {
        mode,
        timers: assignment.timers,
        bounds: assignment.bounds,
        feasible: assignment.feasible,
    })
}

/// The do-nothing observer behind a [`ModeSetup`] with no explicit
/// observer.
struct SilentObserver;

impl GaObserver for SilentObserver {}

#[cfg(test)]
mod tests {
    use super::*;
    use cohort_trace::micro;
    use cohort_types::Criticality;

    fn spec_4level() -> SystemSpec {
        SystemSpec::builder()
            .core(Criticality::new(4).unwrap())
            .core(Criticality::new(3).unwrap())
            .core(Criticality::new(2).unwrap())
            .core(Criticality::new(1).unwrap())
            .build()
            .unwrap()
    }

    fn quick_ga() -> GaConfig {
        GaConfig { population: 10, generations: 4, ..Default::default() }
    }

    #[test]
    fn lut_degrades_low_criticality_cores_per_mode() {
        let spec = spec_4level();
        let w = micro::line_bursts(4, 4, 30);
        let config = ModeSetup::new(&spec, &w).ga(&quick_ga()).run().unwrap();
        assert_eq!(config.lut.modes(), 4);
        for (m, entry) in config.entries.iter().enumerate() {
            let mode_index = m + 1;
            for (i, timer) in entry.timers.iter().enumerate() {
                let criticality = 4 - i;
                assert_eq!(
                    timer.is_timed(),
                    criticality >= mode_index,
                    "mode {mode_index} core {i}"
                );
            }
        }
        // Mode 4: only c0 timed — the Table II shape.
        let m4 = config.lut.timers_for(Mode::new(4).unwrap()).unwrap();
        assert!(m4[0].is_timed());
        assert!(m4[1].is_msi() && m4[2].is_msi() && m4[3].is_msi());
    }

    #[test]
    fn higher_modes_tighten_the_critical_cores_bound() {
        // Degrading interferers to MSI removes their θ terms from c0's
        // Eq. 1, so c0's bound is non-increasing in the mode index.
        let spec = spec_4level();
        let w = micro::line_bursts(4, 4, 30);
        let config = ModeSetup::new(&spec, &w).ga(&quick_ga()).run().unwrap();
        let bounds: Vec<u64> = spec
            .modes()
            .map(|m| config.wcml_bound(CoreId::new(0), m).unwrap().unwrap().get())
            .collect();
        for w in bounds.windows(2) {
            assert!(w[1] <= w[0], "bounds {bounds:?} must be non-increasing");
        }
    }

    #[test]
    fn lut_hardware_cost_matches_paper() {
        let rows = vec![vec![TimerValue::MSI; 4]; 5];
        let lut = ModeSwitchLut::new(rows).unwrap();
        assert_eq!(lut.bits_per_core(), 80, "five levels cost 80 bits per core");
    }

    #[test]
    fn lut_validation() {
        assert!(ModeSwitchLut::new(vec![]).is_err());
        assert!(ModeSwitchLut::new(vec![vec![]]).is_err());
        assert!(ModeSwitchLut::new(vec![
            vec![TimerValue::MSI],
            vec![TimerValue::MSI, TimerValue::MSI],
        ])
        .is_err());
        let lut = ModeSwitchLut::new(vec![vec![TimerValue::MSI]]).unwrap();
        assert!(lut.timers_for(Mode::new(2).unwrap()).is_err());
    }

    #[test]
    fn workload_mismatch_rejected() {
        let spec = spec_4level();
        let w = micro::line_bursts(2, 4, 10);
        assert!(ModeSetup::new(&spec, &w).ga(&quick_ga()).run().is_err());
    }

    #[test]
    fn configuration_is_deterministic() {
        let spec = spec_4level();
        let w = micro::line_bursts(4, 3, 20);
        let a = ModeSetup::new(&spec, &w).ga(&quick_ga()).run().unwrap();
        let b = ModeSetup::new(&spec, &w).ga(&quick_ga()).run().unwrap();
        assert_eq!(a.lut, b.lut);
    }

    #[test]
    fn configuration_is_identical_serial_and_parallel() {
        // The LUT burned into hardware must not depend on how many worker
        // threads the offline host happened to have.
        let spec = spec_4level();
        let w = micro::line_bursts(4, 3, 20);
        let serial = GaConfig { workers: 1, ..quick_ga() };
        let parallel = GaConfig { workers: 6, ..quick_ga() };
        let a = ModeSetup::new(&spec, &w).ga(&serial).run().unwrap();
        let b = ModeSetup::new(&spec, &w).ga(&parallel).run().unwrap();
        assert_eq!(a.lut, b.lut);
    }

    #[test]
    fn observer_sees_every_mode_in_ascending_order() {
        use cohort_optim::{GaObserver, GenerationReport};
        use std::sync::Mutex;

        struct CountReports(Mutex<Vec<usize>>);
        impl GaObserver for CountReports {
            fn generation_finished(&self, report: &GenerationReport<'_>) {
                self.0.lock().unwrap().push(report.generation);
            }
        }

        let spec = spec_4level();
        let w = micro::line_bursts(4, 3, 20);
        let ga = quick_ga();
        let observer = CountReports(Mutex::new(Vec::new()));
        let observed = ModeSetup::new(&spec, &w).ga(&ga).observer(&observer).run().unwrap();
        assert_eq!(observed.lut, ModeSetup::new(&spec, &w).ga(&ga).run().unwrap().lut);
        let generations = observer.0.into_inner().unwrap();
        // One report per generation per mode, grouped by mode: the sequence
        // restarts from 0 exactly once per mode.
        assert_eq!(generations.len(), ga.generations * spec.modes().count());
        assert_eq!(generations.iter().filter(|&&g| g == 0).count(), spec.modes().count());
    }
}
