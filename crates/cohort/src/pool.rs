//! A bounded worker pool over `std::thread::scope`.
//!
//! The previous drivers spawned one scoped thread *per job*, which
//! oversubscribed the machine as soon as a sweep grew past the core count
//! (kernels × protocols × configurations easily reaches dozens of jobs).
//! This pool spawns at most `workers` threads; the threads claim job
//! indices from a shared atomic counter, so finished workers immediately
//! pull the next job (no static partitioning) and results come back in
//! **input order** regardless of which worker ran what.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The default worker count: the machine's available parallelism
/// (falling back to 1 when the OS cannot report it).
pub(crate) fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// Runs `f(index, &items[index])` for every item on at most `workers`
/// threads and returns the results in input order.
///
/// `f` is responsible for its own panic isolation: a panic that escapes it
/// takes the whole pool down (used deliberately by callers whose jobs must
/// not fail, e.g. mode configuration).
pub(crate) fn run_indexed<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, items.len());
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(index) else { break };
                        local.push((index, f(index, item)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (index, result) in handle.join().expect("pool jobs isolate their panics") {
                slots[index] = Some(result);
            }
        }
    });
    slots.into_iter().map(|slot| slot.expect("every index is claimed exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn results_keep_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = run_indexed(&items, 4, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let out: Vec<u32> = run_indexed(&[] as &[u32], 8, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_count_is_bounded() {
        let items: Vec<u32> = (0..48).collect();
        let threads = Mutex::new(HashSet::new());
        run_indexed(&items, 3, |_, &x| {
            threads.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
            x
        });
        assert!(threads.lock().unwrap().len() <= 3);
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let items = [1u32, 2, 3];
        assert_eq!(run_indexed(&items, 0, |_, &x| x + 1), vec![2, 3, 4]);
    }
}
