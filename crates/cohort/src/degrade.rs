//! Graceful degradation under fault: the runtime watchdog driver.
//!
//! [`run_with_watchdog`] closes the loop the paper's §VI leaves to the
//! platform: a [`WcmlGuard`] probe observes per-request latencies against
//! the Eq. 1 envelope (plus progress and externally checked coherence),
//! and when a core's convictions cross the policy threshold the driver
//! escalates the operational mode through the offline [`ModeSwitchLut`] —
//! degrading lower-criticality cores to MSI at runtime instead of
//! suspending anything. The whole episode is summarized in a structured
//! [`DegradationReport`] (faults injected, violations detected, detection
//! latency, switches taken, post-switch compliance) that serializes through
//! the same hand-built JSON path as the metrics reports.

use cohort_sim::{
    FaultPlan, InjectedFault, SimBuilder, SimConfig, SimStats, WcmlGuard, WcmlViolation,
    WcmlViolationKind,
};
use cohort_trace::Workload;
use cohort_types::{Cycles, Error, Mode, Result};

use crate::ModeSwitchLut;

/// Tunables of the degradation watchdog.
#[derive(Debug, Clone)]
pub struct WatchdogPolicy {
    /// How many cycles to simulate between watchdog polls.
    pub stride: u64,
    /// Convictions attributable to one core before the driver escalates.
    pub violation_threshold: u64,
    /// Hysteresis: after a switch, violations detected within this many
    /// cycles are recorded but not counted (the mode-change transient), and
    /// no further switch is taken inside the window.
    pub cooldown: u64,
    /// Re-promotion: step one mode back down after this many violation-free
    /// cycles (`None` = degradation is sticky, the §VI default).
    pub repromote_after: Option<u64>,
    /// Convict a progress violation when nothing observable happens for
    /// this many cycles while cores still have work (`None` = disabled).
    pub progress_timeout: Option<u64>,
    /// Deep-check [`cohort_sim::Simulator::validate_coherence`] at every poll and feed
    /// failures to the guard as coherence convictions.
    pub validate_coherence: bool,
    /// At most this many violations are kept verbatim in the report (the
    /// totals always count all of them).
    pub max_recorded_violations: usize,
}

impl Default for WatchdogPolicy {
    fn default() -> Self {
        WatchdogPolicy {
            stride: 256,
            violation_threshold: 1,
            cooldown: 2_000,
            repromote_after: None,
            progress_timeout: None,
            validate_coherence: true,
            max_recorded_violations: 64,
        }
    }
}

/// One mode switch the driver took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchRecord {
    /// Cycle the switch was programmed for.
    pub at: u64,
    /// Outgoing mode index (1-based).
    pub from: u32,
    /// Incoming mode index (1-based).
    pub to: u32,
    /// The core whose convictions triggered the switch. `None` for a
    /// re-promotion (`to < from`) and for an escalation driven by
    /// machine-wide convictions that name no core (`to > from`), e.g. a
    /// failed coherence sweep.
    pub trigger: Option<usize>,
}

/// WCML compliance of the run's tail, after the last mode switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostSwitchCompliance {
    /// Cycle of the last switch.
    pub switch_at: u64,
    /// Requests completed after the switch.
    pub requests: u64,
    /// Latency-bound convictions of requests *issued* after the switch
    /// (the mode-change transient — in-flight old-θ windows — is excluded,
    /// as in the paper's mode-change argument).
    pub violations: u64,
    /// `requests > 0 && violations == 0`.
    pub compliant: bool,
}

/// Structured outcome of one watchdog-supervised run.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationReport {
    /// Faults the plan scheduled.
    pub planned_faults: usize,
    /// The generating seed, for seeded plans.
    pub seed: Option<u64>,
    /// Faults the engine actually applied, in injection order.
    pub faults: Vec<InjectedFault>,
    /// Requests (fills) the guard observed.
    pub requests: u64,
    /// Final cycle of the run.
    pub cycles: u64,
    /// All convictions, by kind.
    pub latency_violations: u64,
    /// Progress convictions.
    pub progress_violations: u64,
    /// Coherence convictions.
    pub coherence_violations: u64,
    /// Convictions attributed to each core (index = core id). Machine-wide
    /// convictions that name no core never appear here;
    /// `core_violations.sum() + machine_violations == violations_total()`.
    pub core_violations: Vec<u64>,
    /// Machine-wide convictions carrying no core attribution (e.g. failed
    /// whole-machine coherence sweeps).
    pub machine_violations: u64,
    /// The first convictions, capped by the policy.
    pub violations: Vec<WcmlViolation>,
    /// Every switch the driver took, in order.
    pub switches: Vec<SwitchRecord>,
    /// Cycles from the first injected fault to the first conviction
    /// (`None` when either never happened).
    pub detection_latency: Option<u64>,
    /// The operational mode at the end of the run (1-based).
    pub final_mode: u32,
    /// Compliance of the tail after the last switch (`None` if no switch
    /// was taken).
    pub post_switch: Option<PostSwitchCompliance>,
    /// Final whole-run statistics.
    pub stats: SimStats,
}

impl DegradationReport {
    /// Total convictions of any kind.
    #[must_use]
    pub fn violations_total(&self) -> u64 {
        self.latency_violations + self.progress_violations + self.coherence_violations
    }

    /// Serializes the report as a JSON value (hand-built, so it works
    /// under any `serde_json` with the `Value` API).
    #[must_use]
    pub fn to_json(&self) -> serde_json::Value {
        let mut root = serde_json::Map::new();
        root.insert("planned_faults".into(), serde_json::Value::from(self.planned_faults as u64));
        let seed = match self.seed {
            Some(s) => serde_json::Value::from(s),
            None => serde_json::Value::Null,
        };
        root.insert("seed".into(), seed);
        let faults: Vec<serde_json::Value> = self
            .faults
            .iter()
            .map(|f| {
                let mut o = serde_json::Map::new();
                o.insert("kind".into(), serde_json::Value::from(f.kind.slug().to_owned()));
                o.insert("core".into(), serde_json::Value::from(f.core as u64));
                o.insert("scheduled".into(), serde_json::Value::from(f.scheduled.get()));
                o.insert("fired".into(), serde_json::Value::from(f.fired.get()));
                serde_json::Value::Object(o)
            })
            .collect();
        root.insert("faults".into(), serde_json::Value::from(faults));
        root.insert("requests".into(), serde_json::Value::from(self.requests));
        root.insert("cycles".into(), serde_json::Value::from(self.cycles));
        root.insert("violations_total".into(), serde_json::Value::from(self.violations_total()));
        root.insert("latency_violations".into(), serde_json::Value::from(self.latency_violations));
        root.insert(
            "progress_violations".into(),
            serde_json::Value::from(self.progress_violations),
        );
        root.insert(
            "coherence_violations".into(),
            serde_json::Value::from(self.coherence_violations),
        );
        let per_core: Vec<serde_json::Value> =
            self.core_violations.iter().map(|&c| serde_json::Value::from(c)).collect();
        root.insert("core_violations".into(), serde_json::Value::from(per_core));
        root.insert("machine_violations".into(), serde_json::Value::from(self.machine_violations));
        let violations: Vec<serde_json::Value> = self
            .violations
            .iter()
            .map(|v| {
                let mut o = serde_json::Map::new();
                o.insert("kind".into(), serde_json::Value::from(v.kind.slug().to_owned()));
                let core = match v.core {
                    Some(c) => serde_json::Value::from(c as u64),
                    None => serde_json::Value::Null,
                };
                o.insert("core".into(), core);
                let line = match v.line {
                    Some(l) => serde_json::Value::from(l.raw()),
                    None => serde_json::Value::Null,
                };
                o.insert("line".into(), line);
                o.insert("at".into(), serde_json::Value::from(v.at.get()));
                o.insert("issued".into(), serde_json::Value::from(v.issued.get()));
                o.insert("latency".into(), serde_json::Value::from(v.latency));
                o.insert("bound".into(), serde_json::Value::from(v.bound));
                let detail = match &v.detail {
                    Some(d) => serde_json::Value::from(d.clone()),
                    None => serde_json::Value::Null,
                };
                o.insert("detail".into(), detail);
                serde_json::Value::Object(o)
            })
            .collect();
        root.insert("violations".into(), serde_json::Value::from(violations));
        let switches: Vec<serde_json::Value> = self
            .switches
            .iter()
            .map(|s| {
                let mut o = serde_json::Map::new();
                o.insert("at".into(), serde_json::Value::from(s.at));
                o.insert("from".into(), serde_json::Value::from(u64::from(s.from)));
                o.insert("to".into(), serde_json::Value::from(u64::from(s.to)));
                let trigger = match s.trigger {
                    Some(c) => serde_json::Value::from(c as u64),
                    None => serde_json::Value::Null,
                };
                o.insert("trigger".into(), trigger);
                serde_json::Value::Object(o)
            })
            .collect();
        root.insert("switches".into(), serde_json::Value::from(switches));
        let detection = match self.detection_latency {
            Some(d) => serde_json::Value::from(d),
            None => serde_json::Value::Null,
        };
        root.insert("detection_latency".into(), detection);
        root.insert("final_mode".into(), serde_json::Value::from(u64::from(self.final_mode)));
        let post = match &self.post_switch {
            Some(p) => {
                let mut o = serde_json::Map::new();
                o.insert("switch_at".into(), serde_json::Value::from(p.switch_at));
                o.insert("requests".into(), serde_json::Value::from(p.requests));
                o.insert("violations".into(), serde_json::Value::from(p.violations));
                o.insert("compliant".into(), serde_json::Value::from(p.compliant));
                serde_json::Value::Object(o)
            }
            None => serde_json::Value::Null,
        };
        root.insert("post_switch".into(), post);
        serde_json::Value::Object(root)
    }
}

/// Runs `workload` under `config` with `plan`'s faults injected, a
/// [`WcmlGuard`] watching the run, and this driver escalating the
/// operational mode through `lut` when convictions cross the policy
/// threshold.
///
/// The loop alternates [`cohort_sim::Simulator::run_until`] slices of `policy.stride`
/// cycles with watchdog polls; a switch is programmed one cycle after its
/// decision, mirroring the LUT's single-cycle register write. Everything is
/// deterministic: the same `(config, workload, lut, plan, policy)` always
/// produces the same report.
///
/// # Errors
///
/// Returns [`Error::InvalidConfig`] if the LUT's core count mismatches the
/// configuration, the fault plan targets an out-of-range core, or the
/// simulator reports a deadlock.
///
/// # Examples
///
/// A clean run (empty plan) never escalates:
///
/// ```
/// use cohort::{run_with_watchdog, ModeSwitchLut, WatchdogPolicy};
/// use cohort_sim::{FaultPlan, SimConfig};
/// use cohort_trace::micro;
/// use cohort_types::TimerValue;
///
/// let theta = TimerValue::timed(100)?;
/// let config = SimConfig::builder(2).timers(vec![theta; 2]).build()?;
/// let lut = ModeSwitchLut::new(vec![vec![theta; 2], vec![theta, TimerValue::MSI]])?;
/// let report = run_with_watchdog(
///     config,
///     &micro::ping_pong(2, 8),
///     &lut,
///     FaultPlan::empty(),
///     &WatchdogPolicy::default(),
/// )?;
/// assert_eq!(report.violations_total(), 0);
/// assert!(report.switches.is_empty());
/// assert_eq!(report.final_mode, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_with_watchdog(
    config: SimConfig,
    workload: &Workload,
    lut: &ModeSwitchLut,
    plan: FaultPlan,
    policy: &WatchdogPolicy,
) -> Result<DegradationReport> {
    if lut.modes() == 0 || lut.cores() == 0 {
        // `ModeSwitchLut::new` rejects empty tables, but a table arriving
        // through deserialization (or a future constructor) must not reach
        // the conviction counters: an empty table used to underflow
        // `counts.len() - 1` and panic.
        return Err(Error::InvalidConfig(
            "mode-switch LUT is empty: at least one mode covering at least one core is required"
                .into(),
        ));
    }
    if lut.cores() != config.cores() {
        return Err(Error::InvalidConfig(format!(
            "LUT covers {} cores but the configuration has {}",
            lut.cores(),
            config.cores()
        )));
    }
    let stride = policy.stride.max(1);
    let planned_faults = plan.specs().len();
    let seed = plan.seed();

    let mut guard = WcmlGuard::new();
    if let Some(timeout) = policy.progress_timeout {
        guard = guard.with_progress_timeout(timeout);
    }
    let mut sim = SimBuilder::new(config, workload).probe(&mut guard).faults(plan).build()?;

    let mut mode = Mode::NORMAL;
    let mut switches: Vec<SwitchRecord> = Vec::new();
    let mut last_switch_at: Option<u64> = None;
    // Requests observed when the most recent switch was programmed, for the
    // post-switch compliance tail.
    let mut requests_at_switch: u64 = 0;
    let mut processed = 0usize;
    let mut counts = vec![0u64; lut.cores()];
    // Machine-wide convictions carrying no core attribution (and any probe
    // core outside the LUT) accumulate here instead of being pinned on
    // core 0; they escalate without naming a trigger.
    let mut machine_count = 0u64;
    let mut last_counted_violation: Option<u64> = None;

    loop {
        let target = sim.now() + Cycles::new(stride);
        sim.run_until(target)?;
        let now = sim.now();

        if policy.validate_coherence {
            if let Err(detail) = sim.validate_coherence() {
                sim.probe_mut().note_coherence_violation(now, None, &detail);
            }
        }
        if policy.progress_timeout.is_some() {
            let active: Vec<bool> =
                sim.stats().cores.iter().map(|c| c.finish == Cycles::ZERO).collect();
            sim.probe_mut().check_progress(now, &active);
        }

        // Count fresh convictions, skipping the post-switch transient.
        let violations = sim.probe().violations();
        for v in &violations[processed..] {
            let in_transient =
                last_switch_at.is_some_and(|at| v.at.get() <= at.saturating_add(policy.cooldown));
            if in_transient {
                continue;
            }
            last_counted_violation =
                Some(last_counted_violation.map_or(v.at.get(), |prev| prev.max(v.at.get())));
            match v.core {
                Some(c) if c < counts.len() => counts[c] += 1,
                // Coreless (machine-wide) convictions must never increment a
                // per-core count — pinning them on core 0 convicted that
                // core for violations it did not cause.
                _ => machine_count += 1,
            }
        }
        processed = violations.len();

        let in_cooldown =
            last_switch_at.is_some_and(|at| now.get() <= at.saturating_add(policy.cooldown));
        let core_offender = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= policy.violation_threshold)
            .max_by_key(|(_, &c)| c);
        // A per-core offender names its trigger; a machine-wide offender
        // escalates without naming one. When both cross the threshold the
        // larger count decides (per-core wins ties: it is the more
        // actionable attribution).
        let offender: Option<Option<usize>> = match core_offender {
            Some((i, &c)) if machine_count < policy.violation_threshold || c >= machine_count => {
                Some(Some(i))
            }
            _ if machine_count >= policy.violation_threshold => Some(None),
            _ => None,
        };

        if let Some(trigger) = offender {
            if !in_cooldown && mode.index() < lut.modes() {
                let next = mode.next();
                let at = now + Cycles::new(1);
                sim.schedule_timer_switch(at, lut.timers_for(next)?.to_vec())?;
                switches.push(SwitchRecord {
                    at: at.get(),
                    from: mode.index(),
                    to: next.index(),
                    trigger,
                });
                last_switch_at = Some(at.get());
                requests_at_switch = sim.probe().requests();
                mode = next;
                counts.fill(0);
                machine_count = 0;
            }
        } else if let Some(window) = policy.repromote_after {
            // Step back down after a clean window (opt-in).
            let clean_since = last_counted_violation.unwrap_or(0).max(last_switch_at.unwrap_or(0));
            if mode.index() > 1
                && !in_cooldown
                && now.get().saturating_sub(clean_since) >= window
                && machine_count == 0
                && counts.iter().all(|&c| c == 0)
            {
                let prev = Mode::new(mode.index() - 1)?;
                let at = now + Cycles::new(1);
                sim.schedule_timer_switch(at, lut.timers_for(prev)?.to_vec())?;
                switches.push(SwitchRecord {
                    at: at.get(),
                    from: mode.index(),
                    to: prev.index(),
                    trigger: None,
                });
                last_switch_at = Some(at.get());
                requests_at_switch = sim.probe().requests();
                mode = prev;
            }
        }

        if sim.is_finished() {
            break;
        }
    }

    let faults = sim.injected_faults().to_vec();
    let stats = sim.stats().clone();
    let cycles = sim.now().get();
    drop(sim);

    let first_fired = faults.iter().map(|f| f.fired.get()).min();
    let first_violation = guard.violations().first().map(|v| v.at.get());
    let detection_latency = match (first_fired, first_violation) {
        (Some(f), Some(v)) => Some(v.saturating_sub(f)),
        _ => None,
    };

    let mut latency_violations = 0;
    let mut progress_violations = 0;
    let mut coherence_violations = 0;
    let mut core_violations = vec![0u64; lut.cores()];
    let mut machine_violations = 0u64;
    for v in guard.violations() {
        match v.kind {
            WcmlViolationKind::LatencyBound => latency_violations += 1,
            WcmlViolationKind::Progress => progress_violations += 1,
            WcmlViolationKind::Coherence => coherence_violations += 1,
        }
        match v.core {
            Some(c) if c < core_violations.len() => core_violations[c] += 1,
            _ => machine_violations += 1,
        }
    }

    let post_switch = last_switch_at.map(|switch_at| {
        let tail_violations = guard
            .violations()
            .iter()
            .filter(|v| v.kind == WcmlViolationKind::LatencyBound && v.issued.get() >= switch_at)
            .count() as u64;
        let requests = guard.requests().saturating_sub(requests_at_switch);
        PostSwitchCompliance {
            switch_at,
            requests,
            violations: tail_violations,
            compliant: requests > 0 && tail_violations == 0,
        }
    });

    let recorded =
        guard.violations().iter().take(policy.max_recorded_violations).cloned().collect();

    Ok(DegradationReport {
        planned_faults,
        seed,
        faults,
        requests: guard.requests(),
        cycles,
        latency_violations,
        progress_violations,
        coherence_violations,
        core_violations,
        machine_violations,
        violations: recorded,
        switches,
        detection_latency,
        final_mode: mode.index(),
        post_switch,
        stats,
    })
}
