//! The mixed-criticality platform model (§II).

use serde::{Deserialize, Serialize};

use cohort_sim::{CacheGeometry, LlcModel};
use cohort_types::{CoreId, Criticality, Cycles, Error, LatencyConfig, Mode, Requirements, Result};

/// One core of the MCS: its criticality level `l_i` and the per-mode WCML
/// requirements `Γ^m` of the task mapped to it.
///
/// The paper does not constrain scheduling or task-to-core mapping; a core
/// simply inherits the criticality of the task it currently runs, so the
/// spec models the *mapped* state the coherence layer sees.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreSpec {
    criticality: Criticality,
    requirements: Requirements,
}

impl CoreSpec {
    /// Creates a core at the given criticality with no requirements.
    #[must_use]
    pub fn new(criticality: Criticality) -> Self {
        CoreSpec { criticality, requirements: Requirements::new() }
    }

    /// Builder-style: adds a WCML requirement for `mode`.
    #[must_use]
    pub fn with_requirement(mut self, mode: Mode, budget: Cycles) -> Self {
        self.requirements.set(mode, budget);
        self
    }

    /// The core's criticality level.
    #[must_use]
    pub fn criticality(&self) -> Criticality {
        self.criticality
    }

    /// The per-mode requirement table.
    #[must_use]
    pub fn requirements(&self) -> &Requirements {
        &self.requirements
    }

    /// Mutable access (run-time requirement changes, Fig. 7).
    pub fn requirements_mut(&mut self) -> &mut Requirements {
        &mut self.requirements
    }
}

/// The whole platform: cores, criticality levels, cache/bus parameters.
///
/// # Examples
///
/// ```
/// use cohort::SystemSpec;
/// use cohort_types::{Criticality, Cycles, Mode};
///
/// // The paper's mode-switch experiment platform: criticalities 4,3,2,1.
/// let spec = SystemSpec::builder()
///     .core(Criticality::new(4)?)
///     .core(Criticality::new(3)?)
///     .core(Criticality::new(2)?)
///     .core(Criticality::new(1)?)
///     .build()?;
/// assert_eq!(spec.cores(), 4);
/// assert_eq!(spec.levels(), 4);
/// assert!(spec.timed_mask(Mode::new(3)?) == vec![true, true, false, false]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    cores: Vec<CoreSpec>,
    latency: LatencyConfig,
    l1: CacheGeometry,
    llc: LlcModel,
}

impl SystemSpec {
    /// Starts building a spec with the paper's default platform parameters
    /// (latencies 1/4/50, 16 KiB direct-mapped L1s, perfect LLC).
    #[must_use]
    pub fn builder() -> SystemSpecBuilder {
        SystemSpecBuilder {
            cores: Vec::new(),
            latency: LatencyConfig::paper(),
            l1: CacheGeometry::paper_l1(),
            llc: LlcModel::Perfect,
        }
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Per-core specifications in core order.
    #[must_use]
    pub fn core_specs(&self) -> &[CoreSpec] {
        &self.cores
    }

    /// One core's specification.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownCore`] for an out-of-range id.
    pub fn core(&self, id: CoreId) -> Result<&CoreSpec> {
        self.cores
            .get(id.index())
            .ok_or(Error::UnknownCore { index: id.index(), cores: self.cores.len() })
    }

    /// Mutable access to one core (run-time requirement changes).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownCore`] for an out-of-range id.
    pub fn core_mut(&mut self, id: CoreId) -> Result<&mut CoreSpec> {
        let cores = self.cores.len();
        self.cores.get_mut(id.index()).ok_or(Error::UnknownCore { index: id.index(), cores })
    }

    /// The number of criticality levels `L` (and thus of operational
    /// modes): the highest criticality among the cores.
    #[must_use]
    pub fn levels(&self) -> u32 {
        self.cores.iter().map(|c| c.criticality().level()).max().unwrap_or(1)
    }

    /// All modes `m_1 ..= m_L`.
    pub fn modes(&self) -> impl Iterator<Item = Mode> {
        (1..=self.levels()).map(|l| Mode::new(l).expect("levels are 1-based"))
    }

    /// Which cores keep time-based coherence at `mode` (§VI: `l_i ≥ l`).
    #[must_use]
    pub fn timed_mask(&self, mode: Mode) -> Vec<bool> {
        self.cores.iter().map(|c| c.criticality().keeps_timed_coherence_at(mode)).collect()
    }

    /// The platform latencies.
    #[must_use]
    pub fn latency(&self) -> &LatencyConfig {
        &self.latency
    }

    /// The private-cache geometry.
    #[must_use]
    pub fn l1(&self) -> &CacheGeometry {
        &self.l1
    }

    /// The LLC model.
    #[must_use]
    pub fn llc(&self) -> &LlcModel {
        &self.llc
    }
}

/// Builder for [`SystemSpec`].
#[derive(Debug, Clone)]
pub struct SystemSpecBuilder {
    cores: Vec<CoreSpec>,
    latency: LatencyConfig,
    l1: CacheGeometry,
    llc: LlcModel,
}

impl SystemSpecBuilder {
    /// Adds a core at the given criticality (no requirements).
    #[must_use]
    pub fn core(mut self, criticality: Criticality) -> Self {
        self.cores.push(CoreSpec::new(criticality));
        self
    }

    /// Adds a fully specified core.
    #[must_use]
    pub fn core_spec(mut self, core: CoreSpec) -> Self {
        self.cores.push(core);
        self
    }

    /// Overrides the latency configuration.
    #[must_use]
    pub fn latency(mut self, latency: LatencyConfig) -> Self {
        self.latency = latency;
        self
    }

    /// Overrides the private-cache geometry.
    #[must_use]
    pub fn l1(mut self, l1: CacheGeometry) -> Self {
        self.l1 = l1;
        self
    }

    /// Overrides the LLC model (e.g. the footnote-1 finite LLC).
    #[must_use]
    pub fn llc(mut self, llc: LlcModel) -> Self {
        self.llc = llc;
        self
    }

    /// Finalises the spec.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if no core was added.
    pub fn build(self) -> Result<SystemSpec> {
        if self.cores.is_empty() {
            return Err(Error::InvalidConfig("a system needs at least one core".into()));
        }
        Ok(SystemSpec { cores: self.cores, latency: self.latency, l1: self.l1, llc: self.llc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crit(l: u32) -> Criticality {
        Criticality::new(l).unwrap()
    }

    fn paper_spec() -> SystemSpec {
        SystemSpec::builder()
            .core(crit(4))
            .core(crit(3))
            .core(crit(2))
            .core(crit(1))
            .build()
            .unwrap()
    }

    #[test]
    fn levels_follow_highest_criticality() {
        assert_eq!(paper_spec().levels(), 4);
        let two = SystemSpec::builder().core(crit(2)).core(crit(2)).build().unwrap();
        assert_eq!(two.levels(), 2);
    }

    #[test]
    fn timed_mask_degrades_with_mode() {
        let spec = paper_spec();
        let masks: Vec<Vec<bool>> = spec.modes().map(|m| spec.timed_mask(m)).collect();
        assert_eq!(masks[0], vec![true, true, true, true]);
        assert_eq!(masks[1], vec![true, true, true, false]);
        assert_eq!(masks[2], vec![true, true, false, false]);
        assert_eq!(masks[3], vec![true, false, false, false]);
    }

    #[test]
    fn requirements_travel_with_cores() {
        let spec = SystemSpec::builder()
            .core_spec(CoreSpec::new(crit(2)).with_requirement(Mode::NORMAL, Cycles::new(1_000)))
            .core(crit(1))
            .build()
            .unwrap();
        let c0 = spec.core(CoreId::new(0)).unwrap();
        assert_eq!(c0.requirements().at(Mode::NORMAL), Some(Cycles::new(1_000)));
        assert!(spec.core(CoreId::new(1)).unwrap().requirements().is_empty());
        assert!(spec.core(CoreId::new(9)).is_err());
    }

    #[test]
    fn empty_spec_rejected() {
        assert!(SystemSpec::builder().build().is_err());
    }

    #[test]
    fn runtime_requirement_change() {
        let mut spec = paper_spec();
        spec.core_mut(CoreId::new(0))
            .unwrap()
            .requirements_mut()
            .set(Mode::NORMAL, Cycles::new(77));
        assert_eq!(
            spec.core(CoreId::new(0)).unwrap().requirements().at(Mode::NORMAL),
            Some(Cycles::new(77))
        );
    }
}
