//! The batch sweep engine: a bounded parallel experiment runner with fault
//! isolation and a structured results API.
//!
//! The figure benches sweep kernels × protocols × criticality
//! configurations — dozens of independent, CPU-bound simulation+analysis
//! jobs. This module runs such batches on a worker pool sized from
//! [`std::thread::available_parallelism`] (never one-thread-per-job), and
//! unlike a `Result<Vec<_>>` driver it reports **every** job's outcome:
//! a job that fails — or outright panics — becomes a [`JobError`] in its
//! slot while its siblings run to completion.
//!
//! Progress is observable through the [`SweepObserver`] hook (jobs
//! started/finished, simulated cycles, bus utilisation, per-job wall
//! time), and the per-trace analysis work inside the jobs is shared
//! through `cohort-analysis`'s process-wide memo, so sweeping many timer
//! configurations over the same kernels does not re-walk the traces.
//!
//! # Examples
//!
//! ```
//! use cohort::{ExperimentJob, Protocol, Sweep, SystemSpec};
//! use cohort_trace::micro;
//! use cohort_types::Criticality;
//!
//! let spec = SystemSpec::builder()
//!     .core(Criticality::new(2)?)
//!     .core(Criticality::new(1)?)
//!     .build()?;
//! let workload = micro::ping_pong(2, 8);
//! let report = Sweep::builder()
//!     .job(ExperimentJob::new(spec.clone(), Protocol::Msi, workload.clone()))
//!     .job(ExperimentJob::new(spec, Protocol::Pcc, workload))
//!     .build()
//!     .run();
//! assert_eq!(report.results.len(), 2);
//! assert!(report.results.iter().all(|r| r.outcome.is_ok()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cohort_trace::Workload;
use cohort_types::{Error, Result};

use crate::experiment::{run_experiment, run_experiment_with_metrics, ExperimentOutcome};
use crate::pool;
use crate::protocol::{Protocol, ProtocolKind};
use crate::SystemSpec;

/// One experiment of a sweep, owning everything it needs to run.
///
/// Jobs own their inputs (the workload behind an [`Arc`], so fanning one
/// workload out across many protocol jobs stays cheap) — the batch can
/// outlive the scope that built it, be moved into worker threads, and be
/// serialized into reports by `label`.
#[derive(Debug, Clone)]
pub struct ExperimentJob {
    /// The platform to simulate and analyse against.
    pub spec: SystemSpec,
    /// The protocol configuration under test.
    pub protocol: Protocol,
    /// The workload, shared rather than cloned across jobs.
    pub workload: Arc<Workload>,
    /// Human-readable job identifier, unique within a sweep by convention.
    pub label: String,
}

impl ExperimentJob {
    /// Creates a job with the default `"<protocol-slug>/<workload>"` label.
    #[must_use]
    pub fn new(spec: SystemSpec, protocol: Protocol, workload: impl Into<Arc<Workload>>) -> Self {
        let workload = workload.into();
        let label = format!("{}/{}", protocol.slug(), workload.name());
        ExperimentJob { spec, protocol, workload, label }
    }

    /// Replaces the label (e.g. to add a configuration or θ suffix).
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// Why one job of a sweep produced no [`ExperimentOutcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The experiment returned an error (bad configuration, simulator
    /// failure) through the normal `Result` channel.
    Failed(Error),
    /// The job panicked; the worker caught the unwind and carries the
    /// panic message here. Sibling jobs are unaffected.
    Panicked(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Failed(e) => write!(f, "job failed: {e}"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Failed(e) => Some(e),
            JobError::Panicked(_) => None,
        }
    }
}

impl From<JobError> for Error {
    fn from(err: JobError) -> Self {
        match err {
            JobError::Failed(e) => e,
            JobError::Panicked(msg) => Error::JobPanicked(msg),
        }
    }
}

/// What a finished job looked like, as reported to [`SweepObserver`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct JobProgress {
    /// Simulated cycles (0 for failed jobs).
    pub cycles: u64,
    /// Shared-bus utilisation of the run in `[0, 1]` (0 for failed jobs).
    pub bus_utilisation: f64,
    /// Wall-clock time the job spent in simulation + analysis.
    pub wall_time: Duration,
    /// Whether the job produced an outcome.
    pub ok: bool,
}

/// The structured per-job record a sweep returns.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's label, echoed from [`ExperimentJob::label`].
    pub label: String,
    /// Which protocol the job ran.
    pub protocol: ProtocolKind,
    /// The workload's name.
    pub workload: String,
    /// The outcome, or the structured reason there is none.
    pub outcome: core::result::Result<ExperimentOutcome, JobError>,
    /// Wall-clock time the job spent in simulation + analysis.
    pub wall_time: Duration,
}

impl JobResult {
    /// The outcome, if the job succeeded.
    #[must_use]
    pub fn outcome(&self) -> Option<&ExperimentOutcome> {
        self.outcome.as_ref().ok()
    }
}

/// Observer of sweep progress; all methods default to no-ops.
///
/// Implementations must be `Sync`: callbacks arrive concurrently from the
/// worker threads, identified by the job's index within the sweep.
pub trait SweepObserver: Sync {
    /// A worker picked up job `index`.
    fn job_started(&self, index: usize, label: &str) {
        let _ = (index, label);
    }

    /// Job `index` finished (successfully or not).
    fn job_finished(&self, index: usize, label: &str, progress: &JobProgress) {
        let _ = (index, label, progress);
    }
}

/// The do-nothing observer behind [`Sweep::run`].
struct SilentObserver;

impl SweepObserver for SilentObserver {}

/// The job body a sweep executes — the default bodies simulate + analyse,
/// custom runners (tests, alternative execution backends such as the
/// fleet's worker shards) inject their own while keeping the pool, the
/// panic isolation and the reporting.
pub type SweepRunner<'o> = &'o (dyn Fn(&ExperimentJob) -> Result<ExperimentOutcome> + Sync);

/// A configured batch of experiments, ready to run.
///
/// Built with [`Sweep::builder`]. Running is `&self`: the same sweep can
/// be executed repeatedly (results are deterministic for deterministic
/// workloads, independent of worker scheduling). Progress observation and
/// custom job bodies are builder state ([`SweepBuilder::observer`] /
/// [`SweepBuilder::runner`]), so [`Sweep::run`] is the single entry point.
#[derive(Clone)]
pub struct Sweep<'o> {
    jobs: Vec<ExperimentJob>,
    workers: usize,
    collect_metrics: bool,
    observer: Option<&'o dyn SweepObserver>,
    runner: Option<SweepRunner<'o>>,
}

impl std::fmt::Debug for Sweep<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sweep")
            .field("jobs", &self.jobs)
            .field("workers", &self.workers)
            .field("collect_metrics", &self.collect_metrics)
            .field("observer", &self.observer.map(|_| "dyn SweepObserver"))
            .field("runner", &self.runner.map(|_| "dyn Fn"))
            .finish()
    }
}

/// Builder for [`Sweep`].
#[derive(Default)]
pub struct SweepBuilder<'o> {
    jobs: Vec<ExperimentJob>,
    workers: Option<usize>,
    collect_metrics: bool,
    observer: Option<&'o dyn SweepObserver>,
    runner: Option<SweepRunner<'o>>,
}

impl std::fmt::Debug for SweepBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepBuilder")
            .field("jobs", &self.jobs)
            .field("workers", &self.workers)
            .field("collect_metrics", &self.collect_metrics)
            .field("observer", &self.observer.map(|_| "dyn SweepObserver"))
            .field("runner", &self.runner.map(|_| "dyn Fn"))
            .finish()
    }
}

impl<'o> SweepBuilder<'o> {
    /// Appends one job.
    #[must_use]
    pub fn job(mut self, job: ExperimentJob) -> Self {
        self.jobs.push(job);
        self
    }

    /// Appends a batch of jobs.
    #[must_use]
    pub fn jobs(mut self, jobs: impl IntoIterator<Item = ExperimentJob>) -> Self {
        self.jobs.extend(jobs);
        self
    }

    /// Overrides the worker-thread cap (clamped to at least 1). The
    /// default is [`std::thread::available_parallelism`].
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Runs every job under a `cohort_sim::MetricsProbe`, attaching a
    /// [`cohort_sim::MetricsReport`] to each outcome (latency histograms,
    /// bus shares, timer occupancy). Off by default: plain sweeps stay
    /// byte-identical to the unprobed driver.
    #[must_use]
    pub fn collect_metrics(mut self, collect: bool) -> Self {
        self.collect_metrics = collect;
        self
    }

    /// Attaches a progress observer; [`Sweep::run`] reports every job
    /// start/finish to it from the worker threads.
    #[must_use]
    pub fn observer(mut self, observer: &'o dyn SweepObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Replaces the job body executed for every job (the default simulates
    /// and analyses, honouring [`SweepBuilder::collect_metrics`]). Tests
    /// and alternative execution backends inject their own while keeping
    /// the pool, the panic isolation and the reporting.
    #[must_use]
    pub fn runner(mut self, runner: SweepRunner<'o>) -> Self {
        self.runner = Some(runner);
        self
    }

    /// Finalises the sweep.
    #[must_use]
    pub fn build(self) -> Sweep<'o> {
        Sweep {
            jobs: self.jobs,
            workers: self.workers.unwrap_or_else(pool::default_workers),
            collect_metrics: self.collect_metrics,
            observer: self.observer,
            runner: self.runner,
        }
    }
}

impl<'o> Sweep<'o> {
    /// Starts building a sweep.
    #[must_use]
    pub fn builder() -> SweepBuilder<'o> {
        SweepBuilder::default()
    }

    /// The configured jobs, in execution-report order.
    #[must_use]
    pub fn jobs(&self) -> &[ExperimentJob] {
        &self.jobs
    }

    /// The worker-thread cap this sweep will run under.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job and returns all results — the single entry point.
    /// Progress goes to the builder-configured observer (silent without
    /// one); the job body is the builder-configured runner, defaulting to
    /// simulate + analyse (with metrics when
    /// [`SweepBuilder::collect_metrics`] is set).
    #[must_use]
    pub fn run(&self) -> SweepReport {
        let observer = self.observer.unwrap_or(&SilentObserver);
        match self.runner {
            Some(runner) => self.run_inner(observer, runner),
            None if self.collect_metrics => self.run_inner(observer, &|job| {
                run_experiment_with_metrics(&job.spec, &job.protocol, &job.workload)
            }),
            None => self.run_inner(observer, &|job| {
                run_experiment(&job.spec, &job.protocol, &job.workload)
            }),
        }
    }

    /// Runs every job, reporting progress to `observer`.
    #[deprecated(
        since = "0.3.0",
        note = "configure the observer on the builder (`SweepBuilder::observer`) and call `run()`"
    )]
    #[must_use]
    pub fn run_observed(&self, observer: &dyn SweepObserver) -> SweepReport {
        if self.collect_metrics {
            self.run_inner(observer, &|job| {
                run_experiment_with_metrics(&job.spec, &job.protocol, &job.workload)
            })
        } else {
            self.run_inner(observer, &|job| run_experiment(&job.spec, &job.protocol, &job.workload))
        }
    }

    /// Runs every job through a custom `runner`.
    #[deprecated(
        since = "0.3.0",
        note = "configure the runner and observer on the builder (`SweepBuilder::runner` / \
                `SweepBuilder::observer`) and call `run()`"
    )]
    pub fn run_with<F>(&self, observer: &dyn SweepObserver, runner: F) -> SweepReport
    where
        F: Fn(&ExperimentJob) -> Result<ExperimentOutcome> + Sync,
    {
        self.run_inner(observer, &runner)
    }

    /// The engine underneath [`Sweep::run`]: the bounded pool, per-job
    /// panic isolation and progress reporting.
    fn run_inner(&self, observer: &dyn SweepObserver, runner: SweepRunner<'_>) -> SweepReport {
        let started = Instant::now();
        let results = pool::run_indexed(&self.jobs, self.workers, |index, job| {
            observer.job_started(index, &job.label);
            let job_started = Instant::now();
            // A panicking job must not take the batch down: catch the
            // unwind and turn it into data. The runner borrows only `job`
            // (plus `Sync` state such as the analysis memo), so observing
            // a half-completed mutation through the unwind is not a
            // concern — nothing outside the job survives the panic.
            let outcome = match catch_unwind(AssertUnwindSafe(|| runner(job))) {
                Ok(Ok(outcome)) => Ok(outcome),
                Ok(Err(error)) => Err(JobError::Failed(error)),
                Err(payload) => Err(JobError::Panicked(panic_message(payload.as_ref()))),
            };
            let wall_time = job_started.elapsed();
            let progress = JobProgress {
                cycles: outcome.as_ref().map_or(0, |o| o.stats.cycles.get()),
                bus_utilisation: outcome.as_ref().map_or(0.0, |o| o.stats.bus_utilisation()),
                wall_time,
                ok: outcome.is_ok(),
            };
            observer.job_finished(index, &job.label, &progress);
            JobResult {
                label: job.label.clone(),
                protocol: job.protocol.kind(),
                workload: job.workload.name().to_string(),
                outcome,
                wall_time,
            }
        });
        SweepReport {
            results,
            wall_time: started.elapsed(),
            workers: self.workers.min(self.jobs.len().max(1)),
        }
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Everything a sweep produced: one [`JobResult`] per job, input order.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-job results, in the order the jobs were added to the builder.
    pub results: Vec<JobResult>,
    /// Wall-clock duration of the whole batch.
    pub wall_time: Duration,
    /// Number of worker threads the batch ran on.
    pub workers: usize,
}

impl SweepReport {
    /// Iterates over the successful outcomes, in job order.
    pub fn outcomes(&self) -> impl Iterator<Item = &ExperimentOutcome> {
        self.results.iter().filter_map(JobResult::outcome)
    }

    /// Iterates over the failed jobs as `(label, error)`, in job order.
    pub fn errors(&self) -> impl Iterator<Item = (&str, &JobError)> {
        self.results.iter().filter_map(|r| r.outcome.as_ref().err().map(|e| (r.label.as_str(), e)))
    }

    /// Number of jobs that produced an outcome.
    #[must_use]
    pub fn ok_count(&self) -> usize {
        self.results.iter().filter(|r| r.outcome.is_ok()).count()
    }

    /// Number of jobs that failed or panicked.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.results.len() - self.ok_count()
    }

    /// Collapses the report into the legacy all-or-first-error shape:
    /// every outcome in job order, or the first failure.
    ///
    /// # Errors
    ///
    /// Returns the first job's error ([`Error::JobPanicked`] for panics).
    pub fn into_outcomes(self) -> Result<Vec<ExperimentOutcome>> {
        self.results.into_iter().map(|r| r.outcome.map_err(Error::from)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    use cohort_sim::SimStats;
    use cohort_trace::micro;
    use cohort_types::{Criticality, TimerValue};

    fn spec(n: usize) -> SystemSpec {
        let mut b = SystemSpec::builder();
        for _ in 0..n {
            b = b.core(Criticality::new(1).unwrap());
        }
        b.build().unwrap()
    }

    fn tiny_jobs(n: usize) -> Vec<ExperimentJob> {
        let s = spec(2);
        let w = Arc::new(micro::ping_pong(2, 4));
        (0..n)
            .map(|i| {
                ExperimentJob::new(s.clone(), Protocol::Msi, Arc::clone(&w))
                    .with_label(format!("job-{i}"))
            })
            .collect()
    }

    fn dummy_outcome(job: &ExperimentJob) -> ExperimentOutcome {
        ExperimentOutcome {
            protocol: job.protocol.kind(),
            workload: job.workload.name().to_string(),
            stats: SimStats::default(),
            bounds: None,
            metrics: None,
        }
    }

    #[test]
    fn default_labels_and_overrides() {
        let job = ExperimentJob::new(spec(2), Protocol::Pcc, micro::ping_pong(2, 4));
        assert_eq!(job.label, "pcc/ping-pong");
        let relabeled = job.with_label("fig6/pcc");
        assert_eq!(relabeled.label, "fig6/pcc");
    }

    #[test]
    fn a_panicking_job_is_isolated_and_reported() {
        let runner = |job: &ExperimentJob| {
            assert!(job.label != "job-2", "poisoned job");
            Ok(dummy_outcome(job))
        };
        let sweep = Sweep::builder().jobs(tiny_jobs(5)).workers(2).runner(&runner).build();
        let report = sweep.run();
        assert_eq!(report.results.len(), 5, "siblings of the panicking job complete");
        assert_eq!(report.ok_count(), 4);
        assert_eq!(report.error_count(), 1);
        let (label, error) = report.errors().next().unwrap();
        assert_eq!(label, "job-2");
        assert_eq!(*error, JobError::Panicked("poisoned job".to_string()));
        assert!(error.to_string().contains("poisoned job"));
        // The legacy collapse surfaces the panic as a structured Error.
        let collapsed = report.into_outcomes();
        assert_eq!(collapsed, Err(Error::JobPanicked("poisoned job".to_string())));
    }

    #[test]
    fn a_panicking_job_does_not_poison_the_analysis_memo() {
        // Jobs share the process-wide analysis memo; a job that panics
        // after touching it must not corrupt or disable it for the clean
        // siblings and for later sweeps (satellite of the fault-injection
        // PR: `JobError` outcomes never leave partial state behind).
        use cohort_analysis::{analysis_cache, guaranteed_hits};
        use cohort_sim::CacheGeometry;
        use cohort_types::Cycles;

        let trace = micro::ping_pong(2, 16).traces()[0].clone();
        let l1 = CacheGeometry::paper_l1();
        let (hit, penalty) = (Cycles::new(1), Cycles::new(216));
        let expected = guaranteed_hits(&trace, TimerValue::timed(64).unwrap(), &l1, hit, penalty);

        let runner = |job: &ExperimentJob| {
            let memoized = analysis_cache().guaranteed_hits(
                &trace,
                TimerValue::timed(64).unwrap(),
                &l1,
                hit,
                penalty,
            );
            assert_eq!(memoized, expected, "the shared memo must stay exact");
            assert!(job.label != "job-1", "fault injected into job-1");
            Ok(dummy_outcome(job))
        };
        let sweep = Sweep::builder().jobs(tiny_jobs(6)).workers(3).runner(&runner).build();
        let report = sweep.run();
        assert_eq!(report.ok_count(), 5);
        assert!(matches!(report.results[1].outcome, Err(JobError::Panicked(_))));

        // Later clean runs still go through the memo and match the cold
        // analysis bit-for-bit.
        let after = analysis_cache().guaranteed_hits(
            &trace,
            TimerValue::timed(64).unwrap(),
            &l1,
            hit,
            penalty,
        );
        assert_eq!(after, expected);
    }

    #[test]
    fn failed_jobs_carry_their_error() {
        // A CoHoRT job with the wrong timer-vector length fails cleanly.
        let s = spec(2);
        let w = micro::ping_pong(2, 4);
        let bad = ExperimentJob::new(
            s.clone(),
            Protocol::Cohort { timers: vec![TimerValue::MSI] },
            w.clone(),
        );
        let good = ExperimentJob::new(s, Protocol::Msi, w);
        let report = Sweep::builder().jobs([bad, good]).build().run();
        assert!(matches!(
            report.results[0].outcome,
            Err(JobError::Failed(Error::InvalidConfig(_)))
        ));
        assert!(report.results[1].outcome.is_ok());
        assert_eq!(report.ok_count(), 1);
    }

    #[test]
    fn results_are_deterministic_and_input_ordered() {
        let sweep = Sweep::builder().jobs(tiny_jobs(24)).workers(4).build();
        let a = sweep.run();
        let b = sweep.run();
        for (i, (ra, rb)) in a.results.iter().zip(&b.results).enumerate() {
            assert_eq!(ra.label, format!("job-{i}"), "input order survives the pool");
            assert_eq!(ra.protocol, ProtocolKind::Msi);
            let (oa, ob) = (ra.outcome().unwrap(), rb.outcome().unwrap());
            assert_eq!(oa.stats, ob.stats, "job {i} must not depend on scheduling");
        }
    }

    #[test]
    fn worker_threads_never_exceed_available_parallelism() {
        struct ThreadRecorder<'a>(&'a Mutex<HashSet<std::thread::ThreadId>>);
        impl SweepObserver for ThreadRecorder<'_> {
            fn job_started(&self, _index: usize, _label: &str) {
                self.0.lock().unwrap().insert(std::thread::current().id());
            }
        }
        let limit = pool::default_workers();
        let threads = Mutex::new(HashSet::new());
        let recorder = ThreadRecorder(&threads);
        let runner = |job: &ExperimentJob| {
            std::thread::sleep(Duration::from_millis(1));
            Ok(dummy_outcome(job))
        };
        let sweep =
            Sweep::builder().jobs(tiny_jobs(24)).observer(&recorder).runner(&runner).build();
        let report = sweep.run();
        let distinct = threads.lock().unwrap().len();
        assert!(
            distinct <= limit,
            "24 jobs ran on {distinct} threads, available parallelism is {limit}"
        );
        assert!(report.workers <= limit);
        assert_eq!(report.ok_count(), 24);
    }

    #[test]
    fn observer_sees_every_job_with_progress() {
        struct Recorder<'a>(&'a Mutex<Vec<(usize, String, bool)>>);
        impl SweepObserver for Recorder<'_> {
            fn job_finished(&self, index: usize, label: &str, progress: &JobProgress) {
                self.0.lock().unwrap().push((index, label.to_string(), progress.ok));
                assert!(progress.ok == (progress.cycles > 0));
            }
        }
        let events = Mutex::new(Vec::new());
        let recorder = Recorder(&events);
        let sweep = Sweep::builder().jobs(tiny_jobs(6)).workers(2).observer(&recorder).build();
        let report = sweep.run();
        let mut seen = events.into_inner().unwrap();
        seen.sort_by_key(|(i, _, _)| *i);
        assert_eq!(seen.len(), 6);
        for (i, (index, label, ok)) in seen.into_iter().enumerate() {
            assert_eq!(index, i);
            assert_eq!(label, format!("job-{i}"));
            assert!(ok);
        }
        assert!(report.wall_time >= report.results.iter().map(|r| r.wall_time).max().unwrap());
    }

    #[test]
    fn collect_metrics_attaches_reports_without_changing_stats() {
        let plain = Sweep::builder().jobs(tiny_jobs(3)).workers(2).build().run();
        let probed =
            Sweep::builder().jobs(tiny_jobs(3)).workers(2).collect_metrics(true).build().run();
        for (p, m) in plain.results.iter().zip(&probed.results) {
            let (p, m) = (p.outcome().unwrap(), m.outcome().unwrap());
            assert_eq!(p.stats, m.stats, "metrics collection must not perturb the sweep");
            assert!(p.metrics.is_none());
            let report = m.metrics.as_ref().expect("probed sweep carries metrics");
            assert_eq!(report.cycles, m.stats.cycles.get());
        }
    }

    #[test]
    fn empty_sweep_reports_nothing() {
        let report = Sweep::builder().build().run();
        assert!(report.results.is_empty());
        assert_eq!(report.error_count(), 0);
        assert_eq!(report.into_outcomes().unwrap(), Vec::<ExperimentOutcome>::new());
    }
}
