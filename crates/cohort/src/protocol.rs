//! Protocol presets: CoHoRT and the paper's baselines as simulator
//! configurations plus their analytical models.

use serde::{Deserialize, Serialize};

use cohort_analysis::{analyze_cohort, analyze_pcc, analyze_pendulum, CoreBound, PendulumParams};
use cohort_sim::{ArbiterKind, DataPath, SimConfig};
use cohort_trace::Workload;
use cohort_types::{Error, Result, TimerValue};

use crate::SystemSpec;

/// The identity of a [`Protocol`], without its configuration payload.
///
/// Results (sweep reports, JSON exports, figure tables) want to *name* the
/// protocol a run used without dragging its timers or criticality mask
/// along; `ProtocolKind` is the `Copy` discriminant for that, with a
/// stable human label and a filesystem/CLI-safe slug (mirroring
/// `CritConfig::slug` in `cohort-bench`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// CoHoRT: per-core timers under RROF.
    Cohort,
    /// Plain MSI snooping under RROF.
    Msi,
    /// MSI under a COTS FCFS arbiter (the Figure-6 baseline).
    MsiFcfs,
    /// PCC-style predictable coherence (staged hand-overs).
    Pcc,
    /// PENDULUM: uniform timers + TDM.
    Pendulum,
}

impl ProtocolKind {
    /// Every kind, in the paper's presentation order.
    pub const ALL: [ProtocolKind; 5] = [
        ProtocolKind::Cohort,
        ProtocolKind::Msi,
        ProtocolKind::MsiFcfs,
        ProtocolKind::Pcc,
        ProtocolKind::Pendulum,
    ];

    /// Short name used on figure axes and in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Cohort => "CoHoRT",
            ProtocolKind::Msi => "MSI",
            ProtocolKind::MsiFcfs => "MSI+FCFS",
            ProtocolKind::Pcc => "PCC",
            ProtocolKind::Pendulum => "PENDULUM",
        }
    }

    /// Lower-case identifier safe for CLI flags, JSON keys and filenames.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            ProtocolKind::Cohort => "cohort",
            ProtocolKind::Msi => "msi",
            ProtocolKind::MsiFcfs => "msi-fcfs",
            ProtocolKind::Pcc => "pcc",
            ProtocolKind::Pendulum => "pendulum",
        }
    }

    /// Parses a [`Self::slug`] back into a kind.
    #[must_use]
    pub fn from_slug(slug: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.slug() == slug)
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The coherence solutions compared in the paper's evaluation (§VIII).
///
/// Serializable so fleet job specs can carry a full protocol
/// configuration (timers, criticality masks) across the submission wire,
/// not just its [`ProtocolKind`] name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protocol {
    /// CoHoRT: per-core timers (θ = −1 ⇒ MSI), RROF arbitration, direct
    /// cache-to-cache hand-overs. Analysed with Eq. 1 + Eq. 2/3.
    Cohort {
        /// The per-core timer registers Θ.
        timers: Vec<TimerValue>,
    },
    /// Plain MSI snooping under RROF — equivalent to CoHoRT with all
    /// θ = −1 (analysed all-miss at the Eq. 1 bound).
    Msi,
    /// MSI snooping with a COTS first-come-first-served arbiter: the
    /// normalization baseline of Figure 6. Not analysable (no bound).
    MsiFcfs,
    /// PCC-style predictable coherence: MSI under RROF with every
    /// hand-over staged through the shared memory.
    Pcc,
    /// PENDULUM: uniform time-based coherence (every core, critical or
    /// not, holds lines for the same global θ), TDM slots for critical
    /// cores, non-critical cores ride idle slots only.
    Pendulum {
        /// Which cores are critical.
        critical: Vec<bool>,
        /// The uniform timer of critical cores (PENDULUM is not
        /// requirement-aware).
        theta: u64,
    },
}

impl Protocol {
    /// The configuration-free identity of this protocol.
    #[must_use]
    pub fn kind(&self) -> ProtocolKind {
        match self {
            Protocol::Cohort { .. } => ProtocolKind::Cohort,
            Protocol::Msi => ProtocolKind::Msi,
            Protocol::MsiFcfs => ProtocolKind::MsiFcfs,
            Protocol::Pcc => ProtocolKind::Pcc,
            Protocol::Pendulum { .. } => ProtocolKind::Pendulum,
        }
    }

    /// Short name used on figure axes and in reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        self.kind().label()
    }

    /// Lower-case identifier safe for CLI flags, JSON keys and filenames.
    #[must_use]
    pub fn slug(&self) -> &'static str {
        self.kind().slug()
    }

    /// Short name used on figure axes and in reports.
    ///
    /// Alias of [`Self::label`], kept for source compatibility.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.label()
    }

    /// Builds the simulator configuration realising this protocol on the
    /// given platform.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if a per-core vector length does
    /// not match the platform.
    pub fn sim_config(&self, spec: &SystemSpec) -> Result<SimConfig> {
        let n = spec.cores();
        let base = SimConfig::builder(n).latency(*spec.latency()).l1(*spec.l1()).llc(*spec.llc());
        let config = match self {
            Protocol::Cohort { timers } => {
                if timers.len() != n {
                    return Err(Error::InvalidConfig(format!(
                        "CoHoRT expects {n} timers, got {}",
                        timers.len()
                    )));
                }
                base.timers(timers.clone()).arbiter(ArbiterKind::Rrof)
            }
            Protocol::Msi => base.arbiter(ArbiterKind::Rrof),
            Protocol::MsiFcfs => base.arbiter(ArbiterKind::Fcfs),
            Protocol::Pcc => base.arbiter(ArbiterKind::Rrof).data_path(DataPath::ViaSharedMemory),
            Protocol::Pendulum { critical, theta } => {
                if critical.len() != n {
                    return Err(Error::InvalidConfig(format!(
                        "PENDULUM mask expects {n} cores, got {}",
                        critical.len()
                    )));
                }
                // PENDULUM's protocol is uniform: criticality only affects
                // arbitration, so non-critical holders also keep lines θ.
                let timers = vec![TimerValue::timed(*theta)?; n];
                base.timers(timers)
                    .arbiter(ArbiterKind::Tdm { critical: critical.clone() })
                    .waiter_priority(critical.clone())
            }
        };
        config.build()
    }

    /// Exports the per-core timer-register table this protocol programs.
    ///
    /// This is the protocol-level abstraction consumed by `cohort-verif`'s
    /// model checker: the timer class of each core (MSI / θ = 0 / θ > 0)
    /// is the only protocol knob the coherence invariants depend on, so a
    /// preset's verification model is fully determined by this table.
    /// MSI-family baselines (plain, FCFS, PCC) program every register to
    /// θ = −1; PENDULUM programs its uniform θ everywhere.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the preset carries a per-core
    /// vector whose length does not match `cores`, or a θ outside the
    /// 16-bit register range.
    pub fn timer_table(&self, cores: usize) -> Result<Vec<TimerValue>> {
        match self {
            Protocol::Cohort { timers } => {
                if timers.len() != cores {
                    return Err(Error::InvalidConfig(format!(
                        "CoHoRT expects {cores} timers, got {}",
                        timers.len()
                    )));
                }
                Ok(timers.clone())
            }
            Protocol::Msi | Protocol::MsiFcfs | Protocol::Pcc => Ok(vec![TimerValue::Msi; cores]),
            Protocol::Pendulum { theta, .. } => Ok(vec![TimerValue::timed(*theta)?; cores]),
        }
    }

    /// Computes the per-core analytical WCML bounds, or `None` for
    /// protocols without an analysis (the COTS FCFS baseline).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] on spec/workload mismatches.
    pub fn analyze(
        &self,
        spec: &SystemSpec,
        workload: &Workload,
    ) -> Result<Option<Vec<CoreBound>>> {
        let lat = spec.latency();
        match self {
            Protocol::Cohort { timers } => {
                Ok(Some(analyze_cohort(workload, timers, lat, spec.l1(), spec.llc())?))
            }
            Protocol::Msi => {
                let timers = vec![TimerValue::MSI; spec.cores()];
                Ok(Some(analyze_cohort(workload, &timers, lat, spec.l1(), spec.llc())?))
            }
            Protocol::MsiFcfs => Ok(None),
            Protocol::Pcc => Ok(Some(analyze_pcc(workload, lat))),
            Protocol::Pendulum { critical, theta } => {
                let params = PendulumParams { critical: critical.clone(), theta: *theta };
                Ok(Some(analyze_pendulum(workload, &params, lat)?))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohort_trace::micro;
    use cohort_types::Criticality;

    fn spec(n: usize) -> SystemSpec {
        let mut b = SystemSpec::builder();
        for _ in 0..n {
            b = b.core(Criticality::new(1).unwrap());
        }
        b.build().unwrap()
    }

    #[test]
    fn names() {
        assert_eq!(Protocol::Msi.name(), "MSI");
        assert_eq!(Protocol::Pcc.name(), "PCC");
        assert_eq!(Protocol::Cohort { timers: vec![] }.name(), "CoHoRT");
        assert_eq!(Protocol::MsiFcfs.label(), "MSI+FCFS");
        assert_eq!(Protocol::Pendulum { critical: vec![], theta: 1 }.slug(), "pendulum");
    }

    #[test]
    fn kinds_round_trip_through_slugs() {
        for kind in ProtocolKind::ALL {
            assert_eq!(ProtocolKind::from_slug(kind.slug()), Some(kind));
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(ProtocolKind::from_slug("emsi"), None);
        assert_eq!(Protocol::Cohort { timers: vec![] }.kind(), ProtocolKind::Cohort);
        assert_eq!(ProtocolKind::MsiFcfs.slug(), "msi-fcfs");
    }

    #[test]
    fn cohort_config_carries_timers() {
        let s = spec(2);
        let timers = vec![TimerValue::timed(30).unwrap(), TimerValue::MSI];
        let config = Protocol::Cohort { timers: timers.clone() }.sim_config(&s).unwrap();
        assert_eq!(config.timers(), timers.as_slice());
        assert_eq!(config.arbiter(), &ArbiterKind::Rrof);
    }

    #[test]
    fn pendulum_config_uses_tdm_and_priority_queues() {
        let s = spec(3);
        let p = Protocol::Pendulum { critical: vec![true, false, true], theta: 99 };
        let config = p.sim_config(&s).unwrap();
        assert!(matches!(config.arbiter(), ArbiterKind::Tdm { .. }));
        assert!(config.waiter_priority().is_some());
        assert_eq!(config.timers()[0].theta(), Some(99));
        assert_eq!(config.timers()[1].theta(), Some(99), "the protocol is uniform");
    }

    #[test]
    fn pcc_config_stages_transfers() {
        let config = Protocol::Pcc.sim_config(&spec(2)).unwrap();
        assert_eq!(config.data_path(), DataPath::ViaSharedMemory);
    }

    #[test]
    fn length_mismatches_rejected() {
        let s = spec(3);
        assert!(Protocol::Cohort { timers: vec![TimerValue::MSI] }.sim_config(&s).is_err());
        assert!(Protocol::Pendulum { critical: vec![true], theta: 1 }.sim_config(&s).is_err());
    }

    #[test]
    fn timer_tables_reflect_each_preset() {
        let timers = vec![TimerValue::timed(30).unwrap(), TimerValue::MSI];
        let p = Protocol::Cohort { timers: timers.clone() };
        assert_eq!(p.timer_table(2).unwrap(), timers);
        assert!(p.timer_table(3).is_err(), "length mismatch must be rejected");

        assert_eq!(Protocol::Msi.timer_table(2).unwrap(), vec![TimerValue::Msi; 2]);
        assert_eq!(Protocol::Pcc.timer_table(1).unwrap(), vec![TimerValue::Msi]);

        let pendulum = Protocol::Pendulum { critical: vec![true, false], theta: 50 };
        let table = pendulum.timer_table(2).unwrap();
        assert!(table.iter().all(|t| t.theta() == Some(50)), "PENDULUM is uniform");
    }

    #[test]
    fn fcfs_has_no_analysis() {
        let s = spec(2);
        let w = micro::ping_pong(2, 2);
        assert!(Protocol::MsiFcfs.analyze(&s, &w).unwrap().is_none());
        assert!(Protocol::Msi.analyze(&s, &w).unwrap().is_some());
    }
}
