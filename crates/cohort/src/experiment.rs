//! Simulation + analysis drivers used by examples, tests and the
//! figure-regeneration benches.

use cohort_analysis::CoreBound;
use cohort_sim::{MetricsProbe, MetricsReport, SimBuilder, SimStats};
use cohort_trace::Workload;
use cohort_types::Result;

use crate::{Protocol, ProtocolKind, SystemSpec};

/// The paired outcome of simulating a protocol and analysing it.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOutcome {
    /// Which protocol ran (labels come from [`ProtocolKind::label`]).
    pub protocol: ProtocolKind,
    /// Workload name (figure x-axis).
    pub workload: String,
    /// Measured statistics (the solid bars).
    pub stats: SimStats,
    /// Analytical bounds (the T-bars); `None` for unanalysable baselines.
    pub bounds: Option<Vec<CoreBound>>,
    /// Streamed instrumentation (latency histograms, bus shares, timer
    /// occupancy) when the run was probed; `None` for plain runs, which
    /// keeps their output byte-identical to the pre-probe driver.
    pub metrics: Option<MetricsReport>,
}

impl ExperimentOutcome {
    /// Measured execution time (Figure 6's numerator).
    #[must_use]
    pub fn execution_time(&self) -> u64 {
        self.stats.execution_time().get()
    }

    /// Checks the soundness obligation: every measured per-core WCML and
    /// per-request latency at or under its analytical bound.
    ///
    /// Returns the first violation as `Err(description)`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated bound.
    pub fn check_soundness(&self) -> core::result::Result<(), String> {
        let Some(bounds) = &self.bounds else { return Ok(()) };
        for (i, (core, bound)) in self.stats.cores.iter().zip(bounds).enumerate() {
            if let Some(wcl) = bound.wcl {
                if core.worst_request > wcl {
                    return Err(format!(
                        "{} on {}: core {i} request {} exceeds WCL {}",
                        self.protocol, self.workload, core.worst_request, wcl
                    ));
                }
            }
            if let Some(wcml) = bound.wcml {
                if core.total_latency > wcml {
                    return Err(format!(
                        "{} on {}: core {i} measured WCML {} exceeds bound {}",
                        self.protocol, self.workload, core.total_latency, wcml
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Runs one protocol on one workload: simulate, then analyse.
///
/// # Errors
///
/// Propagates configuration errors and simulator failures.
///
/// # Examples
///
/// See the crate-level example.
pub fn run_experiment(
    spec: &SystemSpec,
    protocol: &Protocol,
    workload: &Workload,
) -> Result<ExperimentOutcome> {
    let config = protocol.sim_config(spec)?;
    let mut sim = SimBuilder::new(config, workload).build()?;
    let stats = sim.run()?;
    let bounds = protocol.analyze(spec, workload)?;
    Ok(ExperimentOutcome {
        protocol: protocol.kind(),
        workload: workload.name().to_string(),
        stats,
        bounds,
        metrics: None,
    })
}

/// Runs one protocol on one workload under a [`MetricsProbe`]: identical
/// statistics to [`run_experiment`] (probes observe, they never perturb),
/// plus the streamed [`MetricsReport`] in [`ExperimentOutcome::metrics`].
///
/// # Errors
///
/// Propagates configuration errors and simulator failures.
pub fn run_experiment_with_metrics(
    spec: &SystemSpec,
    protocol: &Protocol,
    workload: &Workload,
) -> Result<ExperimentOutcome> {
    let config = protocol.sim_config(spec)?;
    let mut sim = SimBuilder::new(config, workload).probe(MetricsProbe::new()).build()?;
    let stats = sim.run()?;
    let metrics = sim.into_probe().into_report();
    let bounds = protocol.analyze(spec, workload)?;
    Ok(ExperimentOutcome {
        protocol: protocol.kind(),
        workload: workload.name().to_string(),
        stats,
        bounds,
        metrics: Some(metrics),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentJob;
    use cohort_trace::micro;
    use cohort_types::{Criticality, TimerValue};

    fn spec(n: usize) -> SystemSpec {
        let mut b = SystemSpec::builder();
        for _ in 0..n {
            b = b.core(Criticality::new(1).unwrap());
        }
        b.build().unwrap()
    }

    #[test]
    fn cohort_outcome_is_sound() {
        let s = spec(2);
        let w = micro::line_bursts(2, 4, 30);
        let timers = vec![TimerValue::timed(50).unwrap(), TimerValue::MSI];
        let outcome = run_experiment(&s, &Protocol::Cohort { timers }, &w).unwrap();
        outcome.check_soundness().unwrap();
        assert_eq!(outcome.protocol, ProtocolKind::Cohort);
        assert!(outcome.execution_time() > 0);
    }

    #[test]
    fn all_protocols_run_the_same_workload() {
        let s = spec(2);
        let w = micro::random_shared(2, 16, 120, 0.4, 3);
        let protocols = [
            Protocol::Cohort { timers: vec![TimerValue::timed(25).unwrap(); 2] },
            Protocol::Msi,
            Protocol::MsiFcfs,
            Protocol::Pcc,
            Protocol::Pendulum { critical: vec![true, false], theta: 25 },
        ];
        for p in &protocols {
            let outcome = run_experiment(&s, p, &w).unwrap();
            outcome.check_soundness().unwrap_or_else(|e| panic!("{e}"));
            for (core, trace) in outcome.stats.cores.iter().zip(w.traces()) {
                assert_eq!(core.accesses(), trace.len() as u64, "{}", p.name());
            }
        }
    }

    #[test]
    fn metrics_run_matches_plain_run_and_attaches_a_report() {
        let s = spec(2);
        let w = micro::ping_pong(2, 10);
        let plain = run_experiment(&s, &Protocol::Msi, &w).unwrap();
        let probed = run_experiment_with_metrics(&s, &Protocol::Msi, &w).unwrap();
        assert_eq!(plain.stats, probed.stats, "the probe must not perturb the run");
        assert_eq!(plain.bounds, probed.bounds);
        let report = probed.metrics.expect("probed run carries metrics");
        for (core, stats) in report.cores.iter().zip(&probed.stats.cores) {
            assert_eq!(core.latency.count(), stats.accesses());
        }
    }

    #[test]
    fn sweep_matches_sequential_runs() {
        let s = spec(2);
        let w = micro::random_shared(2, 16, 80, 0.4, 7);
        let protocols =
            [Protocol::Msi, Protocol::Pcc, Protocol::MsiFcfs, Protocol::Msi, Protocol::Pcc];
        let sweep = crate::Sweep::builder()
            .jobs(protocols.iter().map(|p| ExperimentJob::new(s.clone(), p.clone(), w.clone())))
            .workers(2)
            .build();
        let report = sweep.run();
        assert_eq!(report.results.len(), protocols.len());
        for (result, protocol) in report.results.iter().zip(&protocols) {
            let sequential = run_experiment(&s, protocol, &w).unwrap();
            assert_eq!(result.outcome().unwrap(), &sequential);
        }
    }
}
