//! **CoHoRT** — criticality- and requirement-aware heterogeneous cache
//! coherence for mixed-criticality systems (reproduction of the DATE 2025
//! paper by Bayes & Hassan).
//!
//! CoHoRT lets every core of a shared-bus multicore run either a
//! **time-based** coherence protocol (a per-core timer θ protects fetched
//! lines from interference, making private-cache hits *guaranteeable*) or
//! the **standard MSI snooping** protocol (θ = −1), while the whole MPSoC
//! stays coherent. This crate ties the substrates together into the
//! system-level API:
//!
//! - [`SystemSpec`]: the mixed-criticality platform model (§II) — cores,
//!   criticality levels, per-mode WCML requirements, latencies;
//! - [`Protocol`]: ready-made configurations for CoHoRT and the paper's
//!   baselines (MSI, MSI+FCFS, PCC, PENDULUM);
//! - [`ModeSetup`]: the offline flow of Fig. 2a — one GA run per
//!   operational mode (each warm-started from the previous mode's
//!   solution), producing the per-core [`ModeSwitchLut`];
//! - [`ModeController`]: the run-time half of §VI — when a requirement
//!   tightens, escalate the mode (degrading lower-criticality cores to MSI
//!   instead of suspending them) until the bound fits;
//! - [`run_experiment`]: the simulation + analysis driver for a single
//!   protocol × workload pair;
//! - [`Sweep`] / [`ExperimentJob`]: the batch sweep engine — a bounded
//!   worker pool (sized from the machine's available parallelism) that
//!   runs many experiments, isolates per-job panics into [`JobError`]s,
//!   reports progress through [`SweepObserver`] hooks and returns every
//!   job's outcome as a structured [`SweepReport`].
//!
//! # Examples
//!
//! End-to-end: specify a system, optimize its timers, simulate, and check
//! the measured WCML against the analytical bound.
//!
//! ```
//! use cohort::{run_experiment, Protocol, SystemSpec};
//! use cohort_trace::micro;
//! use cohort_types::{Criticality, Cycles};
//!
//! let spec = SystemSpec::builder()
//!     .core(Criticality::new(2)?)
//!     .core(Criticality::new(1)?)
//!     .build()?;
//! let workload = micro::line_bursts(2, 4, 50);
//! let timers = vec![
//!     cohort_types::TimerValue::timed(60)?,
//!     cohort_types::TimerValue::MSI,
//! ];
//! let outcome = run_experiment(&spec, &Protocol::Cohort { timers }, &workload)?;
//! let bound = outcome.bounds.as_ref().expect("CoHoRT is analysable")[0];
//! assert!(outcome.stats.cores[0].total_latency <= bound.wcml.expect("bounded"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod controller;
mod degrade;
mod experiment;
pub mod hardware;
mod modes;
mod pool;
mod protocol;
pub mod related;
mod system;

pub use batch::{
    ExperimentJob, JobError, JobProgress, JobResult, Sweep, SweepBuilder, SweepObserver,
    SweepReport, SweepRunner,
};
pub use controller::{ModeController, ModeDecision};
pub use degrade::{
    run_with_watchdog, DegradationReport, PostSwitchCompliance, SwitchRecord, WatchdogPolicy,
};
pub use experiment::{run_experiment, run_experiment_with_metrics, ExperimentOutcome};
pub use modes::{ModeConfiguration, ModeEntry, ModeSetup, ModeSwitchLut};
pub use protocol::{Protocol, ProtocolKind};
pub use system::{CoreSpec, SystemSpec, SystemSpecBuilder};

// Re-export the layered crates so downstream users need one dependency.
pub use cohort_analysis as analysis;
pub use cohort_optim as optim;
pub use cohort_sim as sim;
pub use cohort_trace as trace;
pub use cohort_types as types;
