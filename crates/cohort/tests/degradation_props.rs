//! Property tests for the watchdog's conviction attribution.
//!
//! Mixed coreless/per-core violation streams are generated with the fault
//! kinds that mirror `cohort-verif`'s four model-checker [`Mutation`]
//! classes, so the runtime attribution stays cross-referenced to the
//! protocol-level failure taxonomy:
//!
//! | fault kind driven here          | verif mutation slug        | conviction shape        |
//! |---------------------------------|----------------------------|-------------------------|
//! | `TimerCorruption`               | `ignore-timer-protection`  | per-core latency        |
//! | `LineCorruption`                | `skip-invalidation` (SWMR) | machine-wide coherence  |
//! | `SpuriousEviction`              | `skip-evict-writeback`     | machine-wide coherence  |
//! | `TimerStuck` (withheld release) | `drop-timer-expiry`        | per-core latency        |
//!
//! [`Mutation`]: https://docs.rs/cohort-verif
//!
//! The properties under test: the [`DegradationReport`] is a pure function
//! of its inputs (bit-identical twice, down to the JSON document), the
//! per-core/machine attribution partitions the conviction total, and no
//! coreless violation ever increments a per-core count.

use proptest::prelude::*;

use cohort::{run_with_watchdog, DegradationReport, ModeSwitchLut, WatchdogPolicy};
use cohort_sim::{FaultKind, FaultPlan, FaultSpec, SimConfig};
use cohort_trace::{Trace, TraceOp, Workload};
use cohort_types::{Cycles, TimerValue};

#[allow(dead_code)] // used only inside proptest! (the offline stub expands to nothing)
fn timed(theta: u64) -> TimerValue {
    TimerValue::timed(theta).expect("θ fits in 16 bits")
}

/// Both cores hammer the same line — the contention pattern that makes
/// per-core latency convictions possible at all.
#[allow(dead_code)] // used only inside proptest! (the offline stub expands to nothing)
fn contended_workload(ops: usize, gap: u64) -> Workload {
    let trace =
        || Trace::from_ops((0..ops).map(|_| TraceOp::store(1).after(gap)).collect::<Vec<_>>());
    Workload::new("prop-degradation", vec![trace(), trace()]).expect("two traces")
}

#[allow(dead_code)] // used only inside proptest! (the offline stub expands to nothing)
fn lut() -> ModeSwitchLut {
    ModeSwitchLut::new(vec![vec![timed(50), timed(50)], vec![timed(50), TimerValue::MSI]])
        .expect("valid LUT")
}

/// One arbitrary fault: per-core timing corruption (`ignore-timer-protection`
/// / `drop-timer-expiry` analogues) or coreless coherence corruption
/// (`skip-invalidation` / `skip-evict-writeback` analogues).
#[allow(dead_code)] // used only inside proptest! (the offline stub expands to nothing)
fn fault_strategy() -> impl Strategy<Value = FaultSpec> {
    let kind = prop_oneof![
        (5_000u64..=30_000).prop_map(|t| FaultKind::TimerCorruption {
            value: TimerValue::timed(t).expect("≤ 16 bits"),
        }),
        (2_000u64..=10_000).prop_map(|cycles| FaultKind::TimerStuck { cycles }),
        Just(FaultKind::LineCorruption),
        Just(FaultKind::SpuriousEviction),
    ];
    (kind, 0usize..2, 10u64..2_000).prop_map(|(kind, core, at)| FaultSpec {
        kind,
        core,
        at: Cycles::new(at),
    })
}

#[allow(dead_code)] // used only inside proptest! (the offline stub expands to nothing)
fn run(faults: &[FaultSpec]) -> DegradationReport {
    let config = SimConfig::builder(2).timers(vec![timed(50); 2]).build().expect("valid config");
    run_with_watchdog(
        config,
        &contended_workload(80, 120),
        &lut(),
        FaultPlan::new(faults.to_vec()),
        &WatchdogPolicy::default(),
    )
    .expect("watchdog run completes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same faults in, same report out — struct-equal and JSON-equal.
    #[test]
    fn report_is_deterministic(faults in proptest::collection::vec(fault_strategy(), 1..4)) {
        let a = run(&faults);
        let b = run(&faults);
        prop_assert_eq!(&a, &b);
        let ja = serde_json::to_string_pretty(&a.to_json()).expect("serialize");
        let jb = serde_json::to_string_pretty(&b.to_json()).expect("serialize");
        prop_assert_eq!(ja, jb);
    }

    /// Attribution partitions the convictions: per-core counts carry
    /// exactly the violations that named a core (latency bounds here), the
    /// machine bucket exactly the coreless ones (coherence sweeps here).
    #[test]
    fn attribution_partitions_convictions(
        faults in proptest::collection::vec(fault_strategy(), 1..4),
    ) {
        let report = run(&faults);
        prop_assert_eq!(report.core_violations.len(), 2);
        prop_assert_eq!(
            report.core_violations.iter().sum::<u64>() + report.machine_violations,
            report.violations_total(),
        );
        // In this campaign family progress checking is off and coherence
        // convictions are always coreless, so the partition is exact by
        // kind as well.
        prop_assert_eq!(report.machine_violations, report.coherence_violations);
        prop_assert_eq!(
            report.core_violations.iter().sum::<u64>(),
            report.latency_violations + report.progress_violations,
        );
        // No coreless violation increments a per-core count: every recorded
        // coreless conviction is accounted for by the machine bucket.
        let recorded_coreless =
            report.violations.iter().filter(|v| v.core.is_none()).count() as u64;
        prop_assert!(report.machine_violations >= recorded_coreless);
        // And every escalation names a real core or no core at all.
        for s in &report.switches {
            if let Some(c) = s.trigger {
                prop_assert!(c < 2, "trigger core {} out of range", c);
            }
        }
    }
}
