//! End-to-end graceful degradation: an injected coherence fault starves a
//! time-based core past its Eq. 1 bound, the runtime watchdog convicts it,
//! the driver escalates the Mode-Switch LUT — degrading the low-criticality
//! core to MSI online — and the post-switch tail runs back inside the
//! envelope. This is the acceptance scenario of the fault-injection PR.

use cohort::{run_with_watchdog, ModeSwitchLut, WatchdogPolicy};
use cohort_sim::{FaultKind, FaultPlan, FaultSpec, SimConfig};
use cohort_trace::{Trace, TraceOp, Workload};
use cohort_types::{Cycles, TimerValue};

fn timed(theta: u64) -> TimerValue {
    TimerValue::timed(theta).expect("θ fits in 16 bits")
}

/// Both cores hammer the same line with a fixed inter-access gap — the
/// ping-pong pattern that makes every θ window visible in the latencies.
fn shared_store_workload(ops: usize, gap: u64) -> Workload {
    let trace =
        || Trace::from_ops((0..ops).map(|_| TraceOp::store(1).after(gap)).collect::<Vec<_>>());
    Workload::new("degradation-ping-pong", vec![trace(), trace()]).expect("two traces")
}

/// Mode 1 keeps both cores time-based; mode 2 degrades the low-criticality
/// core 1 to MSI (the §VI escalation row).
fn lut() -> ModeSwitchLut {
    ModeSwitchLut::new(vec![vec![timed(50), timed(50)], vec![timed(50), TimerValue::MSI]])
        .expect("valid LUT")
}

fn two_timed() -> SimConfig {
    SimConfig::builder(2).timers(vec![timed(50); 2]).build().expect("valid config")
}

#[test]
fn corrupted_timer_triggers_online_degradation_to_msi() {
    // Core 1's θ register is silently rewritten from 50 to 20 000. The next
    // time it owns the shared line, core 0 starves for ~20 000 cycles —
    // far beyond the 212-cycle Eq. 1 bound — and the watchdog escalates to
    // mode 2, whose register write both repairs the corruption and degrades
    // core 1 to MSI. Every request issued after the switch completes inside
    // the (re-derived) bound.
    let plan = FaultPlan::new(vec![FaultSpec {
        kind: FaultKind::TimerCorruption { value: timed(20_000) },
        core: 1,
        at: Cycles::new(10),
    }]);
    let report = run_with_watchdog(
        two_timed(),
        &shared_store_workload(150, 150),
        &lut(),
        plan,
        &WatchdogPolicy::default(),
    )
    .expect("watchdog run completes");

    assert_eq!(report.planned_faults, 1);
    assert_eq!(report.faults.len(), 1, "the corruption fired");
    assert!(report.latency_violations >= 1, "the starved core must convict");
    assert_eq!(report.switches.len(), 1, "one escalation, no flapping");
    assert_eq!(report.switches[0].from, 1);
    assert_eq!(report.switches[0].to, 2);
    assert_eq!(report.final_mode, 2, "degradation is sticky by default");
    let detection = report.detection_latency.expect("fault and conviction both happened");
    assert!(detection > 0, "conviction happens after injection");

    let post = report.post_switch.expect("a switch was taken");
    assert!(post.requests > 0, "the tail must exercise the degraded mode");
    assert_eq!(post.violations, 0, "post-switch requests satisfy Eq. 1");
    assert!(post.compliant);
}

#[test]
fn degradation_report_is_deterministic() {
    let run = || {
        let plan = FaultPlan::new(vec![FaultSpec {
            kind: FaultKind::TimerCorruption { value: timed(20_000) },
            core: 1,
            at: Cycles::new(10),
        }]);
        run_with_watchdog(
            two_timed(),
            &shared_store_workload(150, 150),
            &lut(),
            plan,
            &WatchdogPolicy::default(),
        )
        .expect("watchdog run completes")
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical inputs must produce identical reports");
    let ja = serde_json::to_string_pretty(&a.to_json()).expect("serialize");
    let jb = serde_json::to_string_pretty(&b.to_json()).expect("serialize");
    assert_eq!(ja, jb, "and identical JSON documents");
}

#[test]
fn transient_fault_repromotes_after_clean_window() {
    // A one-shot bus jam convicts once; after the escalation, a clean
    // 5 000-cycle window lets the opt-in re-promotion policy step the
    // system back to mode 1.
    let plan = FaultPlan::new(vec![FaultSpec {
        kind: FaultKind::BusDelay { cycles: 5_000 },
        core: 0,
        at: Cycles::new(10),
    }]);
    let policy = WatchdogPolicy { repromote_after: Some(5_000), ..WatchdogPolicy::default() };
    let report =
        run_with_watchdog(two_timed(), &shared_store_workload(150, 100), &lut(), plan, &policy)
            .expect("watchdog run completes");

    assert!(report.latency_violations >= 1, "the jam must convict");
    assert_eq!(report.switches.len(), 2, "one escalation, one re-promotion");
    assert_eq!(report.switches[0].to, 2);
    assert_eq!(report.switches[1].to, 1);
    assert_eq!(report.switches[1].trigger, None, "re-promotion has no triggering core");
    assert_eq!(report.final_mode, 1, "the transient fault is fully recovered");
    let post = report.post_switch.expect("switches were taken");
    assert!(post.compliant, "the restored mode runs inside Eq. 1");
}

/// Both cores only *load* the same line: every copy stays Shared, nothing
/// is invalidated, and no latency bound can be violated. The only possible
/// convictions are machine-wide coherence sweeps.
fn shared_load_workload(ops: usize, gap: u64) -> Workload {
    let trace =
        || Trace::from_ops((0..ops).map(|_| TraceOp::load(1).after(gap)).collect::<Vec<_>>());
    Workload::new("degradation-read-share", vec![trace(), trace()]).expect("two traces")
}

#[test]
fn coreless_violations_are_not_pinned_on_core_zero() {
    // Regression test for the conviction-misattribution bug: a
    // LineCorruption fault flips core 0's Shared copy to Modified without a
    // bus transaction, so the watchdog's deep coherence sweep fails — a
    // *machine-wide* conviction with `core: None`. The old loop attributed
    // it to core 0 via `unwrap_or(0)` and convicted that core; the fixed
    // loop counts it in the machine bucket and escalates without naming a
    // trigger core.
    let plan = FaultPlan::new(vec![FaultSpec {
        kind: FaultKind::LineCorruption,
        core: 0,
        at: Cycles::new(300),
    }]);
    let report = run_with_watchdog(
        two_timed(),
        &shared_load_workload(60, 100),
        &lut(),
        plan,
        &WatchdogPolicy::default(),
    )
    .expect("watchdog run completes");

    assert!(report.coherence_violations >= 1, "the corrupted line must be caught by the sweep");
    assert_eq!(report.latency_violations, 0, "read-sharing never violates a latency bound");
    assert_eq!(
        report.core_violations,
        vec![0, 0],
        "no coreless violation may increment a per-core count"
    );
    assert_eq!(report.machine_violations, report.coherence_violations);
    assert!(!report.switches.is_empty(), "machine-wide convictions still escalate");
    assert_eq!(report.switches[0].trigger, None, "the escalation names no trigger core");
    assert!(report.switches[0].to > report.switches[0].from, "and it is an escalation");
}

#[test]
fn per_core_and_machine_attribution_add_up() {
    // The timer-corruption campaign of the first test, re-checked for the
    // new attribution fields: every conviction lands either on the core
    // that suffered it or in the machine bucket, never both, never neither.
    let plan = FaultPlan::new(vec![FaultSpec {
        kind: FaultKind::TimerCorruption { value: timed(20_000) },
        core: 1,
        at: Cycles::new(10),
    }]);
    let report = run_with_watchdog(
        two_timed(),
        &shared_store_workload(150, 150),
        &lut(),
        plan,
        &WatchdogPolicy::default(),
    )
    .expect("watchdog run completes");

    assert_eq!(report.core_violations.len(), 2);
    assert_eq!(
        report.core_violations.iter().sum::<u64>() + report.machine_violations,
        report.violations_total(),
        "attribution partitions the convictions"
    );
    assert!(report.core_violations.iter().sum::<u64>() >= 1, "the starved core is attributed");
}

#[test]
fn at_top_mode_watchdog_stays_and_keeps_convicting() {
    // A campaign that violates at every mode: the first corruption drives
    // the system to the LUT's top mode (which repairs the register while
    // degrading core 1 to MSI); a second corruption, injected well after the
    // first switch's cooldown, re-violates *at* the top mode. The driver
    // must stay at `lut.modes()` — `mode.next()` never steps past the
    // table — while convictions keep accumulating.
    let table = lut();
    let plan = FaultPlan::new(vec![
        FaultSpec {
            kind: FaultKind::TimerCorruption { value: timed(20_000) },
            core: 1,
            at: Cycles::new(10),
        },
        FaultSpec {
            kind: FaultKind::TimerCorruption { value: timed(20_000) },
            core: 1,
            at: Cycles::new(30_000),
        },
    ]);
    let report = run_with_watchdog(
        two_timed(),
        &shared_store_workload(400, 150),
        &table,
        plan,
        &WatchdogPolicy::default(),
    )
    .expect("watchdog run completes at the top mode instead of erroring past it");

    assert_eq!(report.faults.len(), 2, "both corruptions fired");
    assert_eq!(report.final_mode, table.modes(), "the driver pins at the top mode");
    for s in &report.switches {
        assert!(s.to <= table.modes(), "no switch may step past the table");
        assert!(s.from <= table.modes());
    }
    let escalations = report.switches.iter().filter(|s| s.to > s.from).count();
    assert_eq!(escalations, 1, "the top mode absorbs the second campaign without a switch");
    let last_switch = report.switches.last().expect("one escalation").at;
    let convicted_at_top = report
        .violations
        .iter()
        .filter(|v| v.at.get() > last_switch + WatchdogPolicy::default().cooldown)
        .count();
    assert!(convicted_at_top >= 1, "convictions keep landing while pinned at the top mode");
}

#[test]
fn empty_lut_is_a_typed_error_not_a_panic() {
    // `ModeSwitchLut::new` rejects empty tables, but deserialization
    // bypasses it. Before the fix an empty table reached
    // `counts.len() - 1` and panicked on the underflow; now the driver
    // returns `Error::InvalidConfig`. The offline stub `serde_json` cannot
    // do typed deserialization — skip there (runs in CI with the real
    // dependency).
    let Ok(empty) = serde_json::from_str::<ModeSwitchLut>(r#"{"rows":[]}"#) else {
        eprintln!(
            "skipping empty_lut_is_a_typed_error_not_a_panic: stub serde_json cannot do \
             typed deserialization (passes in CI with the real crates-io dependency)"
        );
        return;
    };
    assert_eq!(empty.cores(), 0, "the deserialized table bypassed validation");
    let err = run_with_watchdog(
        two_timed(),
        &shared_store_workload(4, 50),
        &empty,
        FaultPlan::empty(),
        &WatchdogPolicy::default(),
    );
    match err {
        Err(cohort_types::Error::InvalidConfig(msg)) => {
            assert!(msg.contains("LUT"), "the error names the LUT: {msg}");
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

#[test]
fn lut_core_mismatch_is_rejected() {
    let narrow = ModeSwitchLut::new(vec![vec![timed(50)]]).expect("valid 1-core LUT");
    let err = run_with_watchdog(
        two_timed(),
        &shared_store_workload(4, 50),
        &narrow,
        FaultPlan::empty(),
        &WatchdogPolicy::default(),
    );
    assert!(err.is_err());
}
