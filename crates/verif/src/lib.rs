//! Small-scope exhaustive verification of the CoHoRT coherence protocol.
//!
//! Three cooperating layers (the paper's §V invariants, checked rather
//! than assumed):
//!
//! 1. **Model checker** ([`checker::explore`]): a Murphi-style
//!    breadth-first exploration of an abstracted protocol state machine
//!    ([`model::ModelState`]) — up to 3 cores × 2 lines, each core MSI /
//!    θ = 0 / θ > 0, nondeterministic load/store/evict/timer-expiry
//!    events — checking **SWMR**, **data-value** (symbolic version
//!    counters), **timer protection** (no dispossession inside an open
//!    window) and **liveness** (no stuck waiter queue), and extracting a
//!    minimal event-sequence counterexample via BFS parent pointers.
//! 2. **Online probe** ([`cohort_sim::InvariantProbe`]): the same
//!    invariants checked against the event stream of any concrete
//!    simulation, zero-cost when unused.
//! 3. **Replay harness** ([`replay::replay`]): converts a model-checker
//!    counterexample into a `cohort-trace` workload and re-runs it through
//!    the real engine with the probe attached — mutated-model traces must
//!    come back clean, confirming the real engine does not share the
//!    injected bug.
//!
//! The mutation smoke test ([`model::Mutation`]) flips exactly one
//! transition rule at a time and asserts the checker catches each flip
//! with the matching invariant class.
//!
//! # Examples
//!
//! ```
//! use cohort_verif::{explore, ModelConfig, ThetaClass};
//!
//! let config = ModelConfig::new(&[ThetaClass::Timed, ThetaClass::Msi], 1);
//! let report = explore(&config);
//! assert!(report.is_clean());
//! assert!(report.states > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod model;
pub mod replay;

pub use checker::{explore, explore_bounded, CheckReport, Counterexample, DEFAULT_MAX_STATES};
pub use model::{
    ModelConfig, ModelEvent, ModelState, ModelViolation, Mutation, ThetaClass, ViolationKind,
    MAX_CORES, MAX_LINES,
};
pub use replay::{
    replay, replay_workload, workload_from_trace, workload_from_violation, ReplayOutcome,
    REPLAY_THETA,
};

/// All θ-class assignments (mixes) for `cores` cores, in lexicographic
/// order — `3^cores` entries. The exhaustive sweeps run every one.
#[must_use]
pub fn theta_mixes(cores: usize) -> Vec<Vec<ThetaClass>> {
    assert!((1..=MAX_CORES).contains(&cores), "mixes support 1..={MAX_CORES} cores");
    let mut mixes = vec![Vec::new()];
    for _ in 0..cores {
        mixes = mixes
            .into_iter()
            .flat_map(|mix| {
                ThetaClass::ALL.iter().map(move |&t| {
                    let mut next = mix.clone();
                    next.push(t);
                    next
                })
            })
            .collect();
    }
    mixes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_mixes_enumerate_all_assignments() {
        assert_eq!(theta_mixes(1).len(), 3);
        assert_eq!(theta_mixes(2).len(), 9);
        assert_eq!(theta_mixes(3).len(), 27);
        let mixes = theta_mixes(2);
        assert_eq!(mixes[0], vec![ThetaClass::Msi, ThetaClass::Msi]);
        assert_eq!(mixes[8], vec![ThetaClass::Timed, ThetaClass::Timed]);
    }
}
