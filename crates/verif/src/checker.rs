//! Murphi-style breadth-first exhaustive exploration of the abstract
//! protocol state machine, with hashed state deduplication and minimal
//! counterexample extraction via BFS parent pointers.

use std::collections::HashMap; // lint:allow(det-unordered) BFS dedup set keyed by state hash; membership tests only, the frontier queue fixes exploration order

use crate::model::{ModelConfig, ModelEvent, ModelState, ModelViolation};

/// Hard cap on explored states, a safety valve against mis-sized configs.
pub const DEFAULT_MAX_STATES: usize = 5_000_000;

/// A minimal event sequence leading from the initial state to a violation.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The invariant that was broken at the end of the trace.
    pub violation: ModelViolation,
    /// The events, in order, that reach the violating state. For
    /// transition-level violations (timer protection, data-value) the last
    /// event is the offending transition itself.
    pub trace: Vec<ModelEvent>,
}

impl core::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "violation: {}", self.violation)?;
        writeln!(f, "counterexample ({} events):", self.trace.len())?;
        for (i, e) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>2}. {e}", i + 1)?;
        }
        Ok(())
    }
}

/// Result of one exhaustive exploration.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Number of distinct states discovered (including the initial state).
    pub states: usize,
    /// Number of transitions taken (edges in the reachability graph).
    pub edges: usize,
    /// Maximum BFS depth reached (longest shortest-path from the initial
    /// state).
    pub depth: usize,
    /// The first violation found, with a minimal trace — `None` when the
    /// whole reachable space satisfies every invariant.
    pub counterexample: Option<Counterexample>,
    /// True when the exploration hit the state cap instead of exhausting
    /// the reachable space.
    pub truncated: bool,
}

impl CheckReport {
    /// Whether the exploration proved all invariants over the (fully
    /// explored) reachable space.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.counterexample.is_none() && !self.truncated
    }
}

/// Exhaustively explores `config`'s reachable state space.
///
/// Breadth-first order guarantees the returned counterexample (if any) has
/// the fewest possible events. State dedup hashes the full [`ModelState`];
/// parent indices reconstruct the trace without storing per-state paths.
#[must_use]
pub fn explore(config: &ModelConfig) -> CheckReport {
    explore_bounded(config, DEFAULT_MAX_STATES)
}

/// [`explore`] with an explicit state cap.
#[must_use]
pub fn explore_bounded(config: &ModelConfig, max_states: usize) -> CheckReport {
    let initial = ModelState::initial(config);

    // Arena of discovered states; `parent[i]` records how state `i` was
    // first reached (predecessor index + event), `depth[i]` its BFS level.
    let mut arena: Vec<ModelState> = vec![initial];
    let mut parent: Vec<Option<(usize, ModelEvent)>> = vec![None];
    let mut depth: Vec<usize> = vec![0];
    let mut seen: HashMap<ModelState, usize> = HashMap::new();
    seen.insert(initial, 0);

    let mut edges = 0usize;
    let mut max_depth = 0usize;
    let mut truncated = false;

    let trace_to = |parent: &[Option<(usize, ModelEvent)>], mut idx: usize| {
        let mut trace = Vec::new();
        while let Some((prev, event)) = parent[idx] {
            trace.push(event);
            idx = prev;
        }
        trace.reverse();
        trace
    };

    // `arena` doubles as the BFS queue: states are appended in discovery
    // order and `cursor` walks them front to back.
    let mut cursor = 0usize;
    while cursor < arena.len() {
        let state = arena[cursor];
        max_depth = max_depth.max(depth[cursor]);

        // State-level invariants (SWMR, copy currency) and liveness are
        // judged on the state itself when it is expanded.
        let violation = state.check_state(config).or_else(|| state.check_progress(config));
        if let Some(violation) = violation {
            return CheckReport {
                states: arena.len(),
                edges,
                depth: max_depth,
                counterexample: Some(Counterexample {
                    violation,
                    trace: trace_to(&parent, cursor),
                }),
                truncated,
            };
        }

        for event in state.enabled_events(config) {
            edges += 1;
            let next = match state.apply(config, event) {
                Ok(next) => next,
                Err(violation) => {
                    // Transition-level violation: the trace ends with the
                    // offending event itself.
                    let mut trace = trace_to(&parent, cursor);
                    trace.push(event);
                    return CheckReport {
                        states: arena.len(),
                        edges,
                        depth: max_depth,
                        counterexample: Some(Counterexample { violation, trace }),
                        truncated,
                    };
                }
            };
            if seen.contains_key(&next) {
                continue;
            }
            if arena.len() >= max_states {
                truncated = true;
                continue;
            }
            seen.insert(next, arena.len());
            arena.push(next);
            parent.push(Some((cursor, event)));
            depth.push(depth[cursor] + 1);
        }
        cursor += 1;
    }

    CheckReport { states: arena.len(), edges, depth: max_depth, counterexample: None, truncated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Mutation, ThetaClass, ViolationKind};

    #[test]
    fn single_msi_core_space_is_tiny_and_clean() {
        let config = ModelConfig::new(&[ThetaClass::Msi], 1).with_ops(2);
        let report = explore(&config);
        assert!(report.is_clean(), "{:?}", report.counterexample);
        assert!(report.states > 1);
        assert!(report.states < 100, "1 core × 2 ops must stay tiny, got {}", report.states);
        assert!(report.edges >= report.states - 1);
    }

    #[test]
    fn heterogeneous_pair_is_clean() {
        let config = ModelConfig::new(&[ThetaClass::Timed, ThetaClass::Msi], 1);
        let report = explore(&config);
        assert!(report.is_clean(), "{:?}", report.counterexample);
    }

    #[test]
    fn state_cap_reports_truncation() {
        let config = ModelConfig::new(&[ThetaClass::Timed, ThetaClass::Msi], 1);
        let report = explore_bounded(&config, 10);
        assert!(report.truncated);
        assert!(!report.is_clean());
        assert_eq!(report.states, 10);
    }

    #[test]
    fn every_mutation_yields_its_expected_counterexample() {
        for mutation in Mutation::ALL {
            let config =
                ModelConfig::new(&[ThetaClass::Timed, ThetaClass::Msi], 1).with_mutation(mutation);
            let report = explore(&config);
            let cx = report
                .counterexample
                .unwrap_or_else(|| panic!("mutation {mutation} must be caught"));
            assert_eq!(
                Some(cx.violation.kind),
                mutation.expected_violation(),
                "mutation {mutation} tripped the wrong invariant: {}",
                cx.violation
            );
            assert!(!cx.trace.is_empty());
        }
    }

    #[test]
    fn counterexamples_are_minimal_for_the_timer_mutation() {
        // Shortest possible timer violation: store-miss, serve, competing
        // store-miss, premature serve — four events.
        let config = ModelConfig::new(&[ThetaClass::Timed, ThetaClass::Msi], 1)
            .with_mutation(Mutation::IgnoreTimerProtection);
        let cx = explore(&config).counterexample.expect("must find a violation");
        assert_eq!(cx.violation.kind, ViolationKind::TimerProtection);
        assert!(
            cx.trace.len() <= 4,
            "BFS must find a ≤4-event trace, got {} events:\n{cx}",
            cx.trace.len()
        );
    }

    #[test]
    fn all_msi_mix_never_blocks_on_timers() {
        let config =
            ModelConfig::new(&[ThetaClass::Msi, ThetaClass::Msi, ThetaClass::Msi], 1).with_ops(2);
        let report = explore(&config);
        assert!(report.is_clean(), "{:?}", report.counterexample);
    }
}
