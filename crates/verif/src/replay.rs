//! Counterexample replay: converts an abstract model-checker event trace
//! into a concrete [`cohort_trace::Workload`] and re-runs it through the
//! real cycle-accurate engine with the online [`InvariantProbe`] attached
//! and the engine's deep coherence validator sampled along the way.
//!
//! The abstraction gap means the replay is an *approximation* of the
//! abstract schedule, not a bit-exact reproduction: the model has no
//! clock, so event ordering is re-imposed by spacing each core's accesses
//! with compute gaps proportional to the event's global position in the
//! trace, and abstract `Evict` events become loads of a conflicting line
//! that maps to the same set of the direct-mapped L1. `TimerExpire` and
//! `ServeHead` need no concrete counterpart — the engine's own countdown
//! and bus do those.
//!
//! Replaying a *mutated* counterexample through the *faithful* engine must
//! come back clean: that is the point — the engine does not contain the
//! bug the mutation injected, and the probe + validator confirm it.

use cohort_sim::{
    InvariantProbe, InvariantViolation, SimBuilder, SimConfig, SimStats, WcmlViolation,
};
use cohort_trace::{Trace, TraceOp, Workload};
use cohort_types::{Cycles, Result, TimerValue};

use crate::model::{ModelConfig, ModelEvent, ThetaClass};

/// Representative θ used for [`ThetaClass::Timed`] cores at replay time.
pub const REPLAY_THETA: u64 = 4;

/// Cycle spacing between consecutive abstract events in the replayed
/// schedule. Larger than the worst-case single-transfer latency so the
/// concrete interleaving tracks the abstract order.
const EVENT_STRIDE: u64 = 200;

/// Number of sets of the paper's 16 KiB direct-mapped L1: a load of
/// `line + L1_SETS` conflicts with `line` and evicts it.
const L1_SETS: u64 = 256;

/// Outcome of replaying one abstract trace through the real engine.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The synthesised concrete workload (a valid `cohort-trace` input).
    pub workload: Workload,
    /// Engine statistics of the replay run.
    pub stats: SimStats,
    /// Violations the online probe observed (empty for the faithful
    /// engine).
    pub probe_violations: Vec<InvariantViolation>,
    /// Result of the engine's own deep coherence scan, sampled during and
    /// after the run.
    pub engine_state: core::result::Result<(), String>,
    /// Number of concrete memory accesses the replay executed.
    pub accesses: u64,
}

impl ReplayOutcome {
    /// Whether the faithful engine survived the counterexample schedule
    /// with no probe violations and a clean deep-state scan.
    #[must_use]
    pub fn engine_is_clean(&self) -> bool {
        self.probe_violations.is_empty() && self.engine_state.is_ok()
    }
}

/// Maps an abstract line index to a concrete [`cohort_types::LineAddr`]
/// raw value (offset by one so line 0 is not the all-zeros address).
#[must_use]
pub const fn concrete_line(line: u8) -> u64 {
    line as u64 + 1
}

/// Maps an abstract theta class to a concrete timer register value.
///
/// # Panics
///
/// Never panics: [`REPLAY_THETA`] is within the 16-bit timer range.
#[must_use]
pub fn concrete_timer(theta: ThetaClass) -> TimerValue {
    match theta {
        ThetaClass::Msi => TimerValue::Msi,
        ThetaClass::Zero => TimerValue::timed(0).expect("0 is a valid theta"),
        ThetaClass::Timed => TimerValue::timed(REPLAY_THETA).expect("REPLAY_THETA is in range"),
    }
}

/// Converts an abstract event trace into per-core concrete traces.
///
/// Each core's ops are spaced so that op `k` of the global trace targets
/// issue time `k × EVENT_STRIDE`, approximating the abstract interleaving
/// on the real (clocked, arbitrated) bus.
#[must_use]
pub fn workload_from_trace(config: &ModelConfig, trace: &[ModelEvent]) -> Workload {
    let cores = config.cores();
    let mut ops: Vec<Vec<TraceOp>> = vec![Vec::new(); cores];
    // Global target issue cycle of each core's previous access; gaps are
    // issued relative to the previous access's *completion*, so spacing by
    // target-delta keeps ordering approximately right while never going
    // negative.
    let mut last_target: Vec<u64> = vec![0; cores];

    for (step, event) in trace.iter().enumerate() {
        let target = (step as u64 + 1) * EVENT_STRIDE;
        let (core, op) = match *event {
            ModelEvent::Load { core, line } => (core, TraceOp::load(concrete_line(line))),
            ModelEvent::Store { core, line } => (core, TraceOp::store(concrete_line(line))),
            // An eviction is forced by touching the conflicting line of the
            // same (direct-mapped) set.
            ModelEvent::Evict { core, line } => {
                (core, TraceOp::load(concrete_line(line) + L1_SETS))
            }
            // The engine's own countdown and bus provide these.
            ModelEvent::TimerExpire { .. } | ModelEvent::ServeHead { .. } => continue,
        };
        let cu = usize::from(core);
        let gap = target.saturating_sub(last_target[cu]);
        ops[cu].push(op.after(gap));
        last_target[cu] = target;
    }

    let traces = ops.into_iter().map(Trace::from_ops).collect();
    Workload::new("verif-replay", traces).expect("at least one core")
}

/// Builds the concrete engine configuration matching `config`.
///
/// # Errors
///
/// Propagates configuration validation errors from the engine.
pub fn sim_config(config: &ModelConfig) -> Result<SimConfig> {
    SimConfig::builder(config.cores())
        .timers(config.thetas.iter().map(|&t| concrete_timer(t)).collect())
        .build()
}

/// Extracts the replayable prefix of `workload` that leads up to a runtime
/// watchdog conviction.
///
/// The watchdog ([`cohort_sim::WcmlGuard`]) detects a violation at an
/// absolute engine cycle; every access that can have participated in the
/// conviction was *issued* no later than that instant. A trace op's
/// nominal issue time — the sum of the compute gaps before it — is a lower
/// bound on its actual issue cycle, so keeping each core's ops with
/// nominal time ≤ `violation.at` retains the violating request itself and
/// everything that raced with it, while dropping the unrelated tail. The
/// result is a self-contained `cohort-trace` workload that can be re-run
/// through [`replay_workload`] (with or without the original fault plan)
/// to reproduce or clear the conviction.
#[must_use]
pub fn workload_from_violation(workload: &Workload, violation: &WcmlViolation) -> Workload {
    let horizon = violation.at.get();
    let traces = workload
        .traces()
        .iter()
        .map(|trace| {
            let mut nominal = 0u64;
            let mut kept = Vec::new();
            for op in trace.ops() {
                nominal = nominal.saturating_add(op.gap.get());
                if nominal > horizon {
                    break;
                }
                kept.push(*op);
            }
            Trace::from_ops(kept)
        })
        .collect();
    Workload::new("wcml-violation-replay", traces).expect("at least one core")
}

/// Replays an already-concrete workload through the real engine with the
/// [`InvariantProbe`] attached — the second half of [`replay`], exposed so
/// watchdog-exported workloads ([`workload_from_violation`]) go through
/// the exact same harness as model-checker counterexamples.
///
/// # Errors
///
/// Returns an error if the configuration is rejected or the engine fails
/// mid-run (never for invariant violations — those are reported in the
/// [`ReplayOutcome`]).
pub fn replay_workload(sim_cfg: SimConfig, workload: &Workload) -> Result<ReplayOutcome> {
    let mut sim = SimBuilder::new(sim_cfg, workload).probe(InvariantProbe::new()).build()?;

    let mut engine_state: core::result::Result<(), String> = Ok(());
    while !sim.is_finished() {
        let deadline = Cycles::new(sim.now().get() + EVENT_STRIDE);
        sim.run_until(deadline)?;
        if engine_state.is_ok() {
            engine_state = sim.validate_coherence();
        }
    }
    let stats = sim.stats().clone();
    if engine_state.is_ok() {
        engine_state = sim.validate_coherence();
    }
    let probe = sim.into_probe();
    let accesses = stats.cores.iter().map(cohort_sim::CoreStats::accesses).sum();

    Ok(ReplayOutcome {
        workload: workload.clone(),
        stats,
        probe_violations: probe.into_violations(),
        engine_state,
        accesses,
    })
}

/// Replays `trace` through the real engine with the [`InvariantProbe`]
/// attached, sampling the engine's deep coherence validator every
/// [`EVENT_STRIDE`] cycles.
///
/// # Errors
///
/// Returns an error if the configuration is rejected or the engine fails
/// mid-run (never for invariant violations — those are reported in the
/// [`ReplayOutcome`]).
pub fn replay(config: &ModelConfig, trace: &[ModelEvent]) -> Result<ReplayOutcome> {
    let workload = workload_from_trace(config, trace);
    replay_workload(sim_config(config)?, &workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::explore;
    use crate::model::Mutation;

    fn timed_msi() -> ModelConfig {
        ModelConfig::new(&[ThetaClass::Timed, ThetaClass::Msi], 1)
    }

    #[test]
    fn trace_conversion_drops_internal_events_and_orders_ops() {
        let config = timed_msi();
        let trace = [
            ModelEvent::Store { core: 0, line: 0 },
            ModelEvent::ServeHead { line: 0 },
            ModelEvent::Store { core: 1, line: 0 },
            ModelEvent::TimerExpire { core: 0, line: 0 },
            ModelEvent::ServeHead { line: 0 },
        ];
        let workload = workload_from_trace(&config, &trace);
        assert_eq!(workload.cores(), 2);
        let t0 = &workload.traces()[0].ops();
        let t1 = &workload.traces()[1].ops();
        assert_eq!(t0.len(), 1, "internal events produce no ops");
        assert_eq!(t1.len(), 1);
        assert!(t0[0].kind.is_store());
        assert_eq!(t0[0].line.raw(), concrete_line(0));
        // c1's store is event 3 of the trace → spaced after c0's.
        assert!(t1[0].gap > t0[0].gap);
    }

    #[test]
    fn evict_events_become_conflicting_line_loads() {
        let config = timed_msi();
        let trace = [ModelEvent::Evict { core: 0, line: 0 }];
        let workload = workload_from_trace(&config, &trace);
        let op = workload.traces()[0].ops()[0];
        assert!(op.kind.is_load());
        assert_eq!(op.line.raw(), concrete_line(0) + L1_SETS);
        assert_eq!(
            op.line.raw() % L1_SETS,
            concrete_line(0) % L1_SETS,
            "the victim load must map to the same L1 set"
        );
    }

    #[test]
    fn mutated_counterexample_replays_clean_through_the_faithful_engine() {
        let mutated = timed_msi().with_mutation(Mutation::IgnoreTimerProtection);
        let cx = explore(&mutated).counterexample.expect("the mutation must be caught");

        // Replay under the faithful configuration: the real engine does not
        // have the injected bug, so probe and deep validator stay clean.
        let outcome = replay(&timed_msi(), &cx.trace).expect("replay must run");
        assert!(outcome.accesses > 0, "the counterexample must exercise the engine");
        assert!(
            outcome.engine_is_clean(),
            "probe: {:?}, state: {:?}",
            outcome.probe_violations,
            outcome.engine_state
        );
    }

    #[test]
    fn watchdog_violation_exports_a_replayable_workload() {
        use cohort_sim::{FaultKind, FaultPlan, FaultSpec, SimProbe, WcmlGuard};

        // A corrupted θ register starves core 0 past its Eq. 1 bound; the
        // runtime watchdog convicts the latency violation online.
        let theta = TimerValue::timed(50).expect("θ fits");
        let config = || SimConfig::builder(2).timers(vec![theta; 2]).build().expect("valid config");
        // Long enough that the nominal span (gaps only) extends well past
        // the ~20 000-cycle detection instant, so a tail exists to drop.
        let ops = |gap| Trace::from_ops(vec![TraceOp::store(1).after(gap); 400]);
        let workload = Workload::new("chaos", vec![ops(150), ops(150)]).expect("two traces");
        let plan = FaultPlan::new(vec![FaultSpec {
            kind: FaultKind::TimerCorruption { value: TimerValue::timed(20_000).expect("θ fits") },
            core: 1,
            at: Cycles::new(10),
        }]);
        let mut sim = SimBuilder::new(config(), &workload)
            .probe(WcmlGuard::new())
            .faults(plan)
            .build()
            .expect("valid faulted sim");
        sim.run().expect("faulted run completes");
        let stats = sim.stats().clone();
        sim.probe_mut().on_finish(&stats);
        let violation = sim.probe().violations().first().expect("the fault convicts").clone();
        assert!(violation.latency > violation.bound);

        // Export: the conviction becomes a self-contained cohort-trace
        // workload — the violating request survives the prefix cut...
        let exported = workload_from_violation(&workload, &violation);
        assert_eq!(exported.cores(), 2);
        assert!(exported.total_accesses() > 0, "the window must keep the racing ops");
        assert!(
            exported.total_accesses() < workload.total_accesses(),
            "the unrelated tail is dropped"
        );
        let line = violation.line.expect("latency convictions carry the line");
        assert!(
            exported.traces().iter().any(|t| t.ops().iter().any(|op| op.line == line)),
            "the violating line stays exercised"
        );

        // ...and replays through the faithful (unfaulted) engine via the
        // same harness as model-checker counterexamples, coming back clean.
        let outcome = replay_workload(config(), &exported).expect("replay must run");
        assert!(outcome.accesses > 0);
        assert!(
            outcome.engine_is_clean(),
            "probe: {:?}, state: {:?}",
            outcome.probe_violations,
            outcome.engine_state
        );
    }

    #[test]
    fn all_mutations_produce_replayable_traces() {
        for mutation in Mutation::ALL {
            let cx = explore(&timed_msi().with_mutation(mutation))
                .counterexample
                .unwrap_or_else(|| panic!("{mutation} must be caught"));
            let outcome = replay(&timed_msi(), &cx.trace).expect("replay must run");
            assert!(
                outcome.engine_is_clean(),
                "{mutation}: probe {:?}, state {:?}",
                outcome.probe_violations,
                outcome.engine_state
            );
        }
    }
}
