//! Abstracted CoHoRT protocol state machine for small-scope exhaustive
//! exploration.
//!
//! The model deliberately elides everything the invariants do not depend
//! on — exact cycle counts, bus arbitration order, MSHR occupancy, the
//! finite-LLC replacement machinery — and keeps only the protocol-level
//! skeleton: per-core line copies, the per-line waiter queue, and a
//! *protection* bit that abstracts the timer window of a θ ≥ 0 holder.
//!
//! Time abstraction: instead of a clock, each copy filled at a
//! [`ThetaClass::Timed`] core is born *protected*. A nondeterministic
//! [`ModelEvent::TimerExpire`] transition (enabled only while a
//! dispossessing request is actually queued, mirroring the engine's
//! pending-invalidation countdown) clears the bit. Serving a request that
//! dispossesses a still-protected holder is exactly the timer-protection
//! violation of the paper; the unmutated model can never do it because
//! [`ModelEvent::ServeHead`] is gated on every dispossessed holder being
//! unprotected.
//!
//! Data values are symbolic version counters: every committed store bumps
//! the line's `current_version`, and every fill records which version the
//! requester observed. A fill or hit that observes anything other than
//! `current_version` is a data-value violation.

use core::fmt;

/// Maximum number of cores the fixed-size model state supports.
pub const MAX_CORES: usize = 3;
/// Maximum number of distinct cache lines the model supports.
pub const MAX_LINES: usize = 2;

/// Abstract per-core timer-register class.
///
/// The exhaustive checker only cares about three behaviours: plain MSI
/// (θ = −1, never protected), θ = 0 (timed mode but the window closes
/// immediately), and θ > 0 (a real protection window). Every concrete
/// θ > 0 induces the same reachable protocol graph under the protection-bit
/// abstraction, so a single representative class suffices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThetaClass {
    /// θ = −1: conventional MSI snooping, dispossession is immediate.
    Msi,
    /// θ = 0: time-based protocol whose protection window is empty.
    Zero,
    /// θ = k > 0: time-based protocol with a non-empty protection window.
    Timed,
}

impl ThetaClass {
    /// All classes, in display order.
    pub const ALL: [ThetaClass; 3] = [ThetaClass::Msi, ThetaClass::Zero, ThetaClass::Timed];

    /// Whether a fill at a core of this class starts a protection window.
    #[must_use]
    pub const fn protects(self) -> bool {
        matches!(self, ThetaClass::Timed)
    }
}

impl fmt::Display for ThetaClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThetaClass::Msi => write!(f, "msi"),
            ThetaClass::Zero => write!(f, "θ=0"),
            ThetaClass::Timed => write!(f, "θ=k"),
        }
    }
}

/// A deliberate single-rule protocol mutation, used by the mutation smoke
/// test to prove the checker actually detects each class of violation.
///
/// `Mutation::None` is the faithful protocol; every other variant flips
/// exactly one transition rule and must be caught by the corresponding
/// invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mutation {
    /// Faithful protocol: no rule is altered.
    #[default]
    None,
    /// `ServeHead` no longer waits for dispossessed holders' timers —
    /// caught by the **timer-protection** invariant.
    IgnoreTimerProtection,
    /// Serving a `GetM` leaves Shared copies valid — caught by **SWMR**
    /// (and, one store later, by **data-value**).
    SkipInvalidation,
    /// Evicting a Modified copy skips the writeback — caught by
    /// **data-value** when the LLC later supplies the stale line.
    SkipEvictWriteback,
    /// The holder-side countdown never fires — caught by the **liveness**
    /// check (a dispossessing waiter is stuck behind a protection window
    /// that can no longer close).
    DropTimerExpiry,
}

impl Mutation {
    /// Every non-trivial mutation, one per invariant class.
    pub const ALL: [Mutation; 4] = [
        Mutation::IgnoreTimerProtection,
        Mutation::SkipInvalidation,
        Mutation::SkipEvictWriteback,
        Mutation::DropTimerExpiry,
    ];

    /// Stable kebab-case identifier (CLI surface).
    #[must_use]
    pub const fn slug(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::IgnoreTimerProtection => "ignore-timer-protection",
            Mutation::SkipInvalidation => "skip-invalidation",
            Mutation::SkipEvictWriteback => "skip-evict-writeback",
            Mutation::DropTimerExpiry => "drop-timer-expiry",
        }
    }

    /// Parses a [`slug`](Self::slug) back into a mutation.
    #[must_use]
    pub fn from_slug(slug: &str) -> Option<Self> {
        [Mutation::None].iter().chain(Mutation::ALL.iter()).copied().find(|m| m.slug() == slug)
    }

    /// The invariant class this mutation is designed to trip.
    #[must_use]
    pub const fn expected_violation(self) -> Option<ViolationKind> {
        match self {
            Mutation::None => None,
            Mutation::IgnoreTimerProtection => Some(ViolationKind::TimerProtection),
            Mutation::SkipInvalidation => Some(ViolationKind::Swmr),
            Mutation::SkipEvictWriteback => Some(ViolationKind::DataValue),
            Mutation::DropTimerExpiry => Some(ViolationKind::Liveness),
        }
    }
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// The invariant classes the checker enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// Single-writer / multiple-reader: at most one Modified copy, and
    /// never a Modified copy coexisting with Shared copies.
    Swmr,
    /// A fill or hit observed a version other than the line's most
    /// recently committed one.
    DataValue,
    /// A holder was dispossessed while its protection window was open.
    TimerProtection,
    /// A waiter queue can make no further progress (deadlock).
    Liveness,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::Swmr => write!(f, "SWMR"),
            ViolationKind::DataValue => write!(f, "data-value"),
            ViolationKind::TimerProtection => write!(f, "timer-protection"),
            ViolationKind::Liveness => write!(f, "liveness"),
        }
    }
}

/// A detected invariant violation with a human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelViolation {
    /// Which invariant class was broken.
    pub kind: ViolationKind,
    /// What happened, in terms of cores, lines, and versions.
    pub message: String,
}

impl fmt::Display for ModelViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.message)
    }
}

/// Configuration of one exhaustive exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelConfig {
    /// Per-core timer class; length gives the core count (≤ [`MAX_CORES`]).
    pub thetas: Vec<ThetaClass>,
    /// Number of distinct cache lines (1..=[`MAX_LINES`]).
    pub lines: usize,
    /// How many loads/stores each core may perform (bounds the state space).
    pub ops_per_core: u8,
    /// The transition-rule mutation to explore under.
    pub mutation: Mutation,
}

impl ModelConfig {
    /// A faithful-protocol configuration over `thetas` with `lines` lines
    /// and a 3-op budget per core.
    ///
    /// # Panics
    ///
    /// Panics if `thetas` is empty or exceeds [`MAX_CORES`], or `lines`
    /// is 0 or exceeds [`MAX_LINES`].
    #[must_use]
    pub fn new(thetas: &[ThetaClass], lines: usize) -> Self {
        assert!(
            !thetas.is_empty() && thetas.len() <= MAX_CORES,
            "the model supports 1..={MAX_CORES} cores"
        );
        assert!((1..=MAX_LINES).contains(&lines), "the model supports 1..={MAX_LINES} lines");
        ModelConfig { thetas: thetas.to_vec(), lines, ops_per_core: 3, mutation: Mutation::None }
    }

    /// Returns a copy with a different per-core op budget.
    #[must_use]
    pub fn with_ops(mut self, ops_per_core: u8) -> Self {
        self.ops_per_core = ops_per_core;
        self
    }

    /// Returns a copy exploring under `mutation`.
    #[must_use]
    pub fn with_mutation(mut self, mutation: Mutation) -> Self {
        self.mutation = mutation;
        self
    }

    /// Number of modelled cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.thetas.len()
    }
}

/// MSI state of one core's copy of one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
enum CopyState {
    #[default]
    Invalid,
    Shared,
    Modified,
}

/// One core's view of one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
struct ModelCopy {
    state: CopyState,
    /// The symbolic version this copy observed at fill / last commit.
    version: u8,
    /// Whether the holder's protection window is still open.
    protected: bool,
}

impl ModelCopy {
    const fn valid(self) -> bool {
        !matches!(self.state, CopyState::Invalid)
    }
}

/// Coherence request kinds at the model level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelReq {
    /// Read for sharing.
    GetS,
    /// Read-for-ownership / upgrade.
    GetM,
}

impl fmt::Display for ModelReq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelReq::GetS => write!(f, "GetS"),
            ModelReq::GetM => write!(f, "GetM"),
        }
    }
}

/// One queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ModelWaiter {
    core: u8,
    kind: ModelReq,
}

/// Fixed-capacity FIFO of queued requests (each core has at most one
/// outstanding request, so `MAX_CORES` slots always suffice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
struct WaiterQueue {
    slots: [Option<ModelWaiter>; MAX_CORES],
    len: u8,
}

impl WaiterQueue {
    fn push_back(&mut self, w: ModelWaiter) {
        let idx = usize::from(self.len);
        assert!(idx < MAX_CORES, "waiter queue overflow");
        self.slots[idx] = Some(w);
        self.len += 1;
    }

    fn pop_front(&mut self) -> Option<ModelWaiter> {
        let head = self.slots[0]?;
        for i in 1..usize::from(self.len) {
            self.slots[i - 1] = self.slots[i];
        }
        self.slots[usize::from(self.len) - 1] = None;
        self.len -= 1;
        Some(head)
    }

    fn head(self) -> Option<ModelWaiter> {
        self.slots[0]
    }

    fn is_empty(self) -> bool {
        self.len == 0
    }

    fn iter(&self) -> impl Iterator<Item = ModelWaiter> + '_ {
        self.slots.iter().take(usize::from(self.len)).filter_map(|s| *s)
    }
}

/// One nondeterministic step of the abstract machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelEvent {
    /// Core `core` performs a load of `line` (hit, or enqueue a `GetS`).
    Load {
        /// Issuing core.
        core: u8,
        /// Target line.
        line: u8,
    },
    /// Core `core` performs a store to `line` (hit, or enqueue a `GetM`).
    Store {
        /// Issuing core.
        core: u8,
        /// Target line.
        line: u8,
    },
    /// Core `core` evicts its copy of `line` (capacity/conflict victim).
    Evict {
        /// Evicting core.
        core: u8,
        /// Victim line.
        line: u8,
    },
    /// The protection window of `core`'s copy of `line` closes.
    TimerExpire {
        /// Holder whose countdown fires.
        core: u8,
        /// Protected line.
        line: u8,
    },
    /// The bus serves the request at the head of `line`'s waiter queue.
    ServeHead {
        /// Line whose head request completes.
        line: u8,
    },
}

impl fmt::Display for ModelEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelEvent::Load { core, line } => write!(f, "c{core}: load  l{line}"),
            ModelEvent::Store { core, line } => write!(f, "c{core}: store l{line}"),
            ModelEvent::Evict { core, line } => write!(f, "c{core}: evict l{line}"),
            ModelEvent::TimerExpire { core, line } => {
                write!(f, "c{core}: timer expires for l{line}")
            }
            ModelEvent::ServeHead { line } => write!(f, "bus: serve head of l{line} queue"),
        }
    }
}

/// The full abstract system state. Plain `Copy` data with a derived `Hash`,
/// so the explorer can dedup states in a hash map without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelState {
    copies: [[ModelCopy; MAX_LINES]; MAX_CORES],
    /// The version the LLC/memory holds for each line.
    mem_version: [u8; MAX_LINES],
    /// The most recently committed version of each line.
    current_version: [u8; MAX_LINES],
    waiters: [WaiterQueue; MAX_LINES],
    /// The line each core has an outstanding request on, if any.
    pending: [Option<u8>; MAX_CORES],
    ops_left: [u8; MAX_CORES],
}

impl ModelState {
    /// The initial state: all copies invalid, memory current, queues empty.
    #[must_use]
    pub fn initial(config: &ModelConfig) -> Self {
        let mut ops_left = [0u8; MAX_CORES];
        for slot in ops_left.iter_mut().take(config.cores()) {
            *slot = config.ops_per_core;
        }
        ModelState {
            copies: [[ModelCopy::default(); MAX_LINES]; MAX_CORES],
            mem_version: [0; MAX_LINES],
            current_version: [0; MAX_LINES],
            waiters: [WaiterQueue::default(); MAX_LINES],
            pending: [None; MAX_CORES],
            ops_left,
        }
    }

    fn copy(&self, core: u8, line: u8) -> ModelCopy {
        self.copies[usize::from(core)][usize::from(line)]
    }

    fn copy_mut(&mut self, core: u8, line: u8) -> &mut ModelCopy {
        &mut self.copies[usize::from(core)][usize::from(line)]
    }

    /// The Modified owner of `line`, if any.
    fn owner(&self, config: &ModelConfig, line: u8) -> Option<u8> {
        (0..config.cores() as u8).find(|&c| matches!(self.copy(c, line).state, CopyState::Modified))
    }

    /// Whether serving `head` would take `holder`'s copy of `line` away
    /// (invalidate it, for `GetM`) or demote it (M→S, for `GetS`).
    fn dispossesses(&self, head: ModelWaiter, holder: u8, line: u8) -> bool {
        if head.core == holder {
            return false;
        }
        let copy = self.copy(holder, line);
        match head.kind {
            ModelReq::GetM => copy.valid(),
            ModelReq::GetS => matches!(copy.state, CopyState::Modified),
        }
    }

    /// Whether the holder's copy still confers hit rights: a queued
    /// dispossessing request from another core revokes them as soon as the
    /// holder is unprotected (the engine's *logical release*).
    fn hit_allowed(&self, core: u8, line: u8, for_store: bool) -> bool {
        let copy = self.copy(core, line);
        let held = if for_store { matches!(copy.state, CopyState::Modified) } else { copy.valid() };
        if !held {
            return false;
        }
        if copy.protected {
            return true;
        }
        // Unprotected: any queued request that would dispossess this copy
        // ends its hit window immediately.
        !self.waiters[usize::from(line)].iter().any(|w| self.dispossesses(w, core, line))
    }

    /// All events enabled in this state under `config` (including its
    /// mutation). The faithful protocol gates `ServeHead` on every
    /// dispossessed holder being unprotected.
    #[must_use]
    pub fn enabled_events(&self, config: &ModelConfig) -> Vec<ModelEvent> {
        let cores = config.cores() as u8;
        let lines = config.lines as u8;
        let mut events = Vec::new();
        for core in 0..cores {
            for line in 0..lines {
                let copy = self.copy(core, line);
                if self.ops_left[usize::from(core)] > 0 {
                    // A core with an outstanding request stalls (MSHR = 1).
                    if self.pending[usize::from(core)].is_none() {
                        events.push(ModelEvent::Load { core, line });
                        events.push(ModelEvent::Store { core, line });
                    }
                }
                if copy.valid() {
                    events.push(ModelEvent::Evict { core, line });
                }
                if copy.protected
                    && config.mutation != Mutation::DropTimerExpiry
                    && self.waiters[usize::from(line)]
                        .head()
                        .is_some_and(|h| self.dispossesses(h, core, line))
                {
                    // The countdown only runs while a dispossessing request
                    // is actually pending (the engine arms it on snoop).
                    events.push(ModelEvent::TimerExpire { core, line });
                }
            }
        }
        for line in 0..lines {
            if let Some(head) = self.waiters[usize::from(line)].head() {
                let all_released = (0..cores).all(|holder| {
                    !self.dispossesses(head, holder, line) || !self.copy(holder, line).protected
                });
                if all_released || config.mutation == Mutation::IgnoreTimerProtection {
                    events.push(ModelEvent::ServeHead { line });
                }
            }
        }
        events
    }

    /// Applies `event`, returning the successor state or the invariant
    /// violation the transition itself commits (timer protection and
    /// data-value are transition-level properties).
    ///
    /// # Errors
    ///
    /// Returns the [`ModelViolation`] committed by this transition.
    ///
    /// # Panics
    ///
    /// Panics if `event` is not enabled in this state (checker bug).
    pub fn apply(
        &self,
        config: &ModelConfig,
        event: ModelEvent,
    ) -> Result<ModelState, ModelViolation> {
        let mut next = *self;
        match event {
            ModelEvent::Load { core, line } => {
                next.ops_left[usize::from(core)] -= 1;
                if self.hit_allowed(core, line, false) {
                    let copy = self.copy(core, line);
                    if copy.version != self.current_version[usize::from(line)] {
                        return Err(ModelViolation {
                            kind: ViolationKind::DataValue,
                            message: format!(
                                "c{core} load hit on l{line} observes v{} but v{} was committed",
                                copy.version,
                                self.current_version[usize::from(line)]
                            ),
                        });
                    }
                } else {
                    next.enqueue(core, line, ModelReq::GetS);
                }
            }
            ModelEvent::Store { core, line } => {
                next.ops_left[usize::from(core)] -= 1;
                if self.hit_allowed(core, line, true) {
                    let lu = usize::from(line);
                    next.current_version[lu] = next.current_version[lu].wrapping_add(1);
                    let version = next.current_version[lu];
                    next.copy_mut(core, line).version = version;
                } else {
                    next.enqueue(core, line, ModelReq::GetM);
                }
            }
            ModelEvent::Evict { core, line } => {
                let copy = self.copy(core, line);
                if matches!(copy.state, CopyState::Modified)
                    && config.mutation != Mutation::SkipEvictWriteback
                {
                    next.mem_version[usize::from(line)] = copy.version;
                }
                *next.copy_mut(core, line) = ModelCopy::default();
            }
            ModelEvent::TimerExpire { core, line } => {
                next.copy_mut(core, line).protected = false;
            }
            ModelEvent::ServeHead { line } => {
                let head = next.waiters[usize::from(line)]
                    .pop_front()
                    .expect("ServeHead requires a queued request");
                next.serve(config, head, line)?;
            }
        }
        Ok(next)
    }

    fn enqueue(&mut self, core: u8, line: u8, kind: ModelReq) {
        debug_assert!(self.pending[usize::from(core)].is_none(), "MSHR=1: one request per core");
        self.waiters[usize::from(line)].push_back(ModelWaiter { core, kind });
        self.pending[usize::from(core)] = Some(line);
        // A holder that itself requests the line releases immediately: the
        // engine treats a holder with its own in-flight request as MSI.
        self.copy_mut(core, line).protected = false;
    }

    fn serve(
        &mut self,
        config: &ModelConfig,
        head: ModelWaiter,
        line: u8,
    ) -> Result<(), ModelViolation> {
        let cores = config.cores() as u8;
        let lu = usize::from(line);

        // Transition-level timer check, independent of how ServeHead got
        // enabled — this is what catches `IgnoreTimerProtection`.
        for holder in 0..cores {
            if self.dispossesses(head, holder, line) && self.copy(holder, line).protected {
                return Err(ModelViolation {
                    kind: ViolationKind::TimerProtection,
                    message: format!(
                        "serving {} from c{} dispossesses c{holder}'s copy of l{line} \
                         before its protection window closed",
                        head.kind, head.core
                    ),
                });
            }
        }

        let owner = self.owner(config, line).filter(|&o| o != head.core);
        let supplied = match owner {
            Some(o) => {
                let v = self.copy(o, line).version;
                match head.kind {
                    ModelReq::GetS => {
                        // Owner demotes M→S and folds the dirty line back.
                        self.copy_mut(o, line).state = CopyState::Shared;
                        self.mem_version[lu] = v;
                    }
                    ModelReq::GetM => {}
                }
                v
            }
            None => self.mem_version[lu],
        };

        if head.kind == ModelReq::GetM {
            for holder in 0..cores {
                if holder == head.core {
                    continue;
                }
                let copy = self.copy(holder, line);
                if !copy.valid() {
                    continue;
                }
                if config.mutation == Mutation::SkipInvalidation
                    && matches!(copy.state, CopyState::Shared)
                {
                    continue; // the mutated rule forgets Shared copies
                }
                *self.copy_mut(holder, line) = ModelCopy::default();
            }
        }

        if supplied != self.current_version[lu] {
            return Err(ModelViolation {
                kind: ViolationKind::DataValue,
                message: format!(
                    "{} fill for c{} on l{line} supplied v{supplied} but v{} was committed",
                    head.kind, head.core, self.current_version[lu]
                ),
            });
        }

        let protects = config.thetas[usize::from(head.core)].protects();
        let filled = match head.kind {
            ModelReq::GetS => {
                ModelCopy { state: CopyState::Shared, version: supplied, protected: protects }
            }
            ModelReq::GetM => {
                // The fill atomically commits the store that missed.
                self.current_version[lu] = self.current_version[lu].wrapping_add(1);
                ModelCopy {
                    state: CopyState::Modified,
                    version: self.current_version[lu],
                    protected: protects,
                }
            }
        };
        *self.copy_mut(head.core, line) = filled;
        self.pending[usize::from(head.core)] = None;
        Ok(())
    }

    /// State-level invariant check: SWMR and copy currency.
    #[must_use]
    pub fn check_state(&self, config: &ModelConfig) -> Option<ModelViolation> {
        let cores = config.cores() as u8;
        for line in 0..config.lines as u8 {
            let mut modified = Vec::new();
            let mut shared = Vec::new();
            for core in 0..cores {
                match self.copy(core, line).state {
                    CopyState::Modified => modified.push(core),
                    CopyState::Shared => shared.push(core),
                    CopyState::Invalid => {}
                }
            }
            if modified.len() > 1 {
                return Some(ModelViolation {
                    kind: ViolationKind::Swmr,
                    message: format!("cores {modified:?} all hold l{line} Modified"),
                });
            }
            if let (Some(&m), false) = (modified.first(), shared.is_empty()) {
                return Some(ModelViolation {
                    kind: ViolationKind::Swmr,
                    message: format!(
                        "c{m} holds l{line} Modified while cores {shared:?} still share it"
                    ),
                });
            }
            // Every surviving copy must be current: the protocol only lets a
            // writer commit after dispossessing all other holders.
            for core in 0..cores {
                let copy = self.copy(core, line);
                if copy.valid() && copy.version != self.current_version[usize::from(line)] {
                    return Some(ModelViolation {
                        kind: ViolationKind::DataValue,
                        message: format!(
                            "c{core}'s copy of l{line} is stale (v{} vs committed v{})",
                            copy.version,
                            self.current_version[usize::from(line)]
                        ),
                    });
                }
            }
        }
        None
    }

    /// Liveness check: every non-empty waiter queue must have a path
    /// forward — either its head is serveable now, or a timer expiry that
    /// unblocks it is still enabled.
    #[must_use]
    pub fn check_progress(&self, config: &ModelConfig) -> Option<ModelViolation> {
        let enabled = self.enabled_events(config);
        for line in 0..config.lines as u8 {
            if self.waiters[usize::from(line)].is_empty() {
                continue;
            }
            let can_progress = enabled.iter().any(|e| {
                matches!(e, ModelEvent::ServeHead { line: l } if *l == line)
                    || matches!(e, ModelEvent::TimerExpire { line: l, .. } if *l == line)
            });
            if !can_progress {
                let head = self.waiters[usize::from(line)].head().expect("non-empty queue");
                return Some(ModelViolation {
                    kind: ViolationKind::Liveness,
                    message: format!(
                        "c{}'s {} on l{line} is stuck: no serve or expiry can ever fire",
                        head.core, head.kind
                    ),
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_core(mutation: Mutation) -> ModelConfig {
        ModelConfig::new(&[ThetaClass::Timed, ThetaClass::Msi], 1).with_mutation(mutation)
    }

    #[test]
    fn initial_state_is_clean_and_quiescent() {
        let config = two_core(Mutation::None);
        let s = ModelState::initial(&config);
        assert!(s.check_state(&config).is_none());
        assert!(s.check_progress(&config).is_none());
        // Only loads and stores are enabled from cold.
        for e in s.enabled_events(&config) {
            assert!(matches!(e, ModelEvent::Load { .. } | ModelEvent::Store { .. }), "{e}");
        }
    }

    #[test]
    fn store_miss_enqueues_and_serve_fills_modified() {
        let config = two_core(Mutation::None);
        let s0 = ModelState::initial(&config);
        let s1 = s0.apply(&config, ModelEvent::Store { core: 0, line: 0 }).unwrap();
        assert_eq!(s1.pending[0], Some(0));
        let s2 = s1.apply(&config, ModelEvent::ServeHead { line: 0 }).unwrap();
        assert_eq!(s2.owner(&config, 0), Some(0));
        assert_eq!(s2.current_version[0], 1);
        assert!(s2.copy(0, 0).protected, "a Timed core's fill opens a protection window");
        assert!(s2.check_state(&config).is_none());
    }

    #[test]
    fn protected_holder_blocks_serve_until_expiry() {
        let config = two_core(Mutation::None);
        let mut s = ModelState::initial(&config);
        for e in [
            ModelEvent::Store { core: 0, line: 0 },
            ModelEvent::ServeHead { line: 0 },
            ModelEvent::Store { core: 1, line: 0 },
        ] {
            s = s.apply(&config, e).unwrap();
        }
        let enabled = s.enabled_events(&config);
        assert!(
            !enabled.contains(&ModelEvent::ServeHead { line: 0 }),
            "c1's GetM must wait for c0's window"
        );
        assert!(enabled.contains(&ModelEvent::TimerExpire { core: 0, line: 0 }));
        assert!(s.check_progress(&config).is_none(), "expiry keeps the queue live");

        s = s.apply(&config, ModelEvent::TimerExpire { core: 0, line: 0 }).unwrap();
        assert!(s.enabled_events(&config).contains(&ModelEvent::ServeHead { line: 0 }));
        let s = s.apply(&config, ModelEvent::ServeHead { line: 0 }).unwrap();
        assert!(!s.copy(0, 0).valid(), "GetM dispossessed the old owner");
        assert_eq!(s.owner(&config, 0), Some(1));
        assert!(s.check_state(&config).is_none());
    }

    #[test]
    fn msi_holder_is_never_protected() {
        let config = two_core(Mutation::None);
        let mut s = ModelState::initial(&config);
        for e in [
            ModelEvent::Store { core: 1, line: 0 }, // c1 is the MSI core
            ModelEvent::ServeHead { line: 0 },
            ModelEvent::Store { core: 0, line: 0 },
        ] {
            s = s.apply(&config, e).unwrap();
        }
        assert!(!s.copy(1, 0).protected);
        assert!(s.enabled_events(&config).contains(&ModelEvent::ServeHead { line: 0 }));
    }

    #[test]
    fn ignore_timer_protection_mutation_trips_the_transition_check() {
        let config = two_core(Mutation::IgnoreTimerProtection);
        let mut s = ModelState::initial(&config);
        for e in [
            ModelEvent::Store { core: 0, line: 0 },
            ModelEvent::ServeHead { line: 0 },
            ModelEvent::Store { core: 1, line: 0 },
        ] {
            s = s.apply(&config, e).unwrap();
        }
        assert!(
            s.enabled_events(&config).contains(&ModelEvent::ServeHead { line: 0 }),
            "the mutation must enable the premature serve"
        );
        let err = s.apply(&config, ModelEvent::ServeHead { line: 0 }).unwrap_err();
        assert_eq!(err.kind, ViolationKind::TimerProtection);
    }

    #[test]
    fn skip_invalidation_mutation_breaks_swmr() {
        let config = two_core(Mutation::SkipInvalidation);
        let mut s = ModelState::initial(&config);
        for e in [
            ModelEvent::Load { core: 1, line: 0 }, // MSI sharer, never protected
            ModelEvent::ServeHead { line: 0 },
            ModelEvent::Store { core: 0, line: 0 },
            ModelEvent::ServeHead { line: 0 },
        ] {
            s = s.apply(&config, e).unwrap();
        }
        let v = s.check_state(&config).expect("the stale sharer must be detected");
        assert_eq!(v.kind, ViolationKind::Swmr);
    }

    #[test]
    fn skip_evict_writeback_mutation_serves_stale_data() {
        let config = two_core(Mutation::SkipEvictWriteback);
        let mut s = ModelState::initial(&config);
        for e in [
            ModelEvent::Store { core: 1, line: 0 },
            ModelEvent::ServeHead { line: 0 },
            ModelEvent::Evict { core: 1, line: 0 }, // dirty eviction, writeback dropped
            ModelEvent::Load { core: 0, line: 0 },
        ] {
            s = s.apply(&config, e).unwrap();
        }
        let err = s.apply(&config, ModelEvent::ServeHead { line: 0 }).unwrap_err();
        assert_eq!(err.kind, ViolationKind::DataValue);
    }

    #[test]
    fn drop_timer_expiry_mutation_starves_the_queue() {
        let config = two_core(Mutation::DropTimerExpiry);
        let mut s = ModelState::initial(&config);
        for e in [
            ModelEvent::Store { core: 0, line: 0 },
            ModelEvent::ServeHead { line: 0 },
            ModelEvent::Store { core: 1, line: 0 },
        ] {
            s = s.apply(&config, e).unwrap();
        }
        let v = s.check_progress(&config).expect("the queue must be reported stuck");
        assert_eq!(v.kind, ViolationKind::Liveness);
    }

    #[test]
    fn mutation_slugs_round_trip() {
        for m in [Mutation::None].iter().chain(Mutation::ALL.iter()).copied() {
            assert_eq!(Mutation::from_slug(m.slug()), Some(m));
        }
        assert_eq!(Mutation::from_slug("bogus"), None);
    }
}
