//! Property-based tests of the trace model, codecs and generators.

use proptest::prelude::*;

use cohort_trace::{AccessKind, Trace, TraceOp, Workload};
use cohort_types::{Cycles, LineAddr};

#[allow(dead_code)] // used only inside proptest! (the offline stub expands to nothing)
fn op_strategy() -> impl Strategy<Value = TraceOp> {
    (any::<u64>(), any::<bool>(), 0u64..=u64::from(u32::MAX)).prop_map(|(line, store, gap)| {
        TraceOp::new(
            LineAddr::new(line),
            if store { AccessKind::Store } else { AccessKind::Load },
            Cycles::new(gap),
        )
    })
}

#[allow(dead_code)] // used only inside proptest! (the offline stub expands to nothing)
fn workload_strategy() -> impl Strategy<Value = Workload> {
    proptest::collection::vec(proptest::collection::vec(op_strategy(), 0..40), 1..5).prop_map(
        |traces| {
            Workload::new("prop", traces.into_iter().map(Trace::from_ops).collect())
                .expect("non-empty")
        },
    )
}

proptest! {
    /// Binary encode/decode is the identity on every encodable workload
    /// (gaps beyond the 32-bit on-disk field are rejected, not corrupted).
    #[test]
    fn binary_codec_round_trips(w in workload_strategy()) {
        let bytes = codec::to_binary(&w).expect("gaps fit the 32-bit field");
        prop_assert_eq!(codec::from_binary(&bytes).unwrap(), w);
    }

    /// JSON encode/decode is the identity on arbitrary workloads.
    #[test]
    fn json_codec_round_trips(w in workload_strategy()) {
        let json = codec::to_json(&w).unwrap();
        prop_assert_eq!(codec::from_json(&json).unwrap(), w);
    }

    /// Arbitrary byte soup never panics the binary decoder — it returns a
    /// codec error (or, rarely, a valid workload if the soup parses).
    #[test]
    fn binary_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = codec::from_binary(&bytes);
    }

    /// Kernel generation always produces exactly the requested accesses,
    /// deterministically, for any core count and seed.
    #[test]
    fn kernels_generate_exact_sizes(
        kernel_idx in 0usize..6,
        cores in 1usize..6,
        seed in any::<u64>(),
        total in 1u64..3_000,
    ) {
        let kernel = Kernel::ALL[kernel_idx];
        let spec = KernelSpec::new(kernel, cores).with_total_requests(total).with_seed(seed);
        let a = spec.generate();
        prop_assert_eq!(a.cores(), cores);
        prop_assert_eq!(a.total_accesses(), total, "remainder is distributed");
        prop_assert_eq!(&a, &spec.generate(), "determinism");
    }

    /// Truncation never grows a trace and preserves prefixes.
    #[test]
    fn truncation_takes_prefixes(w in workload_strategy(), keep in 0usize..50) {
        let t = w.truncated(keep);
        for (full, cut) in w.traces().iter().zip(t.traces()) {
            prop_assert!(cut.len() <= keep.min(full.len()) + 1);
            prop_assert_eq!(&full.ops()[..cut.len()], cut.ops());
        }
    }

    /// Trace stats are consistent: loads + stores = len, unique ≤ len.
    #[test]
    fn stats_are_consistent(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let trace = Trace::from_ops(ops);
        let stats = trace.stats();
        prop_assert_eq!(stats.accesses(), trace.len() as u64);
        prop_assert!(stats.unique_lines <= trace.len() as u64);
        prop_assert!(stats.store_fraction() >= 0.0 && stats.store_fraction() <= 1.0);
    }
}
