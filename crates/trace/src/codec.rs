//! Persistence for traces and workloads.
//!
//! Two formats are provided:
//!
//! - **JSON** (via serde): human-readable, used for experiment manifests and
//!   small scripted workloads checked into the repository;
//! - **binary**: a compact little-endian framing for full-scale kernel
//!   traces (an ocean trace at 2.5 M requests is ~32 MiB as JSON but
//!   ~13 bytes/op here), built on the [`bytes`] crate.
//!
//! # Examples
//!
//! ```
//! use cohort_trace::{codec, micro};
//!
//! let w = micro::ping_pong(2, 3);
//! let json = codec::to_json(&w)?;
//! assert_eq!(codec::from_json(&json)?, w);
//!
//! let bin = codec::to_binary(&w)?;
//! assert_eq!(codec::from_binary(&bin)?, w);
//! # Ok::<(), cohort_types::Error>(())
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use cohort_types::{Cycles, Error, LineAddr, Result};

use crate::{AccessKind, Trace, TraceOp, Workload};

/// Magic bytes identifying the binary trace format.
const MAGIC: &[u8; 4] = b"CHRT";
/// Current binary format version.
const VERSION: u16 = 1;

/// Serializes a workload to pretty-printed JSON.
///
/// The document is built as a [`serde_json::Value`] tree (rather than via
/// the derived `Serialize` impls) so the encoder only depends on the
/// value-level half of `serde_json` — the output matches the derive format
/// exactly: `{"name", "traces": [{"ops": [{"line", "kind", "gap"}]}]}`.
///
/// # Errors
///
/// Returns [`Error::Codec`] if serialization fails (practically impossible
/// for these plain-data types, but surfaced rather than panicking).
pub fn to_json(workload: &Workload) -> Result<String> {
    let mut root = serde_json::Map::new();
    root.insert("name".into(), serde_json::Value::from(workload.name()));
    let traces: Vec<serde_json::Value> = workload
        .traces()
        .iter()
        .map(|trace| {
            let ops: Vec<serde_json::Value> = trace
                .iter()
                .map(|op| {
                    let mut o = serde_json::Map::new();
                    o.insert("line".into(), serde_json::Value::from(op.line.raw()));
                    let kind = if op.kind.is_store() { "Store" } else { "Load" };
                    o.insert("kind".into(), serde_json::Value::from(kind));
                    o.insert("gap".into(), serde_json::Value::from(op.gap.get()));
                    serde_json::Value::Object(o)
                })
                .collect();
            let mut t = serde_json::Map::new();
            t.insert("ops".into(), serde_json::Value::from(ops));
            serde_json::Value::Object(t)
        })
        .collect();
    root.insert("traces".into(), serde_json::Value::from(traces));
    serde_json::to_string_pretty(&serde_json::Value::Object(root))
        .map_err(|e| Error::Codec(e.to_string()))
}

/// Deserializes a workload from JSON (the format written by [`to_json`],
/// identical to the derived serde representation).
///
/// # Errors
///
/// Returns [`Error::Codec`] if the input is not a valid workload document.
pub fn from_json(json: &str) -> Result<Workload> {
    fn field<'v>(v: &'v serde_json::Value, key: &str) -> Result<&'v serde_json::Value> {
        v.get(key).ok_or_else(|| Error::Codec(format!("missing field `{key}`")))
    }
    fn as_u64(v: &serde_json::Value, what: &str) -> Result<u64> {
        v.as_u64().ok_or_else(|| Error::Codec(format!("`{what}` is not an unsigned integer")))
    }

    let doc: serde_json::Value =
        serde_json::from_str(json).map_err(|e| Error::Codec(e.to_string()))?;
    let name = field(&doc, "name")?
        .as_str()
        .ok_or_else(|| Error::Codec("`name` is not a string".into()))?
        .to_owned();
    let traces_json = field(&doc, "traces")?
        .as_array()
        .ok_or_else(|| Error::Codec("`traces` is not an array".into()))?;
    let mut traces = Vec::with_capacity(traces_json.len());
    for trace in traces_json {
        let ops_json = field(trace, "ops")?
            .as_array()
            .ok_or_else(|| Error::Codec("`ops` is not an array".into()))?;
        let mut ops = Vec::with_capacity(ops_json.len());
        for op in ops_json {
            let line = LineAddr::new(as_u64(field(op, "line")?, "line")?);
            let kind = match field(op, "kind")?.as_str() {
                Some("Load") => AccessKind::Load,
                Some("Store") => AccessKind::Store,
                other => {
                    return Err(Error::Codec(format!("unknown access kind {other:?}")));
                }
            };
            let gap = Cycles::new(as_u64(field(op, "gap")?, "gap")?);
            ops.push(TraceOp::new(line, kind, gap));
        }
        traces.push(Trace::from_ops(ops));
    }
    Workload::new(name, traces).map_err(|e| Error::Codec(e.to_string()))
}

/// Serializes a workload to the compact binary format.
///
/// # Errors
///
/// Returns [`Error::Codec`] if the workload cannot be represented exactly:
/// a name longer than 65 535 bytes, or a compute gap that does not fit the
/// 32-bit on-disk field (the round-trip guarantee would otherwise be
/// silently broken).
pub fn to_binary(workload: &Workload) -> Result<Bytes> {
    let name = workload.name().as_bytes();
    let name_len = u16::try_from(name.len())
        .map_err(|_| Error::Codec(format!("workload name is {} bytes, max 65535", name.len())))?;
    let mut buf =
        BytesMut::with_capacity(16 + name.len() + workload.total_accesses() as usize * 13);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(name_len);
    buf.put_slice(name);
    buf.put_u32_le(workload.cores() as u32);
    for trace in workload.traces() {
        buf.put_u64_le(trace.len() as u64);
        for op in trace {
            let gap = u32::try_from(op.gap.get()).map_err(|_| {
                Error::Codec(format!("compute gap {} exceeds the 32-bit field", op.gap.get()))
            })?;
            buf.put_u64_le(op.line.raw());
            buf.put_u8(u8::from(op.kind.is_store()));
            buf.put_u32_le(gap);
        }
    }
    Ok(buf.freeze())
}

/// Deserializes a workload from the compact binary format.
///
/// # Errors
///
/// Returns [`Error::Codec`] on truncated input, an unknown magic/version, or
/// a corrupt access-kind byte.
pub fn from_binary(mut buf: &[u8]) -> Result<Workload> {
    fn need(buf: &[u8], n: usize, what: &str) -> Result<()> {
        if buf.remaining() < n {
            return Err(Error::Codec(format!("truncated input while reading {what}")));
        }
        Ok(())
    }

    need(buf, 6, "header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(Error::Codec("bad magic bytes, not a CoHoRT trace file".into()));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(Error::Codec(format!("unsupported trace format version {version}")));
    }
    need(buf, 2, "name length")?;
    let name_len = buf.get_u16_le() as usize;
    need(buf, name_len, "name")?;
    let name = String::from_utf8(buf[..name_len].to_vec())
        .map_err(|e| Error::Codec(format!("workload name is not utf-8: {e}")))?;
    buf.advance(name_len);
    need(buf, 4, "core count")?;
    let cores = buf.get_u32_le() as usize;
    if cores == 0 {
        return Err(Error::Codec("workload encodes zero cores".into()));
    }

    let mut traces = Vec::with_capacity(cores);
    for core in 0..cores {
        need(buf, 8, "trace length")?;
        let len = buf.get_u64_le() as usize;
        // Never trust the length field for allocation: cap the initial
        // capacity by what the remaining bytes could possibly hold (13
        // bytes per op), so a corrupt header cannot trigger a huge
        // allocation before the per-op bounds checks run.
        let mut ops = Vec::with_capacity(len.min(buf.remaining() / 13 + 1));
        for i in 0..len {
            need(buf, 13, "trace op")?;
            let line = LineAddr::new(buf.get_u64_le());
            let kind = match buf.get_u8() {
                0 => AccessKind::Load,
                1 => AccessKind::Store,
                k => {
                    return Err(Error::Codec(format!(
                        "corrupt access kind {k} at core {core} op {i}"
                    )))
                }
            };
            let gap = Cycles::new(u64::from(buf.get_u32_le()));
            ops.push(TraceOp::new(line, kind, gap));
        }
        traces.push(Trace::from_ops(ops));
    }
    Workload::new(name, traces).map_err(|e| Error::Codec(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro;

    #[test]
    fn json_round_trip() {
        let w = micro::random_shared(3, 16, 40, 0.3, 9);
        let json = to_json(&w).unwrap();
        assert_eq!(from_json(&json).unwrap(), w);
    }

    #[test]
    fn binary_round_trip() {
        let w = micro::random_shared(4, 64, 200, 0.5, 1);
        let bin = to_binary(&w).unwrap();
        assert_eq!(from_binary(&bin).unwrap(), w);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = from_binary(b"NOPE\x01\x00").unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn binary_rejects_truncation_everywhere() {
        let w = micro::ping_pong(2, 2);
        let bin = to_binary(&w).unwrap();
        for cut in 0..bin.len() {
            assert!(from_binary(&bin[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn binary_rejects_wrong_version() {
        let w = micro::ping_pong(1, 1);
        let mut bin = to_binary(&w).unwrap().to_vec();
        bin[4] = 99;
        assert!(from_binary(&bin).unwrap_err().to_string().contains("version"));
    }

    #[test]
    fn binary_rejects_corrupt_kind() {
        let w = micro::ping_pong(1, 1);
        let mut bin = to_binary(&w).unwrap().to_vec();
        let kind_offset = bin.len() - 5; // last op: ..., kind(1), gap(4)
        bin[kind_offset] = 7;
        assert!(from_binary(&bin).unwrap_err().to_string().contains("access kind"));
    }

    #[test]
    fn binary_rejects_huge_length_field_without_allocating() {
        let w = micro::ping_pong(1, 1);
        let mut bin = to_binary(&w).unwrap().to_vec();
        // Overwrite the trace-length field (after magic+version+name+cores)
        // with u64::MAX: must error, not attempt an exabyte allocation.
        let len_offset = 4 + 2 + 2 + "ping-pong".len() + 4;
        bin[len_offset..len_offset + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(from_binary(&bin).unwrap_err().to_string().contains("truncated"));
    }

    #[test]
    fn binary_rejects_unencodable_gaps() {
        let w = Workload::new(
            "big-gap",
            vec![Trace::from_ops(vec![TraceOp::load(0).after(u64::from(u32::MAX) + 1)])],
        )
        .unwrap();
        assert!(to_binary(&w).unwrap_err().to_string().contains("32-bit"));
    }

    #[test]
    fn json_rejects_malformed_documents() {
        assert!(from_json("not json").is_err());
        assert!(from_json(r#"{"name": "x"}"#).unwrap_err().to_string().contains("traces"));
        let bad_kind =
            r#"{"name": "x", "traces": [{"ops": [{"line": 0, "kind": "Fetch", "gap": 0}]}]}"#;
        assert!(from_json(bad_kind).unwrap_err().to_string().contains("access kind"));
    }

    #[test]
    fn json_is_human_readable() {
        let w = micro::ping_pong(1, 1);
        let json = to_json(&w).unwrap();
        assert!(json.contains("ping-pong"));
        assert!(json.contains("Store"));
    }
}
