use core::fmt;

use serde::{Deserialize, Serialize};

use cohort_types::{Cycles, LineAddr};

/// Whether a memory access reads or writes its cache line.
///
/// Loads issue `GetS` coherence requests on a miss, stores issue `GetM`
/// (including upgrades from the Shared state).
///
/// # Examples
///
/// ```
/// use cohort_trace::AccessKind;
///
/// assert!(AccessKind::Store.is_store());
/// assert!(!AccessKind::Load.is_store());
/// assert_eq!(AccessKind::Load.to_string(), "R");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A read access.
    Load,
    /// A write access.
    Store,
}

impl AccessKind {
    /// Returns `true` for stores.
    #[must_use]
    pub const fn is_store(self) -> bool {
        matches!(self, AccessKind::Store)
    }

    /// Returns `true` for loads.
    #[must_use]
    pub const fn is_load(self) -> bool {
        matches!(self, AccessKind::Load)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => write!(f, "R"),
            AccessKind::Store => write!(f, "W"),
        }
    }
}

/// One memory access of a core's trace.
///
/// `gap` is the number of compute cycles the core spends *before* issuing
/// this access (relative to the completion of the previous access or, for
/// the first access, relative to cycle 0). This is how the trace-driven core
/// model represents out-of-order pipelines: computation overlaps nothing
/// here, but the spacing between requests reproduces the arrival process of
/// the original application.
///
/// # Examples
///
/// ```
/// use cohort_trace::{AccessKind, TraceOp};
/// use cohort_types::{Cycles, LineAddr};
///
/// let op = TraceOp::new(LineAddr::new(0x40), AccessKind::Store, Cycles::new(3));
/// assert!(op.kind.is_store());
/// assert_eq!(op.gap.get(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceOp {
    /// The cache line touched by the access.
    pub line: LineAddr,
    /// Load or store.
    pub kind: AccessKind,
    /// Compute cycles preceding the access.
    pub gap: Cycles,
}

impl TraceOp {
    /// Creates a trace operation.
    #[must_use]
    pub const fn new(line: LineAddr, kind: AccessKind, gap: Cycles) -> Self {
        TraceOp { line, kind, gap }
    }

    /// Shorthand for a load with no preceding compute gap.
    #[must_use]
    pub const fn load(line: u64) -> Self {
        TraceOp::new(LineAddr::new(line), AccessKind::Load, Cycles::ZERO)
    }

    /// Shorthand for a store with no preceding compute gap.
    #[must_use]
    pub const fn store(line: u64) -> Self {
        TraceOp::new(LineAddr::new(line), AccessKind::Store, Cycles::ZERO)
    }

    /// Returns a copy with the given compute gap.
    #[must_use]
    pub const fn after(mut self, gap: u64) -> Self {
        self.gap = Cycles::new(gap);
        self
    }
}

impl fmt::Display for TraceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{} (+{})", self.kind, self.line, self.gap.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shorthands() {
        let r = TraceOp::load(5);
        assert!(r.kind.is_load());
        assert_eq!(r.line.raw(), 5);
        assert_eq!(r.gap, Cycles::ZERO);

        let w = TraceOp::store(7).after(12);
        assert!(w.kind.is_store());
        assert_eq!(w.gap.get(), 12);
    }

    #[test]
    fn display() {
        assert_eq!(TraceOp::store(255).after(2).to_string(), "WL0xff (+2)");
    }
}
