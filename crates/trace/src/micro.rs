//! Scripted micro-workloads for tests, examples and the paper's
//! illustrative figures.
//!
//! These are tiny, fully deterministic workloads with a known sharing
//! pattern, used to validate the simulator against hand-computed timelines
//! (Figure 1 and Figure 4 of the paper) and to stress specific coherence
//! behaviours (ping-pong ownership migration, pure streaming, pure private
//! reuse).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use cohort_types::{Cycles, LineAddr};

use crate::{AccessKind, Trace, TraceOp, Workload};

/// Every core repeatedly stores to the same line: worst-case ownership
/// migration (pure GetM ping-pong).
///
/// # Examples
///
/// ```
/// use cohort_trace::micro;
///
/// let w = micro::ping_pong(4, 10);
/// assert_eq!(w.cores(), 4);
/// assert_eq!(w.total_accesses(), 40);
/// ```
#[must_use]
pub fn ping_pong(cores: usize, rounds: usize) -> Workload {
    let traces = (0..cores).map(|_| Trace::from_ops(vec![TraceOp::store(0); rounds])).collect();
    Workload::new("ping-pong", traces).expect("cores > 0")
}

/// Each core streams sequentially over its own private region: no sharing,
/// no reuse (every access a cold miss).
#[must_use]
pub fn streaming(cores: usize, accesses: usize) -> Workload {
    let traces = (0..cores)
        .map(|core| {
            let base = 0x1000 * (core as u64 + 1);
            Trace::from_ops((0..accesses).map(|i| TraceOp::load(base + i as u64)).collect())
        })
        .collect();
    Workload::new("streaming", traces).expect("cores > 0")
}

/// Each core performs word-granular bursts over its own private lines: a
/// store followed by `burst − 1` loads of the same line, for `reps` lines.
/// This is the access shape a coherence timer can turn into *guaranteed*
/// hits: the follow-up accesses sit a few cycles after the fill, well
/// inside any reasonable θ window.
///
/// # Panics
///
/// Panics if `burst` is zero.
#[must_use]
pub fn line_bursts(cores: usize, burst: usize, reps: usize) -> Workload {
    assert!(burst > 0, "a burst needs at least one access");
    let traces = (0..cores)
        .map(|core| {
            let base = 0x1000 * (core as u64 + 1);
            let mut ops = Vec::with_capacity(burst * reps);
            for r in 0..reps {
                let line = base + (r % 64) as u64;
                ops.push(TraceOp::store(line).after(2));
                for _ in 1..burst {
                    ops.push(TraceOp::load(line).after(1));
                }
            }
            Trace::from_ops(ops)
        })
        .collect();
    Workload::new("line-bursts", traces).expect("cores > 0")
}

/// Each core loops over a small private working set: no sharing, maximal
/// reuse (all hits after the cold misses).
#[must_use]
pub fn private_reuse(cores: usize, working_set: usize, accesses: usize) -> Workload {
    let traces = (0..cores)
        .map(|core| {
            let base = 0x1000 * (core as u64 + 1);
            Trace::from_ops(
                (0..accesses).map(|i| TraceOp::load(base + (i % working_set) as u64)).collect(),
            )
        })
        .collect();
    Workload::new("private-reuse", traces).expect("cores > 0")
}

/// Random mix over a shared pool of lines, with the given store fraction.
/// Deterministic for a fixed seed; used by stress and property tests.
///
/// # Panics
///
/// Panics if `lines` is zero or `store_fraction` is outside `[0, 1]`.
#[must_use]
pub fn random_shared(
    cores: usize,
    lines: u64,
    accesses: usize,
    store_fraction: f64,
    seed: u64,
) -> Workload {
    assert!(lines > 0, "need at least one line");
    assert!((0.0..=1.0).contains(&store_fraction), "store fraction must be in [0, 1]");
    let traces = (0..cores)
        .map(|core| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(core as u64));
            Trace::from_ops(
                (0..accesses)
                    .map(|_| {
                        let line = LineAddr::new(rng.gen_range(0..lines));
                        let kind = if rng.gen_bool(store_fraction) {
                            AccessKind::Store
                        } else {
                            AccessKind::Load
                        };
                        let gap = Cycles::new(rng.gen_range(0..=6));
                        TraceOp::new(line, kind, gap)
                    })
                    .collect(),
            )
        })
        .collect();
    Workload::new("random-shared", traces).expect("cores > 0")
}

/// The Figure-1 scenario: two cores contend on line `A`.
///
/// 1. `c0` stores to `A` (①), becoming owner.
/// 2. `c1` stores to `A` (②) shortly after.
/// 3. `c0` accesses `A` again (③): under snooping coherence this request is
///    a *miss* (the line was stolen by `c1`); under time-based coherence it
///    is a *hit* (the timer protected the line).
///
/// The `revisit_gap` controls how soon after ② request ③ arrives; choose it
/// smaller than `θ₀` to reproduce the figure.
#[must_use]
pub fn figure1(revisit_gap: u64) -> Workload {
    let a = 0x40;
    let c0 = Trace::from_ops(vec![
        TraceOp::store(a),                    // ① — becomes owner
        TraceOp::store(a).after(revisit_gap), // ③ — hit iff timer still holds A
    ]);
    let c1 = Trace::from_ops(vec![
        TraceOp::store(a).after(10), // ② — arrives while c0 owns A
    ]);
    Workload::new("figure1", vec![c0, c1]).expect("non-empty")
}

/// The Figure-4 example operation: a quad-core system where all four cores
/// issue a write to line `A` back-to-back; `c0` later accesses `X0` and
/// `c1` accesses `X1` so their timers expire mid-activity.
///
/// In the paper, cores `c0`, `c1`, `c3` run time-based coherence and `c2`
/// runs MSI — that protocol assignment lives in the system configuration,
/// not in the workload.
#[must_use]
pub fn figure4() -> Workload {
    let a = 0x40;
    let x0 = 0x100;
    let x1 = 0x200;
    let c0 = Trace::from_ops(vec![
        TraceOp::store(a),           // ❶ first in RROF order
        TraceOp::load(x0).after(40), // served around θ0's expiry (❺)
    ]);
    let c1 = Trace::from_ops(vec![
        TraceOp::store(a).after(1),  // ❷ waits for θ0
        TraceOp::load(x1).after(60), // issued around θ1's expiry (❼)
    ]);
    let c2 = Trace::from_ops(vec![
        TraceOp::store(a).after(2), // ❸ MSI core: hands A over immediately (❿)
    ]);
    let c3 = Trace::from_ops(vec![
        TraceOp::store(a).after(3), // ❹ last requester
    ]);
    Workload::new("figure4", vec![c0, c1, c2, c3]).expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_shares_one_line() {
        let w = ping_pong(3, 5);
        for t in w.traces() {
            assert!(t.iter().all(|op| op.line.raw() == 0 && op.kind.is_store()));
            assert_eq!(t.len(), 5);
        }
    }

    #[test]
    fn streaming_never_repeats_lines() {
        let w = streaming(2, 100);
        for t in w.traces() {
            let stats = t.stats();
            assert_eq!(stats.unique_lines, 100);
            assert_eq!(stats.stores, 0);
        }
    }

    #[test]
    fn private_reuse_stays_in_working_set() {
        let w = private_reuse(2, 8, 100);
        for t in w.traces() {
            assert_eq!(t.stats().unique_lines, 8);
        }
    }

    #[test]
    fn random_shared_is_deterministic_and_bounded() {
        let a = random_shared(2, 16, 50, 0.5, 3);
        let b = random_shared(2, 16, 50, 0.5, 3);
        assert_eq!(a, b);
        for t in a.traces() {
            assert!(t.iter().all(|op| op.line.raw() < 16));
        }
    }

    #[test]
    #[should_panic(expected = "store fraction")]
    fn random_shared_rejects_bad_fraction() {
        let _ = random_shared(1, 1, 1, 1.5, 0);
    }

    #[test]
    fn figure_workloads_have_expected_shape() {
        let f1 = figure1(20);
        assert_eq!(f1.cores(), 2);
        assert_eq!(f1.total_accesses(), 3);

        let f4 = figure4();
        assert_eq!(f4.cores(), 4);
        // Every core writes line A = 0x40 as its first access.
        for t in f4.traces() {
            assert_eq!(t.ops()[0].line.raw(), 0x40);
            assert!(t.ops()[0].kind.is_store());
        }
    }
}
