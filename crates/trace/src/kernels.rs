//! Synthetic SPLASH-2-like workload generators.
//!
//! Each generator reproduces the *sharing structure* of one SPLASH-2 kernel:
//! which fraction of accesses touch shared lines, with what read/write mix,
//! what reuse distance, and which communication pattern (all-to-all,
//! neighbour, broadcast, reduction). Absolute instruction streams differ
//! from the real benchmarks — the coherence evaluation only depends on the
//! request arrival process and the line-sharing pattern, both of which are
//! parameterised here. Generation is fully deterministic given the seed.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use cohort_types::{Cycles, LineAddr};

use crate::{AccessKind, Trace, TraceOp, Workload};

/// First line of the shared region (read/write-shared between all cores).
const SHARED_BASE: u64 = 0x0000;
/// First line of core `i`'s private region: `PRIVATE_BASE + i * PRIVATE_STRIDE`.
const PRIVATE_BASE: u64 = 0x10_0000;
/// Line-address distance between consecutive cores' private regions.
const PRIVATE_STRIDE: u64 = 0x1_0000;

/// The SPLASH-2 kernels mimicked by the generators.
///
/// # Examples
///
/// ```
/// use cohort_trace::Kernel;
///
/// assert_eq!(Kernel::Fft.name(), "fft");
/// assert_eq!(Kernel::ALL.len(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Kernel {
    /// Butterfly all-to-all transpose exchange (fft).
    Fft,
    /// Blocked factorization with a broadcast pivot block (lu).
    Lu,
    /// Streaming keys scattered into a write-shared histogram (radix).
    Radix,
    /// Stencil sweeps with neighbour halo exchange (ocean).
    Ocean,
    /// Irregular read-mostly walks over a shared tree (barnes).
    Barnes,
    /// Long private compute with tight global reductions (water).
    Water,
}

impl Kernel {
    /// All kernels, in the order used by the paper's figures.
    pub const ALL: [Kernel; 6] =
        [Kernel::Fft, Kernel::Lu, Kernel::Radix, Kernel::Ocean, Kernel::Barnes, Kernel::Water];

    /// Returns the lower-case kernel name as used on figure axes.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Kernel::Fft => "fft",
            Kernel::Lu => "lu",
            Kernel::Radix => "radix",
            Kernel::Ocean => "ocean",
            Kernel::Barnes => "barnes",
            Kernel::Water => "water",
        }
    }

    /// Default total request count across all cores, scaled from the paper
    /// (§VIII quotes ≈47 k requests for fft and ≈2.5 M for ocean; ocean is
    /// scaled down by default to keep the full evaluation tractable —
    /// regeneration binaries accept a `--full` flag that restores it).
    #[must_use]
    pub const fn default_total_requests(self) -> u64 {
        match self {
            Kernel::Fft => 47_000,
            Kernel::Lu => 96_000,
            Kernel::Radix => 72_000,
            Kernel::Ocean => 160_000,
            Kernel::Barnes => 120_000,
            Kernel::Water => 56_000,
        }
    }

    /// The paper-faithful total request count (ocean at its full 2.5 M).
    #[must_use]
    pub const fn full_total_requests(self) -> u64 {
        match self {
            Kernel::Ocean => 2_500_000,
            k => k.default_total_requests(),
        }
    }
}

impl core::fmt::Display for Kernel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

impl core::str::FromStr for Kernel {
    type Err = cohort_types::Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Kernel::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| cohort_types::Error::InvalidConfig(format!("unknown kernel `{s}`")))
    }
}

/// A parameterised kernel workload specification.
///
/// # Examples
///
/// ```
/// use cohort_trace::{Kernel, KernelSpec};
///
/// let small = KernelSpec::new(Kernel::Radix, 4)
///     .with_total_requests(4_000)
///     .with_seed(7)
///     .generate();
/// assert_eq!(small.cores(), 4);
/// assert_eq!(small.total_accesses(), 4_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelSpec {
    kernel: Kernel,
    cores: usize,
    total_requests: u64,
    seed: u64,
}

impl KernelSpec {
    /// Creates a spec with the kernel's default scale and seed 0.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn new(kernel: Kernel, cores: usize) -> Self {
        assert!(cores > 0, "a workload needs at least one core");
        KernelSpec { kernel, cores, total_requests: kernel.default_total_requests(), seed: 0 }
    }

    /// Overrides the total request count (summed over all cores).
    #[must_use]
    pub fn with_total_requests(mut self, total: u64) -> Self {
        self.total_requests = total;
        self
    }

    /// Restores the paper-faithful scale (ocean at 2.5 M requests).
    #[must_use]
    pub fn full_scale(mut self) -> Self {
        self.total_requests = self.kernel.full_total_requests();
        self
    }

    /// Overrides the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the kernel this spec generates.
    #[must_use]
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Returns the core count.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Generates the workload deterministically. The requested total is
    /// split across cores with the remainder going to the lowest-numbered
    /// cores, so `total_accesses()` equals the request exactly.
    #[must_use]
    pub fn generate(&self) -> Workload {
        let base = self.total_requests / self.cores as u64;
        let remainder = (self.total_requests % self.cores as u64) as usize;
        let traces: Vec<Trace> = (0..self.cores)
            .map(|core| {
                let per_core = base as usize + usize::from(core < remainder);
                let mut rng = ChaCha8Rng::seed_from_u64(
                    self.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(core as u64 + 1)),
                );
                let mut g = Emitter::new(per_core, &mut rng);
                match self.kernel {
                    Kernel::Fft => fft(&mut g, core, self.cores),
                    Kernel::Lu => lu(&mut g, core, self.cores),
                    Kernel::Radix => radix(&mut g, core, self.cores),
                    Kernel::Ocean => ocean(&mut g, core, self.cores),
                    Kernel::Barnes => barnes(&mut g, core, self.cores),
                    Kernel::Water => water(&mut g, core, self.cores),
                }
                g.finish()
            })
            .collect();
        Workload::new(self.kernel.name(), traces).expect("cores > 0 is asserted in new")
    }
}

/// Bounded trace builder shared by all generators.
struct Emitter<'r> {
    ops: Vec<TraceOp>,
    target: usize,
    rng: &'r mut ChaCha8Rng,
}

impl<'r> Emitter<'r> {
    fn new(target: usize, rng: &'r mut ChaCha8Rng) -> Self {
        Emitter { ops: Vec::with_capacity(target), target, rng }
    }

    fn full(&self) -> bool {
        self.ops.len() >= self.target
    }

    /// Emits an access with a short compute gap drawn from `gap_range`.
    fn emit(&mut self, line: u64, kind: AccessKind, gap_range: core::ops::RangeInclusive<u64>) {
        if self.full() {
            return;
        }
        let gap = self.rng.gen_range(gap_range);
        self.ops.push(TraceOp::new(LineAddr::new(line), kind, Cycles::new(gap)));
    }

    fn load(&mut self, line: u64) {
        self.emit(line, AccessKind::Load, 1..=4);
    }

    fn store(&mut self, line: u64) {
        self.emit(line, AccessKind::Store, 1..=4);
    }

    /// Emits a load after a longer compute phase (phase boundary).
    fn load_after_phase(&mut self, line: u64) {
        self.emit(line, AccessKind::Load, 40..=120);
    }

    /// Emits a word-granular burst to one cache line: the filling access
    /// followed by `follow_ups` closely-spaced accesses to other words of
    /// the same 64 B line. Real traces touch a line several times per
    /// visit; these follow-ups are what a timer can turn into guaranteed
    /// hits.
    fn burst(&mut self, line: u64, first: AccessKind, follow_ups: usize) {
        self.emit(line, first, 1..=4);
        for _ in 0..follow_ups {
            self.emit(line, AccessKind::Load, 1..=3);
        }
    }

    fn finish(self) -> Trace {
        Trace::from_ops(self.ops)
    }
}

fn private_base(core: usize) -> u64 {
    PRIVATE_BASE + core as u64 * PRIVATE_STRIDE
}

/// fft: log₂(N) butterfly phases. Each core streams over a private block
/// with high reuse, then exchanges with a distance-2ᵖ partner by reading the
/// partner's segment of the shared matrix and writing its own segment.
fn fft(g: &mut Emitter<'_>, core: usize, cores: usize) {
    let seg_lines = 64u64; // shared matrix segment per core
    let own_seg = SHARED_BASE + core as u64 * seg_lines;
    let priv_block = private_base(core);
    let phases = cores.next_power_of_two().trailing_zeros().max(1);
    let mut phase = 0u32;
    while !g.full() {
        let partner = (core ^ (1usize << (phase % phases))) % cores;
        let partner_seg = SHARED_BASE + partner as u64 * seg_lines;
        // Local butterfly computation: word-granular bursts over a strided
        // private block (write the twiddled element, then read neighbours).
        for rep in 0..3 {
            for k in 0..16u64 {
                let line = priv_block + (k * 4 + rep) % 96;
                g.burst(line, AccessKind::Store, 3);
            }
        }
        // Transpose exchange: read the partner's segment, write our own.
        g.load_after_phase(partner_seg);
        for k in 1..seg_lines {
            g.burst(partner_seg + k, AccessKind::Load, 1);
            if k % 2 == 0 {
                g.burst(own_seg + k, AccessKind::Store, 1);
            }
        }
        phase = phase.wrapping_add(1);
    }
}

/// lu: blocked factorization. One pivot block per iteration is read by every
/// core (broadcast read-sharing); each core then updates the blocks it owns.
fn lu(g: &mut Emitter<'_>, core: usize, cores: usize) {
    let block_lines = 16u64;
    let blocks = 24u64;
    let priv_scratch = private_base(core);
    let mut iter = 0u64;
    while !g.full() {
        let pivot = iter % blocks;
        let pivot_base = SHARED_BASE + pivot * block_lines;
        // Everyone reads the pivot block, several words per line.
        g.load_after_phase(pivot_base);
        for k in 1..block_lines {
            g.burst(pivot_base + k, AccessKind::Load, 2);
        }
        // Update owned blocks (write-sharing only across iterations).
        for b in (0..blocks).filter(|b| b % cores as u64 == core as u64) {
            let base = SHARED_BASE + b * block_lines;
            for k in 0..block_lines {
                g.burst(base + k, AccessKind::Store, 2);
                // Scratch access between updates.
                g.load(priv_scratch + (b * block_lines + k) % 64);
            }
        }
        iter += 1;
    }
}

/// radix: streams private keys with no reuse, scattering counts into a
/// write-shared histogram with read-modify-write accesses (heavy GetM
/// contention on few lines).
fn radix(g: &mut Emitter<'_>, core: usize, _cores: usize) {
    let hist_lines = 32u64;
    let keys = private_base(core);
    let mut cursor = 0u64;
    while !g.full() {
        // Read a batch of keys: sequential, low reuse (streaming misses).
        for _ in 0..8 {
            g.load(keys + cursor % 4096);
            cursor += 1;
        }
        // Scatter into the shared histogram: RMW on a skewed bucket.
        let skew: u64 = g.rng.gen_range(0..100);
        let bucket = if skew < 60 { g.rng.gen_range(0..4) } else { g.rng.gen_range(0..hist_lines) };
        g.load(SHARED_BASE + bucket);
        g.store(SHARED_BASE + bucket);
    }
}

/// ocean: red-black stencil sweeps over a private slab with halo reads of
/// the two neighbouring cores' boundary rows each iteration.
fn ocean(g: &mut Emitter<'_>, core: usize, cores: usize) {
    let rows = 24u64;
    let row_lines = 8u64;
    let slab = private_base(core);
    let up = (core + cores - 1) % cores;
    let down = (core + 1) % cores;
    // Each core's boundary rows live in the shared region so neighbours can
    // read them: two rows per core.
    let boundary = |c: usize| SHARED_BASE + c as u64 * 2 * row_lines;
    while !g.full() {
        // Sweep own slab: row-major, word-granular stencil updates.
        for r in 0..rows {
            for l in 0..row_lines {
                let line = slab + r * row_lines + l;
                g.burst(line, AccessKind::Store, 4);
            }
        }
        // Publish own boundary rows.
        for l in 0..2 * row_lines {
            g.store(boundary(core) + l);
        }
        // Halo exchange: read both neighbours' boundaries.
        g.load_after_phase(boundary(up));
        for l in 1..2 * row_lines {
            g.load(boundary(up) + l);
        }
        for l in 0..2 * row_lines {
            g.load(boundary(down) + l);
        }
    }
}

/// barnes: irregular read-mostly pointer-chases over a shared tree, with
/// periodic writes to the core's own body region (also shared, so other
/// cores' force reads pull it).
fn barnes(g: &mut Emitter<'_>, core: usize, cores: usize) {
    let tree_lines = 512u64;
    let bodies_per_core = 32u64;
    let own_bodies = SHARED_BASE + 1024 + core as u64 * bodies_per_core;
    let stack = private_base(core);
    let mut depth = 0u64;
    while !g.full() {
        // Tree walk: geometric jumps, read-only, with private stack pushes.
        let mut node = g.rng.gen_range(0..tree_lines);
        for _ in 0..12 {
            g.burst(SHARED_BASE + 2048 + node, AccessKind::Load, 1);
            g.store(stack + depth % 32);
            depth += 1;
            let jump = g.rng.gen_range(1..=64);
            node = (node * 2 + jump) % tree_lines;
        }
        // Read a victim body from a random core, update our own.
        let victim = g.rng.gen_range(0..cores) as u64;
        let victim_body: u64 = g.rng.gen_range(0..bodies_per_core);
        g.load(SHARED_BASE + 1024 + victim * bodies_per_core + victim_body);
        let body = own_bodies + g.rng.gen_range(0..bodies_per_core);
        g.burst(body, AccessKind::Store, 2);
    }
}

/// water: long private compute phases punctuated by tight global reductions
/// on a handful of shared accumulator lines (ping-pong GetM).
fn water(g: &mut Emitter<'_>, core: usize, _cores: usize) {
    let accumulators = 4u64;
    let molecules = private_base(core);
    while !g.full() {
        // Private molecule updates with large compute gaps: write the new
        // position, then read the velocity and force words of the line.
        for m in 0..24u64 {
            let line = molecules + m % 128;
            g.emit(line, AccessKind::Store, 8..=24);
            g.emit(line, AccessKind::Load, 8..=24);
            g.emit(line, AccessKind::Load, 8..=24);
        }
        // Global reduction: RMW every accumulator line.
        for a in 0..accumulators {
            g.emit(SHARED_BASE + a, AccessKind::Load, 1..=2);
            g.emit(SHARED_BASE + a, AccessKind::Store, 1..=2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small(kernel: Kernel) -> Workload {
        KernelSpec::new(kernel, 4).with_total_requests(8_000).generate()
    }

    #[test]
    fn all_kernels_generate_requested_size() {
        for kernel in Kernel::ALL {
            let w = small(kernel);
            assert_eq!(w.cores(), 4);
            assert_eq!(w.total_accesses(), 8_000, "{kernel}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for kernel in Kernel::ALL {
            assert_eq!(small(kernel), small(kernel), "{kernel}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = KernelSpec::new(Kernel::Barnes, 2).with_total_requests(2_000).generate();
        let b =
            KernelSpec::new(Kernel::Barnes, 2).with_total_requests(2_000).with_seed(1).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn cores_share_lines() {
        // Every kernel must actually induce sharing: some line is touched by
        // at least two cores.
        for kernel in Kernel::ALL {
            let w = small(kernel);
            let sets: Vec<HashSet<u64>> =
                w.traces().iter().map(|t| t.iter().map(|op| op.line.raw()).collect()).collect();
            let mut shared = false;
            'outer: for i in 0..sets.len() {
                for j in (i + 1)..sets.len() {
                    if sets[i].intersection(&sets[j]).next().is_some() {
                        shared = true;
                        break 'outer;
                    }
                }
            }
            assert!(shared, "{kernel} generated no shared lines");
        }
    }

    #[test]
    fn cores_have_private_lines() {
        // …and each core also has lines nobody else touches (so the timer
        // actually protects something).
        for kernel in Kernel::ALL {
            let w = small(kernel);
            let sets: Vec<HashSet<u64>> =
                w.traces().iter().map(|t| t.iter().map(|op| op.line.raw()).collect()).collect();
            for (i, set) in sets.iter().enumerate() {
                let private = set.iter().any(|line| {
                    sets.iter().enumerate().all(|(j, other)| j == i || !other.contains(line))
                });
                assert!(private, "{kernel}: core {i} has no private lines");
            }
        }
    }

    #[test]
    fn stores_present_in_every_kernel() {
        for kernel in Kernel::ALL {
            let w = small(kernel);
            for (i, t) in w.traces().iter().enumerate() {
                assert!(t.stats().stores > 0, "{kernel}: core {i} never stores");
            }
        }
    }

    #[test]
    fn paper_scales() {
        assert_eq!(Kernel::Fft.default_total_requests(), 47_000);
        assert_eq!(Kernel::Ocean.full_total_requests(), 2_500_000);
    }

    #[test]
    fn kernel_from_str_round_trips() {
        for kernel in Kernel::ALL {
            let parsed: Kernel = kernel.name().parse().unwrap();
            assert_eq!(parsed, kernel);
        }
        assert!("mandelbrot".parse::<Kernel>().is_err());
    }

    #[test]
    fn single_core_works() {
        let w = KernelSpec::new(Kernel::Fft, 1).with_total_requests(100).generate();
        assert_eq!(w.cores(), 1);
        assert_eq!(w.total_accesses(), 100);
    }
}
