use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use cohort_types::Cycles;

use crate::{AccessKind, TraceOp};

/// The memory-access trace of one core (one thread of the workload).
///
/// A trace is an ordered sequence of [`TraceOp`]s. The simulator replays it
/// through the core model; the static analysis walks it to compute
/// guaranteed hits; Λ (the task's total access count) is [`Trace::len`].
///
/// # Examples
///
/// ```
/// use cohort_trace::{Trace, TraceOp};
///
/// let trace: Trace = [TraceOp::store(0x10), TraceOp::load(0x10).after(5)]
///     .into_iter()
///     .collect();
/// assert_eq!(trace.len(), 2);
/// let stats = trace.stats();
/// assert_eq!(stats.stores, 1);
/// assert_eq!(stats.unique_lines, 1);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    ops: Vec<TraceOp>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace { ops: Vec::new() }
    }

    /// Creates a trace from a vector of operations.
    #[must_use]
    pub fn from_ops(ops: Vec<TraceOp>) -> Self {
        Trace { ops }
    }

    /// Appends one operation.
    pub fn push(&mut self, op: TraceOp) {
        self.ops.push(op);
    }

    /// Returns the number of memory accesses Λ in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the trace contains no accesses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Returns the operations as a slice.
    #[must_use]
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Iterates over the operations.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceOp> {
        self.ops.iter()
    }

    /// Returns a 128-bit content fingerprint of the trace.
    ///
    /// Two traces with the same operation sequence (same lines, access
    /// kinds and compute gaps) always fingerprint identically, so the
    /// value can serve as a compact memoization key for per-trace analysis
    /// results (see `cohort-analysis`'s shared cache). The digest is two
    /// independent FNV-1a streams over every field of every op, which
    /// makes accidental 128-bit collisions between *different* traces of
    /// this workload's scale vanishingly unlikely.
    #[must_use]
    pub fn fingerprint(&self) -> u128 {
        const OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
        const OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut a = OFFSET_A;
        // Seed the second stream differently so the two halves stay
        // independent even though they consume identical bytes.
        let mut b = OFFSET_B ^ (self.ops.len() as u64);
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                a = (a ^ u64::from(byte)).wrapping_mul(PRIME);
                b = (b ^ u64::from(byte)).wrapping_mul(PRIME.rotate_left(1) | 1);
            }
        };
        for op in &self.ops {
            mix(op.line.raw());
            mix(match op.kind {
                AccessKind::Load => 0,
                AccessKind::Store => 1,
            });
            mix(op.gap.get());
        }
        (u128::from(a) << 64) | u128::from(b)
    }

    /// Computes summary statistics over the trace.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        let mut loads = 0u64;
        let mut stores = 0u64;
        let mut compute = Cycles::ZERO;
        let mut lines = HashSet::new();
        for op in &self.ops {
            match op.kind {
                AccessKind::Load => loads += 1,
                AccessKind::Store => stores += 1,
            }
            compute += op.gap;
            lines.insert(op.line);
        }
        TraceStats { loads, stores, unique_lines: lines.len() as u64, compute }
    }
}

impl FromIterator<TraceOp> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceOp>>(iter: I) -> Self {
        Trace { ops: iter.into_iter().collect() }
    }
}

impl Extend<TraceOp> for Trace {
    fn extend<I: IntoIterator<Item = TraceOp>>(&mut self, iter: I) {
        self.ops.extend(iter);
    }
}

impl IntoIterator for Trace {
    type Item = TraceOp;
    type IntoIter = std::vec::IntoIter<TraceOp>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceOp;
    type IntoIter = std::slice::Iter<'a, TraceOp>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

/// Summary statistics of a [`Trace`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of load operations.
    pub loads: u64,
    /// Number of store operations.
    pub stores: u64,
    /// Number of distinct cache lines touched.
    pub unique_lines: u64,
    /// Total compute-gap cycles in the trace.
    pub compute: Cycles,
}

impl TraceStats {
    /// Total number of accesses (Λ).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// Fraction of accesses that are stores, in `[0, 1]`.
    #[must_use]
    pub fn store_fraction(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.stores as f64 / self.accesses() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_count_kinds_lines_and_compute() {
        let trace: Trace = [
            TraceOp::load(1).after(2),
            TraceOp::store(1).after(3),
            TraceOp::store(2),
            TraceOp::load(3).after(5),
        ]
        .into_iter()
        .collect();
        let s = trace.stats();
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 2);
        assert_eq!(s.unique_lines, 3);
        assert_eq!(s.compute.get(), 10);
        assert_eq!(s.accesses(), 4);
        assert!((s.store_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.stats().accesses(), 0);
        assert_eq!(t.stats().store_fraction(), 0.0);
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let base: Trace =
            [TraceOp::load(1).after(2), TraceOp::store(2).after(3)].into_iter().collect();
        assert_eq!(base.fingerprint(), base.clone().fingerprint());

        // Any field change — line, kind or gap — must change the digest.
        let other_line: Trace =
            [TraceOp::load(9).after(2), TraceOp::store(2).after(3)].into_iter().collect();
        let other_kind: Trace =
            [TraceOp::store(1).after(2), TraceOp::store(2).after(3)].into_iter().collect();
        let other_gap: Trace =
            [TraceOp::load(1).after(7), TraceOp::store(2).after(3)].into_iter().collect();
        for variant in [&other_line, &other_kind, &other_gap] {
            assert_ne!(base.fingerprint(), variant.fingerprint());
        }

        // Order matters, and the empty trace has its own digest.
        let swapped: Trace =
            [TraceOp::store(2).after(3), TraceOp::load(1).after(2)].into_iter().collect();
        assert_ne!(base.fingerprint(), swapped.fingerprint());
        assert_ne!(Trace::new().fingerprint(), base.fingerprint());
    }

    #[test]
    fn extend_and_iterate() {
        let mut t = Trace::new();
        t.extend([TraceOp::load(0), TraceOp::load(1)]);
        t.push(TraceOp::store(2));
        assert_eq!(t.len(), 3);
        let lines: Vec<u64> = t.iter().map(|op| op.line.raw()).collect();
        assert_eq!(lines, vec![0, 1, 2]);
        let owned: Vec<TraceOp> = t.clone().into_iter().collect();
        assert_eq!(owned.len(), 3);
    }
}
