use serde::{Deserialize, Serialize};

use cohort_types::{CoreId, Error, Result};

use crate::Trace;

/// A multi-core workload: one [`Trace`] per core, plus a name.
///
/// Trace `i` is replayed on core `i` (the paper maps each benchmark thread
/// to one core).
///
/// # Examples
///
/// ```
/// use cohort_trace::{Trace, TraceOp, Workload};
/// use cohort_types::CoreId;
///
/// let w = Workload::new(
///     "pingpong",
///     vec![
///         Trace::from_ops(vec![TraceOp::store(0)]),
///         Trace::from_ops(vec![TraceOp::store(0)]),
///     ],
/// )?;
/// assert_eq!(w.cores(), 2);
/// assert_eq!(w.trace(CoreId::new(1))?.len(), 1);
/// # Ok::<(), cohort_types::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    name: String,
    traces: Vec<Trace>,
}

impl Workload {
    /// Creates a workload from per-core traces.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if `traces` is empty: a system needs
    /// at least one core.
    pub fn new(name: impl Into<String>, traces: Vec<Trace>) -> Result<Self> {
        if traces.is_empty() {
            return Err(Error::InvalidConfig("a workload needs at least one core trace".into()));
        }
        Ok(Workload { name: name.into(), traces })
    }

    /// Returns the workload's name (e.g. the kernel it mimics).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the number of cores (= number of traces).
    #[must_use]
    pub fn cores(&self) -> usize {
        self.traces.len()
    }

    /// Returns the trace of one core.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownCore`] if the core does not exist.
    pub fn trace(&self, core: CoreId) -> Result<&Trace> {
        self.traces
            .get(core.index())
            .ok_or(Error::UnknownCore { index: core.index(), cores: self.traces.len() })
    }

    /// Returns all per-core traces in core order.
    #[must_use]
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// Total number of memory accesses across all cores.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.traces.iter().map(|t| t.len() as u64).sum()
    }

    /// Returns a copy of this workload truncated to at most `per_core`
    /// accesses per core — used to derive quick test/bench variants of the
    /// full-scale kernels.
    #[must_use]
    pub fn truncated(&self, per_core: usize) -> Workload {
        Workload {
            name: format!("{}-trunc{per_core}", self.name),
            traces: self
                .traces
                .iter()
                .map(|t| Trace::from_ops(t.ops().iter().copied().take(per_core).collect()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceOp;

    fn two_core() -> Workload {
        Workload::new(
            "w",
            vec![
                Trace::from_ops(vec![TraceOp::load(0), TraceOp::load(1)]),
                Trace::from_ops(vec![TraceOp::store(2)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let w = two_core();
        assert_eq!(w.name(), "w");
        assert_eq!(w.cores(), 2);
        assert_eq!(w.total_accesses(), 3);
        assert_eq!(w.trace(CoreId::new(0)).unwrap().len(), 2);
    }

    #[test]
    fn unknown_core_rejected() {
        let w = two_core();
        assert!(matches!(w.trace(CoreId::new(5)), Err(Error::UnknownCore { index: 5, cores: 2 })));
    }

    #[test]
    fn empty_workload_rejected() {
        assert!(Workload::new("empty", vec![]).is_err());
    }

    #[test]
    fn truncation_limits_every_core() {
        let w = two_core().truncated(1);
        assert_eq!(w.trace(CoreId::new(0)).unwrap().len(), 1);
        assert_eq!(w.trace(CoreId::new(1)).unwrap().len(), 1);
        assert!(w.name().contains("trunc"));
    }
}
