//! Memory traces and synthetic SPLASH-2-like workload generators.
//!
//! The CoHoRT paper evaluates on the SPLASH-2 multithreaded benchmark suite,
//! which is not redistributable here; this crate substitutes deterministic,
//! seeded **synthetic trace generators** that reproduce each kernel's
//! *sharing structure* — the property the coherence evaluation actually
//! depends on (fraction of shared lines, read/write mix, reuse distance,
//! communication pattern). See `DESIGN.md` §2 for the substitution argument.
//!
//! The crate provides:
//!
//! - the trace model ([`AccessKind`], [`TraceOp`], [`Trace`], [`Workload`]),
//! - [`kernels`]: generators for `fft`, `lu`, `radix`, `ocean`, `barnes` and
//!   `water` ([`KernelSpec`], [`Kernel`]),
//! - [`micro`]: tiny scripted workloads (ping-pong, streaming, the Figure-1
//!   and Figure-4 scenarios) used by tests and examples,
//! - [`codec`]: JSON and compact binary persistence.
//!
//! # Examples
//!
//! ```
//! use cohort_trace::{Kernel, KernelSpec};
//!
//! // A 4-core fft-like workload with the paper's scale (~47k requests).
//! let workload = KernelSpec::new(Kernel::Fft, 4).generate();
//! assert_eq!(workload.cores(), 4);
//! let total: u64 = workload.traces().iter().map(|t| t.len() as u64).sum();
//! assert!(total > 40_000 && total < 60_000);
//!
//! // Generation is deterministic for a fixed seed.
//! let again = KernelSpec::new(Kernel::Fft, 4).generate();
//! assert_eq!(workload, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod kernels;
pub mod micro;
mod op;
mod trace;
mod workload;

pub use kernels::{Kernel, KernelSpec};
pub use op::{AccessKind, TraceOp};
pub use trace::{Trace, TraceStats};
pub use workload::Workload;
