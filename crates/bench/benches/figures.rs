//! Criterion benches: one target per paper table/figure, measuring the
//! regeneration cost at reduced scale. `cargo bench -p cohort-bench` runs
//! them; the full-scale regeneration lives in the `src/bin` targets.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cohort::{run_experiment, ModeSetup, Protocol, SystemSpec};
use cohort_bench::{optimize_cohort_timers, sweep_protocols, CritConfig};
use cohort_optim::GaConfig;
use cohort_sim::{EventLogProbe, SimBuilder, SimConfig};
use cohort_trace::{micro, Kernel, KernelSpec, Workload};
use cohort_types::{Criticality, TimerValue};

fn tiny_kernel(kernel: Kernel) -> Workload {
    KernelSpec::new(kernel, 4).with_total_requests(1_200).generate()
}

fn tiny_ga() -> GaConfig {
    GaConfig { population: 8, generations: 3, ..Default::default() }
}

fn table1(c: &mut Criterion) {
    c.bench_function("table1/render", |b| {
        b.iter(|| black_box(cohort::related::render_table_one()));
    });
}

fn table2(c: &mut Criterion) {
    let spec = SystemSpec::builder()
        .core(Criticality::new(4).unwrap())
        .core(Criticality::new(3).unwrap())
        .core(Criticality::new(2).unwrap())
        .core(Criticality::new(1).unwrap())
        .build()
        .unwrap();
    let workload = tiny_kernel(Kernel::Fft);
    c.bench_function("table2/configure_modes", |b| {
        b.iter(|| black_box(ModeSetup::new(&spec, &workload).ga(&tiny_ga()).run().unwrap()));
    });
}

fn fig1(c: &mut Criterion) {
    let workload = micro::figure1(100);
    let config = SimConfig::builder(2).timer(0, TimerValue::timed(200).unwrap()).build().unwrap();
    c.bench_function("fig1/replay", |b| {
        b.iter(|| {
            let mut sim = SimBuilder::new(config.clone(), &workload)
                .probe(EventLogProbe::new())
                .build()
                .unwrap();
            black_box(sim.run().unwrap())
        });
    });
}

fn fig4(c: &mut Criterion) {
    let workload = micro::figure4();
    let config = SimConfig::builder(4)
        .timer(0, TimerValue::timed(40).unwrap())
        .timer(1, TimerValue::timed(40).unwrap())
        .timer(3, TimerValue::timed(40).unwrap())
        .build()
        .unwrap();
    c.bench_function("fig4/replay", |b| {
        b.iter(|| {
            let mut sim = SimBuilder::new(config.clone(), &workload)
                .probe(EventLogProbe::new())
                .build()
                .unwrap();
            black_box(sim.run().unwrap())
        });
    });
}

fn fig5(c: &mut Criterion) {
    let workload = tiny_kernel(Kernel::Fft);
    for config in CritConfig::ALL {
        c.bench_function(&format!("fig5/{}/fft", config.slug()), |b| {
            b.iter(|| black_box(sweep_protocols(config, &workload, &tiny_ga()).unwrap()));
        });
    }
}

fn fig6(c: &mut Criterion) {
    // Figure 6's extra work over Figure 5 is the MSI+FCFS baseline run.
    let spec = CritConfig::AllCr.spec();
    let workload = tiny_kernel(Kernel::Water);
    c.bench_function("fig6/baseline_msi_fcfs/water", |b| {
        b.iter(|| black_box(run_experiment(&spec, &Protocol::MsiFcfs, &workload).unwrap()));
    });
    let timers = optimize_cohort_timers(CritConfig::AllCr, &workload, &tiny_ga()).unwrap();
    c.bench_function("fig6/cohort/water", |b| {
        b.iter(|| {
            black_box(
                run_experiment(&spec, &Protocol::Cohort { timers: timers.clone() }, &workload)
                    .unwrap(),
            )
        });
    });
}

fn fig7(c: &mut Criterion) {
    let spec = SystemSpec::builder()
        .core(Criticality::new(4).unwrap())
        .core(Criticality::new(3).unwrap())
        .core(Criticality::new(2).unwrap())
        .core(Criticality::new(1).unwrap())
        .build()
        .unwrap();
    let workload = tiny_kernel(Kernel::Fft);
    let config = ModeSetup::new(&spec, &workload).ga(&tiny_ga()).run().unwrap();
    c.bench_function("fig7/mode_walk", |b| {
        b.iter(|| {
            let mut controller = cohort::ModeController::new(config.clone());
            let c0 = cohort_types::CoreId::new(0);
            for gamma in [10_000_000u64, 400_000, 200_000] {
                let _ =
                    black_box(controller.requirement_changed(c0, cohort_types::Cycles::new(gamma)));
            }
        });
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = table1, table2, fig1, fig4, fig5, fig6, fig7
);
criterion_main!(figures);
