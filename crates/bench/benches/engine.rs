//! Criterion benches of the core engines: simulator throughput per
//! protocol/arbiter, the static cache analysis walk, Eq. 1 evaluation and
//! GA convergence cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cohort_analysis::{guaranteed_hits, theta_saturation, wcl_miss};
use cohort_optim::{GaConfig, GeneticAlgorithm, SearchSpace};
use cohort_sim::{ArbiterKind, DataPath, SimBuilder, SimConfig};
use cohort_trace::{Kernel, KernelSpec};
use cohort_types::{Cycles, LatencyConfig, TimerValue};

fn sim_throughput(c: &mut Criterion) {
    let workload = KernelSpec::new(Kernel::Ocean, 4).with_total_requests(8_000).generate();
    let mut group = c.benchmark_group("sim_throughput");
    group.throughput(Throughput::Elements(workload.total_accesses()));
    let cases: Vec<(&str, SimConfig)> = vec![
        ("msi_rrof", SimConfig::builder(4).build().unwrap()),
        (
            "cohort_timed",
            SimConfig::builder(4).timers(vec![TimerValue::timed(30).unwrap(); 4]).build().unwrap(),
        ),
        ("pcc_staged", SimConfig::builder(4).data_path(DataPath::ViaSharedMemory).build().unwrap()),
        (
            "pendulum_tdm",
            SimConfig::builder(4)
                .timers(vec![TimerValue::timed(300).unwrap(); 4])
                .arbiter(ArbiterKind::Tdm { critical: vec![true; 4] })
                .waiter_priority(vec![true; 4])
                .build()
                .unwrap(),
        ),
        ("msi_fcfs", SimConfig::builder(4).arbiter(ArbiterKind::Fcfs).build().unwrap()),
    ];
    for (name, config) in cases {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut sim = SimBuilder::new(config.clone(), &workload).build().unwrap();
                black_box(sim.run().unwrap())
            });
        });
    }
    group.finish();
}

fn cache_analysis(c: &mut Criterion) {
    let workload = KernelSpec::new(Kernel::Fft, 4).generate(); // full 47k scale
    let trace = &workload.traces()[0];
    let mut group = c.benchmark_group("cache_analysis");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("guaranteed_hits_walk", |b| {
        b.iter(|| {
            black_box(guaranteed_hits(
                trace,
                TimerValue::timed(30).unwrap(),
                &cohort_sim::CacheGeometry::paper_l1(),
                Cycles::new(1),
                Cycles::new(438),
            ))
        });
    });
    group.bench_function("theta_saturation_sweep", |b| {
        b.iter(|| {
            black_box(theta_saturation(
                trace,
                &cohort_sim::CacheGeometry::paper_l1(),
                Cycles::new(1),
                Cycles::new(54),
            ))
        });
    });
    group.finish();

    c.bench_function("eq1_wcl", |b| {
        let timers = vec![TimerValue::timed(30).unwrap(); 16];
        b.iter(|| black_box(wcl_miss(7, &timers, &LatencyConfig::paper())));
    });
}

fn ga_convergence(c: &mut Criterion) {
    // Pure GA cost without the cache model (sphere function), isolating the
    // engine's own overhead.
    c.bench_function("ga/sphere_48x60", |b| {
        let space = SearchSpace::new(vec![(0, 10_000); 4]);
        let ga = GeneticAlgorithm::new(space, GaConfig::default());
        b.iter(|| {
            black_box(ga.run(|genes| genes.iter().map(|&g| (g as f64 - 5_000.0).powi(2)).sum()))
        });
    });
}

criterion_group!(
    name = engine;
    config = Criterion::default().sample_size(10);
    targets = sim_throughput, cache_analysis, ga_convergence
);
criterion_main!(engine);
