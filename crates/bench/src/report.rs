//! One shared definition of every machine-readable document kind the
//! bench bins emit and `schema_check` validates.
//!
//! Each kind is a [`Schema`] constant (name + version); emitters go
//! through a [`ReportWriter`], which stamps the envelope with the
//! schema tag and the generator name, and the `schema_check` validators
//! verify the same tag via [`Schema::check`]. Reports written before the
//! tag existed carry no `"schema"` key and remain valid — the check only
//! rejects a *wrong* tag, never a missing one.

use std::path::Path;

use serde_json::{json, Map, Value};

use cohort_types::Result;

/// Identity of one machine-readable document kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schema {
    /// The document kind, e.g. `"report"` or `"fleet"`.
    pub kind: &'static str,
    /// The kind's schema version; bump on incompatible shape changes.
    pub version: u32,
}

/// Figure/table run reports (`{"runs": [...]}` — fig1/fig5/fig6/repro).
pub const REPORT: Schema = Schema::new("report", 1);
/// GA engine benchmark reports (`BENCH_optim.json`).
pub const OPTIM: Schema = Schema::new("optim", 1);
/// Fault-campaign reports (`BENCH_chaos.json`).
pub const CHAOS: Schema = Schema::new("chaos", 1);
/// Engine-throughput reports (`BENCH_sim.json`).
pub const SIM: Schema = Schema::new("sim", 1);
/// Fleet service benchmark reports (`BENCH_fleet.json`). Version 2 adds
/// the churn chaos campaign and the `FleetHealth` snapshots.
pub const FLEET: Schema = Schema::new("fleet", 2);
/// Mode-switch trajectory reports (the `fig7` bin).
pub const FIG7: Schema = Schema::new("fig7", 1);
/// Schedulability-curve reports (the `schedulability` bin).
pub const SCHEDULABILITY: Schema = Schema::new("schedulability", 1);
/// Mode-switch cost table reports (the `table2` bin).
pub const TABLE2: Schema = Schema::new("table2", 1);
/// Static-analysis reports (the `lint` bin).
pub const LINT: Schema = Schema::new("lint", 1);
/// Monte Carlo certification reports (`BENCH_cert.json`). Version 2 adds
/// the cross-run store memoization fields and the `FleetHealth` snapshot.
pub const CERT: Schema = Schema::new("cert", 2);

impl Schema {
    /// A schema constant.
    #[must_use]
    pub const fn new(kind: &'static str, version: u32) -> Self {
        Schema { kind, version }
    }

    /// The tag stamped into (and expected from) document envelopes,
    /// `"<kind>/<version>"`.
    #[must_use]
    pub fn tag(&self) -> String {
        format!("{}/{}", self.kind, self.version)
    }

    /// Validates a document's optional `"schema"` key against this
    /// schema. Documents without the key pass (pre-tag reports stay
    /// valid); documents with a different tag fail.
    ///
    /// # Errors
    ///
    /// Returns a human-readable violation message.
    pub fn check(&self, doc: &Value) -> std::result::Result<(), String> {
        match doc.get("schema") {
            None => Ok(()),
            Some(v) => {
                let found =
                    v.as_str().ok_or_else(|| format!("{}: `schema` is not a string", self.kind))?;
                if found == self.tag() {
                    Ok(())
                } else {
                    Err(format!("{}: schema tag `{found}` is not `{}`", self.kind, self.tag()))
                }
            }
        }
    }
}

/// Emits machine-readable reports under one [`Schema`]: every document
/// gets a `"schema"` tag and a `"generator"` name before the payload
/// fields, so validators and emitters can never drift apart on identity.
#[derive(Debug, Clone, Copy)]
pub struct ReportWriter<'a> {
    schema: &'a Schema,
    generator: &'a str,
}

impl<'a> ReportWriter<'a> {
    /// A writer stamping documents as `schema` produced by `generator`.
    #[must_use]
    pub fn new(schema: &'a Schema, generator: &'a str) -> Self {
        ReportWriter { schema, generator }
    }

    /// Wraps `payload`'s fields into the stamped envelope. `payload`
    /// should be a JSON object; any other value is filed under a
    /// `"payload"` key.
    #[must_use]
    pub fn envelope(&self, payload: Value) -> Value {
        let mut map = Map::new();
        map.insert("schema".into(), json!(self.schema.tag()));
        map.insert("generator".into(), json!(self.generator));
        match payload.as_object() {
            Some(fields) => {
                for (key, value) in fields.iter() {
                    map.insert(key.clone(), value.clone());
                }
            }
            None => {
                map.insert("payload".into(), payload);
            }
        }
        Value::Object(map)
    }

    /// Writes the stamped envelope to `path` (pretty-printed, parent
    /// directories created as needed).
    ///
    /// # Errors
    ///
    /// Returns [`cohort_types::Error::Codec`] when serialization or the
    /// filesystem fails.
    pub fn write(&self, path: &Path, payload: Value) -> Result<()> {
        crate::write_json(path, &self.envelope(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelopes_are_stamped_and_checkable() {
        let writer = ReportWriter::new(&FLEET, "fleet");
        let doc = writer.envelope(json!({"quick": true, "shards": 4}));
        assert_eq!(doc.get("schema").and_then(Value::as_str), Some("fleet/2"));
        assert_eq!(doc.get("generator").and_then(Value::as_str), Some("fleet"));
        assert_eq!(doc.get("shards").and_then(Value::as_u64), Some(4));
        FLEET.check(&doc).unwrap();
        // The wrong schema rejects the tag; a tagless legacy doc passes.
        assert!(SIM.check(&doc).is_err());
        SIM.check(&json!({"generator": "sim"})).unwrap();
        assert!(SIM.check(&json!({"schema": 3})).is_err());
    }

    #[test]
    fn non_object_payloads_are_filed_not_lost() {
        let doc = ReportWriter::new(&REPORT, "test").envelope(json!([1, 2]));
        assert!(doc.get("payload").and_then(Value::as_array).is_some());
    }

    #[test]
    fn tags_spell_kind_and_version() {
        assert_eq!(REPORT.tag(), "report/1");
        assert_eq!(Schema::new("x", 9).tag(), "x/9");
    }
}
