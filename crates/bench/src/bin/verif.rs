//! Exhaustive protocol verification driver — the CI entry point of
//! `cohort-verif`.
//!
//! ```text
//! cargo run --release -p cohort-bench --bin verif [-- <mode>] [--ops N]
//! ```
//!
//! Modes:
//!
//! - `exhaustive` — model-check every θ-class mix of 2 and 3 cores on a
//!   single line (plus every 2-core mix on two lines), reporting
//!   states/edges/depth, and fail on any invariant violation;
//! - `mutations`  — flip each transition-rule mutation in turn, require
//!   the checker to produce a counterexample of the matching invariant
//!   class, print the minimal trace, and replay it through the *faithful*
//!   cycle-accurate engine (probe attached), which must come back clean;
//! - `presets`    — model-check the timer tables exported by the
//!   `cohort::Protocol` presets (CoHoRT mix, MSI family, PENDULUM);
//! - `all` (default) — everything above.
//!
//! Exits non-zero on the first failed expectation.

use std::process::ExitCode;

use cohort::Protocol;
use cohort_types::TimerValue;
use cohort_verif::{explore, replay, theta_mixes, ModelConfig, Mutation, ThetaClass};

fn mix_label(mix: &[ThetaClass]) -> String {
    let parts: Vec<String> = mix.iter().map(ToString::to_string).collect();
    format!("[{}]", parts.join(", "))
}

/// Maps a concrete timer register to its verification class.
fn theta_class(timer: TimerValue) -> ThetaClass {
    match timer.theta() {
        None => ThetaClass::Msi,
        Some(0) => ThetaClass::Zero,
        Some(_) => ThetaClass::Timed,
    }
}

/// Model-checks one configuration, printing its reachability summary.
/// Returns `false` (and prints the counterexample) on a violation.
fn check_clean(label: &str, config: &ModelConfig) -> bool {
    let report = explore(config);
    println!(
        "  {label:<28} {:>9} states {:>10} edges  depth {:>3}  {}",
        report.states,
        report.edges,
        report.depth,
        if report.is_clean() { "ok" } else { "FAIL" }
    );
    if let Some(cx) = &report.counterexample {
        println!("{cx}");
        return false;
    }
    if report.truncated {
        println!("  state cap hit: the space was not exhausted");
        return false;
    }
    true
}

fn run_exhaustive(ops: u8) -> bool {
    let mut ok = true;
    let mut states = 0usize;
    let mut edges = 0usize;
    for cores in [2usize, 3] {
        println!("exhaustive sweep: {cores} cores x 1 line, {ops} ops/core, all θ mixes");
        for mix in theta_mixes(cores) {
            let config = ModelConfig::new(&mix, 1).with_ops(ops);
            let report = explore(&config);
            states += report.states;
            edges += report.edges;
            ok &= check_clean(&mix_label(&mix), &config);
        }
    }
    println!("exhaustive sweep: 2 cores x 2 lines, {ops} ops/core, all θ mixes");
    for mix in theta_mixes(2) {
        let config = ModelConfig::new(&mix, 2).with_ops(ops);
        let report = explore(&config);
        states += report.states;
        edges += report.edges;
        ok &= check_clean(&mix_label(&mix), &config);
    }
    println!("total: {states} states, {edges} edges explored");
    ok
}

fn run_mutations(ops: u8) -> bool {
    let base = ModelConfig::new(&[ThetaClass::Timed, ThetaClass::Msi], 1).with_ops(ops);
    let mut ok = true;
    for mutation in Mutation::ALL {
        println!("mutation `{mutation}`:");
        let mutated = base.clone().with_mutation(mutation);
        let report = explore(&mutated);
        let Some(cx) = report.counterexample else {
            println!("  FAIL: the checker did not catch the mutation");
            ok = false;
            continue;
        };
        let expected = mutation.expected_violation();
        if Some(cx.violation.kind) != expected {
            println!("  FAIL: expected a {:?} violation, got {}", expected, cx.violation);
            ok = false;
            continue;
        }
        print!("{cx}");
        match replay(&base, &cx.trace) {
            Ok(outcome) => {
                println!(
                    "  replay through the faithful engine: {} accesses, {} probe violations, {}",
                    outcome.accesses,
                    outcome.probe_violations.len(),
                    if outcome.engine_is_clean() { "clean" } else { "VIOLATIONS" }
                );
                if !outcome.engine_is_clean() {
                    for v in &outcome.probe_violations {
                        println!("    probe: {v}");
                    }
                    if let Err(e) = &outcome.engine_state {
                        println!("    deep state: {e}");
                    }
                    ok = false;
                }
            }
            Err(e) => {
                println!("  FAIL: replay did not run: {e}");
                ok = false;
            }
        }
    }
    ok
}

fn run_presets(ops: u8) -> bool {
    let cores = 2;
    let presets = [
        Protocol::Cohort { timers: vec![TimerValue::timed(100).expect("valid"), TimerValue::Msi] },
        Protocol::Msi,
        Protocol::MsiFcfs,
        Protocol::Pcc,
        Protocol::Pendulum { critical: vec![true, false], theta: 50 },
    ];
    println!("preset timer tables ({cores} cores, {ops} ops/core):");
    let mut ok = true;
    for preset in presets {
        let table = match preset.timer_table(cores) {
            Ok(table) => table,
            Err(e) => {
                println!("  {:<12} FAIL: {e}", preset.label());
                ok = false;
                continue;
            }
        };
        let mix: Vec<ThetaClass> = table.into_iter().map(theta_class).collect();
        let config = ModelConfig::new(&mix, 1).with_ops(ops);
        ok &= check_clean(&format!("{} {}", preset.label(), mix_label(&mix)), &config);
    }
    ok
}

fn main() -> ExitCode {
    let mut mode = String::from("all");
    let mut ops: u8 = 3;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "exhaustive" | "mutations" | "presets" | "all" => mode = arg,
            "--ops" => {
                let Some(value) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--ops expects a small integer");
                    return ExitCode::FAILURE;
                };
                ops = value;
            }
            other => {
                eprintln!(
                    "unknown argument `{other}` \
                     (expected: exhaustive | mutations | presets | all, --ops N)"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let mut ok = true;
    if matches!(mode.as_str(), "exhaustive" | "all") {
        ok &= run_exhaustive(ops);
    }
    if matches!(mode.as_str(), "mutations" | "all") {
        ok &= run_mutations(ops);
    }
    if matches!(mode.as_str(), "presets" | "all") {
        ok &= run_presets(ops);
    }

    if ok {
        println!("verification: all checks passed");
        ExitCode::SUCCESS
    } else {
        println!("verification: FAILED");
        ExitCode::FAILURE
    }
}
