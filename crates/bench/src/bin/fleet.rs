//! Fleet service benchmark: submission throughput under a burst of
//! duplicate specs, kill-recovery through lease reclaim, and persistent
//! memo replay.
//!
//! Three measurements, mirroring the fleet's three claims:
//!
//! 1. **Burst** — concurrent submitter threads fire duplicate experiment
//!    specs at a running fleet; dedup-on-submit must collapse them onto
//!    one execution each (dedup hit-rate > 0) at a healthy submission
//!    throughput.
//! 2. **Kill-recovery** — a chaos-rigged worker shard is killed after a
//!    GA generation's checkpoint lands; its lease expires, the job is
//!    re-claimed, resumed from the checkpoint, and the final payload must
//!    be bit-identical to an uninterrupted reference run.
//! 3. **Replay** — a second fleet over the same persistent store answers
//!    every submission from the memo without executing anything.
//!
//! ```text
//! cargo run --release -p cohort-bench --bin fleet -- \
//!     [--quick] [--json results/BENCH_fleet.json]
//! ```

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde_json::json;

use cohort::{Protocol, SystemSpec};
use cohort_bench::report::{self, ReportWriter};
use cohort_bench::CliOptions;
use cohort_fleet::{ga_payload, Fleet, JobQueue, JobSpec, ResultStore, WorkerId, WorkerShard};
use cohort_optim::{GaConfig, GaRun, TimerProblem};
use cohort_trace::{micro, Workload};
use cohort_types::{Criticality, Cycles};

/// The chaos shard's lease: short enough that recovery dominates the
/// bench, long enough that the resumed run finishes inside it.
const KILL_LEASE: Duration = Duration::from_millis(200);

fn platform(cores: usize) -> SystemSpec {
    let mut b = SystemSpec::builder();
    for _ in 0..cores {
        b = b.core(Criticality::new(1).expect("static level"));
    }
    b.build().expect("non-empty")
}

fn canonical(v: &serde_json::Value) -> String {
    serde_json::to_string(v).expect("a Value serializes infallibly")
}

/// The burst workloads: `distinct` experiment jobs over distinct traces.
fn burst_jobs(distinct: usize, accesses: usize) -> Vec<JobSpec> {
    (0..distinct)
        .map(|i| JobSpec::Experiment {
            spec: platform(2),
            protocol: Protocol::Msi,
            workload: Arc::new(micro::random_shared(2, 8, accesses, 0.5, 1000 + i as u64)),
        })
        .collect()
}

struct BurstResult {
    submissions: u64,
    distinct: u64,
    executed: u64,
    dedup_hits: u64,
    seconds: f64,
}

/// Fires `submitters` concurrent threads, each submitting every job of
/// the burst set and waiting for all results; duplicate specs must
/// collapse onto one execution per distinct job.
fn run_burst(shards: usize, submitters: usize, jobs: &[JobSpec]) -> BurstResult {
    let fleet = Fleet::builder().shards(shards).build().expect("in-memory fleet");
    let start = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..submitters)
            .map(|_| {
                let client = fleet.client();
                s.spawn(move || {
                    let tickets: Vec<_> = jobs
                        .iter()
                        .map(|job| client.submit(job.clone()).expect("fleet accepts"))
                        .collect();
                    for ticket in &tickets {
                        client.wait(ticket).expect("job completes");
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("submitter thread");
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    let stats = fleet.shutdown();
    BurstResult {
        submissions: stats.queue.submitted,
        distinct: jobs.len() as u64,
        executed: stats.executed,
        dedup_hits: stats.queue.deduplicated,
        seconds,
    }
}

struct KillResult {
    reclaims: u64,
    resumed: u64,
    stale_completions: u64,
    bit_identical: bool,
    seconds: f64,
}

/// Kills a worker mid-GA-run (after generation 4's checkpoint), lets the
/// lease expire and the claim loop resume the job, then compares the
/// final payload against an uninterrupted reference run.
fn run_kill_recovery(workload: &Workload, ga: &GaConfig) -> KillResult {
    let job = JobSpec::Optimize {
        workload: Arc::new(workload.clone()),
        timed: vec![(0, None), (1, Some(20_000))],
        ga: ga.clone(),
    };
    let queue = Arc::new(JobQueue::new(KILL_LEASE));
    let store = Arc::new(ResultStore::in_memory());
    let (fp, _) = queue.submit(job).expect("open queue");

    // The chaos kill is a deliberate panic; keep its backtrace out of the
    // bench output (any other panic still reports normally).
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let chaos = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|message| message.starts_with("chaos:"));
        if !chaos {
            default_hook(info);
        }
    }));

    let start = Instant::now();
    let shard = WorkerShard::new(WorkerId::new(0), Arc::clone(&queue), Arc::clone(&store))
        .crash_after_generations(4);
    let stats = shard.stats();
    let handle = std::thread::spawn(move || shard.run());
    assert!(queue.wait_done(fp), "the job completes despite the kill");
    queue.close();
    handle.join().expect("shard thread");
    let seconds = start.elapsed().as_secs_f64();
    let _ = std::panic::take_hook(); // back to the default hook

    let problem = TimerProblem::builder(workload)
        .timed(0, None)
        .timed(1, Some(Cycles::new(20_000)))
        .build()
        .expect("valid problem");
    let reference = ga_payload(&problem, &GaRun::new(&problem).config(ga).run());
    let stored = store.get(fp).expect("intact store").expect("payload stored");
    KillResult {
        reclaims: queue.stats().reclaims,
        resumed: stats.resumed.load(Ordering::Relaxed),
        stale_completions: queue.stats().stale_completions,
        bit_identical: canonical(&stored) == canonical(&reference),
        seconds,
    }
}

struct ReplayResult {
    store_hits: u64,
    executed: u64,
    bit_identical: bool,
}

/// Runs the burst jobs through a persistent fleet, then replays them
/// through a second fleet over the same directory: everything must come
/// from the memo, bit-identical, with zero executions.
fn run_replay(jobs: &[JobSpec]) -> ReplayResult {
    let dir = std::env::temp_dir().join(format!("cohort-fleet-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let first = Fleet::builder().shards(2).store_dir(&dir).build().expect("persistent fleet");
    let originals: Vec<String> = {
        let client = first.client();
        jobs.iter().map(|j| canonical(&client.run(j.clone()).expect("computes"))).collect()
    };
    let _ = first.shutdown();

    let second = Fleet::builder().shards(2).store_dir(&dir).build().expect("persistent fleet");
    let replayed: Vec<String> = {
        let client = second.client();
        jobs.iter().map(|j| canonical(&client.run(j.clone()).expect("replays"))).collect()
    };
    let stats = second.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    ReplayResult {
        store_hits: stats.store_hits,
        executed: stats.executed,
        bit_identical: originals == replayed,
    }
}

fn main() {
    let options = CliOptions::parse_or_exit();
    let quick = options.quick;

    let shards = if quick { 2 } else { 4 };
    let submitters = if quick { 4 } else { 8 };
    let distinct = if quick { 3 } else { 6 };
    let accesses = if quick { 200 } else { 2_000 };
    let jobs = burst_jobs(distinct, accesses);

    println!("fleet service benchmark ({})", if quick { "quick" } else { "full" });
    println!("\nburst: {submitters} submitters × {distinct} jobs over {shards} shards ...");
    let burst = run_burst(shards, submitters, &jobs);
    let dedup_rate = burst.dedup_hits as f64 / burst.submissions as f64;
    let throughput = burst.submissions as f64 / burst.seconds;
    println!(
        "  {} submissions in {:.3} s ({throughput:.0}/s), {} executed, \
         {} deduplicated (rate {dedup_rate:.2})",
        burst.submissions, burst.seconds, burst.executed, burst.dedup_hits,
    );

    println!("\nkill-recovery: GA run killed after generation 4, lease {KILL_LEASE:?} ...");
    let ga = GaConfig {
        population: if quick { 8 } else { 16 },
        generations: if quick { 10 } else { 16 },
        seed: 42,
        workers: 1,
        ..GaConfig::default()
    };
    let kill_workload = micro::line_bursts(2, 4, if quick { 60 } else { 240 });
    let kill = run_kill_recovery(&kill_workload, &ga);
    println!(
        "  recovered in {:.3} s: {} reclaims, {} checkpoint resume(s), \
         {} stale completion(s), bit-identical: {}",
        kill.seconds, kill.reclaims, kill.resumed, kill.stale_completions, kill.bit_identical,
    );
    assert!(kill.bit_identical, "kill-recovery must reproduce the reference payload bit for bit");

    println!("\nreplay: second fleet over the same persistent store ...");
    let replay = run_replay(&jobs);
    println!(
        "  {} store hits, {} executions, bit-identical: {}",
        replay.store_hits, replay.executed, replay.bit_identical,
    );
    assert_eq!(replay.executed, 0, "a replayed run must execute nothing");
    assert!(replay.bit_identical, "replayed payloads must match the originals");

    if let Some(path) = &options.json {
        let doc = json!({
            "quick": quick,
            "shards": shards as u64,
            "lease_ms": u64::try_from(KILL_LEASE.as_millis()).expect("small lease"),
            "burst": json!({
                "submissions": burst.submissions,
                "distinct_jobs": burst.distinct,
                "executed": burst.executed,
                "dedup_hits": burst.dedup_hits,
                "dedup_rate": dedup_rate,
                "seconds": burst.seconds,
                "submissions_per_sec": throughput,
            }),
            "kill_recovery": json!({
                "reclaims": kill.reclaims,
                "resumed": kill.resumed,
                "stale_completions": kill.stale_completions,
                "bit_identical": kill.bit_identical,
                "seconds": kill.seconds,
            }),
            "replay": json!({
                "store_hits": replay.store_hits,
                "executed": replay.executed,
                "bit_identical": replay.bit_identical,
            }),
        });
        ReportWriter::new(&report::FLEET, "fleet").write(path, doc).expect("writable --json path");
        println!("\nwrote {}", path.display());
    }
}
