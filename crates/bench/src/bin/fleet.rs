//! Fleet service benchmark: submission throughput under a burst of
//! duplicate specs, kill-recovery through lease reclaim, persistent memo
//! replay, and a churn chaos campaign against the self-healing layer.
//!
//! Four measurements, mirroring the fleet's claims:
//!
//! 1. **Burst** — concurrent submitter threads fire duplicate experiment
//!    specs at a running fleet; dedup-on-submit must collapse them onto
//!    one execution each (dedup hit-rate > 0) at a healthy submission
//!    throughput.
//! 2. **Kill-recovery** — a chaos-rigged worker shard is killed after a
//!    GA generation's checkpoint lands; its lease expires, the job is
//!    re-claimed, resumed from the checkpoint, and the final payload must
//!    be bit-identical to an uninterrupted reference run.
//! 3. **Replay** — a second fleet over the same persistent store answers
//!    every submission from the memo without executing anything.
//! 4. **Churn** — a seeded fault schedule drives two fleets over one
//!    budgeted persistent mirror: a worker killed mid-job, a poison job
//!    quarantined with diagnostics, transient disk faults absorbed by
//!    backoff, evictions, and a bit-rot corruption repaired
//!    bit-identically between the phases. Zero jobs lost; the whole
//!    campaign runs twice and its aggregates must be bit-identical.
//!
//! ```text
//! cargo run --release -p cohort-bench --bin fleet -- \
//!     [--quick] [--json results/BENCH_fleet.json]
//! ```

use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde_json::json;

use cohort::{Protocol, SystemSpec};
use cohort_bench::report::{self, ReportWriter};
use cohort_bench::CliOptions;
use cohort_fleet::{
    ga_payload, Disk, FaultyDisk, Fleet, FleetStats, JobQueue, JobSpec, ResultStore, StoreBudget,
    WorkerId, WorkerShard,
};
use cohort_optim::{GaConfig, GaRun, TimerProblem};
use cohort_trace::{micro, Workload};
use cohort_types::{Criticality, Cycles, Error};

/// The chaos shard's lease: short enough that recovery dominates the
/// bench, long enough that the resumed run finishes inside it.
const KILL_LEASE: Duration = Duration::from_millis(200);

/// The churn campaign's lease: three expiries of this convict the poison
/// job, and every healthy job finishes orders of magnitude inside it.
const CHURN_LEASE: Duration = Duration::from_millis(250);

/// The poison job's attempt budget in the churn campaign.
const CHURN_ATTEMPTS: u64 = 3;

/// Bound on every bench wait: generous against slow hosts, but finite —
/// a wedged fleet fails the bench with a typed error instead of hanging.
const BENCH_WAIT: Duration = Duration::from_mins(5);

/// Suppresses the backtraces of deliberate `chaos:` panics for the
/// guard's lifetime; any other panic still reports normally.
struct ChaosQuiet;

impl ChaosQuiet {
    fn install() -> Self {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let chaos = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|message| message.starts_with("chaos:"));
            if !chaos {
                default_hook(info);
            }
        }));
        ChaosQuiet
    }
}

impl Drop for ChaosQuiet {
    fn drop(&mut self) {
        // take_hook itself panics on a panicking thread; a failed assert
        // should report itself, not abort inside this Drop.
        if !std::thread::panicking() {
            let _ = std::panic::take_hook(); // back to the default hook
        }
    }
}

fn platform(cores: usize) -> SystemSpec {
    let mut b = SystemSpec::builder();
    for _ in 0..cores {
        b = b.core(Criticality::new(1).expect("static level"));
    }
    b.build().expect("non-empty")
}

fn canonical(v: &serde_json::Value) -> String {
    serde_json::to_string(v).expect("a Value serializes infallibly")
}

/// The burst workloads: `distinct` experiment jobs over distinct traces.
fn burst_jobs(distinct: usize, accesses: usize) -> Vec<JobSpec> {
    (0..distinct)
        .map(|i| JobSpec::Experiment {
            spec: platform(2),
            protocol: Protocol::Msi,
            workload: Arc::new(micro::random_shared(2, 8, accesses, 0.5, 1000 + i as u64)),
        })
        .collect()
}

struct BurstResult {
    submissions: u64,
    distinct: u64,
    executed: u64,
    dedup_hits: u64,
    seconds: f64,
}

/// Fires `submitters` concurrent threads, each submitting every job of
/// the burst set and waiting for all results; duplicate specs must
/// collapse onto one execution per distinct job.
fn run_burst(shards: usize, submitters: usize, jobs: &[JobSpec]) -> BurstResult {
    let fleet = Fleet::builder().shards(shards).build().expect("in-memory fleet");
    let start = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..submitters)
            .map(|_| {
                let client = fleet.client();
                s.spawn(move || {
                    let tickets: Vec<_> = jobs
                        .iter()
                        .map(|job| client.submit(job.clone()).expect("fleet accepts"))
                        .collect();
                    for ticket in &tickets {
                        client.wait_timeout(ticket, BENCH_WAIT).expect("job completes");
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("submitter thread");
        }
    });
    let seconds = start.elapsed().as_secs_f64();
    let stats = fleet.shutdown();
    BurstResult {
        submissions: stats.queue.submitted,
        distinct: jobs.len() as u64,
        executed: stats.executed,
        dedup_hits: stats.queue.deduplicated,
        seconds,
    }
}

struct KillResult {
    reclaims: u64,
    resumed: u64,
    stale_completions: u64,
    bit_identical: bool,
    seconds: f64,
}

/// Kills a worker mid-GA-run (after generation 4's checkpoint), lets the
/// lease expire and the claim loop resume the job, then compares the
/// final payload against an uninterrupted reference run.
fn run_kill_recovery(workload: &Workload, ga: &GaConfig) -> KillResult {
    let job = JobSpec::Optimize {
        workload: Arc::new(workload.clone()),
        timed: vec![(0, None), (1, Some(20_000))],
        ga: ga.clone(),
    };
    let queue = Arc::new(JobQueue::new(KILL_LEASE));
    let store = Arc::new(ResultStore::in_memory());
    let (fp, _) = queue.submit(job).expect("open queue");

    // The chaos kill is a deliberate panic; keep its backtrace out of the
    // bench output.
    let _quiet = ChaosQuiet::install();
    let start = Instant::now();
    let shard = WorkerShard::new(WorkerId::new(0), Arc::clone(&queue), Arc::clone(&store))
        .crash_after_generations(4);
    let stats = shard.stats();
    let handle = std::thread::spawn(move || shard.run());
    assert!(queue.wait_done(fp), "the job completes despite the kill");
    queue.close();
    handle.join().expect("shard thread");
    let seconds = start.elapsed().as_secs_f64();

    let problem = TimerProblem::builder(workload)
        .timed(0, None)
        .timed(1, Some(Cycles::new(20_000)))
        .build()
        .expect("valid problem");
    let reference = ga_payload(&problem, &GaRun::new(&problem).config(ga).run());
    let stored = store.get(fp).expect("intact store").expect("payload stored");
    KillResult {
        reclaims: queue.stats().reclaims,
        resumed: stats.resumed.load(Ordering::Relaxed),
        stale_completions: queue.stats().stale_completions,
        bit_identical: canonical(&stored) == canonical(&reference),
        seconds,
    }
}

struct ReplayResult {
    store_hits: u64,
    executed: u64,
    bit_identical: bool,
}

/// Runs the burst jobs through a persistent fleet, then replays them
/// through a second fleet over the same directory: everything must come
/// from the memo, bit-identical, with zero executions.
fn run_replay(jobs: &[JobSpec]) -> ReplayResult {
    let dir = std::env::temp_dir().join(format!("cohort-fleet-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let first = Fleet::builder().shards(2).store_dir(&dir).build().expect("persistent fleet");
    let originals: Vec<String> = {
        let client = first.client();
        jobs.iter()
            .map(|j| {
                let ticket = client.submit(j.clone()).expect("fleet accepts");
                canonical(&client.wait_timeout(&ticket, BENCH_WAIT).expect("computes"))
            })
            .collect()
    };
    let _ = first.shutdown();

    let second = Fleet::builder().shards(2).store_dir(&dir).build().expect("persistent fleet");
    let replayed: Vec<String> = {
        let client = second.client();
        jobs.iter()
            .map(|j| {
                let ticket = client.submit(j.clone()).expect("fleet accepts");
                canonical(&client.wait_timeout(&ticket, BENCH_WAIT).expect("replays"))
            })
            .collect()
    };
    let stats = second.shutdown();
    std::fs::remove_dir_all(&dir).ok();
    ReplayResult {
        store_hits: stats.store_hits,
        executed: stats.executed,
        bit_identical: originals == replayed,
    }
}

/// The churn campaign's healthy jobs: distinct experiment specs over a
/// seed block disjoint from the burst set's.
fn churn_jobs(distinct: usize, accesses: usize) -> Vec<JobSpec> {
    (0..distinct)
        .map(|i| JobSpec::Experiment {
            spec: platform(2),
            protocol: Protocol::Msi,
            workload: Arc::new(micro::random_shared(2, 8, accesses, 0.5, 2000 + i as u64)),
        })
        .collect()
}

/// Picks the first seed whose fault schedule hits at least one of the
/// mirror's write paths, so every churn run absorbs at least one
/// transient disk fault. The probe renames a nonexistent source, which
/// mutates nothing whichever way it fails, and each candidate seed gets
/// a throwaway disk so probing never burns the real budget.
fn faulting_seed(paths: &[PathBuf]) -> u64 {
    let probe = Path::new("/cohort-churn-probe-src");
    (0..1_000)
        .find(|&seed| {
            paths.iter().any(|path| {
                matches!(FaultyDisk::new(seed, 2).rename(probe, path),
                         Err(e) if e.starts_with("injected"))
            })
        })
        .expect("some seed under 1000 faults at least one mirror path")
}

struct ChurnResult {
    jobs: u64,
    payloads: Vec<String>,
    replayed: Vec<String>,
    /// Quarantine diagnostics: (fingerprint, attempts, final worker).
    quarantine: Vec<(String, u64, u64)>,
    cold: FleetStats,
    warm: FleetStats,
    disk_faults: u64,
    /// The deterministic digest two runs must agree on bit for bit.
    aggregate: String,
    seconds: f64,
}

/// One churn campaign: two fleets over one budgeted persistent mirror
/// under a seeded fault schedule.
///
/// The **cold** phase runs a single shard (so the kill schedule is
/// deterministic) with a poison job, a worker killed right before its
/// first completion, transient disk faults on the mirror and an
/// entry-budget forcing evictions. The **warm** phase reopens the mirror
/// after one entry is bit-rotted, and must repair it bit-identically
/// while serving the rest from the memo. Every job submitted in either
/// phase reaches a terminal outcome — payload or typed quarantine.
fn run_churn(run: usize, accesses: usize) -> ChurnResult {
    let dir = std::env::temp_dir().join(format!("cohort-churn-{}-{run}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let jobs = churn_jobs(6, accesses);
    let fingerprints: Vec<_> = jobs.iter().map(JobSpec::fingerprint).collect();
    let poison = JobSpec::Experiment {
        spec: platform(2),
        protocol: Protocol::Msi,
        workload: Arc::new(micro::random_shared(2, 8, accesses, 0.5, 2_999)),
    };
    let poison_fp = poison.fingerprint();
    let tmp_paths: Vec<PathBuf> =
        fingerprints.iter().map(|fp| dir.join(format!("{}.json.tmp", fp.to_hex()))).collect();
    let disk = Arc::new(FaultyDisk::new(faulting_seed(&tmp_paths), 2));
    let budget = StoreBudget { max_entries: Some(4), max_bytes: None };

    let _quiet = ChaosQuiet::install();
    let start = Instant::now();

    // Cold phase: kills, quarantine, disk faults, evictions.
    let fleet = Fleet::builder()
        .shards(1)
        .lease(CHURN_LEASE)
        .max_attempts(CHURN_ATTEMPTS)
        .store_dir(&dir)
        .disk(Arc::clone(&disk) as Arc<dyn Disk>)
        .store_budget(budget)
        .poison(poison_fp)
        .crash_before_complete(1)
        .build()
        .expect("persistent churn fleet");
    let client = fleet.client();
    let poison_ticket = client.submit(poison).expect("fleet accepts");
    let tickets: Vec<_> =
        jobs.iter().map(|j| client.submit(j.clone()).expect("fleet accepts")).collect();
    let payloads: Vec<String> = tickets
        .iter()
        .map(|t| canonical(&client.wait_timeout(t, BENCH_WAIT).expect("healthy job completes")))
        .collect();
    let poison_err = client
        .wait_timeout(&poison_ticket, BENCH_WAIT)
        .expect_err("the poison job must convict, not answer");
    assert!(
        matches!(poison_err, Error::JobQuarantined { attempts: CHURN_ATTEMPTS, .. }),
        "poison surfaces as a typed quarantine with its attempt count: {poison_err}"
    );
    let quarantine: Vec<(String, u64, u64)> = fleet
        .quarantines()
        .iter()
        .map(|d| (d.fingerprint.to_hex(), d.attempts, d.worker.get()))
        .collect();
    let cold = fleet.shutdown();
    assert_eq!(cold.health.quarantined, 1, "exactly the poison job is quarantined");
    assert!(
        cold.health.reclaims >= CHURN_ATTEMPTS,
        "poison reclaims plus the kill reclaim: {} reclaims",
        cold.health.reclaims
    );
    assert!(cold.health.disk_retries >= 1, "at least one transient disk fault was absorbed");
    assert_eq!(cold.health.disk_give_ups, 0, "no mirror write was abandoned");
    assert_eq!(cold.health.evictions, 2, "six entries over a four-entry budget evict two");

    // Bit-rot between the phases: tamper a surviving entry's payload but
    // leave the envelope parseable, so the repair can be certified
    // bit-identical against the recorded fingerprint.
    let victim = dir.join(format!("{}.json", fingerprints[2].to_hex()));
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&victim).expect("survivor on disk"))
            .expect("entry parses");
    let mut fields = doc.as_object().expect("entry is an object").clone();
    fields.insert("payload".into(), json!({"tampered": "bit rot"}));
    std::fs::write(&victim, canonical(&serde_json::Value::Object(fields))).expect("tamper lands");

    // Warm phase: quarantine-at-open, repair by re-derivation, memo
    // replay for the untouched survivors. Submission *reads* the memo,
    // so the survivors are answered — and pulled into memory — at
    // submit time with `cached` tickets; the evictions triggered by
    // the fresh puts (the budget still only holds four) then reclaim
    // only disk the run no longer needs. One shard keeps the fresh
    // executions' claim order FIFO.
    let fleet = Fleet::builder()
        .shards(1)
        .max_attempts(CHURN_ATTEMPTS)
        .store_dir(&dir)
        .disk(Arc::clone(&disk) as Arc<dyn Disk>)
        .store_budget(budget)
        .build()
        .expect("persistent churn fleet");
    let client = fleet.client();
    let order = [3usize, 4, 5, 0, 1, 2]; // survivors, evicted, tampered
    let mut tickets: Vec<Option<cohort_fleet::Ticket>> = (0..jobs.len()).map(|_| None).collect();
    for &i in &order {
        let ticket = client.submit(jobs[i].clone()).expect("fleet accepts");
        assert_eq!(
            ticket.cached,
            (3..6).contains(&i),
            "exactly the surviving disk entries resolve at submission"
        );
        tickets[i] = Some(ticket);
    }
    let replayed: Vec<String> = tickets
        .iter()
        .map(|t| {
            let t = t.as_ref().expect("every job submitted");
            canonical(&client.wait_timeout(t, BENCH_WAIT).expect("job completes"))
        })
        .collect();
    let warm = fleet.shutdown();
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(
        (warm.health.corrupt_quarantined, warm.health.repairs),
        (1, 1),
        "the bit-rotted entry is quarantined and repaired exactly once"
    );
    assert_eq!(
        warm.health.repairs_bit_identical, warm.health.repairs,
        "every repair re-derives the recorded payload bit for bit"
    );
    assert_eq!(warm.health.quarantined, 0, "no healthy job is ever convicted");
    assert_eq!(
        (warm.executed, warm.served),
        (3, 0),
        "the two evicted jobs and the repair execute; the survivors resolved at submit"
    );
    assert_eq!(warm.health.evictions, 2, "the fresh puts evict only already-served disk");
    let sidecar = dir.join(format!("{}.json.corrupt", fingerprints[2].to_hex()));
    assert!(
        std::fs::read_to_string(&sidecar).is_ok_and(|t| t.contains("tampered")),
        "the corrupt bytes are preserved as a forensic sidecar"
    );
    std::fs::remove_dir_all(&dir).ok();

    let aggregate = canonical(&json!({
        "payloads": payloads.clone(),
        "replayed": replayed.clone(),
        "quarantine": quarantine
            .iter()
            .map(|(fp, attempts, worker)| json!({
                "fingerprint": fp, "attempts": *attempts, "worker": *worker,
            }))
            .collect::<Vec<serde_json::Value>>(),
        "cold": json!({
            "executed": cold.executed,
            "served": cold.served,
            "quarantined": cold.health.quarantined,
            "evictions": cold.health.evictions,
        }),
        "warm": json!({
            "executed": warm.executed,
            "served": warm.served,
            "corrupt_quarantined": warm.health.corrupt_quarantined,
            "repairs": warm.health.repairs,
            "repairs_bit_identical": warm.health.repairs_bit_identical,
            "evictions": warm.health.evictions,
        }),
    }));
    ChurnResult {
        jobs: jobs.len() as u64 + 1,
        payloads,
        replayed,
        quarantine,
        cold,
        warm,
        disk_faults: disk.injected(),
        aggregate,
        seconds,
    }
}

fn main() {
    let options = CliOptions::parse_or_exit();
    let quick = options.quick;

    let shards = if quick { 2 } else { 4 };
    let submitters = if quick { 4 } else { 8 };
    let distinct = if quick { 3 } else { 6 };
    let accesses = if quick { 200 } else { 2_000 };
    let jobs = burst_jobs(distinct, accesses);

    println!("fleet service benchmark ({})", if quick { "quick" } else { "full" });
    println!("\nburst: {submitters} submitters × {distinct} jobs over {shards} shards ...");
    let burst = run_burst(shards, submitters, &jobs);
    let dedup_rate = burst.dedup_hits as f64 / burst.submissions as f64;
    let throughput = burst.submissions as f64 / burst.seconds;
    println!(
        "  {} submissions in {:.3} s ({throughput:.0}/s), {} executed, \
         {} deduplicated (rate {dedup_rate:.2})",
        burst.submissions, burst.seconds, burst.executed, burst.dedup_hits,
    );

    println!("\nkill-recovery: GA run killed after generation 4, lease {KILL_LEASE:?} ...");
    let ga = GaConfig {
        population: if quick { 8 } else { 16 },
        generations: if quick { 10 } else { 16 },
        seed: 42,
        workers: 1,
        ..GaConfig::default()
    };
    let kill_workload = micro::line_bursts(2, 4, if quick { 60 } else { 240 });
    let kill = run_kill_recovery(&kill_workload, &ga);
    println!(
        "  recovered in {:.3} s: {} reclaims, {} checkpoint resume(s), \
         {} stale completion(s), bit-identical: {}",
        kill.seconds, kill.reclaims, kill.resumed, kill.stale_completions, kill.bit_identical,
    );
    assert!(kill.bit_identical, "kill-recovery must reproduce the reference payload bit for bit");

    println!("\nreplay: second fleet over the same persistent store ...");
    let replay = run_replay(&jobs);
    println!(
        "  {} store hits, {} executions, bit-identical: {}",
        replay.store_hits, replay.executed, replay.bit_identical,
    );
    assert_eq!(replay.executed, 0, "a replayed run must execute nothing");
    assert!(replay.bit_identical, "replayed payloads must match the originals");

    println!(
        "\nchurn: kills + poison + disk faults + bit rot over a budgeted mirror, \
         lease {CHURN_LEASE:?}, attempt budget {CHURN_ATTEMPTS} ..."
    );
    let churn_accesses = if quick { 200 } else { 1_000 };
    let churn = run_churn(1, churn_accesses);
    let churn_repeat = run_churn(2, churn_accesses);
    let churn_identical = churn.aggregate == churn_repeat.aggregate;
    let lost = churn.jobs - churn.payloads.len() as u64 - churn.quarantine.len() as u64;
    println!(
        "  {:.3} s + {:.3} s: {} jobs, {} lost, {} reclaims, 1 kill, \
         quarantined after {} attempts, {} disk fault(s) absorbed, \
         {} + {} evictions, {} repair(s) (bit-identical {}), runs identical: {churn_identical}",
        churn.seconds,
        churn_repeat.seconds,
        churn.jobs,
        lost,
        churn.cold.health.reclaims,
        churn.quarantine[0].1,
        churn.disk_faults,
        churn.cold.health.evictions,
        churn.warm.health.evictions,
        churn.warm.health.repairs,
        churn.warm.health.repairs_bit_identical,
    );
    assert_eq!(lost, 0, "every churn job reaches a terminal outcome");
    assert_eq!(churn.payloads, churn.replayed, "the warm phase reproduces every payload");
    assert!(churn_identical, "two runs of the churn campaign must agree bit for bit");

    if let Some(path) = &options.json {
        let doc = json!({
            "quick": quick,
            "shards": shards as u64,
            "lease_ms": u64::try_from(KILL_LEASE.as_millis()).expect("small lease"),
            "burst": json!({
                "submissions": burst.submissions,
                "distinct_jobs": burst.distinct,
                "executed": burst.executed,
                "dedup_hits": burst.dedup_hits,
                "dedup_rate": dedup_rate,
                "seconds": burst.seconds,
                "submissions_per_sec": throughput,
            }),
            "kill_recovery": json!({
                "reclaims": kill.reclaims,
                "resumed": kill.resumed,
                "stale_completions": kill.stale_completions,
                "bit_identical": kill.bit_identical,
                "seconds": kill.seconds,
            }),
            "replay": json!({
                "store_hits": replay.store_hits,
                "executed": replay.executed,
                "bit_identical": replay.bit_identical,
            }),
            "churn": json!({
                "jobs": churn.jobs,
                "lost": lost,
                "runs_identical": churn_identical,
                "kills": 1u64,
                "quarantine": churn.quarantine
                    .iter()
                    .map(|(fp, attempts, worker)| json!({
                        "fingerprint": fp, "attempts": *attempts, "worker": *worker,
                    }))
                    .collect::<Vec<serde_json::Value>>(),
                "disk_faults_injected": churn.disk_faults,
                "cold_executed": churn.cold.executed,
                "cold_served": churn.cold.served,
                "warm_executed": churn.warm.executed,
                "warm_served": churn.warm.served,
                "cold_health": churn.cold.health.to_json(),
                "warm_health": churn.warm.health.to_json(),
                "seconds": json!({ "run1": churn.seconds, "run2": churn_repeat.seconds }),
            }),
        });
        ReportWriter::new(&report::FLEET, "fleet").write(path, doc).expect("writable --json path");
        println!("\nwrote {}", path.display());
    }
}
