//! Workload utility: generate the synthetic kernels to files, convert
//! between the JSON and binary codecs, and inspect trace statistics — the
//! operational side of the SPLASH-2 substitution (traces can be exported,
//! shared, and re-imported instead of regenerated).
//!
//! ```text
//! trace-tool gen <kernel> <cores> <out.{json|bin}> [total] [seed]
//! trace-tool convert <in.{json|bin}> <out.{json|bin}>
//! trace-tool stats <in.{json|bin}>
//! ```

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use cohort_trace::{codec, Kernel, KernelSpec, Workload};

fn load(path: &str) -> Result<Workload, String> {
    let ext = Path::new(path).extension().and_then(|e| e.to_str()).unwrap_or("");
    match ext {
        "json" => {
            let text = fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            codec::from_json(&text).map_err(|e| e.to_string())
        }
        "bin" => {
            let bytes = fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
            codec::from_binary(&bytes).map_err(|e| e.to_string())
        }
        other => Err(format!("unknown trace extension `{other}` (use .json or .bin)")),
    }
}

fn save(workload: &Workload, path: &str) -> Result<(), String> {
    let ext = Path::new(path).extension().and_then(|e| e.to_str()).unwrap_or("");
    match ext {
        "json" => {
            let text = codec::to_json(workload).map_err(|e| e.to_string())?;
            fs::write(path, text).map_err(|e| format!("write {path}: {e}"))
        }
        "bin" => {
            let bytes = codec::to_binary(workload).map_err(|e| e.to_string())?;
            fs::write(path, bytes).map_err(|e| format!("write {path}: {e}"))
        }
        other => Err(format!("unknown trace extension `{other}` (use .json or .bin)")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => {
            let [_, kernel, cores, out, rest @ ..] = args.as_slice() else {
                return Err("usage: trace-tool gen <kernel> <cores> <out> [total] [seed]".into());
            };
            let kernel: Kernel = kernel.parse().map_err(|e| format!("{e}"))?;
            let cores: usize = cores.parse().map_err(|e| format!("bad core count: {e}"))?;
            if cores == 0 {
                return Err("core count must be positive".into());
            }
            let mut spec = KernelSpec::new(kernel, cores);
            if let Some(total) = rest.first() {
                spec =
                    spec.with_total_requests(total.parse().map_err(|e| format!("bad total: {e}"))?);
            }
            if let Some(seed) = rest.get(1) {
                spec = spec.with_seed(seed.parse().map_err(|e| format!("bad seed: {e}"))?);
            }
            let workload = spec.generate();
            save(&workload, out)?;
            println!("wrote {} ({} accesses, {} cores)", out, workload.total_accesses(), cores);
            Ok(())
        }
        Some("convert") => {
            let [_, input, output] = args.as_slice() else {
                return Err("usage: trace-tool convert <in> <out>".into());
            };
            let workload = load(input)?;
            save(&workload, output)?;
            println!("converted {input} → {output}");
            Ok(())
        }
        Some("stats") => {
            let [_, input] = args.as_slice() else {
                return Err("usage: trace-tool stats <in>".into());
            };
            let workload = load(input)?;
            println!("workload `{}` — {} cores", workload.name(), workload.cores());
            println!(
                "{:>5} {:>10} {:>8} {:>8} {:>13} {:>14}",
                "core", "accesses", "loads", "stores", "unique lines", "compute cycles"
            );
            for (i, trace) in workload.traces().iter().enumerate() {
                let s = trace.stats();
                println!(
                    "{i:>5} {:>10} {:>8} {:>8} {:>13} {:>14}",
                    s.accesses(),
                    s.loads,
                    s.stores,
                    s.unique_lines,
                    s.compute.get()
                );
            }
            Ok(())
        }
        _ => Err("usage: trace-tool gen|convert|stats …".into()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}
