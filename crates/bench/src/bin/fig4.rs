//! Regenerates **Figure 4**: the example operation of the proposed
//! architecture. Quad-core system, c0/c1/c3 timed, c2 MSI; all four cores
//! write line A. The timeline shows the RROF hand-over chain: c1 waits out
//! θ0, c2 waits out θ1, and c2 (running MSI) hands the line to c3
//! immediately.
//!
//! ```text
//! cargo run --release -p cohort-bench --bin fig4
//! ```

use cohort_sim::{EventKind, EventLogProbe, SimBuilder, SimConfig};
use cohort_trace::micro;
use cohort_types::TimerValue;

fn main() {
    let theta = 40;
    let config = SimConfig::builder(4)
        .timer(0, TimerValue::timed(theta).expect("small"))
        .timer(1, TimerValue::timed(theta).expect("small"))
        .timer(3, TimerValue::timed(theta).expect("small"))
        .build()
        .expect("valid");
    let workload = micro::figure4();
    let mut sim =
        SimBuilder::new(config, &workload).probe(EventLogProbe::new()).build().expect("sim");
    sim.run().expect("runs");

    println!("Figure 4 — Example operation (c0, c1, c3 timed with θ = {theta}; c2 MSI)");
    println!("All four cores issue a write request to cache line A = L0x40.\n");
    let mut last_fill_of_a: Option<(usize, u64)> = None;
    for event in sim.probe() {
        let cycle = event.cycle.get();
        let text = match &event.kind {
            EventKind::MissIssued { core, line, .. } if line.raw() == 0x40 => {
                format!("❶..❹ c{core} issues its write request to A")
            }
            EventKind::Broadcast { core, line, .. } if line.raw() == 0x40 => {
                format!("c{core}'s GetM(A) is broadcast (RROF grant)")
            }
            EventKind::Broadcast { core, line, .. } => {
                format!("c{core} broadcasts its request to {line} (θ expired mid-activity)")
            }
            EventKind::TransferStart { from, to, line } if line.raw() == 0x40 => match from {
                None => format!("shared memory sends A to c{to}"),
                Some(f) => {
                    let note = match last_fill_of_a {
                        Some((owner, at)) if *f == owner && cycle - at < theta => {
                            " (immediate MSI hand-over)"
                        }
                        _ => " (after the owner's timer expired)",
                    };
                    format!("c{f} sends A to c{to}{note}")
                }
            },
            EventKind::Fill { core, line, latency, .. } if line.raw() == 0x40 => {
                last_fill_of_a = Some((*core, cycle));
                format!("c{core} receives A and starts θ{core} (request latency {latency})")
            }
            EventKind::Invalidate { core, line, .. } if line.raw() == 0x40 => {
                format!("c{core} invalidates its copy of A")
            }
            _ => continue,
        };
        println!("  cycle {cycle:>4}: {text}");
    }
    println!("\nKey property (paper §III-C): the RROF order serves A in broadcast order");
    println!("c0 → c1 → c2 → c3; timed owners hold A for θ, the MSI core c2 gives it");
    println!("up to c3 as soon as the transfer can be scheduled.");
}
