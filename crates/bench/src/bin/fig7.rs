//! Regenerates **Figure 7**: the mode-switch experiment. The requirement of
//! the highest-criticality core `c0` tightens over three stages; with
//! CoHoRT's hardware mode switching the system escalates modes (degrading
//! lower-criticality cores to MSI) and stays schedulable, while without
//! mode switching the stage-1 bound exceeds the tightened requirements.
//!
//! The paper's concrete Γ values are unpublished; as in the paper, the
//! stages are chosen so that stage 2 overshoots mode 2 (forcing a switch to
//! mode 3) and stage 3 forces mode 4. The implied reduction factors are
//! printed next to the paper's (≈1.5× and ≈1.8×).
//!
//! ```text
//! cargo run --release -p cohort-bench --bin fig7 [-- --quick] [--json <path>]
//! ```

use cohort::{ExperimentJob, ModeController, ModeSetup, Protocol, Sweep};
use cohort_bench::report::{self, ReportWriter};
use cohort_bench::{bench_ga, fig7_stage_requirements, mode_switch_spec, CliOptions};
use cohort_trace::{Kernel, KernelSpec};
use cohort_types::{CoreId, Cycles, Mode};
use serde_json::json;

fn main() {
    let options = CliOptions::parse_or_exit();
    let spec = mode_switch_spec();
    let mut kernel = KernelSpec::new(Kernel::Fft, 4);
    if options.quick {
        kernel = kernel.with_total_requests(Kernel::Fft.default_total_requests() / 10);
    }
    let workload = kernel.generate();
    let ga = bench_ga(options.quick);

    // Offline: LUT + per-mode bounds (Fig. 2a flow).
    let config = ModeSetup::new(&spec, &workload).ga(&ga).run().expect("offline flow succeeds");
    let c0 = CoreId::new(0);
    let bound = |m: u32| {
        config
            .wcml_bound(c0, Mode::new(m).expect("static"))
            .expect("mode exists")
            .expect("c0 is bounded in every mode")
            .get()
    };
    let bounds: Vec<u64> = (1..=4).map(bound).collect();

    println!("Figure 7 — Mode-switch experiment (fft, criticalities 4/3/2/1)\n");
    println!("c0's analytical WCML bound per mode (cycles):");
    for (m, b) in bounds.iter().enumerate() {
        println!("  mode {}: {:>12}", m + 1, b);
    }

    // Stage requirements derived from the bound curve (shared with repro).
    let stages = fig7_stage_requirements(&bounds);
    let (stage1, stage2, stage3) = (stages[0], stages[1], stages[2]);

    println!("\nStage requirements for c0 (derived from the bound curve):");
    println!(
        "  stage 1: {} | stage 2: {} (÷{:.2}, paper ÷1.5) | stage 3: {} (÷{:.2}, paper ÷1.8)",
        stage1,
        stage2,
        stage1 as f64 / stage2 as f64,
        stage3,
        stage2 as f64 / stage3 as f64
    );

    // Run-time: the controller walks the stages.
    let mut controller = ModeController::new(config.clone());
    println!(
        "\n{:<7} {:>14} {:>10} {:>16} {:>14}",
        "stage", "requirement", "decision", "bound@mode", "schedulable"
    );
    for (i, &gamma) in stages.iter().enumerate() {
        let decision = controller.requirement_changed(c0, Cycles::new(gamma)).expect("c0 exists");
        let (label, at) = match decision.mode() {
            Some(m) => (format!("{m}"), bound(m.index())),
            None => ("-".to_string(), 0),
        };
        println!(
            "{:<7} {:>14} {:>10} {:>16} {:>14}",
            i + 1,
            gamma,
            label,
            if at > 0 { at.to_string() } else { "-".into() },
            decision.mode().is_some()
        );
    }

    // Without mode switching: the system stays in mode 1.
    println!("\nWithout mode switching (stuck at mode 1, bound {}):", bounds[0]);
    for (i, &gamma) in stages.iter().enumerate() {
        println!(
            "  stage {}: requirement {:>12} → {}",
            i + 1,
            gamma,
            if bounds[0] <= gamma { "schedulable" } else { "UNSCHEDULABLE" }
        );
    }

    // Cross-check with the simulator: measured WCML of c0 under the timers
    // of the mode the controller settled on per stage, and soundness of the
    // bound the decision relied on. The controller walk is inherently
    // sequential; the per-stage simulations are not, so they run as one
    // sweep on the bounded pool.
    println!("\nSimulator cross-check (measured c0 WCML under each stage's mode):");
    let mut controller = ModeController::new(config.clone());
    let stage_modes: Vec<(usize, u64, Option<Mode>)> = stages
        .iter()
        .enumerate()
        .map(|(i, &gamma)| {
            let decision =
                controller.requirement_changed(c0, Cycles::new(gamma)).expect("c0 exists");
            (i + 1, gamma, decision.mode())
        })
        .collect();
    let schedulable: Vec<&(usize, u64, Option<Mode>)> =
        stage_modes.iter().filter(|(_, _, m)| m.is_some()).collect();
    let outcomes = Sweep::builder()
        .jobs(schedulable.iter().map(|(stage, _, mode)| {
            let mode = mode.expect("filtered to schedulable stages");
            let timers = config.lut.timers_for(mode).expect("mode exists").to_vec();
            ExperimentJob::new(spec.clone(), Protocol::Cohort { timers }, workload.clone())
                .with_label(format!("fig7/stage-{stage}/mode-{mode}"))
        }))
        .build()
        .run()
        .into_outcomes()
        .expect("simulation succeeds");
    let mut measured_walk = Vec::new();
    let mut results = schedulable.iter().zip(&outcomes);
    for (stage, gamma, mode) in &stage_modes {
        let Some(mode) = mode else {
            println!("  stage {stage}: unschedulable");
            continue;
        };
        let (_, outcome) = results.next().expect("one outcome per schedulable stage");
        outcome.check_soundness().expect("bounds dominate");
        let measured = outcome.stats.cores[0].total_latency.get();
        measured_walk.push((mode.index(), measured));
        println!(
            "  stage {stage}: mode {mode} measured {measured:>12} ≤ bound {:>12} ≤ Γ {gamma:>12}: {}",
            bound(mode.index()),
            measured <= *gamma && bound(mode.index()) <= *gamma
        );
    }

    if let Some(path) = &options.json {
        let cross_check: Vec<serde_json::Value> = measured_walk
            .iter()
            .map(|&(mode, measured)| {
                json!({
                    "mode": mode,
                    "measured_c0_wcml": measured,
                    "bound": bound(mode),
                })
            })
            .collect();
        let doc = json!({
            "c0_bounds_per_mode": bounds.clone(),
            "stage_requirements": stages.to_vec(),
            "mode_walk": stage_modes
                .iter()
                .map(|(_, _, m)| m.map(Mode::index))
                .collect::<Vec<Option<u32>>>(),
            "cross_check": cross_check,
        });
        ReportWriter::new(&report::FIG7, "fig7").write(path, doc).expect("writable --json path");
        println!("\nwrote machine-readable results to {}", path.display());
    }
}
