//! Regenerates **Figure 7**: the mode-switch experiment. The requirement of
//! the highest-criticality core `c0` tightens over three stages; with
//! CoHoRT's hardware mode switching the system escalates modes (degrading
//! lower-criticality cores to MSI) and stays schedulable, while without
//! mode switching the stage-1 bound exceeds the tightened requirements.
//!
//! The paper's concrete Γ values are unpublished; as in the paper, the
//! stages are chosen so that stage 2 overshoots mode 2 (forcing a switch to
//! mode 3) and stage 3 forces mode 4. The implied reduction factors are
//! printed next to the paper's (≈1.5× and ≈1.8×).
//!
//! ```text
//! cargo run --release -p cohort-bench --bin fig7 [-- --quick]
//! ```

use cohort::{configure_modes, ModeController, Protocol};
use cohort_bench::{bench_ga, fig7_stage_requirements, mode_switch_spec, CliOptions};
use cohort_trace::{Kernel, KernelSpec};
use cohort_types::{CoreId, Cycles, Mode};

fn main() {
    let options = CliOptions::parse(std::env::args());
    let spec = mode_switch_spec();
    let mut kernel = KernelSpec::new(Kernel::Fft, 4);
    if options.quick {
        kernel = kernel.with_total_requests(Kernel::Fft.default_total_requests() / 10);
    }
    let workload = kernel.generate();
    let ga = bench_ga(options.quick);

    // Offline: LUT + per-mode bounds (Fig. 2a flow).
    let config = configure_modes(&spec, &workload, &ga).expect("offline flow succeeds");
    let c0 = CoreId::new(0);
    let bound = |m: u32| {
        config
            .wcml_bound(c0, Mode::new(m).expect("static"))
            .expect("mode exists")
            .expect("c0 is bounded in every mode")
            .get()
    };
    let bounds: Vec<u64> = (1..=4).map(bound).collect();

    println!("Figure 7 — Mode-switch experiment (fft, criticalities 4/3/2/1)\n");
    println!("c0's analytical WCML bound per mode (cycles):");
    for (m, b) in bounds.iter().enumerate() {
        println!("  mode {}: {:>12}", m + 1, b);
    }

    // Stage requirements derived from the bound curve (shared with repro).
    let stages = fig7_stage_requirements(&bounds);
    let (stage1, stage2, stage3) = (stages[0], stages[1], stages[2]);

    println!("\nStage requirements for c0 (derived from the bound curve):");
    println!(
        "  stage 1: {} | stage 2: {} (÷{:.2}, paper ÷1.5) | stage 3: {} (÷{:.2}, paper ÷1.8)",
        stage1,
        stage2,
        stage1 as f64 / stage2 as f64,
        stage3,
        stage2 as f64 / stage3 as f64
    );

    // Run-time: the controller walks the stages.
    let mut controller = ModeController::new(config.clone());
    println!("\n{:<7} {:>14} {:>10} {:>16} {:>14}", "stage", "requirement", "decision", "bound@mode", "schedulable");
    for (i, &gamma) in stages.iter().enumerate() {
        let decision = controller
            .requirement_changed(c0, Cycles::new(gamma))
            .expect("c0 exists");
        let (label, at) = match decision.mode() {
            Some(m) => (format!("{m}"), bound(m.index())),
            None => ("-".to_string(), 0),
        };
        println!(
            "{:<7} {:>14} {:>10} {:>16} {:>14}",
            i + 1,
            gamma,
            label,
            if at > 0 { at.to_string() } else { "-".into() },
            decision.mode().is_some()
        );
    }

    // Without mode switching: the system stays in mode 1.
    println!("\nWithout mode switching (stuck at mode 1, bound {}):", bounds[0]);
    for (i, &gamma) in stages.iter().enumerate() {
        println!(
            "  stage {}: requirement {:>12} → {}",
            i + 1,
            gamma,
            if bounds[0] <= gamma { "schedulable" } else { "UNSCHEDULABLE" }
        );
    }

    // Cross-check with the simulator: measured WCML of c0 under the timers
    // of the mode the controller settled on per stage, and soundness of the
    // bound the decision relied on.
    println!("\nSimulator cross-check (measured c0 WCML under each stage's mode):");
    let mut controller = ModeController::new(config.clone());
    for (i, &gamma) in stages.iter().enumerate() {
        let Some(mode) = controller
            .requirement_changed(c0, Cycles::new(gamma))
            .expect("c0 exists")
            .mode()
        else {
            println!("  stage {}: unschedulable", i + 1);
            continue;
        };
        let timers = config.lut.timers_for(mode).expect("mode exists").to_vec();
        let outcome = cohort::run_experiment(&spec, &Protocol::Cohort { timers }, &workload)
            .expect("simulation succeeds");
        outcome.check_soundness().expect("bounds dominate");
        let measured = outcome.stats.cores[0].total_latency.get();
        println!(
            "  stage {}: mode {} measured {:>12} ≤ bound {:>12} ≤ Γ {:>12}: {}",
            i + 1,
            mode,
            measured,
            bound(mode.index()),
            gamma,
            measured <= gamma && bound(mode.index()) <= gamma
        );
    }
}
