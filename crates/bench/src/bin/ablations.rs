//! Ablations of the design choices DESIGN.md §5 calls out:
//!
//! 1. **Arbitration**: RROF vs plain RR vs TDM vs FCFS under identical
//!    CoHoRT timers — quantifies RROF's tighter position-keeping and TDM's
//!    idle-slot penalty.
//! 2. **Timer policy**: GA-optimized Θ vs uniform Θ vs saturation Θ vs
//!    all-MSI — quantifies requirement-awareness (§V).
//! 3. **Data path**: cache-to-cache vs staged-through-shared-memory — the
//!    PCC gap in isolation.
//! 4. **LLC model**: perfect vs finite + DRAM (the paper's footnote 1).
//!
//! ```text
//! cargo run --release -p cohort-bench --bin ablations [-- --quick]
//! ```

use std::sync::Arc;

use cohort::{ExperimentJob, Protocol, Sweep};
use cohort_bench::{bench_ga, optimize_cohort_timers, CliOptions, ConsoleObserver, CritConfig};
use cohort_sim::{
    ArbiterKind, CacheGeometry, DataPath, LlcModel, ProtocolFlavor, SimBuilder, SimConfig,
};
use cohort_trace::{Kernel, KernelSpec, Workload};
use cohort_types::{LatencyConfig, TimerValue};

fn run_config(config: SimConfig, w: &Workload) -> (u64, u64) {
    let mut sim = SimBuilder::new(config, w).build().expect("sim");
    let stats = sim.run().expect("runs");
    let worst = stats.cores.iter().map(|c| c.worst_request.get()).max().unwrap_or(0);
    (stats.execution_time().get(), worst)
}

fn main() {
    let options = CliOptions::parse_or_exit();
    let scale = if options.quick { 4_000 } else { 24_000 };
    let w = KernelSpec::new(Kernel::Ocean, 4).with_total_requests(scale).generate();
    let timers = vec![TimerValue::timed(24).expect("small"); 4];

    println!("Ablation 1 — arbitration policy (CoHoRT timers θ = 24 everywhere)");
    println!("{:<22} {:>12} {:>22}", "arbiter", "exec time", "worst request (cycles)");
    for (name, arbiter) in [
        ("RROF", ArbiterKind::Rrof),
        ("round-robin", ArbiterKind::RoundRobin),
        ("TDM (all critical)", ArbiterKind::Tdm { critical: vec![true; 4] }),
        ("FCFS (COTS)", ArbiterKind::Fcfs),
    ] {
        let config =
            SimConfig::builder(4).timers(timers.clone()).arbiter(arbiter).build().expect("valid");
        let (exec, worst) = run_config(config, &w);
        println!("{name:<22} {exec:>12} {worst:>22}");
    }

    println!("\nAblation 2 — timer policy (RROF, fft: a kernel whose saturation");
    println!("timer is orders of magnitude above the useful range)");
    let w2 = KernelSpec::new(Kernel::Fft, 4).with_total_requests(scale).generate();
    let spec = CritConfig::AllCr.spec();
    let ga = bench_ga(options.quick);
    let optimized = optimize_cohort_timers(CritConfig::AllCr, &w2, &ga).expect("ga");
    let saturated: Vec<TimerValue> = {
        use cohort_optim::TimerProblem;
        let mut b = TimerProblem::builder(&w2);
        for i in 0..4 {
            b = b.timed(i, None);
        }
        let p = b.build().expect("problem");
        p.timers_from_genes(p.theta_saturations())
    };
    println!("{:<28} {:>12} {:>14} {:>20}", "policy", "exec time", "avg WCML bound", "timers");
    // The four timer policies are independent jobs: run them as one sweep
    // on the bounded pool (ConsoleObserver narrates progress on stderr).
    let policies = [
        ("GA-optimized (ours)", optimized),
        ("uniform θ = 24", timers.clone()),
        ("saturation θ", saturated),
        ("all MSI (θ = -1)", vec![TimerValue::MSI; 4]),
    ];
    let shared = Arc::new(w2.clone());
    let report = Sweep::builder()
        .jobs(policies.iter().map(|(name, t)| {
            ExperimentJob::new(
                spec.clone(),
                Protocol::Cohort { timers: t.clone() },
                Arc::clone(&shared),
            )
            .with_label((*name).to_string())
        }))
        .observer(&ConsoleObserver)
        .build()
        .run();
    let outcomes = report.into_outcomes().expect("runs");
    for ((name, t), outcome) in policies.iter().zip(&outcomes) {
        let avg_bound: u64 = outcome
            .bounds
            .as_ref()
            .expect("bounded")
            .iter()
            .map(|b| b.wcml.expect("bounded").get())
            .sum::<u64>()
            / 4;
        let ts: Vec<String> = t.iter().map(ToString::to_string).collect();
        println!(
            "{name:<28} {:>12} {avg_bound:>14} {:>20}",
            outcome.execution_time(),
            format!("[{}]", ts.join(","))
        );
    }

    println!("\nAblation 3 — data path (all-MSI, RROF)");
    for (name, path) in [
        ("cache-to-cache", DataPath::CacheToCache),
        ("via shared memory", DataPath::ViaSharedMemory),
    ] {
        let config = SimConfig::builder(4).data_path(path).build().expect("valid");
        let (exec, worst) = run_config(config, &w);
        println!("{name:<22} exec {exec:>12}  worst request {worst:>8}");
    }

    println!("\nAblation 4 — LLC model (CoHoRT timers, RROF; footnote 1)");
    for (name, llc, mem) in [
        ("perfect LLC", LlcModel::Perfect, 0),
        ("finite 8-way + DRAM", LlcModel::Finite(CacheGeometry::paper_llc()), 100),
    ] {
        let config = SimConfig::builder(4)
            .timers(timers.clone())
            .llc(llc)
            .latency(LatencyConfig::paper().with_memory(mem))
            .build()
            .expect("valid");
        let (exec, worst) = run_config(config, &w);
        println!("{name:<22} exec {exec:>12}  worst request {worst:>8}");
    }
    println!("\nAblation 5 — MSHR depth (hits-over-misses headroom; CoHoRT timers)");
    for mshr in [1usize, 2, 4] {
        let config = SimConfig::builder(4)
            .timers(timers.clone())
            .mshr_per_core(mshr)
            .build()
            .expect("valid");
        let (exec, worst) = run_config(config, &w);
        println!("{mshr} MSHR/core          exec {exec:>12}  worst request {worst:>8}");
    }
    println!("\n(The timing analysis assumes one outstanding request per core; deeper");
    println!("MSHRs trade Eq. 1 applicability for throughput — an extension knob.)");

    println!("\nAblation 6 — protocol flavor (MSI baseline vs the MESI extension)");
    println!("Workload: private read-modify-write sweeps (load a line, then update");
    println!("it) — the access shape the Exclusive state exists for.");
    let rmw = {
        use cohort_trace::{Trace, TraceOp};
        let traces = (0..4usize)
            .map(|core| {
                let base = 0x1000 * (core as u64 + 1);
                let mut ops = Vec::new();
                for i in 0..(scale / 8) {
                    let line = base + i % 200;
                    ops.push(TraceOp::load(line).after(3));
                    ops.push(TraceOp::store(line).after(2));
                }
                Trace::from_ops(ops)
            })
            .collect();
        Workload::new("private-rmw", traces).expect("non-empty")
    };
    for (name, flavor) in
        [("MSI (paper)", ProtocolFlavor::Msi), ("MESI (extension)", ProtocolFlavor::Mesi)]
    {
        let config =
            SimConfig::builder(4).timers(timers.clone()).flavor(flavor).build().expect("valid");
        let mut sim = SimBuilder::new(config, &rmw).build().expect("sim");
        let stats = sim.run().expect("runs");
        let hits: u64 = stats.cores.iter().map(|c| c.hits).sum();
        println!(
            "{name:<22} exec {:>12}  total hits {hits:>8}  broadcasts {:>8}",
            stats.execution_time().get(),
            stats.broadcasts
        );
    }
}
