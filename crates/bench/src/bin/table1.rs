//! Regenerates **Table I**: predictable-coherence works vs the four MCS
//! challenges (heterogeneity, criticality, requirements, mode switching).
//!
//! ```text
//! cargo run --release -p cohort-bench --bin table1
//! ```

fn main() {
    println!("Table I — Predictable Coherence Works and MCS challenges\n");
    print!("{}", cohort::related::render_table_one());
}
