//! Extension study: the **schedulability region** of the mode-switch
//! mechanism. For the Figure-7 platform, sweep how tight the critical
//! core's requirement Γ can get (as a fraction of its normal-mode bound)
//! and report the lowest mode that still satisfies it — with mode
//! switching and without. The area between the two curves is the
//! schedulability CoHoRT's hardware mode switch buys.
//!
//! ```text
//! cargo run --release -p cohort-bench --bin schedulability [-- --quick] [--json <path>]
//! ```

use cohort::{ModeController, ModeSetup};
use cohort_bench::report::{self, ReportWriter};
use cohort_bench::{bench_ga, mode_switch_spec, CliOptions};
use cohort_trace::{Kernel, KernelSpec};
use cohort_types::{CoreId, Cycles, Mode};
use serde_json::json;

fn main() {
    let options = CliOptions::parse_or_exit();
    let spec = mode_switch_spec();
    let mut kernel = KernelSpec::new(Kernel::Fft, 4);
    if options.quick {
        kernel = kernel.with_total_requests(Kernel::Fft.default_total_requests() / 10);
    }
    let workload = kernel.generate();
    let config = ModeSetup::new(&spec, &workload).ga(&bench_ga(options.quick)).run().expect("flow");

    let c0 = CoreId::new(0);
    let bound1 = config.wcml_bound(c0, Mode::NORMAL).expect("mode exists").expect("bounded").get();
    let bound4 = config
        .wcml_bound(c0, Mode::new(4).expect("static"))
        .expect("mode exists")
        .expect("bounded")
        .get();

    println!("Schedulability sweep — c0's requirement as a fraction of its mode-1 bound");
    println!("(fft; modes degrade c1..c3 to MSI as needed)\n");
    println!(
        "{:>10} {:>14} {:>18} {:>22}",
        "Γ/bound₁", "Γ (cycles)", "with mode switch", "without mode switch"
    );
    let mut switch_wins = 0u32;
    let mut points = Vec::new();
    for pct in (30..=110).step_by(5) {
        let gamma = bound1 * pct / 100;
        let controller = ModeController::new(config.clone());
        let with = controller
            .first_satisfying_mode(c0, Cycles::new(gamma), Mode::NORMAL)
            .expect("c0 exists");
        let without = if bound1 <= gamma { Some(Mode::NORMAL) } else { None };
        let fmt =
            |m: Option<Mode>| m.map_or_else(|| "UNSCHEDULABLE".to_string(), |m| format!("{m}"));
        if with.is_some() && without.is_none() {
            switch_wins += 1;
        }
        points.push(json!({
            "percent_of_bound1": pct,
            "gamma": gamma,
            "with_mode_switch": with.map(Mode::index),
            "without_mode_switch": without.map(Mode::index),
        }));
        println!("{:>9}% {gamma:>14} {:>18} {:>22}", pct, fmt(with), fmt(without));
    }
    if let Some(path) = &options.json {
        let doc = json!({
            "bound_mode1": bound1,
            "bound_mode4": bound4,
            "points": points,
        });
        ReportWriter::new(&report::SCHEDULABILITY, "schedulability")
            .write(path, doc)
            .expect("writable --json path");
        println!("wrote machine-readable results to {}", path.display());
    }
    println!(
        "\nMode switching keeps the system schedulable down to Γ ≈ {:.0}% of the",
        100.0 * bound4 as f64 / bound1 as f64
    );
    println!("normal-mode bound; {switch_wins} sweep points are schedulable only because the");
    println!("lower-criticality cores can be degraded instead of suspended (§VI).");
}
