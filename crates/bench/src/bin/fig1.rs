//! Regenerates **Figure 1**: the snoop- vs time-based trade-off. Two cores
//! contend on line A; under MSI, c1's miss is short but steals c0's line
//! (turning c0's revisit ③ into a miss); under time-based coherence c0
//! keeps the line until its timer expires (③ hits) at the cost of a larger
//! miss latency for c1.
//!
//! ```text
//! cargo run --release -p cohort-bench --bin fig1
//! ```

use cohort_sim::{EventKind, EventLogProbe, SimBuilder, SimConfig};
use cohort_trace::micro;
use cohort_types::TimerValue;

fn main() {
    let workload = micro::figure1(100);

    println!("Figure 1 — Trade-offs between snoop- and time-based coherence");
    println!("(c0 stores A ①; c1 stores A ②; c0 revisits A ③ one hundred cycles later)\n");

    for (label, timer) in [
        ("(a) snoop-based (MSI)", TimerValue::MSI),
        ("(b) time-based (θ0 = 200)", TimerValue::timed(200).expect("small")),
    ] {
        let config = SimConfig::builder(2).timer(0, timer).build().expect("valid");
        let mut sim =
            SimBuilder::new(config, &workload).probe(EventLogProbe::new()).build().expect("sim");
        let stats = sim.run().expect("runs");
        println!("--- {label} ---");
        for event in sim.probe() {
            let line = match &event.kind {
                EventKind::Broadcast { core, line, kind } => {
                    format!("c{core} broadcasts {kind:?} for {line}")
                }
                EventKind::TransferStart { from, to, line } => match from {
                    Some(f) => format!("c{f} → c{to}: data transfer of {line} begins"),
                    None => format!("shared memory → c{to}: data transfer of {line} begins"),
                },
                EventKind::Fill { core, line, latency, .. } => {
                    format!("c{core} fills {line} (request latency {latency})")
                }
                EventKind::Hit { core, line } => format!("c{core} HITS {line} — request ③"),
                EventKind::MissIssued { core, line, .. } if event.cycle.get() > 60 => {
                    format!("c{core} misses {line} — request ③ lost the line")
                }
                _ => continue,
            };
            println!("  cycle {:>4}: {line}", event.cycle.get());
        }
        println!(
            "  ⇒ c0: {} hits / {} misses; c1 worst-case miss latency {} cycles\n",
            stats.cores[0].hits,
            stats.cores[0].misses,
            stats.cores[1].worst_request.get()
        );
    }
    println!("Observation (paper §III-A): snooping gives c1 the short L_miss but breaks");
    println!("c0's timing isolation; the timer restores isolation (③ hits) at the");
    println!("expense of a larger L_miss for c1.");
}
