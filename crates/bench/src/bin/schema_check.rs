//! Validates the machine-readable artifacts of the figure bins. Each flag
//! names a document kind in the validator registry below: a `--report`
//! figure report, a `--trace` Chrome-trace file, an `--optim` GA-engine
//! benchmark report, a `--chaos` fault-campaign report, a `--sim`
//! engine-throughput report, a `--fleet` fleet-service report, a
//! `--lint` static-analysis report, or a `--cert` certification-campaign
//! report. Exits
//! non-zero on the first schema violation — CI runs this after a smoke
//! regeneration.
//!
//! Document identity comes from the shared [`cohort_bench::report`]
//! definitions: the emitters stamp each document with a `"schema"` tag
//! through a `ReportWriter`, and the validators here verify the identical
//! tag — one definition, no drift. Tagless documents written before the
//! tag existed stay valid.
//!
//! ```text
//! cargo run --release -p cohort-bench --bin schema_check -- \
//!     [--report <report.json>] [--trace <trace.json>] \
//!     [--optim <optim.json>] [--chaos <chaos.json>] [--sim <sim.json>] \
//!     [--fleet <fleet.json>] [--lint <lint.json>] [--cert <cert.json>]
//! ```

use std::path::Path;
use std::process::ExitCode;

use cohort_bench::report;

type CheckResult = Result<(), String>;

fn get<'v>(
    v: &'v serde_json::Value,
    key: &str,
    what: &str,
) -> Result<&'v serde_json::Value, String> {
    v.get(key).ok_or_else(|| format!("{what}: missing key `{key}`"))
}

fn expect_u64(v: &serde_json::Value, key: &str, what: &str) -> CheckResult {
    get(v, key, what)?
        .as_u64()
        .map(|_| ())
        .ok_or_else(|| format!("{what}: `{key}` is not an unsigned integer"))
}

fn expect_f64(v: &serde_json::Value, key: &str, what: &str) -> CheckResult {
    get(v, key, what)?
        .as_f64()
        .map(|_| ())
        .ok_or_else(|| format!("{what}: `{key}` is not a number"))
}

fn expect_str(v: &serde_json::Value, key: &str, what: &str) -> CheckResult {
    get(v, key, what)?
        .as_str()
        .map(|_| ())
        .ok_or_else(|| format!("{what}: `{key}` is not a string"))
}

/// Checks one element of a report's `"runs"` array.
fn check_run(run: &serde_json::Value, index: usize) -> CheckResult {
    let what = format!("runs[{index}]");
    for key in ["config", "protocol", "workload"] {
        expect_str(run, key, &what)?;
    }
    for key in ["execution_time", "cycles"] {
        expect_u64(run, key, &what)?;
    }
    for key in ["bus_utilisation", "hit_ratio"] {
        expect_f64(run, key, &what)?;
    }
    // Nullable (non-CoHoRT protocols carry no timers) but always present.
    get(run, "timers", &what)?;
    let cores = get(run, "cores", &what)?
        .as_array()
        .ok_or_else(|| format!("{what}: `cores` is not an array"))?;
    if cores.is_empty() {
        return Err(format!("{what}: empty `cores` array"));
    }
    for (i, core) in cores.iter().enumerate() {
        let core_what = format!("{what}.cores[{i}]");
        for key in ["hits", "misses", "total_latency", "worst_request"] {
            expect_u64(core, key, &core_what)?;
        }
        for key in ["wcml_bound", "wcl_bound"] {
            // Bounds are nullable but the keys must exist (stable schema).
            get(core, key, &core_what)?;
        }
    }
    if let Some(metrics) = run.get("metrics") {
        check_metrics(metrics, &what)?;
    }
    Ok(())
}

/// Checks an embedded `MetricsReport` (`--metrics` runs only).
fn check_metrics(metrics: &serde_json::Value, run_what: &str) -> CheckResult {
    let what = format!("{run_what}.metrics");
    for key in ["cycles", "bus_busy", "mode_switches"] {
        expect_u64(metrics, key, &what)?;
    }
    expect_f64(metrics, "bus_utilisation", &what)?;
    let cores = get(metrics, "cores", &what)?
        .as_array()
        .ok_or_else(|| format!("{what}: `cores` is not an array"))?;
    for (i, core) in cores.iter().enumerate() {
        let core_what = format!("{what}.cores[{i}]");
        for key in ["accesses", "latency_p50", "latency_p99", "latency_max", "bus_busy"] {
            expect_u64(core, key, &core_what)?;
        }
        let histogram = get(core, "histogram", &core_what)?
            .as_array()
            .ok_or_else(|| format!("{core_what}: `histogram` is not an array"))?;
        let mut total = 0u64;
        for bucket in histogram {
            total += get(bucket, "count", &core_what)?
                .as_u64()
                .ok_or_else(|| format!("{core_what}: bucket count is not an integer"))?;
        }
        let accesses = get(core, "accesses", &core_what)?.as_u64().unwrap_or(0);
        if total != accesses {
            return Err(format!(
                "{core_what}: histogram counts sum to {total}, accesses is {accesses}"
            ));
        }
    }
    Ok(())
}

/// Checks a `--json` report document.
fn check_report(doc: &serde_json::Value) -> CheckResult {
    report::REPORT.check(doc)?;
    expect_str(doc, "generator", "report")?;
    let runs = get(doc, "runs", "report")?
        .as_array()
        .ok_or_else(|| "report: `runs` is not an array".to_string())?;
    if runs.is_empty() {
        return Err("report: empty `runs` array".into());
    }
    for (i, run) in runs.iter().enumerate() {
        check_run(run, i)?;
    }
    println!("report ok: {} runs", runs.len());
    Ok(())
}

/// Checks an `optim` engine-benchmark document.
fn check_optim(doc: &serde_json::Value) -> CheckResult {
    report::OPTIM.check(doc)?;
    expect_str(doc, "generator", "optim")?;
    if get(doc, "generator", "optim")?.as_str() != Some("optim") {
        return Err("optim: `generator` is not \"optim\"".into());
    }
    for key in ["host_parallelism", "population", "generations", "spins", "requests", "reps"] {
        expect_u64(doc, key, "optim")?;
    }
    expect_f64(doc, "speedup", "optim")?;
    if get(doc, "bit_identical", "optim")?.as_bool() != Some(true) {
        return Err("optim: `bit_identical` must be true".into());
    }
    let runs = get(doc, "runs", "optim")?
        .as_array()
        .ok_or_else(|| "optim: `runs` is not an array".to_string())?;
    if runs.len() != 2 {
        return Err(format!("optim: expected a serial and a parallel run, got {}", runs.len()));
    }
    for (i, run) in runs.iter().enumerate() {
        let what = format!("optim.runs[{i}]");
        for key in ["workers", "evaluations", "cache_hits", "nan_evaluations"] {
            expect_u64(run, key, &what)?;
        }
        for key in ["seconds", "generations_per_sec", "cache_hit_rate", "best_fitness"] {
            expect_f64(run, key, &what)?;
        }
        expect_str(run, "stop", &what)?;
        let rate = get(run, "cache_hit_rate", &what)?.as_f64().unwrap_or(-1.0);
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("{what}: cache_hit_rate {rate} outside [0, 1]"));
        }
    }
    // Parallel evaluation must never change what gets evaluated.
    let evals: Vec<Option<u64>> = runs.iter().map(|r| r.get("evaluations")?.as_u64()).collect();
    if evals[0] != evals[1] {
        return Err(format!("optim: serial/parallel evaluation counts differ: {evals:?}"));
    }
    let timer = get(doc, "timer_problem", "optim")?;
    let what = "optim.timer_problem";
    for key in ["evaluations", "cache_hits"] {
        expect_u64(timer, key, what)?;
    }
    for key in ["seconds", "cache_hit_rate", "best_fitness"] {
        expect_f64(timer, key, what)?;
    }
    expect_str(timer, "stop", what)?;
    if get(timer, "feasible", what)?.as_bool().is_none() {
        return Err(format!("{what}: `feasible` is not a boolean"));
    }
    println!("optim ok: speedup {}×", get(doc, "speedup", "optim")?.as_f64().unwrap_or(0.0));
    Ok(())
}

/// Checks one embedded `DegradationReport` of a chaos campaign.
fn check_degradation_report(report: &serde_json::Value, what: &str) -> CheckResult {
    for key in [
        "planned_faults",
        "requests",
        "cycles",
        "violations_total",
        "latency_violations",
        "progress_violations",
        "coherence_violations",
        "final_mode",
    ] {
        expect_u64(report, key, what)?;
    }
    // Nullable but always present (stable schema).
    for key in ["seed", "detection_latency", "post_switch"] {
        get(report, key, what)?;
    }
    let faults = get(report, "faults", what)?
        .as_array()
        .ok_or_else(|| format!("{what}: `faults` is not an array"))?;
    for (i, fault) in faults.iter().enumerate() {
        let fault_what = format!("{what}.faults[{i}]");
        expect_str(fault, "kind", &fault_what)?;
        for key in ["core", "scheduled", "fired"] {
            expect_u64(fault, key, &fault_what)?;
        }
    }
    let violations = get(report, "violations", what)?
        .as_array()
        .ok_or_else(|| format!("{what}: `violations` is not an array"))?;
    for (i, violation) in violations.iter().enumerate() {
        let v_what = format!("{what}.violations[{i}]");
        expect_str(violation, "kind", &v_what)?;
        for key in ["at", "issued", "latency", "bound"] {
            expect_u64(violation, key, &v_what)?;
        }
        for key in ["core", "line", "detail"] {
            get(violation, key, &v_what)?;
        }
    }
    let switches = get(report, "switches", what)?
        .as_array()
        .ok_or_else(|| format!("{what}: `switches` is not an array"))?;
    for (i, switch) in switches.iter().enumerate() {
        let s_what = format!("{what}.switches[{i}]");
        for key in ["at", "from", "to"] {
            expect_u64(switch, key, &s_what)?;
        }
        get(switch, "trigger", &s_what)?;
    }
    // Cross-checks: the aggregate counters must be internally consistent.
    let count =
        |key: &str| get(report, key, what).ok().and_then(serde_json::Value::as_u64).unwrap_or(0);
    let total = count("violations_total");
    let sum =
        count("latency_violations") + count("progress_violations") + count("coherence_violations");
    if total != sum {
        return Err(format!("{what}: violations_total {total} ≠ per-kind sum {sum}"));
    }
    // Attribution partition: per-core counts plus the machine-wide bucket
    // must cover every conviction — a coreless violation must never have
    // been pinned on a core.
    expect_u64(report, "machine_violations", what)?;
    let per_core = get(report, "core_violations", what)?
        .as_array()
        .ok_or_else(|| format!("{what}: `core_violations` is not an array"))?;
    let mut attributed = count("machine_violations");
    for (i, core) in per_core.iter().enumerate() {
        attributed += core
            .as_u64()
            .ok_or_else(|| format!("{what}: core_violations[{i}] is not an integer"))?;
    }
    if attributed != total {
        return Err(format!(
            "{what}: core + machine attribution sums to {attributed}, violations_total is {total}"
        ));
    }
    let planned = count("planned_faults");
    if faults.len() as u64 > planned {
        return Err(format!("{what}: {} fired faults exceed {planned} planned", faults.len()));
    }
    if let Some(post) = get(report, "post_switch", what)?.as_object() {
        let post_what = format!("{what}.post_switch");
        let post = serde_json::Value::Object(post.clone());
        for key in ["switch_at", "requests", "violations"] {
            expect_u64(&post, key, &post_what)?;
        }
        if get(&post, "compliant", &post_what)?.as_bool().is_none() {
            return Err(format!("{post_what}: `compliant` is not a boolean"));
        }
        if switches.is_empty() {
            return Err(format!("{what}: post_switch present but no switch was recorded"));
        }
    }
    Ok(())
}

/// Checks a `chaos` campaign document (`--chaos`).
fn check_chaos(doc: &serde_json::Value) -> CheckResult {
    report::CHAOS.check(doc)?;
    if get(doc, "generator", "chaos")?.as_str() != Some("chaos") {
        return Err("chaos: `generator` is not \"chaos\"".into());
    }
    if get(doc, "quick", "chaos")?.as_bool().is_none() {
        return Err("chaos: `quick` is not a boolean".into());
    }
    let campaigns = get(doc, "campaigns", "chaos")?
        .as_array()
        .ok_or_else(|| "chaos: `campaigns` is not an array".to_string())?;
    if campaigns.is_empty() {
        return Err("chaos: empty `campaigns` array".into());
    }
    let mut switched = 0u64;
    for (i, campaign) in campaigns.iter().enumerate() {
        let what = format!("chaos.campaigns[{i}]");
        expect_str(campaign, "name", &what)?;
        expect_u64(campaign, "cores", &what)?;
        if get(campaign, "deterministic", &what)?.as_bool() != Some(true) {
            return Err(format!("{what}: `deterministic` must be true"));
        }
        let report = get(campaign, "report", &what)?;
        check_degradation_report(report, &format!("{what}.report"))?;
        if !get(report, "switches", &what)?.as_array().is_none_or(Vec::is_empty) {
            switched += 1;
        }
        // The verif-loop closure: when a conviction was exported, the
        // faithful engine must have replayed it clean.
        let replay = get(campaign, "replay", &what)?;
        if !matches!(replay, serde_json::Value::Null)
            && get(replay, "engine_clean", &what)?.as_bool() != Some(true)
        {
            return Err(format!("{what}: replayed conviction was not clean"));
        }
    }
    // The smoke gate: at least one campaign must demonstrate an online
    // escalation (the acceptance criterion of the fault-injection PR).
    if switched == 0 {
        return Err("chaos: no campaign recorded a mode switch".into());
    }
    println!("chaos ok: {} campaigns, {switched} with online escalation", campaigns.len());
    Ok(())
}

/// Checks a Chrome-trace (`traceEvents`) document.
fn check_trace(doc: &serde_json::Value) -> CheckResult {
    let events = get(doc, "traceEvents", "trace")?
        .as_array()
        .ok_or_else(|| "trace: `traceEvents` is not an array".to_string())?;
    if events.is_empty() {
        return Err("trace: empty `traceEvents` array".into());
    }
    let mut begins = 0u64;
    let mut ends = 0u64;
    let mut spans = 0u64;
    for (i, event) in events.iter().enumerate() {
        let what = format!("traceEvents[{i}]");
        expect_str(event, "name", &what)?;
        expect_u64(event, "pid", &what)?;
        expect_u64(event, "tid", &what)?;
        let ph = get(event, "ph", &what)?
            .as_str()
            .ok_or_else(|| format!("{what}: `ph` is not a string"))?;
        match ph {
            "M" => {}
            "B" => {
                expect_u64(event, "ts", &what)?;
                begins += 1;
            }
            "E" => {
                expect_u64(event, "ts", &what)?;
                ends += 1;
                if ends > begins {
                    return Err(format!("{what}: `E` without a preceding `B`"));
                }
            }
            "X" => {
                expect_u64(event, "ts", &what)?;
                expect_u64(event, "dur", &what)?;
                spans += 1;
            }
            "i" => expect_u64(event, "ts", &what)?,
            other => return Err(format!("{what}: unknown phase `{other}`")),
        }
    }
    if begins != ends {
        return Err(format!("trace: {begins} `B` events but {ends} `E` events"));
    }
    if begins == 0 {
        return Err("trace: no bus tenures (`B`/`E` pairs) recorded".into());
    }
    println!("trace ok: {} events ({begins} tenures, {spans} miss spans)", events.len());
    Ok(())
}

/// Checks a `sim` engine-throughput document (`--sim`, `BENCH_sim.json`).
fn check_sim(doc: &serde_json::Value) -> CheckResult {
    report::SIM.check(doc)?;
    if get(doc, "generator", "sim")?.as_str() != Some("sim") {
        return Err("sim: `generator` is not \"sim\"".into());
    }
    if get(doc, "quick", "sim")?.as_bool().is_none() {
        return Err("sim: `quick` is not a boolean".into());
    }
    // Two hard gates of the event-scheduler PR: running the event engine
    // twice must reproduce the exact event log, and the cross-engine
    // differ must find the engines bit-identical on every preset.
    if get(doc, "determinism", "sim")?.as_bool() != Some(true) {
        return Err("sim: `determinism` must be true".into());
    }
    if get(doc, "engines_identical", "sim")?.as_bool() != Some(true) {
        return Err("sim: `engines_identical` must be true".into());
    }
    expect_u64(doc, "presets_compared", "sim")?;
    let results = get(doc, "results", "sim")?
        .as_array()
        .ok_or_else(|| "sim: `results` is not an array".to_string())?;
    if results.is_empty() {
        return Err("sim: empty `results` array".into());
    }
    for (i, result) in results.iter().enumerate() {
        let what = format!("sim.results[{i}]");
        expect_str(result, "workload", &what)?;
        for key in ["cores", "accesses", "cycles_simulated"] {
            expect_u64(result, key, &what)?;
        }
        for key in ["legacy_cycles_per_sec", "event_cycles_per_sec", "speedup"] {
            expect_f64(result, key, &what)?;
        }
        let speedup = get(result, "speedup", &what)?.as_f64().unwrap_or(0.0);
        if speedup <= 0.0 || !speedup.is_finite() {
            return Err(format!("{what}: speedup {speedup} is not a positive finite number"));
        }
    }
    // The headline entry: the sparse DRAM-bound workload the event queue
    // exists for must lead the table, and the event engine must win on it.
    let first = &results[0];
    let sparse = get(first, "workload", "sim.results[0]")?.as_str().unwrap_or("");
    if !sparse.starts_with("sparse") {
        return Err(format!("sim: first result must be the sparse workload, got `{sparse}`"));
    }
    let sparse_speedup = get(first, "speedup", "sim.results[0]")?.as_f64().unwrap_or(0.0);
    if sparse_speedup < 1.0 {
        return Err(format!("sim: event engine slower than legacy on sparse ({sparse_speedup}×)"));
    }
    println!("sim ok: {} workloads, sparse speedup {sparse_speedup:.1}×", results.len());
    Ok(())
}

/// Checks a `fleet` service-benchmark document (`--fleet`,
/// `BENCH_fleet.json`).
fn check_fleet(doc: &serde_json::Value) -> CheckResult {
    report::FLEET.check(doc)?;
    if get(doc, "generator", "fleet")?.as_str() != Some("fleet") {
        return Err("fleet: `generator` is not \"fleet\"".into());
    }
    if get(doc, "quick", "fleet")?.as_bool().is_none() {
        return Err("fleet: `quick` is not a boolean".into());
    }
    for key in ["shards", "lease_ms"] {
        expect_u64(doc, key, "fleet")?;
    }

    // The burst section: the dedup-on-submit acceptance gate. A burst of
    // duplicate submissions must have produced a positive dedup hit-rate
    // and a positive throughput.
    let burst = get(doc, "burst", "fleet")?;
    let what = "fleet.burst";
    for key in ["submissions", "distinct_jobs", "executed", "dedup_hits"] {
        expect_u64(burst, key, what)?;
    }
    for key in ["seconds", "submissions_per_sec", "dedup_rate"] {
        expect_f64(burst, key, what)?;
    }
    let count = |key: &str| get(burst, key, what).ok().and_then(serde_json::Value::as_u64);
    let dedup_rate = get(burst, "dedup_rate", what)?.as_f64().unwrap_or(-1.0);
    if !(dedup_rate > 0.0 && dedup_rate <= 1.0) {
        return Err(format!("{what}: dedup_rate {dedup_rate} is not in (0, 1]"));
    }
    let throughput = get(burst, "submissions_per_sec", what)?.as_f64().unwrap_or(0.0);
    if throughput <= 0.0 || !throughput.is_finite() {
        return Err(format!("{what}: submissions_per_sec {throughput} is not positive"));
    }
    if count("executed") > count("distinct_jobs") {
        return Err(format!(
            "{what}: executed {:?} exceeds distinct_jobs {:?}",
            count("executed"),
            count("distinct_jobs")
        ));
    }

    // The kill-recovery section: a worker killed mid-job must have forced
    // a lease reclaim, and the recomputed outcome must be bit-identical.
    let kill = get(doc, "kill_recovery", "fleet")?;
    let what = "fleet.kill_recovery";
    for key in ["reclaims", "resumed", "stale_completions"] {
        expect_u64(kill, key, what)?;
    }
    if get(kill, "reclaims", what)?.as_u64() == Some(0) {
        return Err(format!("{what}: no lease was reclaimed — the chaos hook never fired"));
    }
    if get(kill, "bit_identical", what)?.as_bool() != Some(true) {
        return Err(format!("{what}: `bit_identical` must be true"));
    }

    // The replay section: a second fleet over the same persistent store
    // must answer everything from the memo without executing.
    let replay = get(doc, "replay", "fleet")?;
    let what = "fleet.replay";
    expect_u64(replay, "store_hits", what)?;
    if get(replay, "executed", what)?.as_u64() != Some(0) {
        return Err(format!("{what}: a replayed run must execute nothing"));
    }
    if get(replay, "bit_identical", what)?.as_bool() != Some(true) {
        return Err(format!("{what}: `bit_identical` must be true"));
    }

    // The churn section (schema v2): the chaos campaign must have lost
    // nothing, convicted only the poison job, repaired every corruption
    // bit-identically, absorbed at least one disk fault, and reproduced
    // itself bit for bit.
    let churn = get(doc, "churn", "fleet")?;
    let what = "fleet.churn";
    for key in ["jobs", "cold_executed", "cold_served", "warm_executed", "warm_served"] {
        expect_u64(churn, key, what)?;
    }
    if get(churn, "lost", what)?.as_u64() != Some(0) {
        return Err(format!("{what}: the campaign lost jobs"));
    }
    if get(churn, "runs_identical", what)?.as_bool() != Some(true) {
        return Err(format!("{what}: the two campaign runs must be bit-identical"));
    }
    if get(churn, "kills", what)?.as_u64().unwrap_or(0) == 0 {
        return Err(format!("{what}: no worker was killed — the chaos hook never fired"));
    }
    let quarantine = get(churn, "quarantine", what)?
        .as_array()
        .ok_or_else(|| format!("{what}: `quarantine` is not an array"))?;
    if quarantine.is_empty() {
        return Err(format!("{what}: the poison job was never quarantined"));
    }
    for (i, diag) in quarantine.iter().enumerate() {
        let what = format!("{what}.quarantine[{i}]");
        expect_str(diag, "fingerprint", &what)?;
        expect_u64(diag, "worker", &what)?;
        if get(diag, "attempts", &what)?.as_u64().unwrap_or(0) == 0 {
            return Err(format!("{what}: a conviction must record spent attempts"));
        }
    }
    let cold = check_health(get(churn, "cold_health", what)?, &format!("{what}.cold_health"))?;
    let warm = check_health(get(churn, "warm_health", what)?, &format!("{what}.warm_health"))?;
    if cold.quarantined != quarantine.len() as u64 {
        return Err(format!(
            "{what}: {} quarantine diagnostics listed, cold_health convicted {}",
            quarantine.len(),
            cold.quarantined
        ));
    }
    if warm.repairs == 0 {
        return Err(format!("{what}: the bit-rotted entry was never repaired"));
    }
    if warm.repairs_bit_identical != warm.repairs {
        return Err(format!(
            "{what}: only {} of {} repairs were bit-identical",
            warm.repairs_bit_identical, warm.repairs
        ));
    }
    if get(churn, "disk_faults_injected", what)?.as_u64().unwrap_or(0) == 0
        || cold.disk_retries == 0
    {
        return Err(format!("{what}: no transient disk fault was injected and absorbed"));
    }
    println!(
        "fleet ok: dedup rate {dedup_rate:.2}, {throughput:.0} submissions/s, kill-recovery \
         bit-identical, churn lost nothing ({} conviction(s), {} repair(s))",
        quarantine.len(),
        warm.repairs,
    );
    Ok(())
}

/// The counters a well-formed `FleetHealth` snapshot must carry.
struct HealthCounts {
    quarantined: u64,
    repairs: u64,
    repairs_bit_identical: u64,
    disk_retries: u64,
}

/// Checks one embedded `FleetHealth` snapshot: all nine counters present
/// as unsigned integers, and the bounded disk retries never gave up.
fn check_health(doc: &serde_json::Value, what: &str) -> Result<HealthCounts, String> {
    for key in [
        "reclaims",
        "quarantined",
        "stale_completions",
        "corrupt_quarantined",
        "repairs",
        "repairs_bit_identical",
        "evictions",
        "disk_retries",
        "disk_give_ups",
    ] {
        expect_u64(doc, key, what)?;
    }
    let count = |key: &str| get(doc, key, what).ok().and_then(serde_json::Value::as_u64);
    if count("disk_give_ups") != Some(0) {
        return Err(format!("{what}: the store gave up on a disk operation"));
    }
    Ok(HealthCounts {
        quarantined: count("quarantined").unwrap_or(0),
        repairs: count("repairs").unwrap_or(0),
        repairs_bit_identical: count("repairs_bit_identical").unwrap_or(0),
        disk_retries: count("disk_retries").unwrap_or(0),
    })
}

/// Checks a `lint` static-analysis document (`--lint`, the CI gate's
/// `--json` output).
fn check_lint(doc: &serde_json::Value) -> CheckResult {
    report::LINT.check(doc)?;
    if get(doc, "generator", "lint")?.as_str() != Some("lint") {
        return Err("lint: `generator` is not \"lint\"".into());
    }
    let rep = get(doc, "report", "lint")?;
    let what = "lint.report";
    for key in ["files_scanned", "total", "suppressed", "unsuppressed"] {
        expect_u64(rep, key, what)?;
    }
    let count = |key: &str| get(rep, key, what).ok().and_then(serde_json::Value::as_u64);
    if count("files_scanned") == Some(0) {
        return Err(format!("{what}: zero files scanned — the walker found nothing"));
    }
    let total = count("total").unwrap_or(0);
    let suppressed = count("suppressed").unwrap_or(0);
    let unsuppressed = count("unsuppressed").unwrap_or(0);
    if suppressed + unsuppressed != total {
        return Err(format!(
            "{what}: suppressed {suppressed} + unsuppressed {unsuppressed} != total {total}"
        ));
    }
    // The gate invariant: CI artifacts must be clean.
    if unsuppressed != 0 {
        return Err(format!("{what}: {unsuppressed} unsuppressed diagnostics"));
    }
    let diags = get(rep, "diagnostics", what)?
        .as_array()
        .ok_or_else(|| format!("{what}: `diagnostics` is not an array"))?;
    if diags.len() as u64 != total {
        return Err(format!("{what}: {} diagnostics listed, total says {total}", diags.len()));
    }
    for (index, diag) in diags.iter().enumerate() {
        let what = format!("lint.report.diagnostics[{index}]");
        for key in ["code", "file", "message", "rationale"] {
            expect_str(diag, key, &what)?;
        }
        expect_u64(diag, "line", &what)?;
        // Everything surviving in a clean report is a justified
        // suppression: the justification must be written down.
        if get(diag, "suppressed", &what)?.as_bool() != Some(true) {
            return Err(format!("{what}: unsuppressed diagnostic in a clean report"));
        }
        if get(diag, "justification", &what)?.as_str().is_none_or(str::is_empty) {
            return Err(format!("{what}: suppression carries no justification"));
        }
    }
    println!(
        "lint ok: {} files, {total} diagnostics, all justified",
        count("files_scanned").unwrap_or(0)
    );
    Ok(())
}

/// Checks one `{successes, trials, rate, wilson_lo, wilson_hi}` rate
/// document; the Wilson interval must bracket the point estimate inside
/// `[0, 1]`, and successes must not exceed trials.
fn check_rate(doc: &serde_json::Value, what: &str) -> CheckResult {
    for key in ["successes", "trials"] {
        expect_u64(doc, key, what)?;
    }
    let successes = get(doc, "successes", what)?.as_u64().unwrap_or(0);
    let trials = get(doc, "trials", what)?.as_u64().unwrap_or(0);
    if successes > trials {
        return Err(format!("{what}: successes {successes} exceed trials {trials}"));
    }
    let num = |key: &str| -> Result<f64, String> {
        get(doc, key, what)?.as_f64().ok_or_else(|| format!("{what}: `{key}` is not a number"))
    };
    let (lo, rate, hi) = (num("wilson_lo")?, num("rate")?, num("wilson_hi")?);
    if !(0.0 <= lo && lo <= rate && rate <= hi && hi <= 1.0) {
        return Err(format!(
            "{what}: interval [{lo}, {hi}] does not bracket rate {rate} in [0, 1]"
        ));
    }
    Ok(())
}

/// Checks a `cert` certification-campaign document (`--cert`,
/// `BENCH_cert.json`).
fn check_cert(doc: &serde_json::Value) -> CheckResult {
    report::CERT.check(doc)?;
    if get(doc, "generator", "cert")?.as_str() != Some("cert") {
        return Err("cert: `generator` is not \"cert\"".into());
    }
    if get(doc, "quick", "cert")?.as_bool().is_none() {
        return Err("cert: `quick` is not a boolean".into());
    }
    for key in ["trials", "jobs"] {
        expect_u64(doc, key, "cert")?;
    }
    // The determinism gate: the campaign ran twice, and both runs must
    // have produced bit-identical aggregates.
    if get(doc, "runs_identical", "cert")?.as_bool() != Some(true) {
        return Err("cert: `runs_identical` must be true".into());
    }

    // The memoization gate (schema v2): both runs share one persistent
    // store, so the second must replay entirely from the memo, and both
    // fleets must have stayed healthy.
    let fleet = get(doc, "fleet", "cert")?;
    check_health(get(fleet, "health", "cert.fleet")?, "cert.fleet.health")?;
    let memo = get(doc, "memoized_run", "cert")?;
    let what = "cert.memoized_run";
    if get(memo, "executed", what)?.as_u64() != Some(0) {
        return Err(format!("{what}: the warm store must replay with zero fresh executions"));
    }
    if get(memo, "store_hits", what)?.as_u64().unwrap_or(0) == 0 {
        return Err(format!("{what}: a replayed campaign must hit the store"));
    }
    check_health(get(memo, "health", what)?, &format!("{what}.health"))?;

    // The fault campaign: counts must partition and every rate must carry
    // a well-formed Wilson interval.
    let fault = get(doc, "fault", "cert")?;
    let what = "cert.fault";
    for key in ["trials", "control_trials", "machine_violations"] {
        expect_u64(fault, key, what)?;
    }
    let count = |sec: &serde_json::Value, key: &str, what: &str| -> Result<u64, String> {
        get(sec, key, what)?
            .as_u64()
            .ok_or_else(|| format!("{what}: `{key}` is not an unsigned integer"))
    };
    for key in ["detected", "false_convictions", "degraded", "degradation_success"] {
        check_rate(get(fault, key, what)?, &format!("{what}.{key}"))?;
    }
    let fault_trials = count(fault, "trials", what)?;
    let control = count(fault, "control_trials", what)?;
    let faulted = count(get(fault, "detected", what)?, "trials", &format!("{what}.detected"))?;
    if control + faulted != fault_trials {
        return Err(format!(
            "{what}: control {control} + faulted {faulted} != trials {fault_trials}"
        ));
    }
    let fc_what = format!("{what}.false_convictions");
    if count(get(fault, "false_convictions", what)?, "trials", &fc_what)? != control {
        return Err(format!("{fc_what}: trials differ from control_trials {control}"));
    }
    let hist = get(fault, "detection_latency", what)?;
    let h_what = format!("{what}.detection_latency");
    for key in ["total", "max"] {
        expect_u64(hist, key, &h_what)?;
    }
    let buckets = get(hist, "buckets", &h_what)?
        .as_array()
        .ok_or_else(|| format!("{h_what}: `buckets` is not an array"))?;
    let mut bucketed = 0u64;
    for bucket in buckets {
        let pair = bucket
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("{h_what}: bucket is not a [bucket, count] pair"))?;
        bucketed +=
            pair[1].as_u64().ok_or_else(|| format!("{h_what}: bucket count is not an integer"))?;
    }
    let hist_total = count(hist, "total", &h_what)?;
    if bucketed != hist_total {
        return Err(format!("{h_what}: bucket counts sum to {bucketed}, total says {hist_total}"));
    }

    // The schedulability curve: bucket trials must sum to the campaign.
    let sched = get(doc, "schedulability", "cert")?;
    let what = "cert.schedulability";
    for key in ["trials", "schedulable"] {
        expect_u64(sched, key, what)?;
    }
    let sched_trials = count(sched, "trials", what)?;
    if count(sched, "schedulable", what)? > sched_trials {
        return Err(format!("{what}: more schedulable task sets than trials"));
    }
    let curve = get(sched, "curve", what)?
        .as_array()
        .ok_or_else(|| format!("{what}: `curve` is not an array"))?;
    if curve.is_empty() {
        return Err(format!("{what}: empty `curve` array"));
    }
    let mut curve_trials = 0u64;
    for (i, bucket) in curve.iter().enumerate() {
        let b_what = format!("{what}.curve[{i}]");
        check_rate(bucket, &b_what)?;
        let (lo, hi) =
            (count(bucket, "util_lo_pct", &b_what)?, count(bucket, "util_hi_pct", &b_what)?);
        if lo >= hi {
            return Err(format!("{b_what}: utilisation edges [{lo}, {hi}) are empty"));
        }
        curve_trials += count(bucket, "trials", &b_what)?;
    }
    if curve_trials != sched_trials {
        return Err(format!(
            "{what}: curve bucket trials sum to {curve_trials}, campaign ran {sched_trials}"
        ));
    }
    let total = count(doc, "trials", "cert")?;
    if fault_trials + sched_trials != total {
        return Err(format!("cert: fault {fault_trials} + sched {sched_trials} != trials {total}"));
    }

    // The reproducibility gate: every minimized counterexample must still
    // convict under its fault plan and replay clean on the faithful
    // engine, and minimization must never have grown the workload.
    let counterexamples = get(doc, "counterexamples", "cert")?
        .as_array()
        .ok_or_else(|| "cert: `counterexamples` is not an array".to_string())?;
    if counterexamples.is_empty() {
        return Err("cert: no conviction was minimized into a counterexample".into());
    }
    for (i, c) in counterexamples.iter().enumerate() {
        let what = format!("cert.counterexamples[{i}]");
        expect_str(c, "kind", &what)?;
        for key in ["seed", "original_accesses", "exported_accesses", "minimized_accesses"] {
            expect_u64(c, key, &what)?;
        }
        let (original, exported, minimized) = (
            count(c, "original_accesses", &what)?,
            count(c, "exported_accesses", &what)?,
            count(c, "minimized_accesses", &what)?,
        );
        if !(minimized <= exported && exported <= original) {
            return Err(format!(
                "{what}: sizes {minimized} <= {exported} <= {original} do not shrink"
            ));
        }
        if get(c, "reconvicts", &what)?.as_bool() != Some(true) {
            return Err(format!("{what}: the minimized workload does not re-convict"));
        }
        if get(c, "replay_clean", &what)?.as_bool() != Some(true) {
            return Err(format!("{what}: the faithful replay was not clean"));
        }
        get(c, "workload", &what)?;
    }
    println!(
        "cert ok: {total} trials, {} counterexamples, aggregates bit-identical",
        counterexamples.len()
    );
    Ok(())
}

/// One entry in the validator registry: the CLI flag that selects it and
/// the checker it dispatches to. New document kinds join by adding a row.
struct Validator {
    flag: &'static str,
    check: fn(&serde_json::Value) -> CheckResult,
}

const VALIDATORS: &[Validator] = &[
    Validator { flag: "--report", check: check_report },
    Validator { flag: "--trace", check: check_trace },
    Validator { flag: "--optim", check: check_optim },
    Validator { flag: "--chaos", check: check_chaos },
    Validator { flag: "--sim", check: check_sim },
    Validator { flag: "--fleet", check: check_fleet },
    Validator { flag: "--lint", check: check_lint },
    Validator { flag: "--cert", check: check_cert },
];

fn usage() -> String {
    let flags: Vec<String> = VALIDATORS.iter().map(|v| format!("[{} <path>]", v.flag)).collect();
    format!("usage: schema_check {}", flags.join(" "))
}

fn load(path: &str) -> Result<serde_json::Value, String> {
    let text =
        std::fs::read_to_string(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut checked = false;
    let mut failed = false;
    while let Some(arg) = args.next() {
        let Some(validator) = VALIDATORS.iter().find(|v| v.flag == arg) else {
            eprintln!("unknown flag `{arg}`");
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        };
        let Some(path) = args.next() else {
            eprintln!("{} needs a path", validator.flag);
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        };
        checked = true;
        if let Err(message) = load(&path).and_then(|doc| (validator.check)(&doc)) {
            eprintln!("schema violation: {message}");
            failed = true;
        }
    }
    if !checked {
        eprintln!("nothing to check");
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
