//! Extension study (beyond the paper's 4-core evaluation): how CoHoRT
//! scales with core count and criticality levels. The paper claims support
//! for *any* number of criticality levels (Challenge 2, unlike two-level
//! PENDULUM/CARP); this sweep exercises the claim on 2–16 cores with up to
//! eight levels and reports how the Eq. 1 bound and the achievable WCML
//! grow.
//!
//! ```text
//! cargo run --release -p cohort-bench --bin scaling [-- --quick]
//! ```

use cohort::{ExperimentJob, ModeSetup, Protocol, Sweep, SystemSpec};
use cohort_bench::{bench_ga, CliOptions};
use cohort_optim::{GaRun, TimerProblem};
use cohort_trace::{Kernel, KernelSpec, Workload};
use cohort_types::{Criticality, Mode};

struct ScalePoint {
    cores: usize,
    levels: u32,
    spec: SystemSpec,
    workload: Workload,
}

fn main() {
    let options = CliOptions::parse_or_exit();
    let ga = bench_ga(true); // the sweep itself is the product; keep GA light
    let per_core = if options.quick { 400 } else { 2_000 };

    println!("Scaling study — CoHoRT beyond the paper's quad-core platform\n");
    println!(
        "{:<7} {:>8} {:>14} {:>16} {:>14} {:>12}",
        "cores", "levels", "Eq.1 (MSI-all)", "opt. avg WCML/acc", "exec time", "hit ratio"
    );
    // Per-point timer optimization is sequential (each point's GA feeds its
    // own job); the four simulations then run as one bounded sweep.
    let mut points = Vec::new();
    let mut jobs = Vec::new();
    for &cores in &[2usize, 4, 8, 16] {
        let levels = cores.min(8) as u32;
        let workload = KernelSpec::new(Kernel::Ocean, cores)
            .with_total_requests(per_core * cores as u64)
            .generate();
        // Criticality ladder: core i gets level (levels − i mod levels).
        let mut builder = SystemSpec::builder();
        for i in 0..cores {
            let level = levels - (i as u32 % levels);
            builder = builder.core(Criticality::new(level).expect("≥1"));
        }
        let spec = builder.build().expect("non-empty");

        // Optimize timers for normal mode (every core timed), against the
        // spec's own platform parameters.
        let mut problem_builder = TimerProblem::builder(&workload)
            .latency(*spec.latency())
            .l1(*spec.l1())
            .llc(*spec.llc());
        for i in 0..cores {
            problem_builder = problem_builder.timed(i, None);
        }
        let problem = problem_builder.build().expect("problem");
        let outcome = GaRun::new(&problem).config(&ga).run();
        let timers = problem.timers_from_genes(&outcome.best);

        jobs.push(
            ExperimentJob::new(spec.clone(), Protocol::Cohort { timers }, workload.clone())
                .with_label(format!("scaling/{cores}-cores")),
        );
        points.push(ScalePoint { cores, levels, spec, workload });
    }
    let runs = Sweep::builder().jobs(jobs).build().run().into_outcomes().expect("runs");
    for (point, run) in points.iter().zip(&runs) {
        run.check_soundness().expect("bounds dominate at every scale");
        let bounds = run.bounds.as_ref().expect("bounded");
        let msi_eq1 = cohort_analysis::wcl_miss(
            0,
            &vec![cohort_types::TimerValue::MSI; point.cores],
            point.spec.latency(),
        );
        let avg_wcml_per_access: f64 = bounds
            .iter()
            .zip(point.workload.traces())
            .map(|(b, t)| b.wcml.expect("bounded").get() as f64 / t.len().max(1) as f64)
            .sum::<f64>()
            / point.cores as f64;
        println!(
            "{:<7} {:>8} {:>14} {avg_wcml_per_access:>17.1} {:>14} {:>11.1}%",
            point.cores,
            point.levels,
            msi_eq1.get(),
            run.execution_time(),
            100.0 * run.stats.hit_ratio()
        );
    }

    // Mode-switch machinery at five avionics levels (DO-178C) on 5 cores.
    println!("\nFive-level (DO-178C-style) mode configuration on 5 cores:");
    let mut builder = SystemSpec::builder();
    for level in (1..=5).rev() {
        builder = builder.core(Criticality::new(level).expect("≥1"));
    }
    let spec = builder.build().expect("non-empty");
    let workload = KernelSpec::new(Kernel::Barnes, 5).with_total_requests(per_core * 5).generate();
    let config = ModeSetup::new(&spec, &workload).ga(&ga).run().expect("flow");
    assert_eq!(config.lut.modes(), 5);
    println!(
        "LUT: {} modes × 16 bits = {} bits per core (the paper's 80-bit claim)",
        config.lut.modes(),
        config.lut.bits_per_core()
    );
    for entry in &config.entries {
        let timed = entry.timers.iter().filter(|t| t.is_timed()).count();
        println!(
            "  mode {}: {timed} timed core(s), {} degraded to MSI",
            entry.mode.index(),
            5 - timed
        );
    }
    let m5 = config.lut.timers_for(Mode::new(5).expect("static")).expect("row");
    assert!(m5.iter().filter(|t| t.is_timed()).count() == 1);
    println!("\nEvery scale point passed the soundness check (measured ≤ bound).");
}
