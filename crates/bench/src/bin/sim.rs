//! Engine-throughput benchmark: legacy cycle-round vs event-driven
//! scheduler, on the workload shapes the event queue was built for.
//!
//! The sparse workload is the motivating case: wide machines where at
//! almost every visited instant exactly one core is due, misses go all
//! the way to DRAM, and timer-held shared lines keep a standing waiter
//! population. The legacy engine pays its full O(cores + waiters) round —
//! `step_cores` over every core, a candidate per core in `try_start_txn`,
//! and `head_release_instant` for every waiting line in `next_event` — at
//! each of those instants; the event engine dispatches the one due
//! component. The dense workloads bound the other end: bus-saturated
//! sharing where every cycle has work and both engines track closely.
//!
//! Also asserts the two invariants CI smoke-checks via
//! `schema_check --sim`: double-run determinism of the event engine
//! (bit-identical event logs and stats) and cross-engine bit-identity on
//! the protocol preset matrix.
//!
//! ```text
//! cargo run --release -p cohort-bench --bin sim -- \
//!     [--quick] [--json results/BENCH_sim.json]
//! ```

use std::time::Instant;

use serde_json::json;

use cohort_bench::report::{self, ReportWriter};
use cohort_bench::CliOptions;
use cohort_sim::{
    compare_engines, ArbiterKind, CacheGeometry, DataPath, EngineKind, EventLogProbe, FaultPlan,
    LlcModel, ProtocolFlavor, SimBuilder, SimConfig,
};
use cohort_trace::{micro, Trace, TraceOp, Workload};
use cohort_types::{LatencyConfig, Result, TimerValue};

/// One measured workload: its shape, the config it runs under, and how
/// both engines fared on it.
struct Measurement {
    workload: String,
    cores: usize,
    accesses: u64,
    cycles_simulated: u64,
    legacy_seconds: f64,
    event_seconds: f64,
}

impl Measurement {
    fn legacy_cycles_per_sec(&self) -> f64 {
        self.cycles_simulated as f64 / self.legacy_seconds.max(1e-9)
    }

    fn event_cycles_per_sec(&self) -> f64 {
        self.cycles_simulated as f64 / self.event_seconds.max(1e-9)
    }

    fn speedup(&self) -> f64 {
        self.event_cycles_per_sec() / self.legacy_cycles_per_sec().max(1e-9)
    }
}

/// Each core works through its own private lines — mostly re-use hits
/// separated by core-staggered compute gaps — with every 256th access a
/// cold line that misses all the way to DRAM and every 128th a store to a
/// line shared by its group of four cores. Under long coherence timers
/// the shared lines hold standing waiter queues, so the legacy engine's
/// per-instant scan re-derives `head_release_instant` (a walk over every
/// dispossessed holder) for each of them at every visited instant, while
/// the event engine only re-derives the lines a completed transaction or
/// popped release wake actually dirtied. Prime-spaced base addresses keep
/// the per-core regions from colliding in the same LLC sets.
fn sparse_dram(cores: usize, accesses: usize, gap: u64) -> Workload {
    let traces = (0..cores)
        .map(|core| {
            let base = 1_048_573 * (core as u64 + 1);
            let shared = 0x7fff_0000 + (core as u64 / 4);
            // Co-prime-ish stagger so per-core instants rarely collide.
            let stagger = gap + 17 * core as u64;
            let mut cold = 0u64;
            let ops = (0..accesses)
                .map(|i| {
                    if i % 128 == 47 {
                        TraceOp::store(shared).after(stagger)
                    } else if i % 256 == 31 {
                        cold += 1;
                        TraceOp::load(base + 0x1000 + cold).after(stagger)
                    } else {
                        TraceOp::load(base + (i % 8) as u64).after(stagger)
                    }
                })
                .collect();
            Trace::from_ops(ops)
        })
        .collect();
    Workload::new("sparse-dram", traces).expect("cores > 0")
}

/// A finite LLC with DRAM behind it (cold sparse accesses miss all the
/// way to memory), long per-core coherence timers (holders keep the
/// shared lines, so waiter queues stand for tens of thousands of cycles)
/// and enough MSHRs that a waiting store does not stop the sparse stream.
fn dram_bound_config(cores: usize) -> SimConfig {
    SimConfig::builder(cores)
        .latency(LatencyConfig::paper().with_memory(100))
        .llc(LlcModel::Finite(CacheGeometry::new(8 * 1024 * 1024, 64, 16).expect("valid geometry")))
        .timers(vec![TimerValue::timed(60_000).expect("nonzero"); cores])
        .mshr_per_core(4)
        .build()
        .expect("valid config")
}

/// Runs `workload` under `config` on the given engine, returning the wall
/// time and final simulated-cycle count.
fn time_engine(config: &SimConfig, workload: &Workload, kind: EngineKind) -> Result<(f64, u64)> {
    let mut sim = SimBuilder::new(config.clone(), workload).engine(kind).build()?;
    let start = Instant::now();
    let stats = sim.run()?;
    Ok((start.elapsed().as_secs_f64(), stats.cycles.get()))
}

/// Times both engines on one workload and checks they simulated the same
/// number of cycles (a cheap cross-check on top of the preset differ).
fn measure(name: &str, config: &SimConfig, workload: &Workload) -> Result<Measurement> {
    let (legacy_seconds, legacy_cycles) = time_engine(config, workload, EngineKind::CycleRound)?;
    let (event_seconds, event_cycles) = time_engine(config, workload, EngineKind::EventDriven)?;
    assert_eq!(
        legacy_cycles, event_cycles,
        "{name}: engines disagree on simulated length ({legacy_cycles} vs {event_cycles})"
    );
    Ok(Measurement {
        workload: name.to_string(),
        cores: workload.cores(),
        accesses: workload.total_accesses(),
        cycles_simulated: event_cycles,
        legacy_seconds,
        event_seconds,
    })
}

/// Runs the event engine twice on the same scenario and asserts the event
/// logs and final stats are bit-identical.
fn assert_deterministic(config: &SimConfig, workload: &Workload) -> Result<()> {
    let run = || -> Result<(Vec<cohort_sim::Event>, cohort_sim::SimStats)> {
        let mut sim = SimBuilder::new(config.clone(), workload)
            .probe(EventLogProbe::new())
            .engine(EngineKind::EventDriven)
            .build()?;
        let stats = sim.run()?;
        Ok((sim.into_probe().into_events(), stats))
    };
    let (first_log, first_stats) = run()?;
    let (second_log, second_stats) = run()?;
    assert_eq!(first_log, second_log, "event engine produced different logs on identical runs");
    assert_eq!(first_stats, second_stats, "event engine produced different stats");
    Ok(())
}

/// The preset matrix the cross-engine differ sweeps: every arbiter, data
/// path, flavor and timer shape the bench figures exercise.
fn preset_matrix(cores: usize) -> Vec<(&'static str, SimConfig)> {
    let build = SimConfig::builder;
    vec![
        ("msi_rrof", build(cores).build().expect("valid")),
        (
            "cohort_timed",
            build(cores)
                .timers(vec![TimerValue::timed(30).expect("nonzero"); cores])
                .build()
                .expect("valid"),
        ),
        ("pcc_staged", build(cores).data_path(DataPath::ViaSharedMemory).build().expect("valid")),
        (
            "pendulum_tdm",
            build(cores)
                .timers(vec![TimerValue::timed(300).expect("nonzero"); cores])
                .arbiter(ArbiterKind::Tdm { critical: vec![true; cores] })
                .waiter_priority(vec![true; cores])
                .build()
                .expect("valid"),
        ),
        ("msi_fcfs", build(cores).arbiter(ArbiterKind::Fcfs).build().expect("valid")),
        ("mesi_rrof", build(cores).flavor(ProtocolFlavor::Mesi).build().expect("valid")),
    ]
}

/// Sweeps the preset matrix through the cross-engine differ, returning
/// the number of presets compared. Panics on the first divergence.
fn assert_engines_identical(quick: bool) -> Result<usize> {
    let seeds: &[u64] = if quick { &[1] } else { &[1, 9] };
    let mut compared = 0;
    for &seed in seeds {
        let workload = micro::random_shared(4, 32, if quick { 80 } else { 160 }, 0.5, seed);
        let plan = FaultPlan::seeded(seed, 4, 20_000, 6);
        for (name, config) in preset_matrix(4) {
            let cmp = compare_engines(&config, &workload, &plan, &[])?;
            assert!(cmp.is_identical(), "seed {seed} / {name}: {}", cmp.describe());
            compared += 1;
        }
    }
    Ok(compared)
}

fn main() -> Result<()> {
    let options = CliOptions::parse_or_exit();
    let quick = options.quick;
    let (cores, accesses, gap) = if quick { (64, 2_000, 200) } else { (64, 20_000, 200) };

    // The headline sparse workload, plus dense counterpoints.
    let sparse_config = dram_bound_config(cores);
    let sparse = sparse_dram(cores, accesses, gap);
    let dense_cores = 4;
    let dense_config = SimConfig::builder(dense_cores).build().expect("valid config");
    let ping_pong = micro::ping_pong(dense_cores, if quick { 200 } else { 2_000 });
    let shared = micro::random_shared(dense_cores, 64, if quick { 400 } else { 4_000 }, 0.5, 5);

    eprintln!("sim: determinism check");
    assert_deterministic(&sparse_config, &sparse)?;
    assert_deterministic(&dense_config, &shared)?;

    eprintln!("sim: cross-engine preset matrix");
    let presets_compared = assert_engines_identical(quick)?;

    eprintln!("sim: timing engines");
    let measurements = vec![
        measure("sparse_dram", &sparse_config, &sparse)?,
        measure("dense_ping_pong", &dense_config, &ping_pong)?,
        measure("dense_random_shared", &dense_config, &shared)?,
    ];

    for m in &measurements {
        println!(
            "{:<20} {:>2} cores  {:>8} accesses  {:>10} cycles  legacy {:>12.0} cyc/s  \
             event {:>12.0} cyc/s  speedup {:>7.1}×",
            m.workload,
            m.cores,
            m.accesses,
            m.cycles_simulated,
            m.legacy_cycles_per_sec(),
            m.event_cycles_per_sec(),
            m.speedup(),
        );
    }

    if let Some(path) = &options.json {
        // Hand-built document: the `--sim` schema in schema_check.
        let results: Vec<serde_json::Value> = measurements
            .iter()
            .map(|m| {
                json!({
                    "workload": m.workload.clone(),
                    "cores": m.cores as u64,
                    "accesses": m.accesses,
                    "cycles_simulated": m.cycles_simulated,
                    "legacy_cycles_per_sec": m.legacy_cycles_per_sec(),
                    "event_cycles_per_sec": m.event_cycles_per_sec(),
                    "speedup": m.speedup(),
                })
            })
            .collect();
        let doc = json!({
            "quick": quick,
            "determinism": true,
            "engines_identical": true,
            "presets_compared": presets_compared as u64,
            "results": results,
        });
        ReportWriter::new(&report::SIM, "sim").write(path, doc)?;
        eprintln!("sim: wrote {}", path.display());
    }
    Ok(())
}
