//! Runs the complete evaluation — every table and figure — and writes both
//! the human-readable outputs (`results/*.txt` equivalents go to stdout)
//! and a machine-readable JSON summary (`results/summary.json`) recording
//! the headline numbers EXPERIMENTS.md quotes.
//!
//! ```text
//! cargo run --release -p cohort-bench --bin repro [-- --quick|--full] [--json <path>]
//! ```

use std::fs;

use cohort::{ModeController, ModeSetup};
use cohort_bench::{
    bench_ga, fig7_stage_requirements, geomean, json_report, kernels, mode_switch_spec,
    run_to_json, sweep_protocols, write_json, CliOptions, CritConfig, CORES,
};
use cohort_trace::{Kernel, KernelSpec};
use cohort_types::{CoreId, Cycles, Mode};
use serde_json::json;

fn main() {
    let options = CliOptions::parse_or_exit();
    let ga = bench_ga(options.quick);
    let workloads = kernels(CORES, options.full, options.quick);
    let mut summary = serde_json::Map::new();
    let mut records = Vec::new();

    // ---- Figures 5 & 6 -------------------------------------------------
    for config in CritConfig::ALL {
        println!("running {} …", config.label());
        let mut pcc_ratios = Vec::new();
        let mut pend_ratios = Vec::new();
        let mut cohort_slow = Vec::new();
        let mut pcc_slow = Vec::new();
        let mut pend_slow = Vec::new();
        for workload in &workloads {
            let runs = sweep_protocols(config, workload, &ga).expect("sweep succeeds");
            for run in &runs {
                run.outcome.check_soundness().expect("soundness");
            }
            records.extend(runs.iter().map(|run| run_to_json(config, run)));
            let (cohort, pcc, pendulum, fcfs) = (&runs[0], &runs[1], &runs[2], &runs[3]);
            let mask = config.critical_mask();
            for (core, _) in mask.iter().enumerate().filter(|(_, &critical)| critical) {
                let c = cohort.outcome.bounds.as_ref().unwrap()[core].wcml.unwrap().get() as f64;
                let p = pcc.outcome.bounds.as_ref().unwrap()[core].wcml.unwrap().get() as f64;
                pcc_ratios.push(p / c);
                if let Some(n) = pendulum.outcome.bounds.as_ref().unwrap()[core].wcml {
                    pend_ratios.push(n.get() as f64 / c);
                }
            }
            let base = fcfs.outcome.execution_time() as f64;
            cohort_slow.push(cohort.outcome.execution_time() as f64 / base);
            pcc_slow.push(pcc.outcome.execution_time() as f64 / base);
            pend_slow.push(pendulum.outcome.execution_time() as f64 / base);
        }
        summary.insert(
            config.slug().to_string(),
            json!({
                "fig5_pcc_over_cohort": geomean(&pcc_ratios),
                "fig5_pendulum_over_cohort": geomean(&pend_ratios),
                "fig6_cohort_slowdown": geomean(&cohort_slow),
                "fig6_pcc_slowdown": geomean(&pcc_slow),
                "fig6_pendulum_slowdown": geomean(&pend_slow),
            }),
        );
    }

    // ---- Figure 7 / Table II -------------------------------------------
    println!("running mode-switch experiment …");
    let spec = mode_switch_spec();
    let mut fft = KernelSpec::new(Kernel::Fft, 4);
    if options.quick {
        fft = fft.with_total_requests(Kernel::Fft.default_total_requests() / 10);
    }
    let workload = fft.generate();
    let modes = ModeSetup::new(&spec, &workload).ga(&ga).run().expect("offline flow");
    let c0 = CoreId::new(0);
    let bound =
        |m: u32| modes.wcml_bound(c0, Mode::new(m).expect("static")).unwrap().unwrap().get();
    let bounds: Vec<u64> = (1..=4).map(bound).collect();
    let mut controller = ModeController::new(modes.clone());
    let stages = fig7_stage_requirements(&bounds);
    let walk: Vec<Option<u32>> = stages
        .iter()
        .map(|&g| {
            controller
                .requirement_changed(c0, Cycles::new(g))
                .expect("c0 exists")
                .mode()
                .map(Mode::index)
        })
        .collect();
    summary.insert(
        "fig7".to_string(),
        json!({
            "c0_bounds_per_mode": bounds,
            "stage_requirements": stages,
            "mode_walk": walk,
            "table2_lut": modes
                .entries
                .iter()
                .map(|e| e.timers.iter().map(|t| t.encode()).collect::<Vec<i32>>())
                .collect::<Vec<_>>(),
        }),
    );

    fs::create_dir_all("results").expect("results dir");
    let doc = serde_json::Value::Object(summary);
    fs::write("results/summary.json", serde_json::to_string_pretty(&doc).expect("serialize"))
        .expect("write summary");
    println!("\nwrote results/summary.json:\n{}", serde_json::to_string_pretty(&doc).expect("ok"));

    if let Some(path) = &options.json {
        write_json(path, &json_report("repro", records)).expect("writable --json path");
        println!("wrote per-job results to {}", path.display());
    }
}
