//! Regenerates **Figure 6**: overall system execution time of CoHoRT, PCC
//! and PENDULUM, normalized against standard MSI with a COTS FCFS arbiter.
//!
//! ```text
//! cargo run --release -p cohort-bench --bin fig6 \
//!     [-- --config all-cr] [--quick|--full] [--json <path>] [--metrics] [--trace <path>]
//! ```

use cohort::Protocol;
use cohort_bench::{
    bench_ga, geomean, json_report, kernels, run_to_json, sweep_protocols_opts, write_chrome_trace,
    write_json, CliOptions, CritConfig, CORES,
};

fn main() {
    let options = CliOptions::parse_or_exit();
    let configs: Vec<CritConfig> =
        options.config.map_or_else(|| CritConfig::ALL.to_vec(), |c| vec![c]);
    let ga = bench_ga(options.quick);
    let workloads = kernels(CORES, options.full, options.quick);
    let mut records = Vec::new();
    let mut trace_path = options.trace.as_deref();

    println!("Figure 6 — Execution time normalized against MSI + FCFS (lower is better)");
    println!("Paper averages (All Cr): CoHoRT 1.03x, PCC 1.13x, PENDULUM 1.50x\n");

    for config in configs {
        println!("=== Fig. 6{} — {} ===", config.subfigure(), config.label());
        println!(
            "{:<8} {:>12} {:>10} {:>10} {:>10}",
            "kernel", "MSI+FCFS", "CoHoRT", "PCC", "PENDULUM"
        );
        let mut cohort_slow = Vec::new();
        let mut pcc_slow = Vec::new();
        let mut pend_slow = Vec::new();
        for workload in &workloads {
            let runs = sweep_protocols_opts(config, workload, &ga, options.metrics)
                .expect("sweep succeeds");
            records.extend(runs.iter().map(|run| run_to_json(config, run)));
            if let Some(path) = trace_path.take() {
                let timers = runs[0].timers.clone().expect("the CoHoRT run carries its timers");
                write_chrome_trace(path, &config.spec(), &Protocol::Cohort { timers }, workload)
                    .expect("writable --trace path");
                println!(
                    "wrote Chrome trace of {}/{} to {}",
                    config.slug(),
                    workload.name(),
                    path.display()
                );
            }
            let baseline = runs[3].outcome.execution_time() as f64;
            let norm = |i: usize| runs[i].outcome.execution_time() as f64 / baseline;
            let (c, p, n) = (norm(0), norm(1), norm(2));
            println!(
                "{:<8} {:>12} {:>9.3}x {:>9.3}x {:>9.3}x",
                workload.name(),
                runs[3].outcome.execution_time(),
                c,
                p,
                n
            );
            cohort_slow.push(c);
            pcc_slow.push(p);
            pend_slow.push(n);
        }
        println!(
            "{:<8} {:>12} {:>9.3}x {:>9.3}x {:>9.3}x   (geomean)",
            "average",
            "-",
            geomean(&cohort_slow),
            geomean(&pcc_slow),
            geomean(&pend_slow)
        );
        println!();
    }

    if let Some(path) = &options.json {
        write_json(path, &json_report("fig6", records)).expect("writable --json path");
        println!("wrote machine-readable results to {}", path.display());
    }
}
