//! Regenerates **Figure 5**: total worst-case memory latency (experimental
//! and analytical) of CoHoRT vs PCC vs PENDULUM under the three
//! criticality configurations.
//!
//! ```text
//! cargo run --release -p cohort-bench --bin fig5 \
//!     [-- --config all-cr] [--quick|--full] [--json <path>] [--metrics] [--trace <path>]
//! ```

use cohort::Protocol;
use cohort_bench::{
    bench_ga, geomean, json_report, kernels, run_to_json, sweep_protocols_opts, write_chrome_trace,
    write_json, CliOptions, CritConfig, CORES,
};

fn main() {
    let options = CliOptions::parse_or_exit();
    let configs: Vec<CritConfig> =
        options.config.map_or_else(|| CritConfig::ALL.to_vec(), |c| vec![c]);
    let ga = bench_ga(options.quick);
    let workloads = kernels(CORES, options.full, options.quick);
    let mut records = Vec::new();
    let mut trace_path = options.trace.as_deref();

    println!("Figure 5 — Total WCML: experimental (exp) and analytical (ana), cycles");
    println!("Log-scale bars in the paper; raw cycle counts here.\n");

    for config in configs {
        println!("=== Fig. 5{} — {} ===", config.subfigure(), config.label());
        println!(
            "{:<8} {:>4}  {:>12} {:>12}  {:>12} {:>12}  {:>12} {:>12}",
            "kernel",
            "core",
            "CoHoRT exp",
            "CoHoRT ana",
            "PCC exp",
            "PCC ana",
            "PEND exp",
            "PEND ana"
        );
        let mask = config.critical_mask();
        let mut pcc_ratios = Vec::new();
        let mut pend_ratios = Vec::new();
        for workload in &workloads {
            let runs = sweep_protocols_opts(config, workload, &ga, options.metrics)
                .expect("sweep succeeds");
            records.extend(runs.iter().map(|run| run_to_json(config, run)));
            if let Some(path) = trace_path.take() {
                let timers = runs[0].timers.clone().expect("the CoHoRT run carries its timers");
                write_chrome_trace(path, &config.spec(), &Protocol::Cohort { timers }, workload)
                    .expect("writable --trace path");
                println!(
                    "wrote Chrome trace of {}/{} to {}",
                    config.slug(),
                    workload.name(),
                    path.display()
                );
            }
            let (cohort, pcc, pendulum) = (&runs[0].outcome, &runs[1].outcome, &runs[2].outcome);
            for outcome in [cohort, pcc, pendulum] {
                outcome.check_soundness().expect("bounds dominate measurements");
            }
            for core in 0..CORES {
                let fmt = |o: &cohort::ExperimentOutcome| {
                    let exp = o.stats.cores[core].total_latency.get();
                    let ana = o
                        .bounds
                        .as_ref()
                        .and_then(|b| b[core].wcml)
                        .map_or_else(|| "unbounded".to_string(), |w| w.get().to_string());
                    (exp, ana)
                };
                let (ce, ca) = fmt(cohort);
                let (pe, pa) = fmt(pcc);
                let (ne, na) = fmt(pendulum);
                println!(
                    "{:<8} {:>4}  {:>12} {:>12}  {:>12} {:>12}  {:>12} {:>12}",
                    workload.name(),
                    format!("c{core}"),
                    ce,
                    ca,
                    pe,
                    pa,
                    ne,
                    na
                );
                // Ratio summaries over the critical cores (the cores the
                // paper's bound comparison is about).
                if mask[core] {
                    let cohort_ana =
                        cohort.bounds.as_ref().unwrap()[core].wcml.unwrap().get() as f64;
                    let pcc_ana = pcc.bounds.as_ref().unwrap()[core].wcml.unwrap().get() as f64;
                    pcc_ratios.push(pcc_ana / cohort_ana);
                    if let Some(pend_ana) = pendulum.bounds.as_ref().unwrap()[core].wcml {
                        pend_ratios.push(pend_ana.get() as f64 / cohort_ana);
                    }
                }
            }
            println!();
        }
        println!("--- Summary over Cr cores (geomean of analytical WCML ratios) ---");
        println!("PCC / CoHoRT      = {:.2}x   (paper, All Cr: 2.15x)", geomean(&pcc_ratios));
        if !pend_ratios.is_empty() {
            println!(
                "PENDULUM / CoHoRT = {:.2}x   (paper: ~16x / ~6x / ~18x per config)",
                geomean(&pend_ratios)
            );
        }
        println!();
    }

    if let Some(path) = &options.json {
        write_json(path, &json_report("fig5", records)).expect("writable --json path");
        println!("wrote machine-readable results to {}", path.display());
    }
}
