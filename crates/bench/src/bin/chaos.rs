//! Chaos campaign: seeded fault-injection runs under the runtime WCML
//! watchdog, demonstrating online graceful degradation (§VI escalation to
//! MSI) and closing the loop with the `cohort-verif` replay harness —
//! every latency conviction is exported as a `cohort-trace` workload and
//! re-run clean through the faithful engine.
//!
//! ```text
//! cargo run --release -p cohort-bench --bin chaos -- \
//!     [--quick] [--json results/BENCH_chaos.json]
//! ```
//!
//! Every campaign runs **twice** and the two [`DegradationReport`]s must
//! serialize byte-identically — the bin exits non-zero on any
//! non-determinism, watchdog miss, or dirty replay, so CI can use it as a
//! smoke gate.

use std::process::ExitCode;

use cohort::{run_with_watchdog, DegradationReport, ModeSwitchLut, WatchdogPolicy};
use cohort_bench::{json_report_envelope, write_json, CliOptions};
use cohort_sim::{FaultKind, FaultPlan, FaultSpec, SimConfig, WcmlViolationKind};
use cohort_trace::{Trace, TraceOp, Workload};
use cohort_types::{Cycles, Result, TimerValue};
use cohort_verif::{replay_workload, workload_from_violation};
use serde_json::json;

fn timed(theta: u64) -> TimerValue {
    TimerValue::timed(theta).expect("θ fits in 16 bits")
}

/// Every core hammers the same line with a fixed inter-access gap — the
/// ping-pong pattern that makes every θ window visible in the latencies.
fn shared_store_workload(cores: usize, ops: usize, gap: u64) -> Workload {
    let trace =
        || Trace::from_ops((0..ops).map(|_| TraceOp::store(1).after(gap)).collect::<Vec<_>>());
    Workload::new("chaos-ping-pong", (0..cores).map(|_| trace()).collect())
        .expect("at least one core")
}

/// One named fault campaign: a platform, a LUT, a fault plan, a policy.
struct Campaign {
    name: &'static str,
    config: SimConfig,
    workload: Workload,
    lut: ModeSwitchLut,
    plan: FaultPlan,
    policy: WatchdogPolicy,
    /// Whether the campaign is constructed to force an online escalation
    /// (checked, so CI catches a watchdog that stops convicting).
    expect_switch: bool,
}

fn two_core_config() -> SimConfig {
    SimConfig::builder(2).timers(vec![timed(50); 2]).build().expect("valid config")
}

fn four_core_config() -> SimConfig {
    SimConfig::builder(4).timers(vec![timed(50); 4]).build().expect("valid config")
}

/// Mode 1 keeps everyone time-based; mode 2 degrades the low-criticality
/// tail cores to MSI (the §VI escalation row).
fn degrading_lut(cores: usize, keep_timed: usize) -> ModeSwitchLut {
    let mode1 = vec![timed(50); cores];
    let mode2: Vec<TimerValue> =
        (0..cores).map(|i| if i < keep_timed { timed(50) } else { TimerValue::MSI }).collect();
    ModeSwitchLut::new(vec![mode1, mode2]).expect("valid LUT")
}

fn campaigns(quick: bool) -> Vec<Campaign> {
    let ops = if quick { 150 } else { 600 };
    vec![
        // The acceptance scenario: a silently corrupted θ register starves
        // the peer past its Eq. 1 bound, the watchdog convicts online and
        // the LUT escalation degrades the faulty core to MSI.
        Campaign {
            name: "timer-corruption",
            config: two_core_config(),
            workload: shared_store_workload(2, ops, 150),
            lut: degrading_lut(2, 1),
            plan: FaultPlan::new(vec![FaultSpec {
                kind: FaultKind::TimerCorruption { value: timed(20_000) },
                core: 1,
                at: Cycles::new(10),
            }]),
            policy: WatchdogPolicy::default(),
            expect_switch: true,
        },
        // A transient bus jam convicts once; the opt-in re-promotion
        // policy steps the system back after a clean window.
        Campaign {
            name: "bus-jam-repromote",
            config: two_core_config(),
            workload: shared_store_workload(2, ops, 100),
            lut: degrading_lut(2, 1),
            plan: FaultPlan::new(vec![FaultSpec {
                kind: FaultKind::BusDelay { cycles: 5_000 },
                core: 0,
                at: Cycles::new(10),
            }]),
            policy: WatchdogPolicy { repromote_after: Some(5_000), ..WatchdogPolicy::default() },
            expect_switch: true,
        },
        // A seeded pseudo-random storm on the four-core platform: whatever
        // fires, the run must stay deterministic and the report total.
        Campaign {
            name: "seeded-storm",
            config: four_core_config(),
            workload: shared_store_workload(4, ops, 120),
            lut: degrading_lut(4, 2),
            plan: FaultPlan::seeded(0xC0F0_57EE, 4, 40_000, 8),
            policy: WatchdogPolicy { progress_timeout: Some(50_000), ..WatchdogPolicy::default() },
            expect_switch: false,
        },
    ]
}

fn run_campaign(campaign: &Campaign) -> Result<DegradationReport> {
    run_with_watchdog(
        campaign.config.clone(),
        &campaign.workload,
        &campaign.lut,
        campaign.plan.clone(),
        &campaign.policy,
    )
}

/// Exports the first latency conviction as a `cohort-trace` workload and
/// replays it through the faithful (unfaulted) engine — the verif-loop
/// closure. Returns `None` when the campaign produced no latency
/// conviction to export.
fn replay_first_conviction(
    campaign: &Campaign,
    report: &DegradationReport,
) -> Result<Option<serde_json::Value>> {
    let Some(violation) =
        report.violations.iter().find(|v| v.kind == WcmlViolationKind::LatencyBound)
    else {
        return Ok(None);
    };
    let exported = workload_from_violation(&campaign.workload, violation);
    let outcome = replay_workload(campaign.config.clone(), &exported)?;
    Ok(Some(json!({
        "exported_accesses": exported.total_accesses(),
        "replay_accesses": outcome.accesses,
        "engine_clean": outcome.engine_is_clean(),
    })))
}

fn main() -> ExitCode {
    let options = CliOptions::parse_or_exit();
    let quick = options.quick;
    let mut records = Vec::new();
    let mut failed = false;

    for campaign in &campaigns(quick) {
        let (first, second) = match (run_campaign(campaign), run_campaign(campaign)) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("{}: run failed: {e}", campaign.name);
                failed = true;
                continue;
            }
        };
        let ja = serde_json::to_string_pretty(&first.to_json()).unwrap_or_default();
        let jb = serde_json::to_string_pretty(&second.to_json()).unwrap_or_default();
        let deterministic = first == second && ja == jb && !ja.is_empty();
        if !deterministic {
            eprintln!("{}: two identical runs produced different reports", campaign.name);
            failed = true;
        }
        if campaign.expect_switch {
            let compliant =
                first.post_switch.as_ref().is_some_and(|p| p.requests > 0 && p.compliant);
            if first.switches.is_empty() || !compliant {
                eprintln!(
                    "{}: expected an online escalation with a compliant post-switch tail",
                    campaign.name
                );
                failed = true;
            }
        }
        let replay = match replay_first_conviction(campaign, &first) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: replay failed: {e}", campaign.name);
                failed = true;
                None
            }
        };
        if let Some(replay) = &replay {
            if replay.get("engine_clean").and_then(serde_json::Value::as_bool) != Some(true) {
                eprintln!(
                    "{}: exported workload replayed dirty on the faithful engine",
                    campaign.name
                );
                failed = true;
            }
        }

        println!(
            "{:<18} seed {:<12} faults {}/{}  convictions {:>3}  switches {}  final mode {}  \
             detection {}  post-switch {}",
            campaign.name,
            first.seed.map_or_else(|| "manual".to_owned(), |s| format!("{s:#x}")),
            first.faults.len(),
            first.planned_faults,
            first.violations_total(),
            first.switches.len(),
            first.final_mode,
            first.detection_latency.map_or_else(|| "-".to_owned(), |d| format!("{d}cy")),
            first.post_switch.as_ref().map_or_else(
                || "-".to_owned(),
                |p| if p.compliant {
                    format!("ok ({} reqs)", p.requests)
                } else {
                    "VIOLATED".to_owned()
                }
            ),
        );

        let mut record = serde_json::Map::new();
        record.insert("name".into(), json!(campaign.name));
        record.insert("cores".into(), json!(campaign.config.cores() as u64));
        record.insert("deterministic".into(), json!(deterministic));
        record.insert("report".into(), first.to_json());
        record.insert("replay".into(), replay.unwrap_or(serde_json::Value::Null));
        records.push(serde_json::Value::Object(record));
    }

    if let Some(path) = &options.json {
        let doc = json_report_envelope("chaos", quick, records);
        if let Err(e) = write_json(path, &doc) {
            eprintln!("cannot write {}: {e}", path.display());
            failed = true;
        } else {
            println!("wrote {}", path.display());
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
