//! Benchmarks the GA optimization engine: generations per second,
//! evaluation counts, memo-cache hit rate, and the wall-clock speedup of
//! batch-parallel fitness evaluation over the serial baseline.
//!
//! Two sections:
//!
//! 1. **Engine throughput** — a synthetic, deliberately CPU-bound fitness
//!    (a sequential xorshift chain, immune to external memoization) gives
//!    a clean serial-vs-parallel comparison of the batch evaluator. The
//!    parallel outcome is asserted bit-identical to the serial one before
//!    any speedup is reported.
//! 2. **Timer problem** — the real offline objective (static cache
//!    analysis + Eq. 1) on an Ocean-style workload, reporting how far the
//!    genome memo cache cuts the evaluation count in practice.
//!
//! ```text
//! cargo run --release -p cohort-bench --bin optim [-- --quick --json <path>]
//! ```

use std::time::Instant;

use cohort_bench::report::{self, ReportWriter};
use cohort_bench::{bench_ga, CliOptions};
use cohort_optim::{
    GaConfig, GaOutcome, GaRun, GeneticAlgorithm, SearchSpace, StopReason, TimerProblem,
};
use cohort_trace::{Kernel, KernelSpec};
use cohort_types::Cycles;
use serde_json::json;

/// A deterministic, sequentially-dependent busy function: each call costs
/// `spins` xorshift steps that the compiler cannot fold or vectorize, so
/// wall-clock scales with evaluations and nothing else.
fn busy_fitness(genes: &[u64], spins: u64) -> f64 {
    let mut acc = 0x9e37_79b9_7f4a_7c15u64;
    for &g in genes {
        acc ^= g.wrapping_mul(0xd134_2543_de82_ef95).rotate_left(17);
    }
    let mut x = acc | 1;
    for _ in 0..spins {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    ((x ^ acc) >> 11) as f64 / (1u64 << 53) as f64
}

/// One timed engine run: the outcome plus the best wall-clock over `reps`.
struct TimedRun {
    workers: usize,
    outcome: GaOutcome,
    seconds: f64,
}

fn timed_run(space: &SearchSpace, config: &GaConfig, reps: usize, spins: u64) -> TimedRun {
    let mut best = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..reps.max(1) {
        let ga = GeneticAlgorithm::new(space.clone(), config.clone());
        let start = Instant::now();
        let run = ga.run(|genes| busy_fitness(genes, spins));
        best = best.min(start.elapsed().as_secs_f64());
        outcome = Some(run);
    }
    TimedRun {
        workers: config.resolved_workers(),
        outcome: outcome.expect("reps ≥ 1"),
        seconds: best,
    }
}

fn stop_label(stop: StopReason) -> &'static str {
    match stop {
        StopReason::Completed => "completed",
        StopReason::TargetReached => "target_reached",
        StopReason::Stalled => "stalled",
        StopReason::BudgetExhausted => "budget_exhausted",
    }
}

fn run_to_json(run: &TimedRun, generations: usize) -> serde_json::Value {
    json!({
        "workers": run.workers,
        "seconds": run.seconds,
        "generations_per_sec": generations as f64 / run.seconds.max(1e-12),
        "evaluations": run.outcome.evaluations,
        "cache_hits": run.outcome.cache_hits,
        "cache_hit_rate": run.outcome.cache_hit_rate(),
        "nan_evaluations": run.outcome.nan_evaluations,
        "best_fitness": run.outcome.best_fitness,
        "stop": stop_label(run.outcome.stop),
    })
}

fn main() {
    let options = CliOptions::parse_or_exit();
    let host_parallelism =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let (spins, requests, reps) =
        if options.quick { (20_000u64, 2_000u64, 2usize) } else { (200_000, 20_000, 3) };
    let base = bench_ga(options.quick);

    // Section 1 — engine throughput on the synthetic busy objective.
    println!(
        "GA engine benchmark — population {}, generations {}, host parallelism {}\n",
        base.population, base.generations, host_parallelism
    );
    println!(
        "{:<10} {:>9} {:>12} {:>13} {:>12} {:>11}",
        "mode", "workers", "seconds", "gens/sec", "evals", "cache hits"
    );
    let space = SearchSpace::new(vec![(0, u64::from(u16::MAX)); 6]);
    let serial = timed_run(&space, &GaConfig { workers: 1, ..base.clone() }, reps, spins);
    // `--workers` forces the parallel leg's worker count (0 = resolve from
    // the host); useful both to pin CI runs and to measure oversubscription
    // on small hosts.
    let parallel_workers = options.workers.unwrap_or(0);
    let parallel =
        timed_run(&space, &GaConfig { workers: parallel_workers, ..base.clone() }, reps, spins);
    if parallel.workers > host_parallelism {
        println!(
            "(forced {} workers on {host_parallelism} CPU(s): oversubscribed, expect no speedup)\n",
            parallel.workers
        );
    }

    // Determinism is the engine's core contract: refuse to report a
    // speedup for a solver that changes its answer with the thread count.
    assert_eq!(serial.outcome, parallel.outcome, "parallel run must be bit-identical to serial");

    for (label, run) in [("serial", &serial), ("parallel", &parallel)] {
        println!(
            "{label:<10} {:>9} {:>12.3} {:>13.1} {:>12} {:>11}",
            run.workers,
            run.seconds,
            base.generations as f64 / run.seconds.max(1e-12),
            run.outcome.evaluations,
            run.outcome.cache_hits,
        );
    }
    let speedup = serial.seconds / parallel.seconds.max(1e-12);
    println!("\nspeedup {speedup:.2}× with {} worker(s)", parallel.workers);
    if host_parallelism == 1 {
        println!("(single-CPU host: no parallel speedup is available here)");
    }

    // Section 2 — the real timer problem: four timed cores on an
    // Ocean-style sharing pattern, generous requirements on the two
    // critical cores. Here the genome memo and the shared analysis cache
    // carry the cost, so the interesting numbers are the counters.
    let workload = KernelSpec::new(Kernel::Ocean, 4).with_total_requests(requests).generate();
    let problem = TimerProblem::builder(&workload)
        .timed(0, Some(Cycles::new(10_000_000)))
        .timed(1, Some(Cycles::new(10_000_000)))
        .timed(2, None)
        .timed(3, None)
        .build()
        .expect("four-core problem");
    let start = Instant::now();
    let timer_outcome = GaRun::new(&problem).config(&base).run();
    let timer_seconds = start.elapsed().as_secs_f64();
    let feasible = problem.evaluate(&timer_outcome.best).feasible;
    println!(
        "\ntimer problem ({requests} requests): {:.3} s, {} evaluations, \
         {} cache hits ({:.1}%), feasible: {feasible}",
        timer_seconds,
        timer_outcome.evaluations,
        timer_outcome.cache_hits,
        100.0 * timer_outcome.cache_hit_rate(),
    );

    if let Some(path) = &options.json {
        let writer = ReportWriter::new(&report::OPTIM, "optim");
        let report = json!({
            "quick": options.quick,
            "host_parallelism": host_parallelism,
            "workers_forced": options.workers,
            "population": base.population,
            "generations": base.generations,
            "spins": spins,
            "requests": requests,
            "reps": reps,
            "bit_identical": true,
            "speedup": speedup,
            "runs": [
                run_to_json(&serial, base.generations),
                run_to_json(&parallel, base.generations),
            ],
            "timer_problem": json!({
                "seconds": timer_seconds,
                "evaluations": timer_outcome.evaluations,
                "cache_hits": timer_outcome.cache_hits,
                "cache_hit_rate": timer_outcome.cache_hit_rate(),
                "best_fitness": timer_outcome.best_fitness,
                "feasible": feasible,
                "stop": stop_label(timer_outcome.stop),
            }),
        });
        writer.write(path, report).expect("write JSON report");
        println!("\nwrote {}", path.display());
    }
}
