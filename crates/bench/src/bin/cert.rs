//! Monte Carlo certification campaign: population-scale fault-injection
//! and schedulability trials streamed through the fleet.
//!
//! The run makes the certification claims measurable:
//!
//! 1. **Scale** — tens of thousands of seeded trials flow through
//!    content-addressed `Certify` fleet jobs; only streaming aggregates
//!    survive (rates with Wilson 95% intervals, a log2 detection-latency
//!    histogram, the schedulability curve), never a per-run report.
//! 2. **Determinism** — the whole campaign runs **twice** over one
//!    persistent store; the aggregate documents must be bit-identical
//!    (fleet scheduling must not leak into the estimates) and the second
//!    run must replay entirely from the memo — zero fresh executions.
//! 3. **Reproducibility** — convictions are auto-minimized through the
//!    `cohort-verif` replay harness; every counterexample must re-convict
//!    under its original fault plan and replay clean on the faithful
//!    engine, and is written next to the report as
//!    `cert_counterexample_<seed>.json`.
//!
//! ```text
//! cargo run --release -p cohort-bench --bin cert -- \
//!     [--quick] [--json results/BENCH_cert.json]
//! ```

use std::time::Instant;

use serde_json::json;

use cohort_bench::report::{self, ReportWriter};
use cohort_bench::CliOptions;
use cohort_cert::{run_certification, CertConfig, CertOutcome};

fn canonical(v: &serde_json::Value) -> String {
    serde_json::to_string(v).expect("a Value serializes infallibly")
}

fn campaign_config(quick: bool, counterexample_dir: Option<std::path::PathBuf>) -> CertConfig {
    CertConfig {
        fault_trials: if quick { 2_048 } else { 8_192 },
        sched_trials: if quick { 8_192 } else { 32_768 },
        batch_trials: 256,
        shards: if quick { 2 } else { 4 },
        minimize_limit: 2,
        counterexample_dir,
        ..CertConfig::default()
    }
}

fn print_outcome(outcome: &CertOutcome, seconds: f64) {
    let trials = outcome.fault.trials + outcome.sched.trials;
    println!(
        "  {} trials ({} fault + {} sched) over {} jobs in {seconds:.2} s ({:.0} trials/s)",
        trials,
        outcome.fault.trials,
        outcome.sched.trials,
        outcome.jobs,
        trials as f64 / seconds,
    );
    let detected = &outcome.fault.detected;
    let (lo, hi) =
        cohort_cert::wilson(detected.successes, detected.trials, cohort_cert::WILSON_Z95);
    println!(
        "  detection rate {:.4} (95% CI [{lo:.4}, {hi:.4}]), \
         false convictions {}/{} control trials",
        detected.value(),
        outcome.fault.false_convictions.successes,
        outcome.fault.false_convictions.trials,
    );
    println!(
        "  degradation success {:.4}, max detection latency {} cycles, \
         {} schedulable of {} task sets",
        outcome.fault.degradation_success.value(),
        outcome.fault.detection.max(),
        outcome.sched.schedulable,
        outcome.sched.trials,
    );
    for c in &outcome.counterexamples {
        println!(
            "  counterexample seed {}: {} -> {} -> {} accesses \
             (kind {}, reconvicts {}, replay clean {})",
            c.seed,
            c.original_accesses,
            c.exported_accesses,
            c.minimized_accesses,
            c.kind.slug(),
            c.reconvicts,
            c.replay_clean,
        );
    }
}

fn main() {
    let options = CliOptions::parse_or_exit();
    let quick = options.quick;

    // Counterexamples land next to the report (results/ in CI).
    let counterexample_dir =
        options.json.as_ref().map(|p| p.parent().unwrap_or(std::path::Path::new(".")).to_owned());
    let mut config = campaign_config(quick, counterexample_dir);
    // Both runs share one persistent store: run 1 populates it cold, run
    // 2 must replay the entire campaign from the memo without a single
    // fresh execution.
    let store_dir = std::env::temp_dir().join(format!("cohort-cert-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();
    config.store_dir = Some(store_dir.clone());
    let trials_planned = config.fault_trials + config.sched_trials;

    println!("certification campaign ({})", if quick { "quick" } else { "full" });
    println!(
        "\nrun 1: {} fault + {} sched trials in batches of {} over {} shards ...",
        config.fault_trials, config.sched_trials, config.batch_trials, config.shards,
    );
    let start = Instant::now();
    let first = run_certification(&config).expect("campaign runs");
    let first_seconds = start.elapsed().as_secs_f64();
    print_outcome(&first, first_seconds);

    println!("\nrun 2: same campaign, fresh fleet over the warm store ...");
    let start = Instant::now();
    let second = run_certification(&config).expect("campaign runs");
    let second_seconds = start.elapsed().as_secs_f64();
    let identical = canonical(&first.aggregate_json()) == canonical(&second.aggregate_json());
    println!(
        "  {second_seconds:.2} s, {} fresh execution(s), {} store hit(s), \
         aggregates bit-identical: {identical}",
        second.stats.executed, second.stats.store_hits,
    );
    std::fs::remove_dir_all(&store_dir).ok();

    assert!(identical, "two runs of the same campaign must produce bit-identical aggregates");
    assert_eq!(first.stats.executed, first.jobs, "a cold store executes every batch");
    assert_eq!(
        second.stats.executed, 0,
        "the warm store replays the whole campaign with zero fresh executions"
    );
    assert_eq!(
        first.fault.trials + first.sched.trials,
        trials_planned,
        "every planned trial must be accounted for"
    );
    assert!(
        !first.counterexamples.is_empty(),
        "at least one seeded campaign must convict and minimize"
    );
    for c in &first.counterexamples {
        assert!(c.reconvicts, "seed {}: the minimized workload must still convict", c.seed);
        assert!(c.replay_clean, "seed {}: the faithful replay must be clean", c.seed);
    }

    if let Some(path) = &options.json {
        let doc = json!({
            "quick": quick,
            "trials": trials_planned,
            "fault": first.fault.to_json(),
            "schedulability": first.sched.to_json(),
            "counterexamples": first
                .counterexamples
                .iter()
                .map(cohort_cert::Counterexample::to_json)
                .collect::<Vec<serde_json::Value>>(),
            "jobs": first.jobs,
            "runs_identical": identical,
            "fleet": json!({
                "submitted": first.stats.queue.submitted,
                "deduplicated": first.stats.queue.deduplicated,
                "executed": first.stats.executed,
                "served": first.stats.served,
                "health": first.stats.health.to_json(),
            }),
            "memoized_run": json!({
                "executed": second.stats.executed,
                "store_hits": second.stats.store_hits,
                "health": second.stats.health.to_json(),
            }),
            "seconds": json!({ "run1": first_seconds, "run2": second_seconds }),
        });
        ReportWriter::new(&report::CERT, "cert").write(path, doc).expect("writable --json path");
        println!("\nwrote {}", path.display());
    }
}
