//! Regenerates **Table II**: the per-mode timer configurations θ_i^m
//! computed offline by the optimization engine for the mode-switch
//! experiment platform (criticalities 4, 3, 2, 1 running fft).
//!
//! ```text
//! cargo run --release -p cohort-bench --bin table2 [-- --quick] [--json <path>]
//! ```

use cohort::ModeSetup;
use cohort_bench::report::{self, ReportWriter};
use cohort_bench::{bench_ga, mode_switch_spec, CliOptions};
use cohort_trace::{Kernel, KernelSpec};
use serde_json::json;

fn main() {
    let options = CliOptions::parse_or_exit();
    let spec = mode_switch_spec();
    let mut kernel = KernelSpec::new(Kernel::Fft, 4);
    if options.quick {
        kernel = kernel.with_total_requests(Kernel::Fft.default_total_requests() / 10);
    }
    let workload = kernel.generate();
    let ga = bench_ga(options.quick);
    let config = ModeSetup::new(&spec, &workload).ga(&ga).run().expect("offline flow succeeds");

    println!("Table II — Timer configurations of cores at different modes (fft)");
    println!("(paper values: m1: 300/20/20/20 … m4: 500/-1/-1/-1; ours are re-optimized");
    println!(" for the synthetic fft workload, so magnitudes differ but the structure —");
    println!(" lower-criticality cores degraded to -1 as the mode rises — must match)\n");
    println!("{:<5} {:>8} {:>8} {:>8} {:>8}   feasible", "m", "θ0", "θ1", "θ2", "θ3");
    for entry in &config.entries {
        let thetas: Vec<String> = entry.timers.iter().map(ToString::to_string).collect();
        println!(
            "{:<5} {:>8} {:>8} {:>8} {:>8}   {}",
            entry.mode.index(),
            thetas[0],
            thetas[1],
            thetas[2],
            thetas[3],
            entry.feasible
        );
    }
    println!(
        "\nMode-Switch LUT hardware cost: {} bits per core ({} modes × 16 bits)",
        config.lut.bits_per_core(),
        config.lut.modes()
    );

    if let Some(path) = &options.json {
        let entries: Vec<serde_json::Value> = config
            .entries
            .iter()
            .map(|entry| {
                json!({
                    "mode": entry.mode.index(),
                    "timers": entry.timers.iter().map(|t| t.encode()).collect::<Vec<i32>>(),
                    "feasible": entry.feasible,
                })
            })
            .collect();
        let doc = json!({
            "bits_per_core": u64::from(config.lut.bits_per_core()),
            "entries": entries,
        });
        ReportWriter::new(&report::TABLE2, "table2")
            .write(path, doc)
            .expect("writable --json path");
        println!("wrote machine-readable results to {}", path.display());
    }
}
