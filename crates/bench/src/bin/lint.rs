//! Workspace static-analysis gate — the CI entry point of `cohort-lint`.
//!
//! ```text
//! cargo run --release -p cohort-bench --bin lint [-- --json <path>] [--root <dir>]
//! ```
//!
//! Walks every library source file of the workspace, runs the DET / FPR /
//! LCK passes, applies `// lint:allow(<code>) <justification>` markers,
//! prints every diagnostic (suppressed ones flagged as justified), and
//! exits non-zero when any *unsuppressed* diagnostic remains. `--json`
//! additionally writes the machine-readable report (`lint/1` schema,
//! validated by `schema_check --lint`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cohort_bench::report::{ReportWriter, LINT};
use cohort_bench::write_json;
use cohort_lint::analyze_workspace;
use serde_json::json;

const USAGE: &str = "usage: lint [--json <path>] [--root <dir>]";

struct Options {
    json: Option<PathBuf>,
    root: Option<PathBuf>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut options = Options { json: None, root: None };
    let mut args = args.skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                options.json = Some(PathBuf::from(args.next().ok_or("--json needs a path")?));
            }
            "--root" => {
                options.root = Some(PathBuf::from(args.next().ok_or("--root needs a dir")?));
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(options)
}

/// The workspace root: `--root` when given, else the bench crate's
/// grandparent (`crates/bench/../..`), so the gate works from any cwd.
fn workspace_root(options: &Options) -> PathBuf {
    options
        .root
        .clone()
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join(".."))
}

fn main() -> ExitCode {
    let options = parse_args(std::env::args()).unwrap_or_else(|message| {
        eprintln!("{message}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    });
    let root = workspace_root(&options);
    let analysis = match analyze_workspace(&root) {
        Ok(analysis) => analysis,
        Err(err) => {
            eprintln!("lint: cannot scan {}: {err}", root.display());
            return ExitCode::FAILURE;
        }
    };

    println!(
        "lint: {} files scanned, {} diagnostics ({} justified, {} unsuppressed)",
        analysis.files_scanned,
        analysis.diagnostics.len(),
        analysis.suppressed(),
        analysis.unsuppressed(),
    );
    for diag in &analysis.diagnostics {
        println!("  {}", diag.render());
    }

    if let Some(path) = &options.json {
        let writer = ReportWriter::new(&LINT, "lint");
        let doc = writer.envelope(json!({
            "report": analysis.to_json_value(),
        }));
        if let Err(err) = write_json(path, &doc) {
            eprintln!("lint: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }

    if analysis.unsuppressed() > 0 {
        eprintln!("lint: {} unsuppressed diagnostics", analysis.unsuppressed());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
