//! Shared harness for regenerating every table and figure of the CoHoRT
//! paper (§VIII). Each `src/bin/*` target prints one table/figure; this
//! library holds the common machinery: the three criticality
//! configurations, requirement derivation, protocol sweeps, and plain-text
//! rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cohort::{run_experiment, ExperimentOutcome, Protocol, SystemSpec};
use cohort_optim::{solve, GaConfig, TimerProblem};
use cohort_trace::{Kernel, KernelSpec, Workload};
use cohort_types::{Criticality, Cycles, Result, TimerValue};

/// The uniform timer PENDULUM programs on its critical cores (PENDULUM is
/// not requirement-aware; a single protective value serves everyone).
pub const PENDULUM_THETA: u64 = 300;

/// Slack applied when deriving a task's requirement Γ from its reference
/// bound, in percent: Γ = bound × GAMMA_SLACK_PERCENT / 100.
pub const GAMMA_SLACK_PERCENT: u64 = 115;

/// Number of cores in the paper's evaluation platform.
pub const CORES: usize = 4;

/// The three criticality configurations of Figures 5 and 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CritConfig {
    /// All four cores critical (Fig. 5a / 6a).
    AllCr,
    /// Cores 0–1 critical, 2–3 non-critical (Fig. 5b / 6b).
    TwoCrTwoNcr,
    /// Core 0 critical, 1–3 non-critical (Fig. 5c / 6c).
    OneCrThreeNcr,
}

impl CritConfig {
    /// All three configurations in figure order.
    pub const ALL: [CritConfig; 3] =
        [CritConfig::AllCr, CritConfig::TwoCrTwoNcr, CritConfig::OneCrThreeNcr];

    /// The label used in the paper.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CritConfig::AllCr => "All Cr",
            CritConfig::TwoCrTwoNcr => "2 Cr, 2 nCr",
            CritConfig::OneCrThreeNcr => "1 Cr, 3 nCr",
        }
    }

    /// Command-line spelling (`--config` argument of the bin targets).
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            CritConfig::AllCr => "all-cr",
            CritConfig::TwoCrTwoNcr => "2cr2ncr",
            CritConfig::OneCrThreeNcr => "1cr3ncr",
        }
    }

    /// Parses a `--config` argument.
    #[must_use]
    pub fn from_slug(slug: &str) -> Option<Self> {
        CritConfig::ALL.into_iter().find(|c| c.slug() == slug)
    }

    /// The sub-figure letter in Figures 5 and 6 ("a"/"b"/"c").
    #[must_use]
    pub fn subfigure(self) -> &'static str {
        match self {
            CritConfig::AllCr => "a",
            CritConfig::TwoCrTwoNcr => "b",
            CritConfig::OneCrThreeNcr => "c",
        }
    }

    /// Which cores are critical.
    #[must_use]
    pub fn critical_mask(self) -> Vec<bool> {
        match self {
            CritConfig::AllCr => vec![true; CORES],
            CritConfig::TwoCrTwoNcr => vec![true, true, false, false],
            CritConfig::OneCrThreeNcr => vec![true, false, false, false],
        }
    }

    /// The platform spec: critical cores at level 2, non-critical at 1.
    ///
    /// # Panics
    ///
    /// Never — the levels are static and valid.
    #[must_use]
    pub fn spec(self) -> SystemSpec {
        let mut b = SystemSpec::builder();
        for critical in self.critical_mask() {
            let level = if critical { 2 } else { 1 };
            b = b.core(Criticality::new(level).expect("static levels"));
        }
        b.build().expect("non-empty")
    }
}

/// One protocol's result for a kernel under a configuration.
#[derive(Debug, Clone)]
pub struct ProtocolRun {
    /// The experiment outcome (stats + bounds).
    pub outcome: ExperimentOutcome,
    /// The timers used (CoHoRT only).
    pub timers: Option<Vec<TimerValue>>,
}

/// CoHoRT's per-configuration timer optimization for one workload.
///
/// The paper derives each Cr task's requirement Γ from its system context;
/// since the concrete Γ values are not published, the harness derives them
/// the way a system integrator would: Γ_i = [`GAMMA_SLACK_PERCENT`] % of
/// the WCML bound at a small uniform reference timer (θ = 20) — tight
/// enough to constrain the GA, loose enough to be feasible.
///
/// # Errors
///
/// Propagates analysis errors; an infeasible GA outcome falls back to the
/// best assignment found (and is reported via the bounds).
pub fn optimize_cohort_timers(
    config: CritConfig,
    workload: &Workload,
    ga: &GaConfig,
) -> Result<Vec<TimerValue>> {
    let spec = config.spec();
    let mask = config.critical_mask();

    // Reference bounds at a uniform small timer for the Cr cores.
    let reference: Vec<TimerValue> = mask
        .iter()
        .map(|&c| if c { TimerValue::timed(20).expect("small") } else { TimerValue::MSI })
        .collect();
    let ref_bounds = cohort_analysis::analyze_cohort(
        workload,
        &reference,
        spec.latency(),
        spec.l1(),
        spec.llc(),
    )?;

    let mut builder = TimerProblem::builder(workload)
        .latency(*spec.latency())
        .l1(*spec.l1())
        .llc(*spec.llc());
    for (i, &critical) in mask.iter().enumerate() {
        if critical {
            let gamma =
                ref_bounds[i].wcml.map(|w| Cycles::new(w.get() * GAMMA_SLACK_PERCENT / 100));
            builder = builder.timed(i, gamma);
        }
    }
    let problem = builder.build()?;
    let outcome = solve(&problem, ga);
    Ok(problem.timers_from_genes(&outcome.best))
}

/// Runs one kernel under one configuration for CoHoRT, PCC and PENDULUM
/// (the Figure-5 sweep) plus MSI+FCFS (the Figure-6 baseline).
///
/// # Errors
///
/// Propagates simulator/analysis errors.
pub fn sweep_protocols(
    config: CritConfig,
    workload: &Workload,
    ga: &GaConfig,
) -> Result<Vec<ProtocolRun>> {
    let spec = config.spec();
    let timers = optimize_cohort_timers(config, workload, ga)?;
    let protocols = [
        Protocol::Cohort { timers: timers.clone() },
        Protocol::Pcc,
        Protocol::Pendulum { critical: config.critical_mask(), theta: PENDULUM_THETA },
        Protocol::MsiFcfs,
    ];
    protocols
        .into_iter()
        .map(|p| {
            let is_cohort = matches!(p, Protocol::Cohort { .. });
            let outcome = run_experiment(&spec, &p, workload)?;
            Ok(ProtocolRun {
                outcome,
                timers: if is_cohort { Some(timers.clone()) } else { None },
            })
        })
        .collect()
}

/// The evaluation workloads at the given scale.
#[must_use]
pub fn kernels(cores: usize, full_scale: bool, quick: bool) -> Vec<Workload> {
    Kernel::ALL
        .into_iter()
        .map(|k| {
            let mut spec = KernelSpec::new(k, cores);
            if full_scale {
                spec = spec.full_scale();
            } else if quick {
                spec = spec.with_total_requests(k.default_total_requests() / 10);
            }
            spec.generate()
        })
        .collect()
}

/// A quick GA configuration for the regeneration binaries (the full Matlab
/// run took the authors up to 20 h; the memoized hit curves make a smaller
/// budget converge here).
#[must_use]
pub fn bench_ga(quick: bool) -> GaConfig {
    if quick {
        GaConfig { population: 16, generations: 10, ..Default::default() }
    } else {
        GaConfig { population: 32, generations: 30, ..Default::default() }
    }
}

/// Geometric mean of a sequence of ratios.
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn geomean(ratios: &[f64]) -> f64 {
    assert!(!ratios.is_empty(), "geomean of nothing");
    (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp()
}

/// The mode-switch experiment platform (Figure 7 / Table II):
/// four cores at criticalities 4, 3, 2, 1.
///
/// # Panics
///
/// Never — the levels are static and valid.
#[must_use]
pub fn mode_switch_spec() -> SystemSpec {
    SystemSpec::builder()
        .core(Criticality::new(4).expect("static"))
        .core(Criticality::new(3).expect("static"))
        .core(Criticality::new(2).expect("static"))
        .core(Criticality::new(1).expect("static"))
        .build()
        .expect("non-empty")
}

/// The Figure-7 stage requirements, derived from c0's per-mode bound curve
/// exactly as the paper places its stages: stage 1 fits mode 1, stage 2
/// lands between the mode-3 and mode-2 bounds (forcing the double
/// escalation m1 → m3), stage 3 between mode 4 and mode 3.
///
/// # Panics
///
/// Panics if fewer than four per-mode bounds are supplied.
#[must_use]
pub fn fig7_stage_requirements(bounds: &[u64]) -> [u64; 3] {
    assert!(bounds.len() >= 4, "the Figure-7 platform has four modes");
    [bounds[0] * 102 / 100, (bounds[1] + bounds[2]) / 2, (bounds[2] + bounds[3]) / 2]
}

/// Parses the common CLI flags of the bin targets.
#[derive(Debug, Clone, Default)]
pub struct CliOptions {
    /// `--full`: paper-faithful scale (ocean at 2.5 M requests).
    pub full: bool,
    /// `--quick`: 10× reduced scale for smoke runs.
    pub quick: bool,
    /// `--config <slug>`: restrict to one criticality configuration.
    pub config: Option<CritConfig>,
}

impl CliOptions {
    /// Parses `std::env::args`-style arguments.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on unknown flags.
    #[must_use]
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut options = CliOptions::default();
        let mut args = args.skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => options.full = true,
                "--quick" => options.quick = true,
                "--config" => {
                    let slug = args.next().expect("--config needs a value");
                    options.config = Some(
                        CritConfig::from_slug(&slug)
                            .unwrap_or_else(|| panic!("unknown config `{slug}`")),
                    );
                }
                other => panic!("unknown flag `{other}` (use --full, --quick, --config <slug>)"),
            }
        }
        assert!(
            !(options.full && options.quick),
            "--full and --quick are mutually exclusive"
        );
        options
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_masks() {
        assert_eq!(CritConfig::AllCr.critical_mask(), vec![true; 4]);
        assert_eq!(CritConfig::OneCrThreeNcr.critical_mask(), vec![true, false, false, false]);
        assert_eq!(CritConfig::from_slug("2cr2ncr"), Some(CritConfig::TwoCrTwoNcr));
        assert_eq!(CritConfig::from_slug("nope"), None);
    }

    #[test]
    fn specs_follow_masks() {
        for config in CritConfig::ALL {
            let spec = config.spec();
            assert_eq!(spec.cores(), 4);
            let mask = config.critical_mask();
            for (core, &critical) in spec.core_specs().iter().zip(&mask) {
                assert_eq!(core.criticality().level(), if critical { 2 } else { 1 });
            }
        }
    }

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cli_parsing() {
        let opts = CliOptions::parse(
            ["bin", "--quick", "--config", "all-cr"].iter().map(ToString::to_string),
        );
        assert!(opts.quick);
        assert_eq!(opts.config, Some(CritConfig::AllCr));
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn full_and_quick_conflict() {
        let _ = CliOptions::parse(["bin", "--full", "--quick"].iter().map(ToString::to_string));
    }

    #[test]
    fn quick_sweep_is_sound() {
        // End-to-end smoke: one tiny kernel through the full sweep.
        let w = KernelSpec::new(Kernel::Fft, 4).with_total_requests(2_000).generate();
        let ga = GaConfig { population: 8, generations: 3, ..Default::default() };
        let runs = sweep_protocols(CritConfig::AllCr, &w, &ga).unwrap();
        assert_eq!(runs.len(), 4);
        for run in &runs {
            run.outcome.check_soundness().unwrap_or_else(|e| panic!("{e}"));
        }
    }
}
