//! Shared harness for regenerating every table and figure of the CoHoRT
//! paper (§VIII). Each `src/bin/*` target prints one table/figure; this
//! library holds the common machinery: the three criticality
//! configurations, requirement derivation, protocol sweeps, and plain-text
//! rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

use std::path::{Path, PathBuf};
use std::sync::Arc;

use cohort::{
    ExperimentJob, ExperimentOutcome, JobProgress, Protocol, ProtocolKind, Sweep, SweepObserver,
    SystemSpec,
};
use cohort_optim::{GaConfig, GaRun, TimerProblem};
use cohort_sim::{ChromeTraceProbe, SimBuilder};
use cohort_trace::{Kernel, KernelSpec, Workload};
use cohort_types::{Criticality, Cycles, Error, Result, TimerValue};
use serde_json::json;

/// The uniform timer PENDULUM programs on its critical cores (PENDULUM is
/// not requirement-aware; a single protective value serves everyone).
pub const PENDULUM_THETA: u64 = 300;

/// Slack applied when deriving a task's requirement Γ from its reference
/// bound, in percent: Γ = bound × GAMMA_SLACK_PERCENT / 100.
pub const GAMMA_SLACK_PERCENT: u64 = 115;

/// Number of cores in the paper's evaluation platform.
pub const CORES: usize = 4;

/// The three criticality configurations of Figures 5 and 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CritConfig {
    /// All four cores critical (Fig. 5a / 6a).
    AllCr,
    /// Cores 0–1 critical, 2–3 non-critical (Fig. 5b / 6b).
    TwoCrTwoNcr,
    /// Core 0 critical, 1–3 non-critical (Fig. 5c / 6c).
    OneCrThreeNcr,
}

impl CritConfig {
    /// All three configurations in figure order.
    pub const ALL: [CritConfig; 3] =
        [CritConfig::AllCr, CritConfig::TwoCrTwoNcr, CritConfig::OneCrThreeNcr];

    /// The label used in the paper.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CritConfig::AllCr => "All Cr",
            CritConfig::TwoCrTwoNcr => "2 Cr, 2 nCr",
            CritConfig::OneCrThreeNcr => "1 Cr, 3 nCr",
        }
    }

    /// Command-line spelling (`--config` argument of the bin targets).
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            CritConfig::AllCr => "all-cr",
            CritConfig::TwoCrTwoNcr => "2cr2ncr",
            CritConfig::OneCrThreeNcr => "1cr3ncr",
        }
    }

    /// Parses a `--config` argument.
    #[must_use]
    pub fn from_slug(slug: &str) -> Option<Self> {
        CritConfig::ALL.into_iter().find(|c| c.slug() == slug)
    }

    /// The sub-figure letter in Figures 5 and 6 ("a"/"b"/"c").
    #[must_use]
    pub fn subfigure(self) -> &'static str {
        match self {
            CritConfig::AllCr => "a",
            CritConfig::TwoCrTwoNcr => "b",
            CritConfig::OneCrThreeNcr => "c",
        }
    }

    /// Which cores are critical.
    #[must_use]
    pub fn critical_mask(self) -> Vec<bool> {
        match self {
            CritConfig::AllCr => vec![true; CORES],
            CritConfig::TwoCrTwoNcr => vec![true, true, false, false],
            CritConfig::OneCrThreeNcr => vec![true, false, false, false],
        }
    }

    /// The platform spec: critical cores at level 2, non-critical at 1.
    ///
    /// # Panics
    ///
    /// Never — the levels are static and valid.
    #[must_use]
    pub fn spec(self) -> SystemSpec {
        let mut b = SystemSpec::builder();
        for critical in self.critical_mask() {
            let level = if critical { 2 } else { 1 };
            b = b.core(Criticality::new(level).expect("static levels"));
        }
        b.build().expect("non-empty")
    }
}

/// One protocol's result for a kernel under a configuration.
#[derive(Debug, Clone)]
pub struct ProtocolRun {
    /// The experiment outcome (stats + bounds).
    pub outcome: ExperimentOutcome,
    /// The timers used (CoHoRT only).
    pub timers: Option<Vec<TimerValue>>,
}

/// CoHoRT's per-configuration timer optimization for one workload.
///
/// The paper derives each Cr task's requirement Γ from its system context;
/// since the concrete Γ values are not published, the harness derives them
/// the way a system integrator would: Γ_i = [`GAMMA_SLACK_PERCENT`] % of
/// the WCML bound at a small uniform reference timer (θ = 20) — tight
/// enough to constrain the GA, loose enough to be feasible.
///
/// # Errors
///
/// Propagates analysis errors; an infeasible GA outcome falls back to the
/// best assignment found (and is reported via the bounds).
pub fn optimize_cohort_timers(
    config: CritConfig,
    workload: &Workload,
    ga: &GaConfig,
) -> Result<Vec<TimerValue>> {
    let spec = config.spec();
    let mask = config.critical_mask();

    // Reference bounds at a uniform small timer for the Cr cores.
    let reference: Vec<TimerValue> = mask
        .iter()
        .map(|&c| if c { TimerValue::timed(20).expect("small") } else { TimerValue::MSI })
        .collect();
    let ref_bounds = cohort_analysis::analyze_cohort(
        workload,
        &reference,
        spec.latency(),
        spec.l1(),
        spec.llc(),
    )?;

    let mut builder =
        TimerProblem::builder(workload).latency(*spec.latency()).l1(*spec.l1()).llc(*spec.llc());
    for (i, &critical) in mask.iter().enumerate() {
        if critical {
            let gamma =
                ref_bounds[i].wcml.map(|w| Cycles::new(w.get() * GAMMA_SLACK_PERCENT / 100));
            builder = builder.timed(i, gamma);
        }
    }
    let problem = builder.build()?;
    let outcome = GaRun::new(&problem).config(ga).run();
    Ok(problem.timers_from_genes(&outcome.best))
}

/// Runs one kernel under one configuration for CoHoRT, PCC and PENDULUM
/// (the Figure-5 sweep) plus MSI+FCFS (the Figure-6 baseline).
///
/// The four protocol runs go through a [`Sweep`], so they execute on the
/// bounded worker pool and share the memoized analysis curves; results
/// keep the `[CoHoRT, PCC, PENDULUM, MSI+FCFS]` order the figure
/// renderers index by position.
///
/// # Errors
///
/// Propagates simulator/analysis errors (the first failed job's error).
pub fn sweep_protocols(
    config: CritConfig,
    workload: &Workload,
    ga: &GaConfig,
) -> Result<Vec<ProtocolRun>> {
    sweep_protocols_opts(config, workload, ga, false)
}

/// [`sweep_protocols`] with explicit options: when `collect_metrics` is
/// set, every run executes under a `cohort_sim::MetricsProbe` and its
/// [`ExperimentOutcome::metrics`] report flows into the `--json` records
/// (the statistics themselves are bit-identical either way).
///
/// # Errors
///
/// Propagates simulator/analysis errors (the first failed job's error).
pub fn sweep_protocols_opts(
    config: CritConfig,
    workload: &Workload,
    ga: &GaConfig,
    collect_metrics: bool,
) -> Result<Vec<ProtocolRun>> {
    let spec = config.spec();
    let timers = optimize_cohort_timers(config, workload, ga)?;
    let shared = Arc::new(workload.clone());
    let protocols = [
        Protocol::Cohort { timers: timers.clone() },
        Protocol::Pcc,
        Protocol::Pendulum { critical: config.critical_mask(), theta: PENDULUM_THETA },
        Protocol::MsiFcfs,
    ];
    let sweep = Sweep::builder()
        .jobs(protocols.into_iter().map(|p| {
            let label = format!("{}/{}/{}", config.slug(), workload.name(), p.slug());
            ExperimentJob::new(spec.clone(), p, Arc::clone(&shared)).with_label(label)
        }))
        .collect_metrics(collect_metrics)
        .build();
    let outcomes = sweep.run().into_outcomes()?;
    Ok(outcomes
        .into_iter()
        .map(|outcome| {
            let timers = (outcome.protocol == ProtocolKind::Cohort).then(|| timers.clone());
            ProtocolRun { outcome, timers }
        })
        .collect())
}

/// A [`SweepObserver`] that prints one line per finished job to stderr.
///
/// Used by the long-running regeneration binaries so a full-scale run
/// shows forward progress without polluting the stdout tables.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConsoleObserver;

impl SweepObserver for ConsoleObserver {
    fn job_finished(&self, index: usize, label: &str, progress: &JobProgress) {
        let status = if progress.ok { "ok" } else { "FAILED" };
        eprintln!(
            "  [{index}] {label}: {status} ({} cycles, bus {:.1}%, {:.2?})",
            progress.cycles,
            progress.bus_utilisation * 100.0,
            progress.wall_time,
        );
    }
}

/// The evaluation workloads at the given scale.
#[must_use]
pub fn kernels(cores: usize, full_scale: bool, quick: bool) -> Vec<Workload> {
    Kernel::ALL
        .into_iter()
        .map(|k| {
            let mut spec = KernelSpec::new(k, cores);
            if full_scale {
                spec = spec.full_scale();
            } else if quick {
                spec = spec.with_total_requests(k.default_total_requests() / 10);
            }
            spec.generate()
        })
        .collect()
}

/// A quick GA configuration for the regeneration binaries (the full Matlab
/// run took the authors up to 20 h; the memoized hit curves make a smaller
/// budget converge here).
#[must_use]
pub fn bench_ga(quick: bool) -> GaConfig {
    if quick {
        GaConfig { population: 16, generations: 10, ..Default::default() }
    } else {
        GaConfig { population: 32, generations: 30, ..Default::default() }
    }
}

/// Geometric mean of a sequence of ratios.
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn geomean(ratios: &[f64]) -> f64 {
    assert!(!ratios.is_empty(), "geomean of nothing");
    (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp()
}

/// The mode-switch experiment platform (Figure 7 / Table II):
/// four cores at criticalities 4, 3, 2, 1.
///
/// # Panics
///
/// Never — the levels are static and valid.
#[must_use]
pub fn mode_switch_spec() -> SystemSpec {
    SystemSpec::builder()
        .core(Criticality::new(4).expect("static"))
        .core(Criticality::new(3).expect("static"))
        .core(Criticality::new(2).expect("static"))
        .core(Criticality::new(1).expect("static"))
        .build()
        .expect("non-empty")
}

/// The Figure-7 stage requirements, derived from c0's per-mode bound curve
/// exactly as the paper places its stages: stage 1 fits mode 1, stage 2
/// lands between the mode-3 and mode-2 bounds (forcing the double
/// escalation m1 → m3), stage 3 between mode 4 and mode 3.
///
/// # Panics
///
/// Panics if fewer than four per-mode bounds are supplied.
#[must_use]
pub fn fig7_stage_requirements(bounds: &[u64]) -> [u64; 3] {
    assert!(bounds.len() >= 4, "the Figure-7 platform has four modes");
    [
        bounds[0] * 102 / 100,
        u64::midpoint(bounds[1], bounds[2]),
        u64::midpoint(bounds[2], bounds[3]),
    ]
}

/// Machine-readable record of one protocol run (one element of the
/// `--json` report's `"runs"` array).
///
/// Schema per run: config/protocol/workload identity (slugs), the
/// execution time and bus utilisation, per-core measured statistics with
/// their analytical bounds (`null` where no bound exists), and the
/// optimized timers for CoHoRT runs (paper encoding, −1 = MSI).
#[must_use]
pub fn run_to_json(config: CritConfig, run: &ProtocolRun) -> serde_json::Value {
    let outcome = &run.outcome;
    let cores: Vec<serde_json::Value> = outcome
        .stats
        .cores
        .iter()
        .enumerate()
        .map(|(i, core)| {
            let bound = outcome.bounds.as_ref().map(|b| b[i]);
            json!({
                "hits": core.hits,
                "misses": core.misses,
                "total_latency": core.total_latency.get(),
                "worst_request": core.worst_request.get(),
                "wcml_bound": bound.and_then(|b| b.wcml).map(Cycles::get),
                "wcl_bound": bound.and_then(|b| b.wcl).map(Cycles::get),
            })
        })
        .collect();
    let mut record = serde_json::Map::new();
    record.insert("config".into(), json!(config.slug()));
    record.insert("protocol".into(), json!(outcome.protocol.slug()));
    record.insert("workload".into(), json!(outcome.workload.clone()));
    record.insert("execution_time".into(), json!(outcome.execution_time()));
    record.insert("cycles".into(), json!(outcome.stats.cycles.get()));
    record.insert("bus_utilisation".into(), json!(outcome.stats.bus_utilisation()));
    record.insert("hit_ratio".into(), json!(outcome.stats.hit_ratio()));
    record.insert(
        "timers".into(),
        json!(run.timers.as_ref().map(|t| t.iter().map(|v| v.encode()).collect::<Vec<i32>>())),
    );
    record.insert("cores".into(), json!(cores));
    // Present only for probed runs, so probe-off reports are byte-for-byte
    // what the pre-probe harness wrote.
    if let Some(metrics) = &outcome.metrics {
        record.insert("metrics".into(), metrics.to_json());
    }
    serde_json::Value::Object(record)
}

/// Runs `protocol` on `workload` under a [`ChromeTraceProbe`] and writes
/// the Chrome/Perfetto `traceEvents` artifact to `path` (load it in
/// `chrome://tracing` or <https://ui.perfetto.dev>).
///
/// # Errors
///
/// Propagates configuration/simulator errors; filesystem failures surface
/// as [`Error::Codec`].
pub fn write_chrome_trace(
    path: &Path,
    spec: &SystemSpec,
    protocol: &Protocol,
    workload: &Workload,
) -> Result<()> {
    let config = protocol.sim_config(spec)?;
    let mut sim = SimBuilder::new(config, workload).probe(ChromeTraceProbe::new()).build()?;
    sim.run()?;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| Error::Codec(e.to_string()))?;
    }
    sim.into_probe().write_to(path).map_err(|e| Error::Codec(e.to_string()))
}

/// Wraps per-run records into the `--json` report envelope
/// (`{"schema": "report/1", "generator": ..., "runs": [...]}`), stamped
/// through the shared [`report::REPORT`] definition.
#[must_use]
pub fn json_report(generator: &str, runs: Vec<serde_json::Value>) -> serde_json::Value {
    report::ReportWriter::new(&report::REPORT, generator).envelope(json!({ "runs": runs }))
}

/// Wraps chaos campaign records into the chaos report envelope
/// (`{"schema": "chaos/1", "generator": ..., "quick": ..., "campaigns":
/// [...]}`) consumed by `schema_check --chaos`, stamped through the shared
/// [`report::CHAOS`] definition.
#[must_use]
pub fn json_report_envelope(
    generator: &str,
    quick: bool,
    campaigns: Vec<serde_json::Value>,
) -> serde_json::Value {
    report::ReportWriter::new(&report::CHAOS, generator).envelope(json!({
        "quick": quick,
        "campaigns": campaigns,
    }))
}

/// Writes a machine-readable report to `path` (pretty-printed JSON),
/// creating parent directories as needed.
///
/// # Errors
///
/// Returns [`Error::Codec`] when serialization or the filesystem fails.
pub fn write_json(path: &Path, value: &serde_json::Value) -> Result<()> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| Error::Codec(e.to_string()))?;
    }
    let mut text = serde_json::to_string_pretty(value).map_err(|e| Error::Codec(e.to_string()))?;
    text.push('\n');
    std::fs::write(path, text).map_err(|e| Error::Codec(e.to_string()))
}

/// Parses the common CLI flags of the bin targets.
#[derive(Debug, Clone, Default)]
pub struct CliOptions {
    /// `--full`: paper-faithful scale (ocean at 2.5 M requests).
    pub full: bool,
    /// `--quick`: 10× reduced scale for smoke runs.
    pub quick: bool,
    /// `--config <slug>`: restrict to one criticality configuration.
    pub config: Option<CritConfig>,
    /// `--json <path>`: also emit machine-readable per-job results.
    pub json: Option<PathBuf>,
    /// `--metrics`: run the sweeps under a `MetricsProbe` and embed the
    /// latency-histogram/bus/timer reports in the `--json` records.
    pub metrics: bool,
    /// `--trace <path>`: write a Chrome/Perfetto trace of one
    /// representative CoHoRT run.
    pub trace: Option<PathBuf>,
    /// `--workers <n>`: force the parallel worker count where a bin runs
    /// a concurrent engine (the `optim` bin's parallel leg). `0` means
    /// "resolve from host parallelism", matching `GaConfig::workers`.
    pub workers: Option<usize>,
}

/// The usage line shared by every bin's flag-error message.
pub const CLI_USAGE: &str = "usage: [--full|--quick] [--config <slug>] [--json <path>] \
                             [--metrics] [--trace <path>] [--workers <n>]";

impl CliOptions {
    /// Parses `std::env::args`-style arguments.
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags, a flag missing its value,
    /// an unknown `--config` slug, or `--full` combined with `--quick`.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut options = CliOptions::default();
        let mut args = args.skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--full" => options.full = true,
                "--quick" => options.quick = true,
                "--config" => {
                    let slug = args.next().ok_or("--config needs a value")?;
                    options.config = Some(
                        CritConfig::from_slug(&slug)
                            .ok_or_else(|| format!("unknown config `{slug}`"))?,
                    );
                }
                "--json" => {
                    options.json = Some(PathBuf::from(args.next().ok_or("--json needs a path")?));
                }
                "--metrics" => options.metrics = true,
                "--trace" => {
                    options.trace = Some(PathBuf::from(args.next().ok_or("--trace needs a path")?));
                }
                "--workers" => {
                    let count = args.next().ok_or("--workers needs a count")?;
                    options.workers =
                        Some(count.parse().map_err(|_| format!("invalid worker count `{count}`"))?);
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if options.full && options.quick {
            return Err("--full and --quick are mutually exclusive".into());
        }
        Ok(options)
    }

    /// Parses the process arguments, printing the error plus the usage
    /// line and exiting with a nonzero status when they are invalid — the
    /// shared entry point of every bin target.
    #[must_use]
    pub fn parse_or_exit() -> Self {
        Self::parse(std::env::args()).unwrap_or_else(|message| {
            eprintln!("{message}");
            eprintln!("{CLI_USAGE}");
            std::process::exit(2);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_masks() {
        assert_eq!(CritConfig::AllCr.critical_mask(), vec![true; 4]);
        assert_eq!(CritConfig::OneCrThreeNcr.critical_mask(), vec![true, false, false, false]);
        assert_eq!(CritConfig::from_slug("2cr2ncr"), Some(CritConfig::TwoCrTwoNcr));
        assert_eq!(CritConfig::from_slug("nope"), None);
    }

    #[test]
    fn specs_follow_masks() {
        for config in CritConfig::ALL {
            let spec = config.spec();
            assert_eq!(spec.cores(), 4);
            let mask = config.critical_mask();
            for (core, &critical) in spec.core_specs().iter().zip(&mask) {
                assert_eq!(core.criticality().level(), if critical { 2 } else { 1 });
            }
        }
    }

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cli_parsing() {
        let opts = CliOptions::parse(
            [
                "bin",
                "--quick",
                "--config",
                "all-cr",
                "--json",
                "out/fig5.json",
                "--metrics",
                "--trace",
                "out/trace.json",
                "--workers",
                "4",
            ]
            .iter()
            .map(ToString::to_string),
        )
        .unwrap();
        assert!(opts.quick);
        assert_eq!(opts.config, Some(CritConfig::AllCr));
        assert_eq!(opts.json.as_deref(), Some(Path::new("out/fig5.json")));
        assert!(opts.metrics);
        assert_eq!(opts.trace.as_deref(), Some(Path::new("out/trace.json")));
        assert_eq!(opts.workers, Some(4));
    }

    #[test]
    fn cli_rejects_bad_worker_counts() {
        let err = CliOptions::parse(["bin", "--workers", "many"].iter().map(ToString::to_string))
            .unwrap_err();
        assert!(err.contains("invalid worker count"), "unexpected message: {err}");
    }

    #[test]
    fn full_and_quick_conflict() {
        let err = CliOptions::parse(["bin", "--full", "--quick"].iter().map(ToString::to_string))
            .unwrap_err();
        assert!(err.contains("mutually exclusive"), "unexpected message: {err}");
    }

    #[test]
    fn cli_rejects_unknown_flags_and_missing_values() {
        let err =
            CliOptions::parse(["bin", "--bogus"].iter().map(ToString::to_string)).unwrap_err();
        assert!(err.contains("unknown flag"), "unexpected message: {err}");
        let err =
            CliOptions::parse(["bin", "--config"].iter().map(ToString::to_string)).unwrap_err();
        assert!(err.contains("needs a value"), "unexpected message: {err}");
        let err = CliOptions::parse(["bin", "--config", "nope"].iter().map(ToString::to_string))
            .unwrap_err();
        assert!(err.contains("unknown config"), "unexpected message: {err}");
    }

    #[test]
    fn quick_sweep_is_sound() {
        // End-to-end smoke: one tiny kernel through the full sweep.
        let w = KernelSpec::new(Kernel::Fft, 4).with_total_requests(2_000).generate();
        let ga = GaConfig { population: 8, generations: 3, ..Default::default() };
        let runs = sweep_protocols(CritConfig::AllCr, &w, &ga).unwrap();
        assert_eq!(runs.len(), 4);
        for run in &runs {
            run.outcome.check_soundness().unwrap_or_else(|e| panic!("{e}"));
        }
        // The renderers index the runs by position: the order is part of
        // the API and must survive the parallel sweep.
        let kinds: Vec<ProtocolKind> = runs.iter().map(|r| r.outcome.protocol).collect();
        assert_eq!(
            kinds,
            [
                ProtocolKind::Cohort,
                ProtocolKind::Pcc,
                ProtocolKind::Pendulum,
                ProtocolKind::MsiFcfs
            ]
        );
        assert!(runs[0].timers.is_some() && runs[1].timers.is_none());
    }

    #[test]
    fn json_records_carry_the_run() {
        let w = KernelSpec::new(Kernel::Fft, 4).with_total_requests(2_000).generate();
        let ga = GaConfig { population: 8, generations: 3, ..Default::default() };
        let runs = sweep_protocols(CritConfig::TwoCrTwoNcr, &w, &ga).unwrap();
        let record = run_to_json(CritConfig::TwoCrTwoNcr, &runs[0]);
        assert_eq!(record.get("config").and_then(serde_json::Value::as_str), Some("2cr2ncr"));
        assert_eq!(record.get("protocol").and_then(serde_json::Value::as_str), Some("cohort"));
        assert_eq!(
            record.get("execution_time").and_then(serde_json::Value::as_u64),
            Some(runs[0].outcome.execution_time())
        );
        let cores = record.get("cores").and_then(serde_json::Value::as_array).unwrap();
        assert_eq!(cores.len(), 4);
        assert_eq!(
            cores[0].get("hits").and_then(serde_json::Value::as_u64),
            Some(runs[0].outcome.stats.cores[0].hits)
        );
        let timers = record.get("timers").and_then(serde_json::Value::as_array).unwrap();
        assert_eq!(timers.len(), 4);
        // The MSI+FCFS baseline has no bounds and no timers: nulls, not
        // absent keys, so downstream tooling sees a stable schema.
        let baseline = run_to_json(CritConfig::TwoCrTwoNcr, &runs[3]);
        assert_eq!(baseline.get("timers"), Some(&serde_json::Value::Null));
        let baseline_cores = baseline.get("cores").and_then(serde_json::Value::as_array).unwrap();
        assert_eq!(baseline_cores[0].get("wcml_bound"), Some(&serde_json::Value::Null));

        let report = json_report("test", vec![record, baseline]);
        let text = serde_json::to_string_pretty(&report).unwrap();
        assert!(text.contains("\"generator\""));

        let dir = std::env::temp_dir().join("cohort-bench-json-test");
        let path = dir.join("nested").join("report.json");
        write_json(&path, &report).unwrap();
        let round: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let round_runs = round.get("runs").and_then(serde_json::Value::as_array).unwrap();
        assert_eq!(round_runs.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_sweep_embeds_reports_and_plain_sweep_omits_the_key() {
        let w = KernelSpec::new(Kernel::Fft, 4).with_total_requests(2_000).generate();
        let ga = GaConfig { population: 8, generations: 3, ..Default::default() };
        let plain = sweep_protocols(CritConfig::AllCr, &w, &ga).unwrap();
        let probed = sweep_protocols_opts(CritConfig::AllCr, &w, &ga, true).unwrap();

        for (p, m) in plain.iter().zip(&probed) {
            // The probe must not perturb the simulation itself.
            assert_eq!(p.outcome.stats, m.outcome.stats, "{:?}", p.outcome.protocol);

            let plain_record = run_to_json(CritConfig::AllCr, p);
            assert!(
                plain_record.get("metrics").is_none(),
                "plain records must omit the key entirely (byte-identity)"
            );
            let probed_record = run_to_json(CritConfig::AllCr, m);
            let metrics = probed_record.get("metrics").expect("probed records embed a report");
            assert_eq!(
                metrics.get("cycles").and_then(serde_json::Value::as_u64),
                Some(m.outcome.stats.cycles.get())
            );
            let cores = metrics.get("cores").and_then(serde_json::Value::as_array).unwrap();
            assert_eq!(cores.len(), 4);
        }
    }

    #[test]
    fn chrome_trace_export_writes_a_valid_document() {
        let w = KernelSpec::new(Kernel::Fft, 4).with_total_requests(2_000).generate();
        let ga = GaConfig { population: 8, generations: 3, ..Default::default() };
        let runs = sweep_protocols(CritConfig::AllCr, &w, &ga).unwrap();
        let timers = runs[0].timers.clone().expect("CoHoRT carries timers");

        let dir = std::env::temp_dir().join("cohort-bench-trace-test");
        let path = dir.join("trace.json");
        write_chrome_trace(&path, &CritConfig::AllCr.spec(), &Protocol::Cohort { timers }, &w)
            .unwrap();
        let doc: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let events = doc.get("traceEvents").and_then(serde_json::Value::as_array).unwrap();
        assert!(!events.is_empty());
        // 4 core tracks + bus + llc metadata records.
        let names = events
            .iter()
            .filter(|e| e.get("ph").and_then(serde_json::Value::as_str) == Some("M"))
            .count();
        assert_eq!(names, 6);
        std::fs::remove_dir_all(&dir).ok();
    }
}
