//! The Monte Carlo certification driver: batches over the fleet,
//! aggregates merged in submission order, convictions auto-minimized.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde_json::{json, Value};

use cohort_fleet::{Fleet, FleetStats, JobSpec};
use cohort_types::{Error, Result};

/// Per-batch wait bound: generous against slow hosts, but finite — a
/// wedged fleet fails the campaign with a typed error instead of hanging.
const BATCH_WAIT: std::time::Duration = std::time::Duration::from_mins(10);

use crate::batch::{Campaign, CertBatch};
use crate::estimate::{FaultAggregate, SchedAggregate};
use crate::minimize::{minimize_conviction, Counterexample};
use crate::trial::{FaultCampaignSpace, SchedSpace};

/// The campaign configuration of one certification run.
#[derive(Debug, Clone)]
pub struct CertConfig {
    /// The fault-injection campaign family.
    pub fault_space: FaultCampaignSpace,
    /// The schedulability sampling space.
    pub sched_space: SchedSpace,
    /// Seeded fault trials to run (control arm included).
    pub fault_trials: u64,
    /// Seeded schedulability trials to run.
    pub sched_trials: u64,
    /// Trials per fleet job — the streaming granularity.
    pub batch_trials: u64,
    /// Worker shards of the fleet.
    pub shards: usize,
    /// Base of the seed space; fault and schedulability trials draw from
    /// disjoint streams above it.
    pub base_seed: u64,
    /// At most this many convictions are minimized into counterexamples.
    pub minimize_limit: usize,
    /// Where minimized counterexamples are written
    /// (`cert_counterexample_<seed>.json`); `None` keeps them in-memory
    /// only.
    pub counterexample_dir: Option<PathBuf>,
    /// Mirrors the fleet's result store into this directory, memoizing
    /// certification batches across runs: a repeated campaign (same
    /// spaces, trials and seeds — the `JobSpec::Certify` digests cover
    /// all of it) replays from the store with zero fresh executions.
    /// `None` keeps the store in-memory, scoped to this run.
    pub store_dir: Option<PathBuf>,
}

impl Default for CertConfig {
    fn default() -> Self {
        CertConfig {
            fault_space: FaultCampaignSpace::default(),
            sched_space: SchedSpace::default(),
            fault_trials: 2_048,
            sched_trials: 8_192,
            batch_trials: 256,
            shards: 4,
            base_seed: 0,
            minimize_limit: 2,
            counterexample_dir: None,
            store_dir: None,
        }
    }
}

/// The streamed outcome of one certification run.
#[derive(Debug, Clone)]
pub struct CertOutcome {
    /// Fault-campaign aggregate (rates, detection-latency histogram).
    pub fault: FaultAggregate,
    /// Schedulability curve.
    pub sched: SchedAggregate,
    /// Minimized counterexamples, one per chosen convicting seed.
    pub counterexamples: Vec<Counterexample>,
    /// Fleet jobs submitted.
    pub jobs: u64,
    /// Fleet service counters (executions, dedup, reclaims).
    pub stats: FleetStats,
}

impl CertOutcome {
    /// The deterministic part of the outcome — everything except the
    /// fleet's scheduling-dependent counters. Two runs of the same
    /// [`CertConfig`] produce bit-identical documents.
    #[must_use]
    pub fn aggregate_json(&self) -> Value {
        json!({
            "fault": self.fault.to_json(),
            "schedulability": self.sched.to_json(),
            "counterexamples":
                self.counterexamples.iter().map(Counterexample::to_json).collect::<Vec<Value>>(),
            "jobs": self.jobs,
        })
    }
}

/// Splits `trials` into `batch`-sized blocks starting at `base`.
fn blocks(base: u64, trials: u64, batch: u64) -> Vec<(u64, u64)> {
    let batch = batch.max(1);
    let mut out = Vec::new();
    let mut start = 0;
    while start < trials {
        let n = batch.min(trials - start);
        out.push((base + start, n));
        start += n;
    }
    out
}

/// Runs the full certification campaign: every batch is submitted to a
/// fresh fleet as a content-addressed [`JobSpec::Certify`] job, payloads
/// are merged in submission order, and up to `minimize_limit` convictions
/// are auto-minimized through the `cohort-verif` replay harness.
///
/// # Errors
///
/// Propagates fleet submission errors, batch execution errors (surfaced
/// as `{"error": ...}` payloads), aggregate-codec errors and
/// counterexample I/O errors.
pub fn run_certification(config: &CertConfig) -> Result<CertOutcome> {
    let mut builder = Fleet::builder().shards(config.shards.max(1));
    if let Some(dir) = &config.store_dir {
        builder = builder.store_dir(dir);
    }
    let fleet = builder.build()?;
    let client = fleet.client();

    // Fault and schedulability seeds draw from disjoint streams: the
    // schedulability block starts 2^32 above the fault block so the two
    // campaigns can never alias within any realistic trial count.
    let sched_base = config.base_seed + (1u64 << 32);
    let mut tickets = Vec::new();
    for (seed_start, trials) in blocks(config.base_seed, config.fault_trials, config.batch_trials) {
        let batch =
            CertBatch { campaign: Campaign::Fault(config.fault_space.clone()), seed_start, trials };
        tickets.push(client.submit(JobSpec::Certify { batch: Arc::new(batch) })?);
    }
    for (seed_start, trials) in blocks(sched_base, config.sched_trials, config.batch_trials) {
        let batch =
            CertBatch { campaign: Campaign::Sched(config.sched_space.clone()), seed_start, trials };
        tickets.push(client.submit(JobSpec::Certify { batch: Arc::new(batch) })?);
    }
    let jobs = tickets.len() as u64;

    // Merge payloads in submission order — completion order is a worker
    // scheduling artifact and must not leak into the aggregates. The wait
    // is bounded: a quarantined or wedged batch surfaces as a typed error
    // instead of hanging the whole campaign.
    let mut fault = FaultAggregate::default();
    let mut sched = SchedAggregate::default();
    for ticket in &tickets {
        let payload = client.wait_timeout(ticket, BATCH_WAIT)?;
        if let Some(error) = payload.get("error").and_then(Value::as_str) {
            return Err(Error::InvalidConfig(format!("certification batch failed: {error}")));
        }
        let campaign = payload
            .get("campaign")
            .and_then(Value::as_str)
            .ok_or_else(|| Error::Codec("batch payload is missing `campaign`".into()))?;
        let aggregate = payload
            .get("aggregate")
            .ok_or_else(|| Error::Codec("batch payload is missing `aggregate`".into()))?;
        match campaign {
            "fault" => fault.merge(&FaultAggregate::from_json(aggregate)?),
            "sched" => sched.merge(&SchedAggregate::from_json(aggregate)?)?,
            other => return Err(Error::Codec(format!("unknown certification campaign `{other}`"))),
        }
    }
    let stats = fleet.shutdown();

    // Auto-minimize the first convictions (ascending seed order for
    // determinism regardless of batch boundaries).
    let mut seeds = fault.convicting_seeds.clone();
    seeds.sort_unstable();
    seeds.dedup();
    let mut counterexamples = Vec::new();
    for seed in seeds.into_iter().take(config.minimize_limit) {
        if let Some(counterexample) = minimize_conviction(&config.fault_space, seed)? {
            if let Some(dir) = &config.counterexample_dir {
                write_counterexample(dir, &counterexample)?;
            }
            counterexamples.push(counterexample);
        }
    }

    Ok(CertOutcome { fault, sched, counterexamples, jobs, stats })
}

fn write_counterexample(dir: &Path, counterexample: &Counterexample) -> Result<()> {
    std::fs::create_dir_all(dir)
        .map_err(|e| Error::Codec(format!("creating {}: {e}", dir.display())))?;
    let path = dir.join(format!("cert_counterexample_{}.json", counterexample.seed));
    let doc = serde_json::to_string_pretty(&counterexample.to_json())
        .map_err(|e| Error::Codec(format!("serializing counterexample: {e}")))?;
    std::fs::write(&path, doc + "\n")
        .map_err(|e| Error::Codec(format!("writing {}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_cover_the_trial_range_exactly() {
        assert_eq!(blocks(0, 10, 4), vec![(0, 4), (4, 4), (8, 2)]);
        assert_eq!(blocks(100, 4, 4), vec![(100, 4)]);
        assert_eq!(blocks(0, 0, 4), Vec::<(u64, u64)>::new());
        let covered: u64 = blocks(7, 1_000, 33).iter().map(|&(_, n)| n).sum();
        assert_eq!(covered, 1_000);
    }

    #[test]
    fn a_repeated_campaign_replays_from_the_store_with_zero_fresh_executions() {
        let dir = std::env::temp_dir().join(format!(
            "cohort-cert-memo-{}-{}",
            std::process::id(),
            line!()
        ));
        let config = CertConfig {
            fault_trials: 16,
            sched_trials: 32,
            batch_trials: 16,
            shards: 2,
            minimize_limit: 1,
            store_dir: Some(dir.clone()),
            ..CertConfig::default()
        };
        let first = run_certification(&config).expect("first campaign runs");
        assert_eq!(first.stats.executed, first.jobs, "a cold store executes every batch");
        let second = run_certification(&config).expect("second campaign runs");
        assert_eq!(
            second.stats.executed, 0,
            "a warm store replays the whole campaign with zero fresh executions"
        );
        assert_eq!(
            serde_json::to_string_pretty(&first.aggregate_json()).expect("serialize"),
            serde_json::to_string_pretty(&second.aggregate_json()).expect("serialize"),
            "replayed aggregates are bit-identical to the originals"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn small_campaign_runs_end_to_end_and_is_deterministic() {
        let config = CertConfig {
            fault_trials: 24,
            sched_trials: 64,
            batch_trials: 16,
            shards: 2,
            minimize_limit: 1,
            ..CertConfig::default()
        };
        let a = run_certification(&config).expect("campaign runs");
        let b = run_certification(&config).expect("campaign runs");
        assert_eq!(a.fault.trials, 24);
        assert_eq!(a.sched.trials, 64);
        assert_eq!(
            serde_json::to_string_pretty(&a.aggregate_json()).expect("serialize"),
            serde_json::to_string_pretty(&b.aggregate_json()).expect("serialize"),
            "two runs of the same campaign must produce bit-identical aggregates"
        );
    }
}
