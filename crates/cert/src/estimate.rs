//! Streaming estimators: everything the certification campaign keeps.
//!
//! Millions of trials flow through these accumulators and nothing else is
//! retained — log2 latency histograms, binomial rates with Wilson score
//! confidence intervals, and the bucketed schedulability curve. Every
//! structure merges associatively (batch payloads from the fleet are
//! folded in submission order) and serializes to/from the `Value` API so
//! the fleet store can carry the payloads.

use serde_json::{json, Value};

use cohort_types::{Error, Result};

use crate::trial::{FaultTrialOutcome, SchedSpace, SchedTrialOutcome};

/// How many convicting seeds one batch payload names for the minimizer
/// (the aggregate counts always cover every conviction).
pub const CONVICTING_SEEDS_CAP: usize = 16;

/// The z value of the 95% Wilson score interval.
pub const WILSON_Z95: f64 = 1.959_963_984_540_054;

/// The Wilson score interval for a binomial proportion: `(lo, hi)` with
/// `0 <= lo <= s/n <= hi <= 1`. Zero trials yield the vacuous `(0, 1)`.
#[must_use]
pub fn wilson(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    // Clamp against rounding: the interval must bracket the point estimate
    // even when `centre - half` lands epsilon above an exact 0.
    ((centre - half).clamp(0.0, p), (centre + half).clamp(p, 1.0))
}

/// A binomial rate with its Wilson interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rate {
    /// Successes observed.
    pub successes: u64,
    /// Trials observed.
    pub trials: u64,
}

impl Rate {
    /// The point estimate (`0` for zero trials).
    #[must_use]
    pub fn value(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Folds another rate in.
    pub fn merge(&mut self, other: &Rate) {
        self.successes += other.successes;
        self.trials += other.trials;
    }

    /// `{successes, trials, rate, wilson_lo, wilson_hi}`.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let (lo, hi) = wilson(self.successes, self.trials, WILSON_Z95);
        json!({
            "successes": self.successes,
            "trials": self.trials,
            "rate": self.value(),
            "wilson_lo": lo,
            "wilson_hi": hi,
        })
    }

    /// Parses a payload produced by [`Rate::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] on a malformed document.
    pub fn from_json(doc: &Value) -> Result<Rate> {
        Ok(Rate { successes: get_u64(doc, "successes")?, trials: get_u64(doc, "trials")? })
    }
}

/// A log2-bucketed histogram (the same shape as the metrics probe's
/// latency histograms): bucket `b` counts values in `[2^(b-1), 2^b)`,
/// bucket 0 counts zeros.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 { 0 } else { 64 - value.leading_zeros() as usize };
        if self.counts.len() <= bucket {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.total += 1;
        self.max = self.max.max(value);
    }

    /// Values recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest value recorded.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Folds another histogram in.
    pub fn merge(&mut self, other: &LogHistogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (bucket, &count) in other.counts.iter().enumerate() {
            self.counts[bucket] += count;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
    }

    /// `{total, max, buckets: [[bucket, count], ...]}` (sparse).
    #[must_use]
    pub fn to_json(&self) -> Value {
        let buckets: Vec<Value> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| json!([b as u64, c]))
            .collect();
        json!({ "total": self.total, "max": self.max, "buckets": buckets })
    }

    /// Parses a payload produced by [`LogHistogram::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] on a malformed document.
    pub fn from_json(doc: &Value) -> Result<LogHistogram> {
        let mut hist = LogHistogram {
            counts: Vec::new(),
            total: get_u64(doc, "total")?,
            max: get_u64(doc, "max")?,
        };
        let buckets = doc
            .get("buckets")
            .and_then(Value::as_array)
            .ok_or_else(|| Error::Codec("histogram is missing `buckets`".into()))?;
        for pair in buckets {
            let entry = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| Error::Codec("histogram bucket is not a pair".into()))?;
            let bucket =
                entry[0].as_u64().ok_or_else(|| Error::Codec("histogram bucket index".into()))?
                    as usize;
            let count =
                entry[1].as_u64().ok_or_else(|| Error::Codec("histogram bucket count".into()))?;
            if hist.counts.len() <= bucket {
                hist.counts.resize(bucket + 1, 0);
            }
            hist.counts[bucket] = count;
        }
        Ok(hist)
    }
}

/// The streaming aggregate of the fault-injection campaign.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultAggregate {
    /// Trials run, control arm included.
    pub trials: u64,
    /// Control (empty-plan) trials.
    pub control_trials: u64,
    /// Detection: convicted trials among faulted trials.
    pub detected: Rate,
    /// False convictions: convicted trials among control trials.
    pub false_convictions: Rate,
    /// Degradation: faulted trials in which the driver escalated.
    pub degraded: Rate,
    /// Degradation success: escalated trials whose post-switch tail was
    /// Eq. 1 compliant.
    pub degradation_success: Rate,
    /// Machine-attributed (coreless) convictions across all trials.
    pub machine_violations: u64,
    /// Detection-latency distribution (cycles, log2 buckets).
    pub detection: LogHistogram,
    /// The first convicting seeds, capped at [`CONVICTING_SEEDS_CAP`] per
    /// batch, for the minimizer.
    pub convicting_seeds: Vec<u64>,
}

impl FaultAggregate {
    /// Streams one trial outcome in.
    pub fn record(&mut self, seed: u64, outcome: &FaultTrialOutcome) {
        self.trials += 1;
        self.machine_violations += outcome.machine_violations;
        if outcome.control {
            self.control_trials += 1;
            self.false_convictions.trials += 1;
            if outcome.convicted() {
                self.false_convictions.successes += 1;
            }
        } else {
            self.detected.trials += 1;
            if outcome.convicted() {
                self.detected.successes += 1;
                if self.convicting_seeds.len() < CONVICTING_SEEDS_CAP {
                    self.convicting_seeds.push(seed);
                }
            }
            self.degraded.trials += 1;
            if outcome.switched {
                self.degraded.successes += 1;
                self.degradation_success.trials += 1;
                if outcome.post_switch_compliant == Some(true) {
                    self.degradation_success.successes += 1;
                }
            }
            if let Some(latency) = outcome.detection_latency {
                self.detection.record(latency);
            }
        }
    }

    /// Folds another aggregate in (batch merge, submission order).
    pub fn merge(&mut self, other: &FaultAggregate) {
        self.trials += other.trials;
        self.control_trials += other.control_trials;
        self.detected.merge(&other.detected);
        self.false_convictions.merge(&other.false_convictions);
        self.degraded.merge(&other.degraded);
        self.degradation_success.merge(&other.degradation_success);
        self.machine_violations += other.machine_violations;
        self.detection.merge(&other.detection);
        for &seed in &other.convicting_seeds {
            self.convicting_seeds.push(seed);
        }
    }

    /// The JSON payload of this aggregate.
    #[must_use]
    pub fn to_json(&self) -> Value {
        json!({
            "trials": self.trials,
            "control_trials": self.control_trials,
            "detected": self.detected.to_json(),
            "false_convictions": self.false_convictions.to_json(),
            "degraded": self.degraded.to_json(),
            "degradation_success": self.degradation_success.to_json(),
            "machine_violations": self.machine_violations,
            "detection_latency": self.detection.to_json(),
            "convicting_seeds": self.convicting_seeds.clone(),
        })
    }

    /// Parses a payload produced by [`FaultAggregate::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] on a malformed document.
    pub fn from_json(doc: &Value) -> Result<FaultAggregate> {
        let seeds = doc
            .get("convicting_seeds")
            .and_then(Value::as_array)
            .ok_or_else(|| Error::Codec("fault aggregate is missing `convicting_seeds`".into()))?
            .iter()
            .map(|v| v.as_u64().ok_or_else(|| Error::Codec("convicting seed".into())))
            .collect::<Result<Vec<u64>>>()?;
        Ok(FaultAggregate {
            trials: get_u64(doc, "trials")?,
            control_trials: get_u64(doc, "control_trials")?,
            detected: Rate::from_json(get(doc, "detected")?)?,
            false_convictions: Rate::from_json(get(doc, "false_convictions")?)?,
            degraded: Rate::from_json(get(doc, "degraded")?)?,
            degradation_success: Rate::from_json(get(doc, "degradation_success")?)?,
            machine_violations: get_u64(doc, "machine_violations")?,
            detection: LogHistogram::from_json(get(doc, "detection_latency")?)?,
            convicting_seeds: seeds,
        })
    }
}

/// One utilisation bucket of the schedulability curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedBucket {
    /// Inclusive lower utilisation edge, percent.
    pub lo_pct: u64,
    /// Exclusive upper utilisation edge, percent.
    pub hi_pct: u64,
    /// Schedulable sets over sampled sets in this bucket.
    pub rate: Rate,
}

/// The streaming schedulability curve.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedAggregate {
    /// Sets sampled.
    pub trials: u64,
    /// Sets schedulable overall.
    pub schedulable: u64,
    /// The curve, in ascending utilisation order with fixed edges derived
    /// from the sampling space (identical across batches so merges align).
    pub buckets: Vec<SchedBucket>,
}

impl SchedAggregate {
    /// An empty curve with the bucket edges of `space`.
    #[must_use]
    pub fn for_space(space: &SchedSpace) -> Self {
        let width = space.bucket_pct.max(1);
        let mut buckets = Vec::new();
        let mut lo = space.util_min_pct;
        while lo <= space.util_max_pct {
            let hi = (lo + width).min(space.util_max_pct + 1);
            buckets.push(SchedBucket { lo_pct: lo, hi_pct: hi, rate: Rate::default() });
            lo = hi;
        }
        SchedAggregate { trials: 0, schedulable: 0, buckets }
    }

    /// Streams one trial outcome in.
    pub fn record(&mut self, outcome: &SchedTrialOutcome) {
        self.trials += 1;
        if outcome.schedulable {
            self.schedulable += 1;
        }
        if let Some(bucket) = self
            .buckets
            .iter_mut()
            .find(|b| outcome.util_pct >= b.lo_pct && outcome.util_pct < b.hi_pct)
        {
            bucket.rate.trials += 1;
            if outcome.schedulable {
                bucket.rate.successes += 1;
            }
        }
    }

    /// Folds another curve in.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the bucket edges disagree (the
    /// batches were sampled from different spaces).
    pub fn merge(&mut self, other: &SchedAggregate) -> Result<()> {
        if self.buckets.is_empty() {
            *self = other.clone();
            return Ok(());
        }
        if self.buckets.len() != other.buckets.len()
            || self
                .buckets
                .iter()
                .zip(&other.buckets)
                .any(|(a, b)| a.lo_pct != b.lo_pct || a.hi_pct != b.hi_pct)
        {
            return Err(Error::InvalidConfig(
                "schedulability curves with different bucket edges cannot merge".into(),
            ));
        }
        self.trials += other.trials;
        self.schedulable += other.schedulable;
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            mine.rate.merge(&theirs.rate);
        }
        Ok(())
    }

    /// The JSON payload of this curve.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .map(|b| {
                let (lo, hi) = wilson(b.rate.successes, b.rate.trials, WILSON_Z95);
                json!({
                    "util_lo_pct": b.lo_pct,
                    "util_hi_pct": b.hi_pct,
                    "successes": b.rate.successes,
                    "trials": b.rate.trials,
                    "rate": b.rate.value(),
                    "wilson_lo": lo,
                    "wilson_hi": hi,
                })
            })
            .collect();
        json!({ "trials": self.trials, "schedulable": self.schedulable, "curve": buckets })
    }

    /// Parses a payload produced by [`SchedAggregate::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] on a malformed document.
    pub fn from_json(doc: &Value) -> Result<SchedAggregate> {
        let curve = doc
            .get("curve")
            .and_then(Value::as_array)
            .ok_or_else(|| Error::Codec("sched aggregate is missing `curve`".into()))?;
        let buckets = curve
            .iter()
            .map(|b| {
                Ok(SchedBucket {
                    lo_pct: get_u64(b, "util_lo_pct")?,
                    hi_pct: get_u64(b, "util_hi_pct")?,
                    rate: Rate::from_json(b)?,
                })
            })
            .collect::<Result<Vec<SchedBucket>>>()?;
        Ok(SchedAggregate {
            trials: get_u64(doc, "trials")?,
            schedulable: get_u64(doc, "schedulable")?,
            buckets,
        })
    }
}

fn get<'a>(doc: &'a Value, key: &str) -> Result<&'a Value> {
    doc.get(key).ok_or_else(|| Error::Codec(format!("aggregate payload is missing `{key}`")))
}

fn get_u64(doc: &Value, key: &str) -> Result<u64> {
    get(doc, key)?.as_u64().ok_or_else(|| Error::Codec(format!("`{key}` is not a u64")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_brackets_the_point_estimate() {
        for (s, n) in [(0u64, 0u64), (0, 50), (25, 50), (50, 50), (1, 1_000_000)] {
            let (lo, hi) = wilson(s, n, WILSON_Z95);
            assert!((0.0..=1.0).contains(&lo));
            assert!((0.0..=1.0).contains(&hi));
            assert!(lo <= hi);
            if n > 0 {
                let p = s as f64 / n as f64;
                assert!(lo <= p && p <= hi, "({s},{n}): {lo} <= {p} <= {hi}");
            }
        }
        // The interval tightens with evidence.
        let wide = wilson(5, 10, WILSON_Z95);
        let tight = wilson(5_000, 10_000, WILSON_Z95);
        assert!(tight.1 - tight.0 < wide.1 - wide.0);
    }

    #[test]
    fn histogram_merge_equals_streaming() {
        let values = [0u64, 1, 1, 7, 300, 5_000, 5_001, u64::from(u32::MAX)];
        let mut whole = LogHistogram::new();
        let mut left = LogHistogram::new();
        let mut right = LogHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
        let back = LogHistogram::from_json(&whole.to_json()).expect("round-trips");
        assert_eq!(back, whole);
    }

    #[test]
    fn aggregates_round_trip_through_json() {
        let mut agg = FaultAggregate::default();
        agg.record(
            1,
            &crate::trial::FaultTrialOutcome {
                control: false,
                faults_fired: 2,
                violations: 3,
                machine_violations: 1,
                switched: true,
                post_switch_compliant: Some(true),
                detection_latency: Some(900),
            },
        );
        agg.record(
            4,
            &crate::trial::FaultTrialOutcome {
                control: true,
                faults_fired: 0,
                violations: 0,
                machine_violations: 0,
                switched: false,
                post_switch_compliant: None,
                detection_latency: None,
            },
        );
        let back = FaultAggregate::from_json(&agg.to_json()).expect("round-trips");
        assert_eq!(back, agg);
        assert_eq!(back.convicting_seeds, vec![1]);

        let space = SchedSpace::default();
        let mut curve = SchedAggregate::for_space(&space);
        curve.record(&SchedTrialOutcome { util_pct: 15, schedulable: true });
        curve.record(&SchedTrialOutcome { util_pct: 140, schedulable: false });
        let back = SchedAggregate::from_json(&curve.to_json()).expect("round-trips");
        assert_eq!(back, curve);
        let covered: u64 = back.buckets.iter().map(|b| b.rate.trials).sum();
        assert_eq!(covered, back.trials, "every sample lands in exactly one bucket");
    }
}
