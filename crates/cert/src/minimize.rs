//! Conviction minimization: from a convicting seed to a reproducible
//! counterexample workload.
//!
//! When a certification campaign convicts, the seed alone is already a
//! reproduction recipe — but a reviewer wants the *smallest* workload that
//! still convicts. The minimizer re-runs the convicting trial, exports the
//! conviction's prefix through `cohort-verif`'s
//! [`workload_from_violation`], then greedily shrinks the tail while the
//! conviction (same violation kind) still reproduces under
//! [`cohort::run_with_watchdog`]. The result is double-checked: the
//! minimized workload replays **clean** through the faithful engine via
//! [`replay_workload`] (proving the violation is fault-induced, not a
//! protocol bug) and **re-convicts** under the original fault plan
//! (proving the counterexample is reproducible).

use serde_json::{json, Value};

use cohort::{run_with_watchdog, WatchdogPolicy};
use cohort_sim::WcmlViolationKind;
use cohort_trace::{Trace, Workload};
use cohort_types::Result;
use cohort_verif::{replay_workload, workload_from_violation};

use crate::trial::FaultCampaignSpace;

/// A minimized, double-checked counterexample.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// The convicting seed.
    pub seed: u64,
    /// The violation kind the conviction and its reproductions share.
    pub kind: WcmlViolationKind,
    /// Accesses in the original trial workload.
    pub original_accesses: u64,
    /// Accesses after the prefix cut at the violation.
    pub exported_accesses: u64,
    /// Accesses after greedy shrinking.
    pub minimized_accesses: u64,
    /// Whether the minimized workload replays clean through the faithful
    /// engine (no fault plan — the violation is fault-induced).
    pub replay_clean: bool,
    /// Accesses the faithful replay completed.
    pub replay_accesses: u64,
    /// Whether the minimized workload still convicts (same kind) under the
    /// original seeded fault plan.
    pub reconvicts: bool,
    /// The minimized workload itself, as a `cohort-trace` JSON document.
    pub workload: Value,
}

impl Counterexample {
    /// The JSON document written under `results/`.
    #[must_use]
    pub fn to_json(&self) -> Value {
        json!({
            "seed": self.seed,
            "kind": self.kind.slug(),
            "original_accesses": self.original_accesses,
            "exported_accesses": self.exported_accesses,
            "minimized_accesses": self.minimized_accesses,
            "replay_clean": self.replay_clean,
            "replay_accesses": self.replay_accesses,
            "reconvicts": self.reconvicts,
            "workload": self.workload.clone(),
        })
    }
}

/// Whether `workload` still convicts with `kind` under the seed's plan.
fn still_convicts(
    space: &FaultCampaignSpace,
    seed: u64,
    workload: &Workload,
    kind: WcmlViolationKind,
) -> bool {
    run_with_watchdog(
        space.config().expect("space validated by the original trial"),
        workload,
        &space.lut().expect("space validated by the original trial"),
        space.plan(seed),
        &WatchdogPolicy::default(),
    )
    .is_ok_and(|report| report.violations.iter().any(|v| v.kind == kind))
}

/// Drops the last `step` ops from every trace (traces shorter than `step`
/// become empty); `None` when nothing would change.
fn shrunk(workload: &Workload, step: usize) -> Option<Workload> {
    if workload.traces().iter().all(|t| t.ops().is_empty()) {
        return None;
    }
    let traces: Vec<Trace> = workload
        .traces()
        .iter()
        .map(|t| {
            let keep = t.ops().len().saturating_sub(step);
            Trace::from_ops(t.ops()[..keep].to_vec())
        })
        .collect();
    if traces.iter().map(|t| t.ops().len() as u64).sum::<u64>() == workload.total_accesses() {
        return None;
    }
    Workload::new(workload.name(), traces).ok()
}

/// Minimizes the conviction of `(space, seed)` into a reproducible
/// counterexample, or `None` if the seed does not convict.
///
/// # Errors
///
/// Propagates simulator errors from the initial trial run or the faithful
/// replay.
pub fn minimize_conviction(
    space: &FaultCampaignSpace,
    seed: u64,
) -> Result<Option<Counterexample>> {
    let config = space.config()?;
    let workload = space.workload(seed);
    let report = run_with_watchdog(
        config.clone(),
        &workload,
        &space.lut()?,
        space.plan(seed),
        &WatchdogPolicy::default(),
    )?;
    let Some(violation) = report.violations.first().cloned() else {
        return Ok(None);
    };

    // Prefix-cut at the violation through the verif harness, then greedily
    // shrink the tail while the same violation kind still reproduces.
    let exported = workload_from_violation(&workload, &violation);
    let exported_accesses = exported.total_accesses();
    let mut current = exported;
    let mut step = (current.total_accesses() as usize / 2).max(1);
    loop {
        let candidate = shrunk(&current, step);
        match candidate {
            Some(c) if still_convicts(space, seed, &c, violation.kind) => {
                current = c;
            }
            _ if step > 1 => step = (step / 2).max(1),
            _ => break,
        }
    }

    // Double-check 1: the faithful engine (no faults) replays it clean.
    let replay = replay_workload(config, &current)?;
    // Double-check 2: the original fault plan still convicts on it.
    let reconvicts = still_convicts(space, seed, &current, violation.kind);

    let codec = cohort_trace::codec::to_json(&current)?;
    let workload_doc = serde_json::from_str::<Value>(&codec)
        .map_err(|e| cohort_types::Error::Codec(format!("minimized workload re-parse: {e}")))?;
    Ok(Some(Counterexample {
        seed,
        kind: violation.kind,
        original_accesses: workload.total_accesses(),
        exported_accesses,
        minimized_accesses: current.total_accesses(),
        replay_clean: replay.engine_is_clean(),
        replay_accesses: replay.stats.total_accesses(),
        reconvicts,
        workload: workload_doc,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A campaign family guaranteed to convict: seed 1 of the default
    /// space injects two seeded faults; if it happens not to convict, walk
    /// forward until one does (deterministically — the walk is part of the
    /// test).
    fn convicting_seed(space: &FaultCampaignSpace) -> u64 {
        (1..200)
            .find(|&seed| {
                !space.is_control(seed) && space.run_trial(seed).is_ok_and(|o| o.violations > 0)
            })
            .expect("some seed in the first 200 convicts")
    }

    #[test]
    fn convictions_minimize_to_reproducible_counterexamples() {
        let space = FaultCampaignSpace::default();
        let seed = convicting_seed(&space);
        let counterexample = minimize_conviction(&space, seed)
            .expect("minimization completes")
            .expect("the seed convicts");
        assert!(counterexample.minimized_accesses <= counterexample.exported_accesses);
        assert!(counterexample.exported_accesses <= counterexample.original_accesses);
        assert!(counterexample.reconvicts, "the minimized workload must still convict");
        assert!(
            counterexample.replay_clean,
            "the faithful engine must replay the counterexample clean"
        );
        // Determinism: minimizing twice yields the identical counterexample.
        let again = minimize_conviction(&space, seed)
            .expect("minimization completes")
            .expect("the seed convicts");
        assert_eq!(counterexample, again);
    }

    #[test]
    fn clean_seeds_do_not_minimize() {
        let space = FaultCampaignSpace::default();
        assert!(space.is_control(0));
        assert!(minimize_conviction(&space, 0).expect("runs").is_none());
    }
}
