//! The fleet-executable certification batch.
//!
//! A [`CertBatch`] is one contiguous block of seeded trials — the unit of
//! work the driver streams through `cohort-fleet` as
//! [`cohort_fleet::JobSpec::Certify`] jobs. The batch implements the
//! fleet's [`CertifyBatch`] trait: its digest content-addresses the
//! sampling space and the seed range (so killed-worker recovery and
//! cross-run memoization apply to certification exactly as to experiments
//! and GA runs), and its payload is the batch's streaming aggregate —
//! never a per-run report.

use serde_json::{json, Value};

use cohort_fleet::CertifyBatch;
use cohort_types::{FingerprintBuilder, Result};

use crate::estimate::{FaultAggregate, SchedAggregate};
use crate::trial::{FaultCampaignSpace, SchedSpace};

/// Which campaign family a batch samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Campaign {
    /// Seeded fault-injection campaigns through `run_with_watchdog`.
    Fault(FaultCampaignSpace),
    /// Random task-set schedulability trials through `cohort-analysis`.
    Sched(SchedSpace),
}

impl Campaign {
    /// A stable slug for labels and payload tags.
    #[must_use]
    pub fn slug(&self) -> &'static str {
        match self {
            Campaign::Fault(_) => "fault",
            Campaign::Sched(_) => "sched",
        }
    }
}

/// One contiguous block of seeded trials, executable by any fleet worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertBatch {
    /// The campaign family and its sampling space.
    pub campaign: Campaign,
    /// First seed of the block.
    pub seed_start: u64,
    /// Number of consecutive seeds to run.
    pub trials: u64,
}

impl CertBatch {
    /// Runs the batch to its aggregate payload (a pure function of the
    /// batch).
    ///
    /// # Errors
    ///
    /// Propagates trial errors (simulator misconfiguration, deadlocks).
    pub fn execute(&self) -> Result<Value> {
        match &self.campaign {
            Campaign::Fault(space) => {
                let mut agg = FaultAggregate::default();
                for seed in self.seed_start..self.seed_start + self.trials {
                    agg.record(seed, &space.run_trial(seed)?);
                }
                Ok(json!({ "campaign": "fault", "aggregate": agg.to_json() }))
            }
            Campaign::Sched(space) => {
                let mut agg = SchedAggregate::for_space(space);
                for seed in self.seed_start..self.seed_start + self.trials {
                    agg.record(&space.run_trial(seed)?);
                }
                Ok(json!({ "campaign": "sched", "aggregate": agg.to_json() }))
            }
        }
    }
}

impl CertifyBatch for CertBatch {
    fn label(&self) -> String {
        format!(
            "cert/{}[{}..{}]",
            self.campaign.slug(),
            self.seed_start,
            self.seed_start + self.trials
        )
    }

    fn digest(&self, b: FingerprintBuilder) -> FingerprintBuilder {
        let b = match &self.campaign {
            Campaign::Fault(space) => space.digest(b.text("campaign/fault")),
            Campaign::Sched(space) => space.digest(b.text("campaign/sched")),
        };
        b.u64(self.seed_start).u64(self.trials)
    }

    fn manifest(&self) -> Value {
        json!({
            "campaign": self.campaign.slug(),
            "seed_start": self.seed_start,
            "trials": self.trials,
        })
    }

    fn run(&self) -> Result<Value> {
        self.execute()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohort_fleet::JobSpec;
    use std::sync::Arc;

    fn sched_batch(seed_start: u64) -> CertBatch {
        CertBatch { campaign: Campaign::Sched(SchedSpace::default()), seed_start, trials: 32 }
    }

    #[test]
    fn batches_are_content_addressed_by_space_and_seed_range() {
        let spec = |s| JobSpec::Certify { batch: Arc::new(sched_batch(s)) };
        assert_eq!(spec(0).fingerprint(), spec(0).fingerprint());
        assert_ne!(spec(0).fingerprint(), spec(32).fingerprint());
        let fault = JobSpec::Certify {
            batch: Arc::new(CertBatch {
                campaign: Campaign::Fault(FaultCampaignSpace::default()),
                seed_start: 0,
                trials: 32,
            }),
        };
        assert_ne!(fault.fingerprint(), spec(0).fingerprint());
    }

    #[test]
    fn batch_payloads_are_deterministic_aggregates() {
        let batch = sched_batch(100);
        let a = batch.execute().expect("batch runs");
        let b = batch.execute().expect("batch runs");
        assert_eq!(
            serde_json::to_string_pretty(&a).expect("serialize"),
            serde_json::to_string_pretty(&b).expect("serialize"),
        );
        let agg = SchedAggregate::from_json(a.get("aggregate").expect("aggregate"))
            .expect("payload parses back");
        assert_eq!(agg.trials, 32);
    }
}
