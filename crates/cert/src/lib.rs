//! # cohort-cert — Monte Carlo certification over the CoHoRT fleet
//!
//! Certification for a mixed-criticality coherence design is a population
//! question, not a single-run question: *across millions of seeded
//! campaigns, how often does the watchdog detect an injected fault, how
//! fast, how often does it convict a clean machine, and what fraction of
//! random task sets are schedulable at each utilisation?* This crate
//! answers it by streaming seeded trials through the existing
//! [`cohort-fleet`](cohort_fleet) service and keeping **only streaming
//! aggregates** — rates with Wilson confidence intervals, log-scale
//! detection-latency histograms, schedulability curves — never a per-run
//! report.
//!
//! The pipeline:
//!
//! 1. [`trial`] — pure seeded samplers. [`FaultCampaignSpace`] maps a seed
//!    to a (workload, fault plan) pair run through
//!    [`cohort::run_with_watchdog`]; every `clean_every`-th seed is a
//!    fault-free **control arm** whose convictions are false convictions
//!    by construction. [`SchedSpace`] maps a seed to a random periodic
//!    task set judged by `cohort-analysis` response-time analysis.
//! 2. [`batch`] — [`CertBatch`] blocks of consecutive seeds implement the
//!    fleet's [`cohort_fleet::CertifyBatch`] trait, so certification jobs
//!    are content-addressed: killed-worker recovery and cross-run
//!    memoization apply exactly as for experiments and GA runs.
//! 3. [`estimate`] — mergeable streaming estimators ([`FaultAggregate`],
//!    [`SchedAggregate`]); merging per-batch aggregates in submission
//!    order is bit-identical to one sequential pass.
//! 4. [`minimize`] — every conviction is auto-minimized through the
//!    `cohort-verif` replay harness into a reproducible
//!    [`Counterexample`] workload: prefix-cut at the violation, greedily
//!    shrunk while it still convicts, double-checked to replay clean on
//!    the faithful engine and to re-convict under the original plan.
//! 5. [`driver`] — [`run_certification`] wires it together over a fleet.
//!
//! Everything is deterministic: two runs of the same [`CertConfig`]
//! produce bit-identical [`CertOutcome::aggregate_json`] documents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod driver;
pub mod estimate;
pub mod minimize;
pub mod trial;

pub use batch::{Campaign, CertBatch};
pub use driver::{run_certification, CertConfig, CertOutcome};
pub use estimate::{
    wilson, FaultAggregate, LogHistogram, Rate, SchedAggregate, SchedBucket, CONVICTING_SEEDS_CAP,
    WILSON_Z95,
};
pub use minimize::{minimize_conviction, Counterexample};
pub use trial::{mix, FaultCampaignSpace, FaultTrialOutcome, SchedSpace, SchedTrialOutcome};
