//! Seeded trial samplers: the Monte Carlo population.
//!
//! Each trial is a pure function of `(space, seed)`. A **fault trial**
//! materializes a contended workload, a degradation LUT and a seeded
//! [`FaultPlan`], then drives the whole stack through
//! [`cohort::run_with_watchdog`]; every `clean_every`-th seed runs the
//! *control arm* (an empty plan) whose convictions — there should be none —
//! measure the watchdog's false-conviction rate. A **schedulability trial**
//! samples a random periodic task set at a seeded utilisation level and
//! asks [`cohort_analysis::is_schedulable`], building the paper's
//! schedulability curves from population-scale samples instead of
//! hand-sized batches.

use cohort::{run_with_watchdog, ModeSwitchLut, WatchdogPolicy};
use cohort_analysis::{is_schedulable, PeriodicTask};
use cohort_sim::{FaultPlan, SimConfig};
use cohort_trace::{AccessKind, Trace, TraceOp, Workload};
use cohort_types::{Cycles, FingerprintBuilder, LineAddr, Result, TimerValue};

/// The splitmix64 finalizer used across the workspace for seeded streams
/// (the same discipline as `FaultPlan::seeded` and the GA's generation
/// streams): statistically independent values per `(seed, stream)` pair,
/// no ambient RNG anywhere.
#[must_use]
pub fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The sampling space of one fault-injection campaign family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultCampaignSpace {
    /// Cores in the simulated machine (all time-based in mode 1).
    pub cores: usize,
    /// The θ programmed for every core in the normal mode.
    pub theta: u64,
    /// Accesses per core trace.
    pub ops: usize,
    /// Mean inter-access gap in cycles (jittered per seed).
    pub gap: u64,
    /// Distinct shared lines the traces contend on.
    pub lines: u64,
    /// Faults injected per (non-control) trial.
    pub fault_count: usize,
    /// Injection window in cycles for the seeded plan.
    pub horizon: u64,
    /// Every `clean_every`-th seed runs the empty-plan control arm
    /// (`0` disables the control arm entirely).
    pub clean_every: u64,
}

impl Default for FaultCampaignSpace {
    fn default() -> Self {
        FaultCampaignSpace {
            cores: 2,
            theta: 50,
            ops: 32,
            gap: 90,
            lines: 4,
            fault_count: 2,
            horizon: 1_500,
            clean_every: 4,
        }
    }
}

impl FaultCampaignSpace {
    /// Folds every outcome-determining field into a fingerprint.
    #[must_use]
    pub fn digest(&self, b: FingerprintBuilder) -> FingerprintBuilder {
        b.u64(self.cores as u64)
            .u64(self.theta)
            .u64(self.ops as u64)
            .u64(self.gap)
            .u64(self.lines)
            .u64(self.fault_count as u64)
            .u64(self.horizon)
            .u64(self.clean_every)
    }

    /// Whether `seed` belongs to the control arm (empty fault plan).
    #[must_use]
    pub fn is_control(&self, seed: u64) -> bool {
        self.clean_every != 0 && seed.is_multiple_of(self.clean_every)
    }

    /// The simulated platform: all cores time-based at `theta`.
    ///
    /// # Errors
    ///
    /// Returns an error for a θ outside the 16-bit timer range or an
    /// invalid core count.
    pub fn config(&self) -> Result<SimConfig> {
        let theta = TimerValue::timed(self.theta)?;
        SimConfig::builder(self.cores).timers(vec![theta; self.cores]).build()
    }

    /// The degradation LUT: mode 1 keeps every core time-based; each
    /// further mode degrades one more core (highest index first) to MSI —
    /// the §VI escalation ladder.
    ///
    /// # Errors
    ///
    /// Returns an error for a θ outside the 16-bit timer range.
    pub fn lut(&self) -> Result<ModeSwitchLut> {
        let theta = TimerValue::timed(self.theta)?;
        let rows = (0..self.cores)
            .map(|degraded| {
                (0..self.cores)
                    .map(|core| if core + degraded >= self.cores { TimerValue::MSI } else { theta })
                    .collect()
            })
            .collect();
        ModeSwitchLut::new(rows)
    }

    /// The seeded contended workload of one trial: every core issues
    /// `ops` accesses over the shared `lines` with per-seed line choice,
    /// load/store mix and gap jitter.
    #[must_use]
    pub fn workload(&self, seed: u64) -> Workload {
        let traces = (0..self.cores)
            .map(|core| {
                let ops = (0..self.ops)
                    .map(|i| {
                        let stream = (core as u64) << 32 | i as u64;
                        let v = mix(seed, stream);
                        let line = LineAddr::new(1 + v % self.lines.max(1));
                        let kind =
                            if v >> 16 & 0xff < 154 { AccessKind::Store } else { AccessKind::Load };
                        let gap = self.gap / 2 + (v >> 24) % self.gap.max(1);
                        TraceOp::new(line, kind, Cycles::new(gap))
                    })
                    .collect();
                Trace::from_ops(ops)
            })
            .collect();
        Workload::new("cert-fault-trial", traces).expect("at least one core trace")
    }

    /// The seeded fault plan — empty for control seeds, otherwise
    /// `fault_count` faults drawn by `FaultPlan::seeded`.
    #[must_use]
    pub fn plan(&self, seed: u64) -> FaultPlan {
        if self.is_control(seed) {
            FaultPlan::empty()
        } else {
            FaultPlan::seeded(seed, self.cores, self.horizon, self.fault_count)
        }
    }

    /// Runs one seeded trial end-to-end and compresses the
    /// [`cohort::DegradationReport`] into a streaming-friendly outcome —
    /// the per-run report is dropped on the floor by design.
    ///
    /// # Errors
    ///
    /// Propagates simulator configuration or deadlock errors.
    pub fn run_trial(&self, seed: u64) -> Result<FaultTrialOutcome> {
        let report = run_with_watchdog(
            self.config()?,
            &self.workload(seed),
            &self.lut()?,
            self.plan(seed),
            &WatchdogPolicy::default(),
        )?;
        Ok(FaultTrialOutcome {
            control: self.is_control(seed),
            faults_fired: report.faults.len(),
            violations: report.violations_total(),
            machine_violations: report.machine_violations,
            switched: !report.switches.is_empty(),
            post_switch_compliant: report.post_switch.map(|p| p.compliant),
            detection_latency: report.detection_latency,
        })
    }
}

/// The compressed outcome of one fault trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultTrialOutcome {
    /// Whether the trial ran the empty-plan control arm.
    pub control: bool,
    /// Faults the engine actually applied.
    pub faults_fired: usize,
    /// Convictions of any kind.
    pub violations: u64,
    /// Convictions that named no core (machine bucket).
    pub machine_violations: u64,
    /// Whether the driver escalated at least once.
    pub switched: bool,
    /// Post-switch Eq. 1 compliance of the tail, when a switch was taken.
    pub post_switch_compliant: Option<bool>,
    /// Cycles from first injected fault to first conviction.
    pub detection_latency: Option<u64>,
}

impl FaultTrialOutcome {
    /// Whether the watchdog convicted anything at all.
    #[must_use]
    pub fn convicted(&self) -> bool {
        self.violations > 0
    }
}

/// The sampling space of the random task-set schedulability study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedSpace {
    /// Tasks per sampled set.
    pub tasks: usize,
    /// Minimum task period in cycles.
    pub period_min: u64,
    /// Maximum task period in cycles.
    pub period_max: u64,
    /// Lower edge of the sampled total-utilisation range, in percent.
    pub util_min_pct: u64,
    /// Upper edge of the sampled total-utilisation range, in percent
    /// (beyond 100 the curve must collapse to zero — that collapse is part
    /// of the evidence).
    pub util_max_pct: u64,
    /// Each task's WCML budget is sampled up to this fraction of its
    /// compute time, in percent.
    pub wcml_max_pct: u64,
    /// Width of one utilisation bucket of the output curve, in percent.
    pub bucket_pct: u64,
}

impl Default for SchedSpace {
    fn default() -> Self {
        SchedSpace {
            tasks: 4,
            period_min: 1_000,
            period_max: 80_000,
            util_min_pct: 10,
            util_max_pct: 149,
            wcml_max_pct: 50,
            bucket_pct: 20,
        }
    }
}

impl SchedSpace {
    /// Folds every outcome-determining field into a fingerprint.
    #[must_use]
    pub fn digest(&self, b: FingerprintBuilder) -> FingerprintBuilder {
        b.u64(self.tasks as u64)
            .u64(self.period_min)
            .u64(self.period_max)
            .u64(self.util_min_pct)
            .u64(self.util_max_pct)
            .u64(self.wcml_max_pct)
            .u64(self.bucket_pct)
    }

    /// Samples one task set and the utilisation level it was drawn at.
    ///
    /// # Errors
    ///
    /// Returns an error if the space produces a zero period (impossible
    /// for `period_min >= 1`).
    pub fn sample(&self, seed: u64) -> Result<(u64, Vec<PeriodicTask>)> {
        let util_span = self.util_max_pct.saturating_sub(self.util_min_pct) + 1;
        let util_pct = self.util_min_pct + mix(seed, 0) % util_span;
        let period_span = self.period_max.saturating_sub(self.period_min) + 1;
        let weights: Vec<u64> =
            (0..self.tasks).map(|i| 1 + mix(seed, 64 + i as u64) % 997).collect();
        let weight_sum: u64 = weights.iter().sum();
        let mut tasks = Vec::with_capacity(self.tasks);
        for (i, &weight) in weights.iter().enumerate() {
            let period = self.period_min + mix(seed, 1 + i as u64) % period_span;
            // This task's share of the total utilisation, in basis points.
            let share_bp = util_pct * 100 * weight / weight_sum;
            let compute = (period * share_bp / 10_000).max(1);
            let wcml = compute * (mix(seed, 128 + i as u64) % (self.wcml_max_pct + 1)) / 100;
            tasks.push(PeriodicTask::new(format!("t{i}"), period, compute, wcml)?);
        }
        Ok((util_pct, tasks))
    }

    /// Runs one seeded schedulability trial.
    ///
    /// # Errors
    ///
    /// Propagates task-construction or RTA errors.
    pub fn run_trial(&self, seed: u64) -> Result<SchedTrialOutcome> {
        let (util_pct, tasks) = self.sample(seed)?;
        Ok(SchedTrialOutcome { util_pct, schedulable: is_schedulable(&tasks)? })
    }
}

/// The outcome of one schedulability trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedTrialOutcome {
    /// The total-utilisation level the set was drawn at, in percent.
    pub util_pct: u64,
    /// Whether every task met its deadline under RTA.
    pub schedulable: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_the_workspace_splitmix() {
        assert_ne!(mix(1, 0), mix(1, 1));
        assert_eq!(mix(42, 7), mix(42, 7));
    }

    #[test]
    fn fault_trials_are_pure_functions_of_the_seed() {
        let space = FaultCampaignSpace::default();
        for seed in [0, 1, 13] {
            let a = space.run_trial(seed).expect("trial runs");
            let b = space.run_trial(seed).expect("trial runs");
            assert_eq!(a, b);
        }
    }

    #[test]
    fn control_seeds_run_the_empty_plan() {
        let space = FaultCampaignSpace::default();
        assert!(space.is_control(0));
        assert!(!space.is_control(1));
        assert!(space.plan(0).specs().is_empty());
        assert_eq!(space.plan(1).specs().len(), space.fault_count);
        let outcome = space.run_trial(0).expect("control trial runs");
        assert!(outcome.control);
        assert_eq!(outcome.faults_fired, 0);
        assert_eq!(outcome.violations, 0, "a fault-free run must not convict");
    }

    #[test]
    fn sched_trials_are_pure_and_cover_the_utilisation_range() {
        let space = SchedSpace::default();
        for seed in 0..50u64 {
            let a = space.run_trial(seed).expect("trial runs");
            let b = space.run_trial(seed).expect("trial runs");
            assert_eq!(a, b);
            assert!(a.util_pct >= space.util_min_pct && a.util_pct <= space.util_max_pct);
        }
    }

    #[test]
    fn overload_is_unschedulable_and_light_load_is_schedulable() {
        let space = SchedSpace::default();
        let mut low = 0u64;
        let mut high = 0u64;
        for seed in 0..400u64 {
            let outcome = space.run_trial(seed).expect("trial runs");
            if outcome.util_pct < 40 && outcome.schedulable {
                low += 1;
            }
            if outcome.util_pct > 130 && !outcome.schedulable {
                high += 1;
            }
        }
        assert!(low > 0, "light task sets must sometimes be schedulable");
        assert!(high > 0, "overloaded task sets must be rejected");
    }
}
