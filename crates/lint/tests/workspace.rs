//! The gate, as a test: the workspace's own sources carry zero
//! unsuppressed diagnostics, and every suppression that remains has a
//! written justification. This is the same check CI runs via the `lint`
//! bench bin; having it in `cargo test` means a hazard cannot land even
//! on machines that only run the test suite.

use std::path::Path;

use cohort_lint::analyze_workspace;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let analysis = analyze_workspace(&root).expect("workspace scan");
    assert!(analysis.files_scanned > 50, "the walker must actually find the workspace");
    let unsuppressed: Vec<String> = analysis
        .diagnostics
        .iter()
        .filter(|d| !d.suppressed)
        .map(cohort_lint::Diagnostic::render)
        .collect();
    assert!(unsuppressed.is_empty(), "unsuppressed lint diagnostics:\n{}", unsuppressed.join("\n"));
    for diag in &analysis.diagnostics {
        assert!(
            diag.justification.as_ref().is_some_and(|j| !j.is_empty()),
            "suppressed diagnostic without a written justification: {}",
            diag.render()
        );
    }
}
