//! The gate, as a test: the workspace's own sources carry zero
//! unsuppressed diagnostics, and every suppression that remains has a
//! written justification. This is the same check CI runs via the `lint`
//! bench bin; having it in `cargo test` means a hazard cannot land even
//! on machines that only run the test suite.

use std::path::Path;

use cohort_lint::{analyze_files, analyze_workspace, registry, source::walk_workspace};

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let analysis = analyze_workspace(&root).expect("workspace scan");
    assert!(analysis.files_scanned > 50, "the walker must actually find the workspace");
    let unsuppressed: Vec<String> = analysis
        .diagnostics
        .iter()
        .filter(|d| !d.suppressed)
        .map(cohort_lint::Diagnostic::render)
        .collect();
    assert!(unsuppressed.is_empty(), "unsuppressed lint diagnostics:\n{}", unsuppressed.join("\n"));
    for diag in &analysis.diagnostics {
        assert!(
            diag.justification.as_ref().is_some_and(|j| !j.is_empty()),
            "suppressed diagnostic without a written justification: {}",
            diag.render()
        );
    }
}

/// The disk fault-injection layer feeds the self-healing guarantees, so
/// it must be deterministic *by construction*: `FaultyDisk` schedules its
/// transient faults from seeded arithmetic, never wall time or ambient
/// RNG. `cohort-fleet` sits in the DET scope, so any such hazard in
/// `disk.rs` would surface as a diagnostic — assert the file is scanned
/// and needs not even a justified suppression.
#[test]
fn the_disk_fault_layer_is_deterministic_without_suppressions() {
    assert!(
        registry::is_outcome_determining("cohort-fleet"),
        "the fleet (and its Disk impls) must stay in the DET lint scope"
    );
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let files = walk_workspace(&root).expect("workspace walk");
    let disk: Vec<_> =
        files.into_iter().filter(|f| f.rel_path == "crates/fleet/src/disk.rs").collect();
    assert_eq!(disk.len(), 1, "the walker must scan the Disk implementations");
    let analysis = analyze_files(&disk);
    assert!(
        analysis.diagnostics.is_empty(),
        "disk.rs must carry zero hazards, suppressed or not:\n{}",
        analysis
            .diagnostics
            .iter()
            .map(cohort_lint::Diagnostic::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
