//! Fixture contract: every lint class catches its seeded minimal
//! violation — exactly one diagnostic, with the expected code, anchor
//! and key — and the clean fixture produces none. This pins the lint
//! surface itself: a regression that stops a pass from firing fails
//! here, not silently in CI.

use cohort_lint::{analyze_files, Analysis, LintCode, SourceFile};

/// Analyzes one fixture as a library file of `crate_name`.
fn analyze_fixture(name: &str, source: &str, crate_name: &str) -> Analysis {
    let rel_path = format!("crates/lint/tests/fixtures/{name}");
    analyze_files(&[SourceFile::parse(&rel_path, crate_name, source)])
}

/// Asserts the analysis holds exactly one diagnostic and returns it.
fn single(analysis: &Analysis) -> &cohort_lint::Diagnostic {
    assert_eq!(
        analysis.diagnostics.len(),
        1,
        "expected exactly one diagnostic, got: {:#?}",
        analysis.diagnostics
    );
    assert_eq!(analysis.unsuppressed(), 1);
    &analysis.diagnostics[0]
}

#[test]
fn det_unordered_fixture_is_caught() {
    let analysis = analyze_fixture(
        "det_unordered.rs",
        include_str!("fixtures/det_unordered.rs"),
        "cohort-sim",
    );
    let diag = single(&analysis);
    assert_eq!(diag.code, LintCode::DetUnordered);
    assert_eq!(diag.line, 5, "anchored at the first mention (the use line)");
    assert!(diag.message.contains("HashMap"));
    assert!(diag.message.contains("2 mentions"));
}

#[test]
fn det_wallclock_fixture_is_caught() {
    let analysis = analyze_fixture(
        "det_wallclock.rs",
        include_str!("fixtures/det_wallclock.rs"),
        "cohort-fleet",
    );
    let diag = single(&analysis);
    assert_eq!(diag.code, LintCode::DetWallclock);
    assert_eq!(diag.line, 8, "the Instant::now() call, not the use or the type");
}

#[test]
fn det_rng_fixture_is_caught() {
    let analysis =
        analyze_fixture("det_rng.rs", include_str!("fixtures/det_rng.rs"), "cohort-optim");
    let diag = single(&analysis);
    assert_eq!(diag.code, LintCode::DetRng);
    assert_eq!(diag.line, 5);
    assert!(diag.message.contains("thread_rng"));
}

#[test]
fn fpr_missed_field_fixture_is_caught() {
    let analysis = analyze_fixture(
        "fpr_missed_field.rs",
        include_str!("fixtures/fpr_missed_field.rs"),
        "cohort-fleet",
    );
    let diag = single(&analysis);
    assert_eq!(diag.code, LintCode::FprMissedField);
    assert_eq!(diag.line, 11, "anchored at the digest fn");
    assert_eq!(diag.key.as_deref(), Some("stall_limit"));
    assert!(diag.message.contains("TunerConfig"));
}

#[test]
fn lck_unwrap_fixture_is_caught() {
    let analysis = analyze_fixture(
        "lck_unwrap.rs",
        include_str!("fixtures/lck_unwrap.rs"),
        // LCK applies to every crate, outcome-determining or not.
        "cohort-bench",
    );
    let diag = single(&analysis);
    assert_eq!(diag.code, LintCode::LckUnwrap);
    assert_eq!(diag.line, 7);
}

#[test]
fn clean_fixture_produces_no_diagnostics() {
    let analysis = analyze_fixture("clean.rs", include_str!("fixtures/clean.rs"), "cohort-sim");
    assert!(
        analysis.diagnostics.is_empty(),
        "clean fixture must be silent, got: {:#?}",
        analysis.diagnostics
    );
}

#[test]
fn det_fixtures_are_silent_outside_outcome_determining_crates() {
    let analysis = analyze_fixture(
        "det_unordered.rs",
        include_str!("fixtures/det_unordered.rs"),
        "cohort-bench",
    );
    assert!(analysis.diagnostics.is_empty(), "DET scope is the five guarantee crates");
}
