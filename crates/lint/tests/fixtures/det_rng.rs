//! Fixture: ambient randomness in an outcome-determining crate.
//! Expected: exactly one `det-rng` diagnostic on the `thread_rng` line.

pub fn mutate(genes: &mut [u64]) {
    let mut rng = rand::thread_rng();
    jitter(&mut rng, genes);
}

fn jitter<R>(_rng: &mut R, genes: &mut [u64]) {
    genes.reverse();
}
