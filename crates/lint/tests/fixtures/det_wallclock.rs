//! Fixture: a wall-clock read in an outcome-determining crate.
//! Expected: exactly one `det-wallclock` diagnostic on the
//! `Instant::now()` line.

use std::time::Instant;

pub fn stamp_outcome(value: u64) -> (u64, Instant) {
    let at = Instant::now();
    (value, at)
}
