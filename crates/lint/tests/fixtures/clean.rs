//! Fixture: code that follows every house rule.
//! Expected: zero diagnostics — ordered containers, poison-recovering
//! locks, no ambient time or randomness, full digest coverage, and
//! hazard-looking text safely inside strings, comments and tests.

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

pub struct Ledger {
    pub entries: BTreeMap<u64, u64>,
    pub total: u64,
}

fn digest_ledger(b: FingerprintBuilder, ledger: &Ledger) -> FingerprintBuilder {
    let mut b = b.u64(ledger.total);
    for (key, value) in &ledger.entries {
        b = b.u64(*key).u64(*value);
    }
    b
}

pub fn bump(counter: &Mutex<u64>) -> u64 {
    // A HashMap would be wrong here; so would Instant::now() — mentioning
    // them in a comment must not fire.
    let mut guard = counter.lock().unwrap_or_else(PoisonError::into_inner);
    *guard += 1;
    *guard
}

pub fn describe() -> &'static str {
    "uses thread_rng and SystemTime only inside this string"
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_use_hash_maps() {
        let mut m = HashMap::new();
        m.insert(1u64, 2u64);
        assert_eq!(m.len(), 1);
    }
}
