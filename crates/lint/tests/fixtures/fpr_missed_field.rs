//! Fixture: a digested struct with a field the digest never reads.
//! Expected: exactly one `fpr-missed-field` diagnostic on the digest
//! function, keyed by the missed field `stall_limit`.

pub struct TunerConfig {
    pub population: usize,
    pub seed: u64,
    pub stall_limit: usize,
}

fn digest_tuner(b: FingerprintBuilder, config: &TunerConfig) -> FingerprintBuilder {
    b.u64(config.population as u64).u64(config.seed)
}
