//! Fixture: an unordered container in an outcome-determining crate.
//! Expected: exactly one `det-unordered` diagnostic, anchored at the
//! `use` line (first mention), counting both mentions.

use std::collections::HashMap;

pub struct WaiterTable {
    pub waiters: HashMap<u64, Vec<usize>>,
}

impl WaiterTable {
    pub fn drain(&mut self) -> Vec<usize> {
        let mut order = Vec::new();
        for (_, cores) in &self.waiters {
            order.extend(cores.iter().copied());
        }
        order
    }
}
