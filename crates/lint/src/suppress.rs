//! The suppression grammar and its application.
//!
//! A hazard that is *reviewed and sound* is marked in place:
//!
//! ```text
//! // lint:allow(<code>) <justification>
//! ```
//!
//! A trailing marker covers its own line; a full-line marker covers the
//! next line carrying code. FPR findings (which span a whole digest
//! function) are covered by a marker anywhere inside the function body
//! whose justification names the missed field. The justification is
//! mandatory — a bare marker suppresses nothing and is itself reported
//! ([`LintCode::SupBare`]), and a marker matching no diagnostic is
//! reported as stale ([`LintCode::SupUnused`]).

use crate::registry::LintCode;
use crate::report::Diagnostic;
use crate::source::SourceFile;

/// One parsed suppression marker.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line of the marker comment.
    pub line: usize,
    /// 1-based line the marker covers (its own for trailing markers, the
    /// next code line for full-line markers).
    pub target_line: usize,
    /// The lint class it suppresses.
    pub code: LintCode,
    /// The mandatory written justification (possibly empty — then the
    /// marker is bare and suppresses nothing).
    pub justification: String,
    used: bool,
}

/// Extracts every suppression marker from `file`'s comments.
#[must_use]
pub fn parse(file: &SourceFile) -> Vec<Suppression> {
    let mut out = Vec::new();
    for comment in &file.comments {
        let Some(at) = comment.text.find("lint:allow(") else { continue };
        let rest = &comment.text[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let Some(code) = LintCode::parse(rest[..close].trim()) else { continue };
        let justification = rest[close + 1..].trim().trim_start_matches([':', '-']).trim();
        let target_line =
            if comment.trailing { comment.line } else { next_code_line(file, comment.line) };
        out.push(Suppression {
            line: comment.line,
            target_line,
            code,
            justification: justification.to_string(),
            used: false,
        });
    }
    out
}

/// The first line after `from` (1-based) carrying scrubbed code; falls
/// back to `from` at end of file.
fn next_code_line(file: &SourceFile, from: usize) -> usize {
    let mut line = from + 1;
    while line <= file.code.len() {
        if !file.code_line(line).trim().is_empty() {
            return line;
        }
        line += 1;
    }
    from
}

/// Applies `file`'s suppressions to its `diagnostics`: justified matches
/// flip [`Diagnostic::suppressed`], bare markers and stale markers are
/// appended as diagnostics of their own.
pub fn apply(file: &SourceFile, diagnostics: &mut Vec<Diagnostic>) {
    let mut suppressions = parse(file);
    for diag in diagnostics.iter_mut() {
        if diag.file != file.rel_path {
            continue;
        }
        let hit = suppressions.iter_mut().find(|s| {
            if s.code != diag.code {
                return false;
            }
            if s.target_line == diag.line {
                return true;
            }
            match (&diag.span, &diag.key) {
                (Some((start, end)), Some(key)) => {
                    (*start..=*end).contains(&s.line)
                        && !crate::source::find_words(&s.justification, key).is_empty()
                }
                (Some((start, end)), None) => (*start..=*end).contains(&s.line),
                _ => false,
            }
        });
        if let Some(supp) = hit {
            supp.used = true;
            if supp.justification.is_empty() {
                // Bare marker: the diagnostic stays; the marker itself is
                // reported below.
            } else {
                diag.suppressed = true;
                diag.justification = Some(supp.justification.clone());
            }
        }
    }
    for supp in suppressions {
        if supp.used && supp.justification.is_empty() {
            diagnostics.push(Diagnostic::new(
                LintCode::SupBare,
                &file.rel_path,
                supp.line,
                format!("suppression of `{}` carries no justification", supp.code),
            ));
        } else if !supp.used {
            diagnostics.push(Diagnostic::new(
                LintCode::SupUnused,
                &file.rel_path,
                supp.line,
                format!("suppression of `{}` matches no diagnostic", supp.code),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("demo.rs", "demo", src)
    }

    #[test]
    fn trailing_and_full_line_markers_resolve_targets() {
        let src = "use x; // lint:allow(det-unordered) lookup only\n\
                   // lint:allow(det-rng) seeded elsewhere\n\
                   \n\
                   fn target() {}\n";
        let f = file(src);
        let supps = parse(&f);
        assert_eq!(supps.len(), 2);
        assert_eq!((supps[0].target_line, supps[0].code), (1, LintCode::DetUnordered));
        assert_eq!((supps[1].target_line, supps[1].code), (4, LintCode::DetRng));
        assert_eq!(supps[0].justification, "lookup only");
    }

    #[test]
    fn justified_marker_suppresses_bare_marker_reports() {
        let src = "use a; // lint:allow(det-unordered) membership only\n\
                   use b; // lint:allow(det-wallclock)\n";
        let f = file(src);
        let mut diags = vec![
            Diagnostic::new(LintCode::DetUnordered, "demo.rs", 1, "HashMap".into()),
            Diagnostic::new(LintCode::DetWallclock, "demo.rs", 2, "Instant::now".into()),
        ];
        apply(&f, &mut diags);
        assert!(diags[0].suppressed);
        assert_eq!(diags[0].justification.as_deref(), Some("membership only"));
        assert!(!diags[1].suppressed, "bare marker must not suppress");
        assert!(diags.iter().any(|d| d.code == LintCode::SupBare && d.line == 2));
    }

    #[test]
    fn unused_markers_are_reported_stale() {
        let src = "// lint:allow(lck-unwrap) nothing here any more\nfn ok() {}\n";
        let f = file(src);
        let mut diags = Vec::new();
        apply(&f, &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::SupUnused);
    }

    #[test]
    fn span_matching_requires_the_key_in_the_justification() {
        let src = "fn digest() {\n\
                       // lint:allow(fpr-missed-field) workers: any count is identical\n\
                       body();\n\
                   }\n";
        let f = file(src);
        let mut missed = Diagnostic::new(
            LintCode::FprMissedField,
            "demo.rs",
            1,
            "field `workers` of `GaConfig` is not digested".into(),
        );
        missed.span = Some((1, 4));
        missed.key = Some("workers".into());
        let mut other = missed.clone();
        other.key = Some("seed".into());
        let mut diags = vec![missed, other];
        apply(&f, &mut diags);
        assert!(diags[0].suppressed, "justification names the field");
        assert!(!diags[1].suppressed, "justification must name the field");
    }

    #[test]
    fn unknown_codes_are_not_suppressions() {
        let src = "// lint:allow(not-a-code) whatever\nfn ok() {}\n";
        let f = file(src);
        assert!(parse(&f).is_empty());
    }
}
