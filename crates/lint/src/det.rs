//! DET — determinism lints for the outcome-determining crates.
//!
//! Everything the reproduction certifies (engine bit-equivalence,
//! content-addressed memoization, kill/re-claim recomputation) relies on
//! outcome-determining code being a pure function of its inputs. Three
//! hazard families break that silently:
//!
//! - **det-unordered** — `HashMap`/`HashSet`: iteration order is seeded
//!   per instance. Reported once per identifier per file, anchored at the
//!   first mention, so one reviewed suppression covers one container
//!   discipline.
//! - **det-wallclock** — `Instant::now` / `SystemTime`: host timing leaks
//!   into outcomes.
//! - **det-rng** — `thread_rng` / `from_entropy` / `OsRng` /
//!   `rand::random`: ambient entropy defeats seeded replay.

use crate::registry::{is_outcome_determining, LintCode};
use crate::report::Diagnostic;
use crate::source::{find_words, SourceFile};

/// The unordered-container identifiers.
const UNORDERED: &[&str] = &["HashMap", "HashSet"];
/// Wall-clock identifiers. `Instant` alone is fine (storing a deadline
/// someone else measured is deterministic); *reading* the clock is not.
const WALLCLOCK: &[&str] = &["SystemTime"];
/// Ambient-randomness identifiers.
const RNG: &[&str] = &["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// Runs the DET pass over one file, appending findings.
pub fn run(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !is_outcome_determining(&file.crate_name) {
        return;
    }
    // Unordered containers: first non-test mention per identifier, with
    // the total count in the message so the hazard's size stays visible.
    for ident in UNORDERED {
        let mut first: Option<usize> = None;
        let mut count = 0usize;
        for (idx, line) in file.code.iter().enumerate() {
            if file.is_test_line(idx + 1) {
                continue;
            }
            let hits = find_words(line, ident).len();
            if hits > 0 && first.is_none() {
                first = Some(idx + 1);
            }
            count += hits;
        }
        if let Some(line) = first {
            out.push(Diagnostic::new(
                LintCode::DetUnordered,
                &file.rel_path,
                line,
                format!(
                    "`{ident}` in outcome-determining crate `{}` ({count} mention{}); use \
                     BTree{} or suppress with the container's ordering discipline",
                    file.crate_name,
                    if count == 1 { "" } else { "s" },
                    &ident[4..],
                ),
            ));
        }
    }
    for (idx, line) in file.code.iter().enumerate() {
        if file.is_test_line(idx + 1) {
            continue;
        }
        // `Instant::now` is a two-token pattern: an `Instant` word whose
        // suffix starts the call.
        for start in find_words(line, "Instant") {
            let rest = &line[start + "Instant".len()..];
            if rest.trim_start().starts_with("::now") {
                out.push(Diagnostic::new(
                    LintCode::DetWallclock,
                    &file.rel_path,
                    idx + 1,
                    "`Instant::now()` read in an outcome-determining crate".to_string(),
                ));
            }
        }
        for ident in WALLCLOCK {
            for _ in find_words(line, ident) {
                out.push(Diagnostic::new(
                    LintCode::DetWallclock,
                    &file.rel_path,
                    idx + 1,
                    format!("`{ident}` in an outcome-determining crate"),
                ));
            }
        }
        for ident in RNG {
            for _ in find_words(line, ident) {
                out.push(Diagnostic::new(
                    LintCode::DetRng,
                    &file.rel_path,
                    idx + 1,
                    format!("ambient randomness `{ident}` in an outcome-determining crate"),
                ));
            }
        }
        // `rand::random` is path-shaped, not a single identifier.
        for start in find_words(line, "rand") {
            let rest = &line[start + "rand".len()..];
            if rest.starts_with("::random") {
                out.push(Diagnostic::new(
                    LintCode::DetRng,
                    &file.rel_path,
                    idx + 1,
                    "ambient randomness `rand::random` in an outcome-determining crate".to_string(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(crate_name: &str, src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse("demo.rs", crate_name, src);
        let mut out = Vec::new();
        run(&file, &mut out);
        out
    }

    #[test]
    fn hash_collections_report_once_per_identifier() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\n";
        let diags = scan("cohort-fleet", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::DetUnordered);
        assert_eq!(diags[0].line, 1);
        assert!(diags[0].message.contains("2 mentions"));
    }

    #[test]
    fn scope_is_limited_to_outcome_determining_crates() {
        let src = "use std::collections::HashMap;\nlet t = Instant::now();\n";
        assert!(scan("cohort-bench", src).is_empty());
        assert_eq!(scan("cohort-sim", src).len(), 2);
    }

    #[test]
    fn wallclock_and_rng_fire_per_occurrence() {
        let src = "let a = Instant::now();\nlet b = SystemTime::now();\nlet c = thread_rng();\nlet d = rand::random::<u8>();\n";
        let diags = scan("cohort-optim", src);
        let codes: Vec<LintCode> = diags.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            vec![
                LintCode::DetWallclock,
                LintCode::DetWallclock,
                LintCode::DetRng,
                LintCode::DetRng
            ]
        );
    }

    #[test]
    fn instant_without_now_is_not_a_read() {
        let src = "fn deadline(at: Instant) -> Instant { at }\n";
        assert!(scan("cohort-fleet", src).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn t() { let _ = Instant::now(); }\n}\n";
        assert!(scan("cohort-sim", src).is_empty());
    }
}
