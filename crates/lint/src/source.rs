//! Workspace source model: file discovery, comment/string scrubbing and
//! `#[cfg(test)]` region detection.
//!
//! The passes never see raw source text. Every file is lexed once into a
//! [`SourceFile`]: the *scrubbed* code (comments and string/char-literal
//! contents blanked, line structure preserved, so identifier matching
//! can't be fooled by `"HashMap"` in a string or a doc comment), the
//! comments themselves (carrying the suppression markers), and a per-line
//! map of `#[cfg(test)]` regions (test code is exempt from every pass).

use std::fs;
use std::path::{Path, PathBuf};

use cohort_types::{Error, Result};

/// One comment as found in the source, with its 1-based starting line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// The comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
    /// Whether code precedes the comment on its line (a trailing comment
    /// suppresses its own line; a full-line comment suppresses the next
    /// code line).
    pub trailing: bool,
}

/// One lexed source file, ready for the lint passes.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// The owning crate's package name (e.g. `cohort-sim`).
    pub crate_name: String,
    /// Scrubbed code, one entry per source line (index 0 = line 1).
    pub code: Vec<String>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
    /// Per-line flag: `true` when the line sits inside a `#[cfg(test)]`
    /// region (index 0 = line 1).
    pub test_line: Vec<bool>,
}

impl SourceFile {
    /// Lexes `source` into a file model. `rel_path` and `crate_name` are
    /// recorded verbatim.
    #[must_use]
    pub fn parse(rel_path: &str, crate_name: &str, source: &str) -> Self {
        let (code_text, comments) = scrub(source);
        let code: Vec<String> = code_text.split('\n').map(str::to_string).collect();
        let test_line = test_regions(&code);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            code,
            comments,
            test_line,
        }
    }

    /// Whether 1-based `line` lies in a `#[cfg(test)]` region.
    #[must_use]
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_line.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }

    /// Scrubbed text of 1-based `line` (empty for out-of-range lines).
    #[must_use]
    pub fn code_line(&self, line: usize) -> &str {
        self.code.get(line.wrapping_sub(1)).map_or("", String::as_str)
    }

    /// The full scrubbed text, newline-joined (for span-level scans).
    #[must_use]
    pub fn joined_code(&self) -> String {
        self.code.join("\n")
    }
}

/// Strips comments and literal contents from `source`, preserving the
/// line structure exactly, and collects the comments. String and char
/// literal *contents* become spaces (the quotes stay); comments become
/// spaces wholesale.
fn scrub(source: &str) -> (String, Vec<Comment>) {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut line_has_code = false;
    let mut i = 0usize;

    // Push a scrubbed char: newlines survive (and advance the counter),
    // everything else inside a skipped region becomes a space.
    macro_rules! blank {
        ($c:expr) => {
            if $c == '\n' {
                out.push('\n');
                line += 1;
                line_has_code = false;
            } else {
                out.push(' ');
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '/' if next == Some('/') => {
                let start_line = line;
                let trailing = line_has_code;
                let mut text = String::new();
                while i < chars.len() && chars[i] != '\n' {
                    text.push(chars[i]);
                    out.push(' ');
                    i += 1;
                }
                let text = text.trim_start_matches('/').trim().to_string();
                comments.push(Comment { line: start_line, text, trailing });
            }
            '/' if next == Some('*') => {
                let start_line = line;
                let trailing = line_has_code;
                let mut depth = 0usize;
                let mut text = String::new();
                while i < chars.len() {
                    let c = chars[i];
                    let next = chars.get(i + 1).copied();
                    if c == '/' && next == Some('*') {
                        depth += 1;
                        blank!(c);
                        blank!('*');
                        i += 2;
                    } else if c == '*' && next == Some('/') {
                        depth -= 1;
                        blank!(c);
                        blank!('/');
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        text.push(c);
                        blank!(c);
                        i += 1;
                    }
                }
                let text = text.trim_matches(['*', ' ', '\n']).to_string();
                comments.push(Comment { line: start_line, text, trailing });
            }
            '"' => {
                out.push('"');
                line_has_code = true;
                i += 1;
                while i < chars.len() {
                    let c = chars[i];
                    if c == '\\' {
                        blank!(c);
                        i += 1;
                        if i < chars.len() {
                            blank!(chars[i]);
                            i += 1;
                        }
                    } else if c == '"' {
                        out.push('"');
                        i += 1;
                        break;
                    } else {
                        blank!(c);
                        i += 1;
                    }
                }
            }
            'r' | 'b' if is_raw_string_start(&chars, i) => {
                // r"..." / r#"..."# / br#"..."# / b"..." — find the quote,
                // count the hashes, skip to the matching close.
                while i < chars.len() && chars[i] != '"' && chars[i] != '#' {
                    out.push(chars[i]);
                    line_has_code = true;
                    i += 1;
                }
                let mut hashes = 0usize;
                while i < chars.len() && chars[i] == '#' {
                    out.push('#');
                    hashes += 1;
                    i += 1;
                }
                if i < chars.len() && chars[i] == '"' {
                    out.push('"');
                    i += 1;
                    'raw: while i < chars.len() {
                        if chars[i] == '"' {
                            let mut ok = true;
                            for h in 0..hashes {
                                if chars.get(i + 1 + h) != Some(&'#') {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                out.push('"');
                                for _ in 0..hashes {
                                    out.push('#');
                                }
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        blank!(chars[i]);
                        i += 1;
                    }
                }
            }
            '\'' => {
                // Char literal vs lifetime: 'x' / '\n' are literals,
                // 'static is a lifetime and passes through as code.
                if next == Some('\\') {
                    out.push('\'');
                    i += 2; // quote + backslash
                    out.push(' ');
                    if i < chars.len() {
                        blank!(chars[i]);
                        i += 1;
                    }
                    while i < chars.len() && chars[i] != '\'' {
                        blank!(chars[i]);
                        i += 1;
                    }
                    if i < chars.len() {
                        out.push('\'');
                        i += 1;
                    }
                } else if next.is_some() && chars.get(i + 2) == Some(&'\'') {
                    out.push('\'');
                    out.push(' ');
                    out.push('\'');
                    line_has_code = true;
                    i += 3;
                } else {
                    out.push('\'');
                    line_has_code = true;
                    i += 1;
                }
            }
            '\n' => {
                out.push('\n');
                line += 1;
                line_has_code = false;
                i += 1;
            }
            c => {
                if !c.is_whitespace() {
                    line_has_code = true;
                }
                out.push(c);
                i += 1;
            }
        }
    }
    (out, comments)
}

/// Whether position `i` (an `r` or `b`) starts a raw/byte string literal.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Reject identifiers ending in r/b (e.g. `for`, `var"...` is not
    // valid Rust anyway, but `foor#` could fool us): the previous char
    // must not be part of an identifier.
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
        return chars.get(j) == Some(&'"');
    }
    // Plain byte string b"..."
    j == i + 1 && chars.get(j) == Some(&'"')
}

/// Marks every line inside a `#[cfg(test)]` (or `#[cfg(all(test, ...))]`)
/// item's braces. Runs on scrubbed code so strings can't confuse it.
fn test_regions(code: &[String]) -> Vec<bool> {
    let mut marks = vec![false; code.len()];
    let mut depth = 0usize;
    // Stack of depths at which a test region opened.
    let mut regions: Vec<usize> = Vec::new();
    // Set when a test cfg attribute was seen and its item's `{` is pending.
    let mut armed = false;
    for (idx, line) in code.iter().enumerate() {
        let compact: String = line.chars().filter(|c| !c.is_whitespace()).collect();
        if compact.contains("#[cfg(test)]") || compact.contains("#[cfg(all(test") {
            armed = true;
        }
        if !regions.is_empty() {
            marks[idx] = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if armed {
                        regions.push(depth);
                        armed = false;
                        marks[idx] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                }
                ';' if armed => {
                    // `#[cfg(test)] use ...;` — attribute spent on a
                    // braceless item.
                    armed = false;
                    marks[idx] = true;
                }
                _ => {}
            }
        }
    }
    marks
}

/// Reads the `name = "..."` of a crate's `Cargo.toml`.
fn package_name(manifest: &Path) -> Option<String> {
    let text = fs::read_to_string(manifest).ok()?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                return Some(rest.trim().trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Collects `.rs` files under `dir` recursively, sorted by path for a
/// deterministic scan order. Directories named `bin` are skipped: lints
/// target library code, and bench bins measure wall-clock by design.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| Error::Codec(format!("cannot read {}: {e}", dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks the workspace at `root`, lexing every library source file:
/// `crates/*/src/**/*.rs` plus the root package's `src/**/*.rs`. Test
/// targets (`tests/`, `benches/`, `examples/`) and `src/bin/` are outside
/// the scan; `#[cfg(test)]` modules inside library files are lexed but
/// exempted per line.
///
/// # Errors
///
/// Returns [`Error::Codec`] when the workspace layout cannot be read.
pub fn walk_workspace(root: &Path) -> Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates)
            .map_err(|e| Error::Codec(format!("cannot read {}: {e}", crates.display())))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        crate_dirs.extend(dirs);
    }
    crate_dirs.push(root.to_path_buf());
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let name = package_name(&crate_dir.join("Cargo.toml")).unwrap_or_else(|| {
            crate_dir.file_name().map_or_else(String::new, |n| n.to_string_lossy().into_owned())
        });
        let mut paths = Vec::new();
        collect_rs(&src, &mut paths)?;
        for path in paths {
            let text = fs::read_to_string(&path)
                .map_err(|e| Error::Codec(format!("cannot read {}: {e}", path.display())))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile::parse(&rel, &name, &text));
        }
    }
    Ok(files)
}

/// Whether the byte range `[start, end)` of `text` is an isolated word
/// (not embedded in a longer identifier).
#[must_use]
pub fn is_word_boundary(text: &str, start: usize, end: usize) -> bool {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let before_ok = start == 0 || !text[..start].chars().next_back().is_some_and(ident);
    let after_ok = end >= text.len() || !text[end..].chars().next().is_some_and(ident);
    before_ok && after_ok
}

/// Finds every word-boundary occurrence of `word` in `text`, returning
/// byte offsets.
#[must_use]
pub fn find_words(text: &str, word: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = text[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        if is_word_boundary(text, start, end) {
            hits.push(start);
        }
        from = end;
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_scrubbed() {
        let src = "let x = \"HashMap\"; // HashMap here\nlet y = 1; /* Instant::now */\n";
        let file = SourceFile::parse("a.rs", "demo", src);
        assert!(!file.code_line(1).contains("HashMap"));
        assert!(!file.code_line(2).contains("Instant"));
        assert_eq!(file.comments.len(), 2);
        assert_eq!(file.comments[0].text, "HashMap here");
        assert!(file.comments[0].trailing);
        assert_eq!(file.comments[1].line, 2);
    }

    #[test]
    fn raw_strings_and_chars_are_scrubbed_lifetimes_survive() {
        let src = "let s = r#\"HashSet \"inner\" text\"#;\nlet c = 'H'; let l: &'static str = \"x\";\nlet e = '\\n';\n";
        let file = SourceFile::parse("a.rs", "demo", src);
        assert!(!file.code_line(1).contains("HashSet"));
        assert!(!file.code_line(2).contains('H'), "char literal contents blanked");
        assert!(file.code_line(2).contains("'static"), "lifetime kept as code");
        assert!(!file.code_line(3).contains('n'));
    }

    #[test]
    fn multi_line_strings_keep_line_numbers() {
        let src = "let s = \"line one\nInstant::now\nthree\";\nfn after() {}\n";
        let file = SourceFile::parse("a.rs", "demo", src);
        assert_eq!(file.code.len(), 5);
        assert!(!file.joined_code().contains("Instant"));
        assert!(file.code_line(4).contains("fn after"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { lock(); }\n}\nfn lib2() {}\n";
        let file = SourceFile::parse("a.rs", "demo", src);
        assert!(!file.is_test_line(1));
        assert!(file.is_test_line(4));
        assert!(!file.is_test_line(6));
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {\n    body();\n}\n";
        let file = SourceFile::parse("a.rs", "demo", src);
        assert!(!file.is_test_line(4), "the region must not swallow the next braces");
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ fn code() {}\n";
        let file = SourceFile::parse("a.rs", "demo", src);
        assert!(file.code_line(1).contains("fn code"));
        assert!(!file.code_line(1).contains("outer"));
    }

    #[test]
    fn word_boundaries_reject_embedded_matches() {
        assert_eq!(find_words("HashMap MyHashMap HashMapX", "HashMap"), vec![0]);
        assert_eq!(find_words("a.lock().unwrap()", "lock"), vec![2]);
    }
}
