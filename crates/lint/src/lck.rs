//! LCK — lock-poisoning hygiene.
//!
//! `.lock().unwrap()` in library code turns one worker's panic into a
//! cascade: the poisoned mutex panics every sibling that touches it. The
//! house style (PR 5) recovers the guard with `PoisonError::into_inner`
//! — the protected state is a counter/map update, never left
//! half-written across an unwind. Test code is exempt: a test that
//! panics on a poisoned lock is failing loudly, which is what tests are
//! for.

use crate::registry::LintCode;
use crate::report::Diagnostic;
use crate::source::SourceFile;

/// Whether `text` (already scrubbed of comments/strings) contains the
/// `.lock().unwrap()` / `.read().unwrap()` / `.write().unwrap()` pattern
/// once whitespace is ignored.
fn poisoning_unwrap(text: &str) -> bool {
    let squeezed: String = text.chars().filter(|c| !c.is_whitespace()).collect();
    ["lock().unwrap()", "read().unwrap()", "write().unwrap()"]
        .iter()
        .any(|needle| squeezed.contains(needle))
}

/// Runs the LCK pass over one file, appending findings.
pub fn run(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (idx, line) in file.code.iter().enumerate() {
        let lineno = idx + 1;
        if file.is_test_line(lineno) {
            continue;
        }
        let mut hit = poisoning_unwrap(line);
        // Formatting may split the chain across lines; join with the next
        // non-test line, but only charge the pair to the first line.
        if !hit && lineno < file.code.len() && !file.is_test_line(lineno + 1) {
            let joined = format!("{line}{}", file.code[idx + 1]);
            hit = poisoning_unwrap(&joined) && !poisoning_unwrap(&file.code[idx + 1]);
        }
        if hit {
            out.push(Diagnostic::new(
                LintCode::LckUnwrap,
                &file.rel_path,
                lineno,
                "`.lock().unwrap()` panics every thread after one poisoning panic; recover \
                 with `unwrap_or_else(std::sync::PoisonError::into_inner)`"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::parse("demo.rs", "demo", src);
        let mut out = Vec::new();
        run(&file, &mut out);
        out
    }

    #[test]
    fn unwrap_on_lock_is_flagged() {
        let diags = scan("fn f(m: &std::sync::Mutex<u32>) { *m.lock().unwrap() += 1; }\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::LckUnwrap);
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn split_chain_is_charged_to_the_first_line() {
        let diags = scan("let g = m\n    .lock()\n    .unwrap();\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn into_inner_recovery_is_clean() {
        let src = "let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn tests_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t(m: &std::sync::Mutex<u32>) { let _ = m.lock().unwrap(); }\n}\n";
        assert!(scan(src).is_empty());
    }
}
