//! The lint registry: every machine-checked invariant class, its stable
//! code, and the crate scope it applies to.

/// The outcome-determining crates: everything the engine-equivalence,
/// memoization and certification guarantees rest on. DET lints apply only
/// here — nondeterminism in presentation/bench code is measurement, not a
/// hazard.
pub const OUTCOME_DETERMINING: &[&str] = &[
    "cohort-sim",
    "cohort-optim",
    "cohort-fleet",
    "cohort-analysis",
    "cohort-verif",
    "cohort-cert",
];

/// Whether `crate_name` is in the outcome-determining set.
#[must_use]
pub fn is_outcome_determining(crate_name: &str) -> bool {
    OUTCOME_DETERMINING.contains(&crate_name)
}

/// Stable identity of one lint class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `HashMap`/`HashSet` in an outcome-determining crate: iteration
    /// order is seeded per instance, so any order-observing use is
    /// nondeterministic across runs.
    DetUnordered,
    /// Wall-clock reads (`Instant::now`, `SystemTime`) in an
    /// outcome-determining crate.
    DetWallclock,
    /// Ambient randomness (`thread_rng`, `from_entropy`, `OsRng`,
    /// `rand::random`) in an outcome-determining crate.
    DetRng,
    /// A struct digested by a fingerprint function has a field the digest
    /// never reads — the "added a field, stale memo hit" bug class.
    FprMissedField,
    /// `.lock().unwrap()` in library code: a panicking sibling poisons
    /// the mutex and takes healthy threads down with it
    /// (`PoisonError::into_inner` is house style since PR 5).
    LckUnwrap,
    /// A suppression marker without a written justification.
    SupBare,
    /// A suppression marker that matched no diagnostic — stale markers
    /// rot into false confidence.
    SupUnused,
}

impl LintCode {
    /// Every lint class, in reporting order.
    pub const ALL: [LintCode; 7] = [
        LintCode::DetUnordered,
        LintCode::DetWallclock,
        LintCode::DetRng,
        LintCode::FprMissedField,
        LintCode::LckUnwrap,
        LintCode::SupBare,
        LintCode::SupUnused,
    ];

    /// The stable spelling used in diagnostics and suppression markers.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::DetUnordered => "det-unordered",
            LintCode::DetWallclock => "det-wallclock",
            LintCode::DetRng => "det-rng",
            LintCode::FprMissedField => "fpr-missed-field",
            LintCode::LckUnwrap => "lck-unwrap",
            LintCode::SupBare => "sup-bare",
            LintCode::SupUnused => "sup-unused",
        }
    }

    /// Parses a suppression-marker spelling.
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        LintCode::ALL.into_iter().find(|code| code.as_str() == text)
    }

    /// Why the lint exists — stamped into every diagnostic so a report
    /// is readable without the lint source.
    #[must_use]
    pub fn rationale(self) -> &'static str {
        match self {
            LintCode::DetUnordered => {
                "std hash collections randomize iteration order per instance; any \
                 order-observing use breaks bit-identical replay and content-addressed \
                 memoization"
            }
            LintCode::DetWallclock => {
                "wall-clock reads make outcomes depend on host timing; inject a Clock \
                 (fleet) or take cycles from the simulator instead"
            }
            LintCode::DetRng => {
                "ambient RNG breaks seeded reproducibility; thread splitmix64 streams \
                 from an explicit seed instead"
            }
            LintCode::FprMissedField => {
                "a field missing from the content-address digest means two different \
                 configurations share a fingerprint — stale memo hits instead of \
                 recomputation"
            }
            LintCode::LckUnwrap => {
                "unwrap on a poisoned lock propagates one worker's panic to every \
                 sibling; recover the guard with PoisonError::into_inner"
            }
            LintCode::SupBare => {
                "a suppression must say why the hazard is sound; bare markers hide \
                 hazards instead of justifying them"
            }
            LintCode::SupUnused => {
                "the marker matches no diagnostic — the hazard moved or was fixed; \
                 stale markers invite unreviewed reintroduction"
            }
        }
    }
}

impl std::fmt::Display for LintCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_through_their_spelling() {
        for code in LintCode::ALL {
            assert_eq!(LintCode::parse(code.as_str()), Some(code));
            assert!(!code.rationale().is_empty());
        }
        assert_eq!(LintCode::parse("nope"), None);
    }

    #[test]
    fn det_scope_is_the_five_guarantee_crates() {
        assert!(is_outcome_determining("cohort-sim"));
        assert!(is_outcome_determining("cohort-fleet"));
        assert!(!is_outcome_determining("cohort-bench"));
        assert!(!is_outcome_determining("cohort"));
    }
}
