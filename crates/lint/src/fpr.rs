//! FPR — fingerprint coverage of digested structs.
//!
//! The fleet memoizes on content addresses: `JobSpec::fingerprint` folds
//! every outcome-affecting knob through [`FingerprintBuilder`]. The bug
//! class this pass exists for is *drift*: someone adds a field to
//! `GaConfig` or `SystemSpec`, forgets the digest helper, and two
//! different configurations silently share a fingerprint — the store
//! serves a stale result instead of recomputing.
//!
//! The pass is structural, not semantic. A **digest site** is either
//!
//! 1. a function whose signature mentions `FingerprintBuilder` — every
//!    known struct named in that signature is being digested there; or
//! 2. an inherent method `fn fingerprint(&self)` — the impl's `Self`
//!    struct is being digested (the `&self`-receiver requirement keeps
//!    `FingerprintBuilder::fingerprint(mut self)` itself out of scope).
//!
//! A field is **covered** when its name occurs as a word anywhere in the
//! digest function's body — this works because accessors share the field
//! name. That proves *mention*, not *value influence*; a digest that
//! reads a field and drops it still passes. The lint catches the
//! forgot-the-field drift, which is the failure mode that actually
//! happens. Structs defined under more than one name collision are
//! dropped from resolution rather than guessed at.

use std::collections::BTreeMap;

use crate::registry::LintCode;
use crate::report::Diagnostic;
use crate::source::{find_words, SourceFile};

/// One named-field struct definition.
#[derive(Debug, Clone)]
struct StructDef {
    fields: Vec<String>,
}

/// One function definition with its signature and body extent.
#[derive(Debug, Clone)]
struct FnDef {
    /// 1-based line of the `fn` keyword.
    line: usize,
    /// 1-based line of the last body line.
    end_line: usize,
    /// The whole signature, `fn` through the body's opening brace.
    signature: String,
    /// The function name.
    name: String,
    /// `Self` type when the fn sits in an inherent impl block.
    impl_type: Option<String>,
}

/// Collects every named-field struct in `file`. Tuple and unit structs
/// carry no field names to cover, so they are skipped.
fn parse_structs(file: &SourceFile, out: &mut BTreeMap<String, Option<StructDef>>) {
    let lines = &file.code;
    for (idx, line) in lines.iter().enumerate() {
        let Some(at) = find_words(line, "struct").first().copied() else { continue };
        let after = line[at + "struct".len()..].trim_start();
        let name: String = after.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        if name.is_empty() {
            continue;
        }
        // Named-field structs open a brace on the definition line (the
        // workspace is rustfmt-formatted); `struct X;` and `struct X(...)`
        // have no named fields.
        let rest = &after[name.len()..];
        if !rest.contains('{') {
            continue;
        }
        let mut fields = Vec::new();
        let mut depth = 0i32;
        'scan: for (offset, body_line) in lines[idx..].iter().enumerate() {
            for ch in body_line.chars() {
                match ch {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            break 'scan;
                        }
                    }
                    _ => {}
                }
            }
            if depth == 1 && offset > 0 {
                // A field line inside the struct body: `name: Type,`
                // (optionally pub-qualified).
                let trimmed = body_line.trim();
                let unqualified = strip_visibility(trimmed).unwrap_or(trimmed);
                if let Some(colon) = unqualified.find(':') {
                    let field: String = unqualified[..colon].trim().to_string();
                    if !field.is_empty() && field.chars().all(|c| c.is_alphanumeric() || c == '_') {
                        fields.push(field);
                    }
                }
            }
        }
        // A name seen twice is ambiguous across the workspace: drop it
        // from resolution instead of guessing which definition a digest
        // signature refers to.
        match out.get(&name) {
            Some(_) => {
                out.insert(name, None);
            }
            None => {
                out.insert(name, Some(StructDef { fields }));
            }
        }
    }
}

/// Strips a leading `pub` / `pub(crate)` / `pub(super)` qualifier.
fn strip_visibility(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("pub")?;
    let rest = rest.trim_start();
    if let Some(inner) = rest.strip_prefix('(') {
        let close = inner.find(')')?;
        return Some(inner[close + 1..].trim_start());
    }
    Some(rest)
}

/// Collects every function definition in `file`, with inherent-impl
/// context resolved.
fn parse_fns(file: &SourceFile) -> Vec<FnDef> {
    let lines = &file.code;
    // Depth before each line (brace nesting of scrubbed code).
    let mut depth_before = Vec::with_capacity(lines.len());
    let mut depth = 0i32;
    for line in lines {
        depth_before.push(depth);
        for ch in line.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
    }
    let depth_after = |idx: usize| depth_before.get(idx + 1).copied().unwrap_or(0);

    // Inherent impl regions at module depth.
    let mut impls: Vec<(String, usize, usize)> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if depth_before[idx] != 0 {
            continue;
        }
        let trimmed = line.trim_start();
        if !(trimmed.starts_with("impl ") || trimmed.starts_with("impl<")) {
            continue;
        }
        // Accumulate the (possibly wrapped) header up to its brace.
        let mut header = String::new();
        let mut open = idx;
        for (j, hl) in lines.iter().enumerate().skip(idx) {
            let cut = hl.find('{').map_or(hl.len(), |p| p);
            header.push_str(&hl[..cut]);
            header.push(' ');
            if hl.contains('{') {
                open = j;
                break;
            }
        }
        if !find_words(&header, "for").is_empty() {
            continue; // trait impl: `fn fingerprint` there is someone else's contract
        }
        let Some(ty) = impl_self_type(&header) else { continue };
        let mut end = open;
        for j in open..lines.len() {
            if depth_after(j) == 0 {
                end = j;
                break;
            }
        }
        impls.push((ty, idx + 1, end + 1));
    }

    let mut fns = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let Some(fn_at) = fn_keyword(line) else { continue };
        // Require a named definition: `fn` followed by an identifier.
        let after = line[fn_at + 2..].trim_start();
        let name: String = after.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        if name.is_empty() {
            continue;
        }
        // Signature runs to the body's opening brace; a `;` first means a
        // bodiless trait declaration.
        let mut signature = String::new();
        let mut body_open: Option<usize> = None;
        'sig: for (j, sl) in lines.iter().enumerate().skip(idx) {
            for (ci, ch) in sl.char_indices() {
                if j == idx && ci < fn_at {
                    continue;
                }
                if ch == '{' {
                    body_open = Some(j);
                    break 'sig;
                }
                if ch == ';' {
                    break 'sig;
                }
                signature.push(ch);
            }
            signature.push(' ');
        }
        let Some(open) = body_open else { continue };
        let start_depth = depth_before[idx];
        let mut end = open;
        for j in open..lines.len() {
            if depth_after(j) <= start_depth {
                end = j;
                break;
            }
        }
        let impl_type = impls
            .iter()
            .find(|(_, s, e)| (*s..=*e).contains(&(idx + 1)))
            .map(|(ty, _, _)| ty.clone());
        fns.push(FnDef { line: idx + 1, end_line: end + 1, signature, name, impl_type });
    }
    fns
}

/// The `Self` type of an inherent impl header, generics stripped.
fn impl_self_type(header: &str) -> Option<String> {
    let after = header.trim_start().strip_prefix("impl")?;
    // Skip the generic-parameter list if present.
    let mut at = 0;
    if after.trim_start().starts_with('<') {
        let mut depth = 0i32;
        for (i, ch) in after.char_indices() {
            match ch {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        at = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    let ty_part = after[at..].trim_start();
    let ty: String =
        ty_part.chars().take_while(|c| c.is_alphanumeric() || *c == '_' || *c == ':').collect();
    let last = ty.rsplit("::").next().unwrap_or(&ty).to_string();
    if last.is_empty() {
        None
    } else {
        Some(last)
    }
}

/// Position of a `fn` keyword introducing a definition on `line`, if any.
fn fn_keyword(line: &str) -> Option<usize> {
    find_words(line, "fn").into_iter().find(|&at| {
        // `fn(` with no name is a fn-pointer type, not a definition.
        line[at + 2..].trim_start().starts_with(|c: char| c.is_alphabetic() || c == '_')
    })
}

/// Runs the FPR pass over the whole workspace at once (struct
/// definitions and digest sites live in different crates).
pub fn run(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    let mut structs: BTreeMap<String, Option<StructDef>> = BTreeMap::new();
    for file in files {
        parse_structs(file, &mut structs);
    }
    for file in files {
        for fndef in parse_fns(file) {
            if file.is_test_line(fndef.line) {
                continue;
            }
            let mut digested: Vec<&str> = Vec::new();
            if !find_words(&fndef.signature, "FingerprintBuilder").is_empty() {
                for (name, def) in &structs {
                    // The builder itself is the digest mechanism, not a
                    // digested payload.
                    if name == "FingerprintBuilder" {
                        continue;
                    }
                    if def.is_some() && !find_words(&fndef.signature, name).is_empty() {
                        digested.push(name);
                    }
                }
            }
            let squeezed: String = fndef.signature.chars().filter(|c| !c.is_whitespace()).collect();
            if fndef.name == "fingerprint" && squeezed.contains("(&self") {
                if let Some(ty) = &fndef.impl_type {
                    if structs.get(ty.as_str()).is_some_and(Option::is_some)
                        && !digested.iter().any(|d| d == ty)
                    {
                        digested.push(ty);
                    }
                }
            }
            if digested.is_empty() {
                continue;
            }
            let body: String = file.code[fndef.line - 1..fndef.end_line].join("\n");
            for name in digested {
                let Some(Some(def)) = structs.get(name) else { continue };
                for field in &def.fields {
                    if find_words(&body, field).is_empty() {
                        let mut diag = Diagnostic::new(
                            LintCode::FprMissedField,
                            &file.rel_path,
                            fndef.line,
                            format!(
                                "digest fn `{}` covers `{name}` but never mentions field \
                                 `{field}` — two specs differing only there share a \
                                 fingerprint",
                                fndef.name
                            ),
                        );
                        diag.span = Some((fndef.line, fndef.end_line));
                        diag.key = Some(field.clone());
                        out.push(diag);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> =
            sources.iter().map(|(path, src)| SourceFile::parse(path, "demo", src)).collect();
        let mut out = Vec::new();
        run(&files, &mut out);
        out
    }

    const STRUCT_SRC: &str = "pub struct Knobs {\n    pub seed: u64,\n    pub workers: usize,\n}\n";

    #[test]
    fn missed_field_in_builder_signature_fn_is_flagged() {
        let digest = "fn digest(b: FingerprintBuilder, k: &Knobs) -> FingerprintBuilder {\n    b.u64(k.seed)\n}\n";
        let diags = scan(&[("a.rs", STRUCT_SRC), ("b.rs", digest)]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, LintCode::FprMissedField);
        assert_eq!(diags[0].key.as_deref(), Some("workers"));
        assert_eq!(diags[0].span, Some((1, 3)));
    }

    #[test]
    fn full_coverage_is_clean() {
        let digest = "fn digest(b: FingerprintBuilder, k: &Knobs) -> FingerprintBuilder {\n    b.u64(k.seed).u64(k.workers as u64)\n}\n";
        assert!(scan(&[("a.rs", STRUCT_SRC), ("b.rs", digest)]).is_empty());
    }

    #[test]
    fn inherent_fingerprint_method_digests_self() {
        let src = "struct Pair {\n    a: u64,\n    b: u64,\n}\n\
                   impl Pair {\n    fn fingerprint(&self) -> u64 {\n        self.a\n    }\n}\n";
        let diags = scan(&[("p.rs", src)]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].key.as_deref(), Some("b"));
    }

    #[test]
    fn owning_fingerprint_method_is_not_a_digest_site() {
        let src = "struct Builder {\n    acc: u64,\n}\n\
                   impl Builder {\n    fn fingerprint(mut self) -> u64 {\n        0\n    }\n}\n";
        assert!(scan(&[("b.rs", src)]).is_empty());
    }

    #[test]
    fn ambiguous_struct_names_are_dropped_from_resolution() {
        let dup = "struct Knobs {\n    hidden: u64,\n}\n";
        let digest =
            "fn digest(b: FingerprintBuilder, k: &Knobs) -> FingerprintBuilder {\n    b\n}\n";
        assert!(scan(&[("a.rs", STRUCT_SRC), ("c.rs", dup), ("b.rs", digest)]).is_empty());
    }
}
