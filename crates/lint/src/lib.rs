//! cohort-lint — machine-checked domain invariants for the workspace.
//!
//! The reproduction's guarantees (bit-identical replay, content-addressed
//! memoization, kill-tolerant recomputation) are invariants of the
//! *code*, not of any one run. This crate turns the three invariant
//! classes that have actually bitten similar systems into lints, run as
//! a CI gate over every library source file:
//!
//! | class | codes | what it guards |
//! |-------|-------|----------------|
//! | DET | `det-unordered`, `det-wallclock`, `det-rng` | determinism of the outcome-determining crates |
//! | FPR | `fpr-missed-field` | fingerprint coverage of digested structs |
//! | LCK | `lck-unwrap` | lock-poisoning hygiene in library code |
//!
//! Plus two meta-lints on the suppression grammar itself (`sup-bare`,
//! `sup-unused`). A hazard that is reviewed and sound is marked in place
//! with `// lint:allow(<code>) <justification>` — the justification is
//! mandatory and suppressed findings stay in the report, flagged as
//! justified rather than hidden.
//!
//! The analysis is token-level, built on a small purpose-written lexer
//! ([`source`]) rather than a full parser: comments and string contents
//! are scrubbed (so `"HashMap"` in a log message can't fire), test
//! regions are exempted, and everything else is word-boundary matching
//! over scrubbed code. That is deliberately cruder than an AST and errs
//! toward *reporting* — a false positive costs one reviewed suppression,
//! a false negative costs a silent nondeterminism bug.

pub mod det;
pub mod fpr;
pub mod lck;
pub mod registry;
pub mod report;
pub mod source;
pub mod suppress;

use std::path::Path;

use cohort_types::Result;

pub use registry::LintCode;
pub use report::{Analysis, Diagnostic};
pub use source::SourceFile;

/// Runs every pass over an already-lexed file set and applies
/// suppressions. The diagnostics come back in stable (file, line, code)
/// order.
#[must_use]
pub fn analyze_files(files: &[SourceFile]) -> Analysis {
    let mut analysis = Analysis { diagnostics: Vec::new(), files_scanned: files.len() };
    for file in files {
        det::run(file, &mut analysis.diagnostics);
        lck::run(file, &mut analysis.diagnostics);
    }
    fpr::run(files, &mut analysis.diagnostics);
    for file in files {
        suppress::apply(file, &mut analysis.diagnostics);
    }
    analysis.sort();
    analysis
}

/// Walks the workspace at `root` and analyzes every library source file.
///
/// # Errors
///
/// Returns an error when the workspace layout cannot be read.
pub fn analyze_workspace(root: &Path) -> Result<Analysis> {
    let files = source::walk_workspace(root)?;
    Ok(analyze_files(&files))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_files_runs_every_pass_and_sorts() {
        let files = vec![
            SourceFile::parse(
                "crates/sim/src/b.rs",
                "cohort-sim",
                "use std::collections::HashMap; // lint:allow(det-unordered) lookup only\n",
            ),
            SourceFile::parse(
                "crates/sim/src/a.rs",
                "cohort-sim",
                "fn f(m: &std::sync::Mutex<u32>) { let _ = m.lock().unwrap(); }\n",
            ),
        ];
        let analysis = analyze_files(&files);
        assert_eq!(analysis.files_scanned, 2);
        assert_eq!(analysis.diagnostics.len(), 2);
        assert_eq!(analysis.diagnostics[0].file, "crates/sim/src/a.rs");
        assert_eq!(analysis.diagnostics[0].code, LintCode::LckUnwrap);
        assert!(analysis.diagnostics[1].suppressed);
        assert_eq!(analysis.unsuppressed(), 1);
    }
}
