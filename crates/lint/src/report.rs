//! Diagnostics and the machine-readable report payload.

use std::fmt::Write;

use serde_json::{json, Value};

use crate::registry::LintCode;

/// One finding of one lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the finding.
    pub line: usize,
    /// What was found, concretely (identifier, struct/field, pattern).
    pub message: String,
    /// Whether a justified suppression covers this finding.
    pub suppressed: bool,
    /// The suppression's written justification, when suppressed.
    pub justification: Option<String>,
    /// Line span (start, end) within which a suppression may sit instead
    /// of pointing at `line` exactly — used by FPR, whose findings cover
    /// a whole digest-function body.
    pub span: Option<(usize, usize)>,
    /// Token the suppression's justification must mention (the missed
    /// field name) for span-based matching.
    pub key: Option<String>,
}

impl Diagnostic {
    /// A fresh, unsuppressed line-anchored diagnostic.
    #[must_use]
    pub fn new(code: LintCode, file: &str, line: usize, message: String) -> Self {
        Diagnostic {
            code,
            file: file.to_string(),
            line,
            message,
            suppressed: false,
            justification: None,
            span: None,
            key: None,
        }
    }

    /// The human-readable one-line rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mark = if self.suppressed { "allowed" } else { "error" };
        let mut text =
            format!("{mark}[{}] {}:{}: {}", self.code, self.file, self.line, self.message);
        if let Some(justification) = &self.justification {
            let _ = write!(text, " (justified: {justification})");
        }
        text
    }

    /// The JSON record of this diagnostic.
    #[must_use]
    pub fn to_json_value(&self) -> Value {
        json!({
            "code": self.code.as_str(),
            "file": self.file.clone(),
            "line": self.line,
            "message": self.message.clone(),
            "rationale": self.code.rationale(),
            "suppressed": self.suppressed,
            "justification": self.justification.clone(),
        })
    }
}

/// The outcome of one workspace analysis.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Every diagnostic, suppressed ones included — a suppression makes a
    /// hazard *justified*, not invisible.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// Diagnostics not covered by a justified suppression.
    #[must_use]
    pub fn unsuppressed(&self) -> usize {
        self.diagnostics.iter().filter(|d| !d.suppressed).count()
    }

    /// Diagnostics covered by a justified suppression.
    #[must_use]
    pub fn suppressed(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.suppressed).count()
    }

    /// Sorts diagnostics into the stable reporting order
    /// (file, line, code).
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| (&a.file, a.line, a.code).cmp(&(&b.file, b.line, b.code)));
    }

    /// The report payload (the bench bin wraps it in the schema
    /// envelope): scan size, per-code counts, and every diagnostic.
    #[must_use]
    pub fn to_json_value(&self) -> Value {
        let by_code: Vec<Value> = LintCode::ALL
            .iter()
            .map(|code| {
                let total = self.diagnostics.iter().filter(|d| d.code == *code).count();
                let suppressed =
                    self.diagnostics.iter().filter(|d| d.code == *code && d.suppressed).count();
                json!({
                    "code": code.as_str(),
                    "total": total,
                    "suppressed": suppressed,
                })
            })
            .collect();
        json!({
            "files_scanned": self.files_scanned,
            "total": self.diagnostics.len(),
            "suppressed": self.suppressed(),
            "unsuppressed": self.unsuppressed(),
            "by_code": by_code,
            "diagnostics": self.diagnostics.iter().map(Diagnostic::to_json_value).collect::<Vec<Value>>(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_split_by_suppression() {
        let mut analysis = Analysis::default();
        analysis.diagnostics.push(Diagnostic::new(
            LintCode::DetRng,
            "b.rs",
            9,
            "thread_rng".into(),
        ));
        let mut ok = Diagnostic::new(LintCode::DetUnordered, "a.rs", 3, "HashMap".into());
        ok.suppressed = true;
        ok.justification = Some("lookup only".into());
        analysis.diagnostics.push(ok);
        analysis.sort();
        assert_eq!(analysis.diagnostics[0].file, "a.rs");
        assert_eq!((analysis.suppressed(), analysis.unsuppressed()), (1, 1));
        let doc = analysis.to_json_value();
        assert_eq!(doc.get("unsuppressed").and_then(Value::as_u64), Some(1));
        assert_eq!(doc.get("diagnostics").and_then(Value::as_array).map(Vec::len), Some(2));
        assert!(analysis.diagnostics[1].render().starts_with("error[det-rng]"));
    }
}
