//! JSON checkpoint/resume for long GA runs.
//!
//! A [`GaCheckpoint`] is a complete snapshot of a run after some
//! generation: the scored population, the convergence history, the
//! evaluation counters **and the fitness memo cache**. Restoring it via
//! [`crate::GeneticAlgorithm::resume`] continues bit-identically to the
//! uninterrupted run — including the `evaluations`/`cache_hits` counters,
//! which is why the memo travels with the snapshot.
//!
//! The JSON codec is routed through `serde_json::Value` explicitly (rather
//! than derived serde impls) for two reasons: the offline stub harness can
//! only serialize `Value`s, and the format must stay stable and
//! hand-inspectable — a long LUT optimization's checkpoint may be moved
//! between hosts mid-run. Non-finite fitness values (an infeasible-penalty
//! fitness can legitimately return `+∞`) are encoded as the strings
//! `"inf"`/`"-inf"`, since JSON numbers cannot represent them.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use serde_json::{json, Value};

use cohort_types::{Error, Result};

use crate::ga::Individual;
use crate::observer::{GaObserver, GenerationReport};

/// Format version written to (and required from) checkpoint documents.
const FORMAT: &str = "cohort-ga-checkpoint/1";

/// A resumable snapshot of a GA run after `generations_done` generations.
#[derive(Debug, Clone, PartialEq)]
pub struct GaCheckpoint {
    /// The seed of the run (resume validates it against the engine's).
    pub seed: u64,
    /// Completed generations; resume continues at this generation index.
    pub generations_done: usize,
    /// The scored population after the last completed generation.
    pub population: Vec<Individual>,
    /// Best fitness after each completed generation.
    pub history: Vec<f64>,
    /// Fitness evaluations performed so far (memo hits excluded).
    pub evaluations: u64,
    /// Memo-cache hits so far.
    pub cache_hits: u64,
    /// NaN evaluations coerced to `+∞` so far.
    pub nan_evaluations: u64,
    /// The fitness memo (every genome scored so far), sorted by genes.
    pub memo: Vec<Individual>,
}

/// Encodes a fitness value, representing non-finite values as strings.
fn fitness_to_json(f: f64) -> Value {
    if f.is_finite() {
        json!(f)
    } else if f > 0.0 {
        json!("inf")
    } else {
        json!("-inf")
    }
}

fn fitness_from_json(v: &Value, what: &str) -> Result<f64> {
    if let Some(f) = v.as_f64() {
        return Ok(f);
    }
    match v.as_str() {
        Some("inf") => Ok(f64::INFINITY),
        Some("-inf") => Ok(f64::NEG_INFINITY),
        _ => Err(Error::Codec(format!("{what}: fitness is neither a number nor \"inf\"/\"-inf\""))),
    }
}

fn individual_to_json(i: &Individual) -> Value {
    json!({ "genes": i.genes.clone(), "fitness": fitness_to_json(i.fitness) })
}

fn individual_from_json(v: &Value, what: &str) -> Result<Individual> {
    let genes = v
        .get("genes")
        .and_then(Value::as_array)
        .ok_or_else(|| Error::Codec(format!("{what}: missing `genes` array")))?
        .iter()
        .map(|g| g.as_u64().ok_or_else(|| Error::Codec(format!("{what}: non-integer gene"))))
        .collect::<Result<Vec<u64>>>()?;
    let fitness = fitness_from_json(
        v.get("fitness").ok_or_else(|| Error::Codec(format!("{what}: missing `fitness`")))?,
        what,
    )?;
    Ok(Individual { genes, fitness })
}

fn individuals_from_json(v: &Value, key: &str) -> Result<Vec<Individual>> {
    v.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| Error::Codec(format!("checkpoint: missing `{key}` array")))?
        .iter()
        .enumerate()
        .map(|(i, entry)| individual_from_json(entry, &format!("checkpoint.{key}[{i}]")))
        .collect()
}

/// Finds the byte offset where `text` stops being well-formed JSON: the
/// offending byte for structural garbage (a close bracket that matches
/// nothing), or the end of the document for truncations (an unterminated
/// string or unbalanced brackets — the torn-write signature). The scan is
/// independent of the parser so the diagnosis works with any `serde_json`
/// error type, including string-only offline stubs.
fn malformed_json_offset(text: &str) -> usize {
    let bytes = text.as_bytes();
    let mut stack: Vec<u8> = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' | b'[' => stack.push(b),
            b'}' if stack.pop() != Some(b'{') => return i,
            b']' if stack.pop() != Some(b'[') => return i,
            _ => {}
        }
    }
    bytes.len()
}

fn u64_field(v: &Value, key: &str) -> Result<u64> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| Error::Codec(format!("checkpoint: missing or non-integer `{key}`")))
}

impl GaCheckpoint {
    /// Serializes the checkpoint to a JSON document.
    #[must_use]
    pub fn to_json_value(&self) -> Value {
        json!({
            "format": FORMAT,
            "seed": self.seed,
            "generations_done": self.generations_done,
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "nan_evaluations": self.nan_evaluations,
            "history": self.history.iter().map(|&f| fitness_to_json(f)).collect::<Vec<Value>>(),
            "population": self.population.iter().map(individual_to_json).collect::<Vec<Value>>(),
            "memo": self.memo.iter().map(individual_to_json).collect::<Vec<Value>>(),
        })
    }

    /// Parses a checkpoint from its JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] on a missing/mistyped field or an unknown
    /// format version.
    pub fn from_json_value(doc: &Value) -> Result<Self> {
        let format = doc.get("format").and_then(Value::as_str).unwrap_or("<missing>");
        if format != FORMAT {
            return Err(Error::Codec(format!("checkpoint: format `{format}` is not `{FORMAT}`")));
        }
        let history = doc
            .get("history")
            .and_then(Value::as_array)
            .ok_or_else(|| Error::Codec("checkpoint: missing `history` array".into()))?
            .iter()
            .enumerate()
            .map(|(i, v)| fitness_from_json(v, &format!("checkpoint.history[{i}]")))
            .collect::<Result<Vec<f64>>>()?;
        let population = individuals_from_json(doc, "population")?;
        if population.is_empty() {
            return Err(Error::Codec(format!(
                "{FORMAT}: `population` is empty — there is nothing to resume from"
            )));
        }
        Ok(GaCheckpoint {
            seed: u64_field(doc, "seed")?,
            generations_done: u64_field(doc, "generations_done")? as usize,
            population,
            history,
            evaluations: u64_field(doc, "evaluations")?,
            cache_hits: u64_field(doc, "cache_hits")?,
            nan_evaluations: u64_field(doc, "nan_evaluations")?,
            memo: individuals_from_json(doc, "memo")?,
        })
    }

    /// Serializes to a pretty-printed JSON string.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut text = serde_json::to_string_pretty(&self.to_json_value())
            .expect("a Value serializes infallibly");
        text.push('\n');
        text
    }

    /// Parses from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] on malformed JSON or schema violations.
    /// Malformed documents — including torn writes that truncated the file
    /// mid-token — are diagnosed with the format name and the byte offset
    /// where the document stops being well-formed, so a broken resume
    /// points at the damage instead of panicking somewhere downstream.
    pub fn from_json(text: &str) -> Result<Self> {
        let doc: Value = serde_json::from_str(text).map_err(|e| {
            let offset = malformed_json_offset(text);
            let kind = if offset >= text.len() { "truncated" } else { "corrupt" };
            Error::Codec(format!(
                "{FORMAT}: {kind} checkpoint JSON at byte {offset} of {}: {e}",
                text.len()
            ))
        })?;
        Self::from_json_value(&doc)
    }

    /// Writes the checkpoint to `path` atomically (temp file + rename), so
    /// an interruption mid-write never corrupts the previous snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] on filesystem failures.
    pub fn save(&self, path: &Path) -> Result<()> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).map_err(|e| Error::Codec(e.to_string()))?;
        }
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json()).map_err(|e| Error::Codec(e.to_string()))?;
        std::fs::rename(&tmp, path).map_err(|e| Error::Codec(e.to_string()))
    }

    /// Loads a checkpoint previously written with [`Self::save`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] on filesystem or parse failures.
    pub fn load(path: &Path) -> Result<Self> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| Error::Codec(format!("cannot read checkpoint {}: {e}", path.display())))?;
        Self::from_json(&text)
    }
}

/// A [`GaObserver`] that persists a checkpoint to one file every
/// `every_generations` generations (and always on the first generation, so
/// even a run killed early leaves a resume point).
///
/// # Examples
///
/// ```no_run
/// use cohort_optim::{CheckpointFile, GaConfig, GeneticAlgorithm, SearchSpace};
///
/// let ga = GeneticAlgorithm::new(SearchSpace::new(vec![(0, 999); 4]), GaConfig::default());
/// let sink = CheckpointFile::new("out/ga-checkpoint.json", 5);
/// let outcome = ga.run_observed(&[], &sink, |g| g.iter().sum::<u64>() as f64)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CheckpointFile {
    path: PathBuf,
    every_generations: usize,
    writes: AtomicUsize,
}

impl CheckpointFile {
    /// Creates a sink writing to `path` every `every_generations`
    /// generations (clamped to at least 1).
    #[must_use]
    pub fn new(path: impl Into<PathBuf>, every_generations: usize) -> Self {
        CheckpointFile {
            path: path.into(),
            every_generations: every_generations.max(1),
            writes: AtomicUsize::new(0),
        }
    }

    /// The number of snapshots written so far.
    #[must_use]
    pub fn writes(&self) -> usize {
        self.writes.load(Ordering::Relaxed)
    }
}

impl GaObserver for CheckpointFile {
    fn generation_finished(&self, report: &GenerationReport<'_>) {
        if !report.generation.is_multiple_of(self.every_generations) {
            return;
        }
        // Checkpointing is best-effort: a full disk must not kill the
        // optimization it was meant to protect.
        if let Err(e) = report.checkpoint().save(&self.path) {
            eprintln!("cohort-optim: checkpoint write to {} failed: {e}", self.path.display());
        } else {
            self.writes.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GaConfig, GeneticAlgorithm, SearchSpace};

    fn sample_checkpoint() -> GaCheckpoint {
        GaCheckpoint {
            seed: 7,
            generations_done: 3,
            population: vec![
                Individual { genes: vec![1, 2], fitness: 3.5 },
                Individual { genes: vec![4, 5], fitness: f64::INFINITY },
            ],
            history: vec![9.0, 4.0, 3.5],
            evaluations: 40,
            cache_hits: 6,
            nan_evaluations: 1,
            memo: vec![
                Individual { genes: vec![1, 2], fitness: 3.5 },
                Individual { genes: vec![4, 5], fitness: f64::INFINITY },
                Individual { genes: vec![9, 9], fitness: 100.0 },
            ],
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let cp = sample_checkpoint();
        let parsed = GaCheckpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(cp, parsed, "round trip including +inf fitness");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(GaCheckpoint::from_json("not json").is_err());
        assert!(GaCheckpoint::from_json("{}").is_err(), "missing format marker");
        let wrong = r#"{"format": "cohort-ga-checkpoint/999"}"#;
        let err = GaCheckpoint::from_json(wrong).unwrap_err();
        assert!(err.to_string().contains("format"), "{err}");
        // Valid marker but a broken field.
        let broken = sample_checkpoint().to_json().replace("\"seed\"", "\"dees\"");
        assert!(GaCheckpoint::from_json(&broken).is_err());
    }

    #[test]
    fn torn_writes_are_rejected_with_format_and_offset() {
        // A power cut mid-write leaves a prefix of the document. Every
        // truncation point must produce a descriptive Codec error naming
        // the format and the byte offset — never a panic.
        let full = sample_checkpoint().to_json();
        for cut in [1, 2, full.len() / 4, full.len() / 2, full.len() - 2] {
            let torn = &full[..cut];
            let err = GaCheckpoint::from_json(torn).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(FORMAT), "error names the format: {msg}");
            assert!(msg.contains("byte"), "error names the byte offset: {msg}");
            assert!(msg.contains("truncated"), "a torn prefix is a truncation: {msg}");
        }
        // Structural corruption (a bracket flip) points at the offending
        // byte rather than the end of the document.
        let corrupt = full.replace("\"history\": [", "\"history\": ]");
        let err = GaCheckpoint::from_json(&corrupt).unwrap_err().to_string();
        assert!(err.contains(FORMAT) && err.contains("corrupt"), "{err}");
        // The diagnosis scanner is escape-aware: quotes inside strings do
        // not confuse the truncation offset.
        assert_eq!(malformed_json_offset("{\"a\": \"x\\\"y"), 11);
        assert_eq!(malformed_json_offset("[1, 2}"), 5);
    }

    #[test]
    fn empty_population_checkpoints_cannot_resume() {
        let empty = sample_checkpoint().to_json().replace("\"population\"", "\"xpopulation\"");
        assert!(GaCheckpoint::from_json(&empty).is_err(), "missing population is rejected");
        let mut cp = sample_checkpoint();
        let doc = cp.to_json();
        let hollowed = {
            // Rewrite the document with an empty population array.
            let v: Value = serde_json::from_str(&doc).unwrap();
            let mut m = v.as_object().unwrap().clone();
            m.insert("population".into(), Value::Array(Vec::new()));
            serde_json::to_string_pretty(&Value::Object(m)).unwrap()
        };
        let err = GaCheckpoint::from_json(&hollowed).unwrap_err().to_string();
        assert!(err.contains("empty"), "{err}");
        // A hand-built empty checkpoint is refused by resume itself, with
        // the dedicated diagnosis rather than a size-mismatch message.
        cp.population.clear();
        let ga = GeneticAlgorithm::new(
            SearchSpace::new(vec![(0, 500); 2]),
            GaConfig { population: 8, generations: 4, seed: 7, ..Default::default() },
        );
        let err = ga.resume(&cp, |g| g.iter().sum::<u64>() as f64).unwrap_err();
        assert!(err.to_string().contains("empty population"), "{err}");
    }

    #[test]
    fn file_sink_writes_and_resumes() {
        let dir = std::env::temp_dir().join("cohort-optim-checkpoint-test");
        let path = dir.join("ga.json");
        let space = SearchSpace::new(vec![(0, 500); 3]);
        let config = GaConfig { population: 10, generations: 8, ..Default::default() };
        let f = |g: &[u64]| g.iter().map(|&x| (x as f64 - 250.0).abs()).sum::<f64>();

        let sink = CheckpointFile::new(&path, 3);
        let full = GeneticAlgorithm::new(space.clone(), config.clone())
            .run_observed(&[], &sink, f)
            .unwrap();
        assert!(sink.writes() >= 2, "generations 0, 3, 6 snapshot");

        // The last snapshot (generation 6) resumes to the same outcome.
        let cp = GaCheckpoint::load(&path).unwrap();
        assert_eq!(cp.generations_done, 7);
        let resumed = GeneticAlgorithm::new(space, config).resume(&cp, f).unwrap();
        assert_eq!(resumed, full);
        std::fs::remove_dir_all(&dir).ok();
    }
}
