//! A small, deterministic genetic algorithm over bounded integer
//! chromosomes.
//!
//! The engine is generic: the CoHoRT timer problem is one instance, the
//! ablation benches reuse it with other fitness functions. Determinism is a
//! hard requirement (the paper's Table II must regenerate identically), so
//! all randomness flows from a caller-provided seed through ChaCha.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Inclusive per-gene bounds of the search space.
///
/// # Examples
///
/// ```
/// use cohort_optim::SearchSpace;
///
/// let space = SearchSpace::new(vec![(1, 10), (5, 5)]);
/// assert_eq!(space.genes(), 2);
/// assert!(space.contains(&[3, 5]));
/// assert!(!space.contains(&[0, 5]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    bounds: Vec<(u64, u64)>,
    log_scale: bool,
}

impl SearchSpace {
    /// Creates a search space from inclusive `(low, high)` bounds with
    /// uniform (linear) sampling.
    ///
    /// # Panics
    ///
    /// Panics if any bound has `low > high` or the space is empty.
    #[must_use]
    pub fn new(bounds: Vec<(u64, u64)>) -> Self {
        Self::with_scale(bounds, false)
    }

    /// Creates a search space sampled **log-uniformly**: appropriate when
    /// genes span orders of magnitude and the interesting region sits near
    /// the low end — exactly the shape of the timer problem, where θ_sat
    /// can be tens of thousands but feasible timers are tens of cycles.
    /// Requires strictly positive lower bounds.
    ///
    /// # Panics
    ///
    /// Panics if any bound has `low > high` or `low == 0`, or the space is
    /// empty.
    #[must_use]
    pub fn logarithmic(bounds: Vec<(u64, u64)>) -> Self {
        assert!(bounds.iter().all(|&(lo, _)| lo > 0), "log scale needs positive lower bounds");
        Self::with_scale(bounds, true)
    }

    fn with_scale(bounds: Vec<(u64, u64)>, log_scale: bool) -> Self {
        assert!(!bounds.is_empty(), "search space needs at least one gene");
        for &(lo, hi) in &bounds {
            assert!(lo <= hi, "inverted bound {lo}..={hi}");
        }
        SearchSpace { bounds, log_scale }
    }

    /// Number of genes per chromosome.
    #[must_use]
    pub fn genes(&self) -> usize {
        self.bounds.len()
    }

    /// The inclusive bounds of one gene.
    #[must_use]
    pub fn bound(&self, gene: usize) -> (u64, u64) {
        self.bounds[gene]
    }

    /// Whether a chromosome lies inside the space.
    #[must_use]
    pub fn contains(&self, genes: &[u64]) -> bool {
        genes.len() == self.bounds.len()
            && genes.iter().zip(&self.bounds).all(|(&g, &(lo, hi))| g >= lo && g <= hi)
    }

    fn sample(&self, rng: &mut ChaCha8Rng) -> Vec<u64> {
        self.bounds
            .iter()
            .map(|&(lo, hi)| {
                if self.log_scale && hi > lo {
                    let (ll, lh) = ((lo as f64).ln(), (hi as f64).ln());
                    let v = rng.gen_range(ll..=lh).exp().round() as u64;
                    v.clamp(lo, hi)
                } else {
                    rng.gen_range(lo..=hi)
                }
            })
            .collect()
    }

    fn clamp(&self, gene: usize, value: u64) -> u64 {
        let (lo, hi) = self.bounds[gene];
        value.clamp(lo, hi)
    }
}

/// Hyper-parameters of the GA. The defaults mirror a stock "default
/// parameters" GA as used by the paper's Matlab setup: generational
/// replacement with elitism, tournament selection, uniform crossover,
/// reset-or-jitter mutation.
#[derive(Debug, Clone, PartialEq)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Probability of crossing two parents (vs cloning one).
    pub crossover_rate: f64,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Individuals copied unchanged into the next generation.
    pub elitism: usize,
    /// RNG seed (the whole run is a pure function of it).
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 48,
            generations: 60,
            tournament: 3,
            crossover_rate: 0.9,
            mutation_rate: 0.15,
            elitism: 2,
            seed: 0,
        }
    }
}

/// Result of a GA run.
#[derive(Debug, Clone, PartialEq)]
pub struct GaOutcome {
    /// The best chromosome found.
    pub best: Vec<u64>,
    /// Its fitness (lower is better).
    pub best_fitness: f64,
    /// Best fitness after each generation (convergence curve).
    pub history: Vec<f64>,
    /// Total fitness evaluations performed.
    pub evaluations: u64,
}

/// A deterministic, minimising genetic algorithm.
///
/// # Examples
///
/// Minimise the distance to a hidden target vector:
///
/// ```
/// use cohort_optim::{GaConfig, GeneticAlgorithm, SearchSpace};
///
/// let space = SearchSpace::new(vec![(0, 100); 4]);
/// let target = [7u64, 42, 99, 0];
/// let ga = GeneticAlgorithm::new(space, GaConfig::default());
/// let outcome = ga.run(|genes| {
///     genes.iter().zip(&target).map(|(&g, &t)| (g as f64 - t as f64).abs()).sum()
/// });
/// assert!(outcome.best_fitness <= 10.0, "close to the target");
/// assert_eq!(outcome.history.len(), GaConfig::default().generations);
/// ```
#[derive(Debug, Clone)]
pub struct GeneticAlgorithm {
    space: SearchSpace,
    config: GaConfig,
}

impl GeneticAlgorithm {
    /// Creates an engine over `space` with the given hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if the population or tournament size is zero, or elitism
    /// exceeds the population.
    #[must_use]
    pub fn new(space: SearchSpace, config: GaConfig) -> Self {
        assert!(config.population > 0, "population must be positive");
        assert!(config.tournament > 0, "tournament must be positive");
        assert!(config.elitism <= config.population, "elitism exceeds population");
        GeneticAlgorithm { space, config }
    }

    /// Runs the GA, minimising `fitness`. Optionally seeds the initial
    /// population with known-good chromosomes via [`Self::run_seeded`].
    pub fn run(&self, fitness: impl Fn(&[u64]) -> f64) -> GaOutcome {
        self.run_seeded(&[], fitness)
    }

    /// Runs the GA with `seeds` injected into the initial population (the
    /// mode-switch flow seeds each mode with the previous mode's solution).
    ///
    /// # Panics
    ///
    /// Panics if a seed chromosome lies outside the search space.
    pub fn run_seeded(&self, seeds: &[Vec<u64>], fitness: impl Fn(&[u64]) -> f64) -> GaOutcome {
        for seed in seeds {
            assert!(self.space.contains(seed), "seed chromosome out of bounds");
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut evaluations = 0u64;
        let eval = |genes: &[u64], evals: &mut u64| -> f64 {
            *evals += 1;
            fitness(genes)
        };

        // Initial population: injected seeds then random samples.
        let mut population: Vec<(Vec<u64>, f64)> = Vec::with_capacity(self.config.population);
        for seed in seeds.iter().take(self.config.population) {
            let f = eval(seed, &mut evaluations);
            population.push((seed.clone(), f));
        }
        while population.len() < self.config.population {
            let genes = self.space.sample(&mut rng);
            let f = eval(&genes, &mut evaluations);
            population.push((genes, f));
        }

        let mut history = Vec::with_capacity(self.config.generations);
        population.sort_by(|a, b| a.1.total_cmp(&b.1));
        for _ in 0..self.config.generations {
            let mut next: Vec<(Vec<u64>, f64)> =
                population.iter().take(self.config.elitism).cloned().collect();
            while next.len() < self.config.population {
                let a = self.tournament(&population, &mut rng);
                let child = if rng.gen_bool(self.config.crossover_rate) {
                    let b = self.tournament(&population, &mut rng);
                    Self::crossover(&population[a].0, &population[b].0, &mut rng)
                } else {
                    population[a].0.clone()
                };
                let child = self.mutate(child, &mut rng);
                let f = eval(&child, &mut evaluations);
                next.push((child, f));
            }
            population = next;
            population.sort_by(|a, b| a.1.total_cmp(&b.1));
            // History entry g is the best *after* generation g has bred
            // (monotone thanks to elitism).
            history.push(population[0].1);
        }
        GaOutcome {
            best: population[0].0.clone(),
            best_fitness: population[0].1,
            history,
            evaluations,
        }
    }

    fn tournament(&self, population: &[(Vec<u64>, f64)], rng: &mut ChaCha8Rng) -> usize {
        let mut best = rng.gen_range(0..population.len());
        for _ in 1..self.config.tournament {
            let challenger = rng.gen_range(0..population.len());
            if population[challenger].1 < population[best].1 {
                best = challenger;
            }
        }
        best
    }

    fn crossover(a: &[u64], b: &[u64], rng: &mut ChaCha8Rng) -> Vec<u64> {
        a.iter().zip(b).map(|(&ga, &gb)| if rng.gen_bool(0.5) { ga } else { gb }).collect()
    }

    fn mutate(&self, mut genes: Vec<u64>, rng: &mut ChaCha8Rng) -> Vec<u64> {
        for (i, gene) in genes.iter_mut().enumerate() {
            if !rng.gen_bool(self.config.mutation_rate) {
                continue;
            }
            let (lo, hi) = self.space.bound(i);
            if rng.gen_bool(0.5) {
                // Reset: explore (log-uniformly for log-scale spaces).
                let fresh =
                    SearchSpace::with_scale(vec![(lo, hi)], self.space.log_scale).sample(rng)[0];
                *gene = fresh;
            } else if self.space.log_scale {
                // Multiplicative jitter: scale by a factor in [0.5, 2].
                let factor = rng.gen_range(0.5f64..=2.0);
                let jittered = ((*gene as f64) * factor).round() as u64;
                *gene = self.space.clamp(i, jittered.max(1));
            } else {
                // Jitter: exploit (±25% of the range, at least ±1).
                let span = ((hi - lo) / 4).max(1);
                let delta = rng.gen_range(0..=span);
                *gene = if rng.gen_bool(0.5) {
                    self.space.clamp(i, gene.saturating_add(delta))
                } else {
                    self.space.clamp(i, gene.saturating_sub(delta))
                };
            }
        }
        genes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(genes: &[u64]) -> f64 {
        genes.iter().map(|&g| (g as f64 - 50.0).powi(2)).sum()
    }

    #[test]
    fn converges_on_a_smooth_objective() {
        let space = SearchSpace::new(vec![(0, 1000); 3]);
        let ga = GeneticAlgorithm::new(space, GaConfig::default());
        let outcome = ga.run(sphere);
        assert!(outcome.best_fitness < 500.0, "best {:?}", outcome.best);
        // Convergence curve is monotone non-increasing (elitism).
        for w in outcome.history.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let space = SearchSpace::new(vec![(0, 100); 4]);
        let ga = GeneticAlgorithm::new(space.clone(), GaConfig::default());
        let a = ga.run(sphere);
        let b = GeneticAlgorithm::new(space, GaConfig::default()).run(sphere);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_explore_differently() {
        let space = SearchSpace::new(vec![(0, 100_000); 6]);
        let a = GeneticAlgorithm::new(space.clone(), GaConfig::default()).run(sphere);
        let b =
            GeneticAlgorithm::new(space, GaConfig { seed: 1, ..Default::default() }).run(sphere);
        assert_ne!(a.best, b.best);
    }

    #[test]
    fn seeded_population_preserves_a_feasible_start() {
        // Fitness that is 0 only at the seed: elitism must keep it.
        let space = SearchSpace::new(vec![(0, 1_000_000); 4]);
        let seed = vec![123_456u64, 7, 999_999, 0];
        let target = seed.clone();
        let ga = GeneticAlgorithm::new(space, GaConfig { generations: 5, ..Default::default() });
        let outcome = ga.run_seeded(&[seed], move |genes| {
            genes.iter().zip(&target).map(|(&g, &t)| (g as f64 - t as f64).abs()).sum()
        });
        assert_eq!(outcome.best_fitness, 0.0);
    }

    #[test]
    fn respects_bounds() {
        let space = SearchSpace::new(vec![(10, 20), (5, 5)]);
        let ga = GeneticAlgorithm::new(space.clone(), GaConfig::default());
        let outcome = ga.run(|g| g[0] as f64);
        assert!(space.contains(&outcome.best));
        assert_eq!(outcome.best[1], 5, "degenerate gene pinned");
        assert_eq!(outcome.best[0], 10, "minimum found");
    }

    #[test]
    fn evaluation_count_is_reported() {
        let config = GaConfig { population: 10, generations: 3, ..Default::default() };
        let space = SearchSpace::new(vec![(0, 9)]);
        let outcome = GeneticAlgorithm::new(space, config).run(|g| g[0] as f64);
        // 10 initial + 3 generations × 8 children (2 elites kept).
        assert_eq!(outcome.evaluations, 10 + 3 * 8);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_space_seeds() {
        let space = SearchSpace::new(vec![(0, 5)]);
        let ga = GeneticAlgorithm::new(space, GaConfig::default());
        let _ = ga.run_seeded(&[vec![6]], |_| 0.0);
    }

    #[test]
    #[should_panic(expected = "inverted bound")]
    fn rejects_inverted_bounds() {
        let _ = SearchSpace::new(vec![(5, 1)]);
    }
}
